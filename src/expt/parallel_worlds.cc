#include "expt/parallel_worlds.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace mar::expt {

unsigned effective_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1U : hw;
}

std::vector<std::uint64_t> replicate_seeds(std::uint64_t base,
                                           std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  std::uint64_t x = base;
  for (std::size_t i = 0; i < count; ++i) {
    // splitmix64 finalizer (Steele et al.): distinct states map to
    // distinct, well-mixed outputs.
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    seeds.push_back(z ^ (z >> 31));
  }
  return seeds;
}

namespace detail {

void run_indexed(std::size_t count,
                 const std::function<void(std::size_t)>& job,
                 unsigned threads) {
  if (count == 0) return;
  const auto workers = static_cast<unsigned>(std::min<std::size_t>(
      effective_threads(threads), count));
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  // Work-claiming pool: an atomic ticket counter hands out job indices,
  // so an uneven mix of fast and slow worlds still load-balances. A
  // throwing job must behave like it does sequentially: capture the first
  // exception, stop claiming new jobs, rethrow after the join.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        job(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail
}  // namespace mar::expt
