// Parallel multi-world experiment driver.
//
// The simulation kernel is single-threaded by design: one world (simulator
// + network + platform) is a pure function of its seed. Experiments,
// however, run MANY independent worlds — seed-replicated trials and
// parameter sweeps — and those parallelize perfectly across OS threads as
// long as no state is shared between worlds. This driver provides exactly
// that: a bounded thread pool that executes world-building jobs and
// collects their results in job-index order, so a parallel run produces
// bit-identical output to a sequential one regardless of thread scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace mar::expt {

/// Worker threads to use: `requested` if nonzero, else the hardware
/// concurrency (minimum 1).
[[nodiscard]] unsigned effective_threads(unsigned requested);

/// Derive `count` distinct, well-spread seeds from `base` (splitmix64).
/// Replicated trials must not share correlated low-entropy seeds; feeding
/// base, base+1, ... through splitmix64 is the standard remedy.
[[nodiscard]] std::vector<std::uint64_t> replicate_seeds(std::uint64_t base,
                                                         std::size_t count);

namespace detail {
/// Run job(0) .. job(count-1), each exactly once, on up to `threads`
/// OS threads (0 = hardware concurrency). Blocks until all complete.
void run_indexed(std::size_t count,
                 const std::function<void(std::size_t)>& job,
                 unsigned threads);
}  // namespace detail

/// Run `count` independent jobs in parallel and return their results in
/// job-index order. Each job must build its own world (simulator, network,
/// platform — e.g. a harness::TestWorld) and share nothing mutable with
/// other jobs: each world then stays single-threaded internally, and
/// determinism holds per seed no matter how the jobs are scheduled.
template <typename Fn>
auto run_worlds(std::size_t count, Fn&& job, unsigned threads = 0)
    -> std::vector<decltype(job(std::size_t{0}))> {
  using R = decltype(job(std::size_t{0}));
  // std::vector<bool> is bit-packed: concurrent writes to results[i]
  // would race on shared words. Return a small struct or an int instead.
  static_assert(!std::is_same_v<R, bool>,
                "run_worlds jobs must not return bool");
  std::vector<R> results(count);
  detail::run_indexed(
      count, [&](std::size_t i) { results[i] = job(i); }, threads);
  return results;
}

}  // namespace mar::expt
