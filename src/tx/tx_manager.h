// Distributed transactions: coordinator and participant endpoints.
//
// Step transactions and compensation transactions in the paper are
// (potentially distributed) ACID transactions: a step's resource updates,
// the removal of the agent from the local input queue and its insertion
// into the next node's input queue commit atomically (Sec. 2). This module
// provides that with two-phase commit, presumed abort:
//
//   * local-only transactions take a one-phase fast path;
//   * with remote participants, the coordinator prepares its local
//     participants (persisting their staged effects), collects votes,
//     persists a commit decision record, then drives COMMIT until every
//     remote acknowledges — re-driving from the decision record after a
//     coordinator crash;
//   * participants persist prepared state; in-doubt participants
//     periodically send an INQUIRY to the coordinator, which answers from
//     its decision records (no record ⇒ presumed abort).
//
// All message exchange uses the reliable network layer, so transient node
// and link failures only delay the outcome — the property the paper's
// rollback liveness argument builds on.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "net/network.h"
#include "storage/stable_storage.h"
#include "sim/simulator.h"
#include "tx/participant.h"
#include "util/counters.h"
#include "util/ids.h"
#include "util/result.h"
#include "util/trace.h"

namespace mar::tx {

/// Commit-pipeline observability (RelaxedCounter: safe to sample from a
/// monitor thread mid-run).
struct TxStats {
  /// Gauge: transactions this node coordinates that have begun but not
  /// reached `done` (callback fired AND protocol forgotten). With the
  /// pipelined coordinator this is the number of overlapping commits.
  RelaxedCounter inflight_tx;
  /// Stable-storage syncs paid for coordinator decision durability. At
  /// window <= 1 this is one per decided distributed commit; the pipelined
  /// decision queue amortizes many decisions into one.
  RelaxedCounter coordinator_syncs;
  /// High-water mark of inflight_tx.
  RelaxedCounter pipeline_depth_max;
};

/// Builds the TxId for the `n`-th transaction coordinated by `node`.
[[nodiscard]] constexpr TxId make_tx_id(NodeId node, std::uint64_t counter) {
  return TxId((static_cast<std::uint64_t>(node.value()) << 40) | counter);
}
/// Extracts the coordinating node from a TxId.
[[nodiscard]] constexpr NodeId coordinator_of(TxId tx) {
  return NodeId(static_cast<std::uint32_t>(tx.value() >> 40));
}

/// Message type tags understood by TxManager::on_message.
namespace msg {
inline constexpr const char* prepare = "tx.prepare";
inline constexpr const char* vote = "tx.vote";
inline constexpr const char* commit = "tx.commit";
inline constexpr const char* commit_ack = "tx.commit_ack";
inline constexpr const char* abort = "tx.abort";
inline constexpr const char* inquiry = "tx.inquiry";
inline constexpr const char* decision = "tx.decision";
}  // namespace msg

class TxManager {
 public:
  using CommitCallback = std::function<void(bool committed)>;

  TxManager(NodeId self, sim::Simulator& sim, net::Network& net,
            storage::StableStorage& stable);

  /// Register a participant living on this node (queue manager, resource
  /// manager). Remote PREPARE/COMMIT/ABORT is fanned out to all registered
  /// participants that hold state for the transaction.
  void register_participant(Participant& p);

  // --- coordinator side ----------------------------------------------------
  [[nodiscard]] TxId begin();
  /// Record that `node` holds staged state for `tx` (it must be told the
  /// outcome). Safe to call repeatedly.
  void enlist_remote(TxId tx, NodeId node);
  [[nodiscard]] bool has_remote(TxId tx, NodeId node) const;
  /// Drive the commit protocol; invokes `cb` exactly once unless this node
  /// crashes first (after a crash, recovery finishes the protocol without
  /// the callback — callers recover through their own durable state).
  void commit_async(TxId tx, CommitCallback cb);
  /// Abort a transaction this node coordinates.
  void abort_tx(TxId tx);
  /// Abort `tx` only if it is still collecting votes. Used by transfer
  /// timeouts in the pipelined path, where the commit machinery runs
  /// concurrently with the shipment: once a decision exists (or the
  /// transaction is gone) the timeout is stale and must not fire the
  /// callback a second time.
  void abort_if_preparing(TxId tx);
  /// Mark `node` as receiving its PREPARE piggybacked on the shipment
  /// frame itself (ship.convoy): commit_async must not send a separate
  /// tx.prepare to it. The vote arrives as usual; the re-drive loop falls
  /// back to explicit PREPAREs, which a participant that never saw the
  /// convoy answers with NO (presumed abort + caller retry).
  void note_piggybacked(TxId tx, NodeId node);

  /// True when the coordinator runs the pipelined commit path (window >
  /// 1): decisions queue for a batched single-sync flush and PREPAREs
  /// ride the convoy frames (one round trip per hop).
  [[nodiscard]] bool pipelined() const { return group_window_ > 1; }

  // --- participant side -----------------------------------------------------
  /// Note that a remote coordinator staged state at this node (e.g. an
  /// agent enqueue or shipped compensating operations). Starts the in-doubt
  /// inquiry timer so an orphaned transaction is eventually presumed
  /// aborted and its staged state (and locks) released.
  void note_remote_staged(TxId tx);
  /// A PREPARE carried inside a ship.convoy frame (one round trip: the
  /// transfer IS the prepare). Routes into the same vote machinery as a
  /// tx.prepare message; convoys deliver whole batches of these at once,
  /// so the participant window flushes them under one shared barrier.
  void on_piggybacked_prepare(TxId tx, NodeId coordinator) {
    handle_prepare(tx, coordinator);
  }

  // --- wiring ---------------------------------------------------------------
  /// Dispatch one tx.* message (the platform owns the node's handler).
  void on_message(const net::Message& m);
  /// Crash/recovery hooks, called by the platform's node runtime.
  void on_crash();
  void on_recover();

  /// True while this node coordinates unfinished transactions or holds
  /// prepared participant state (used by tests to detect quiescence).
  [[nodiscard]] bool idle() const;

  /// Stable-storage syncs paid as a 2PC PARTICIPANT (prepare barriers
  /// before YES votes, commit applies before acks) — the share of this
  /// node's sync_batches that convoy batching + participant-side group
  /// commit amortize. A7 reports this per agent-hop.
  [[nodiscard]] std::uint64_t participant_syncs() const {
    return participant_syncs_;
  }

  /// Commit-pipeline counters (monitor-thread-safe).
  [[nodiscard]] const TxStats& stats() const { return stats_; }

  [[nodiscard]] NodeId self() const { return self_; }

  /// Attach a trace sink; the pipeline emits TraceKind::tx_pipeline
  /// transitions (decided/flushed/acked) so one transaction's pipeline
  /// latency can be reconstructed from a trace dump. Optional — tests that
  /// construct TxManager directly run untraced.
  void set_trace(TraceSink* trace) { trace_ = trace; }

  /// Interval at which in-doubt participants re-ask the coordinator.
  void set_inquiry_interval(sim::TimeUs t) { inquiry_interval_ = t; }

  /// Called after a batched participant flush applied remote commits:
  /// queue records may have landed outside any message dispatch (the
  /// flush timer), so the owning runtime re-pumps its scheduler here.
  void set_apply_listener(std::function<void()> fn) {
    apply_listener_ = std::move(fn);
  }

  /// Group commit (the MariaDB/TokuDB-style log batching, applied to the
  /// one-phase local fast path): decided local-only commits enter a queue
  /// that is flushed — participants applied, ONE metered sync, callbacks —
  /// when `window` commits are pending or `flush_us` after the first one.
  /// window <= 1 reproduces the sync-per-commit path bit for bit.
  ///
  /// A window > 1 additionally coalesces the PARTICIPANT side of 2PC:
  /// incoming PREPAREs and COMMIT applies queue up and flush with a
  /// shared sync each — votes and commit-acks leave only after the
  /// batched barrier, so convoyed agent transfers towards one node pay
  /// ~2 syncs per batch instead of 2 per transfer. A crash before the
  /// flush loses the queued (volatile, unvoted) prepares, so their
  /// coordinators read the silence as presumed abort — the same crash
  /// atomicity the local commit queue has.
  void set_group_commit(std::uint32_t window, sim::TimeUs flush_us) {
    group_window_ = window;
    group_flush_us_ = flush_us;
  }

  /// Fuzzy record-log checkpoints (segmented storage only): whenever a
  /// group-commit flush observes >= `interval_bytes` of new record-log
  /// writes since the last checkpoint, begin one — snapshot at the
  /// current LSN without stalling the pipeline — and complete it
  /// `write_us` later on an epoch-guarded timer, so a crash inside the
  /// window simply abandons the attempt (the previous generation stays
  /// valid). 0 disables.
  void set_checkpoint(std::size_t interval_bytes, sim::TimeUs write_us) {
    checkpoint_interval_bytes_ = interval_bytes;
    checkpoint_write_us_ = write_us;
  }

 private:
  /// Coordinator-side per-transaction state machine. The pipelined path
  /// (window > 1) adds `deciding`: all votes are in, the decision record
  /// sits in decision_queue_ awaiting the batched durability flush (ONE
  /// sync for the whole batch), after which the transaction drains acks
  /// in `committing`. The callback fires at ack drain, preserving the
  /// caller-visible invariant that a finished transaction's effects are
  /// applied at every participant.
  ///
  ///   preparing --all votes--> deciding --flush--> committing --acks--> done
  ///       |                        \ (crash: nothing persisted ->
  ///       +--NO vote/abort--> done    presumed abort)
  enum class Phase { preparing, deciding, committing };
  struct Coord {
    std::set<NodeId> remotes;
    std::set<NodeId> votes_pending;
    std::set<NodeId> acks_pending;
    /// Remotes whose PREPARE rides the convoy frame (no tx.prepare sent).
    std::set<NodeId> piggybacked;
    Phase phase = Phase::preparing;
    /// Whether this entry came through begin() and is counted in the
    /// inflight gauge (recovery-rebuilt entries are not).
    bool counted = false;
    CommitCallback callback;
  };

  // Coordinator internals.
  void decide_commit(TxId tx, Coord& c);
  void decide_abort(TxId tx, Coord& c);
  void finish(TxId tx, Coord& c, bool committed);
  /// Apply every queued local commit, pay one sync, run the callbacks.
  void flush_commit_group();
  void schedule_group_flush();
  /// Persist every queued commit decision, pay ONE metered sync, send the
  /// COMMITs (pipelined coordinator; callbacks fire later, at ack drain).
  void flush_decision_group();
  /// Arm the decision flush: `hot` schedules an immediate (same-instant)
  /// flush once the window filled — it still runs after every event
  /// already queued for this timestamp, so a burst of votes larger than
  /// the window shares one barrier; otherwise dwell group_flush_us_.
  void schedule_decision_flush(bool hot);
  void arm_commit_redrive(TxId tx);
  /// Inflight gauge maintenance (mirrors into stats_, tracks high water).
  void inflight_add();
  void inflight_remove();
  bool prepare_locals(TxId tx);
  void commit_locals(TxId tx);
  void abort_locals(TxId tx);
  void persist_decision(TxId tx, const std::set<NodeId>& remotes);
  void send(NodeId to, const char* type, TxId tx, bool flag = false);

  // Participant internals.
  void handle_prepare(TxId tx, NodeId coordinator);
  void handle_commit(TxId tx, NodeId coordinator);
  /// Run queued participant prepares and commit applies, pay one shared
  /// sync, then release the votes and acks.
  void flush_participant_group();
  void schedule_participant_flush();
  void handle_abort(TxId tx);
  void handle_inquiry(TxId tx, NodeId from);
  void handle_decision(TxId tx, bool committed);
  void persist_prepared_marker(TxId tx);
  void clear_prepared_marker(TxId tx);
  void schedule_inquiry(TxId tx);
  void trace_pipeline(const char* what, TxId tx);
  /// Checkpoint trigger, evaluated at every batched flush point (the
  /// moments this node already pays a durability barrier).
  void maybe_begin_checkpoint();

  [[nodiscard]] std::string decision_key(TxId tx) const;
  [[nodiscard]] std::string prepared_key(TxId tx) const;

  NodeId self_;
  sim::Simulator& sim_;
  net::Network& net_;
  storage::StableStorage& stable_;
  std::vector<Participant*> participants_;
  std::map<TxId, Coord> coords_;
  /// Transactions this node has prepared as a participant and whose
  /// outcome is still unknown (coordinator field for inquiries).
  std::map<TxId, NodeId> in_doubt_;
  std::uint64_t next_tx_ = 1;
  sim::TimeUs inquiry_interval_ = 200'000;  // 200 ms
  std::uint64_t epoch_ = 0;  ///< bumped on crash; cancels stale timers

  /// Decided-but-unsynced local commits awaiting the group flush. Their
  /// participants still hold locks and prepared markers; a crash before
  /// the flush presumed-aborts them (nothing was applied), which is the
  /// crash atomicity of a batched sync.
  std::vector<std::pair<TxId, CommitCallback>> commit_queue_;
  bool flush_pending_ = false;
  /// Bumped on every flush; invalidates armed flush timers so a batch
  /// never inherits the previous batch's deadline.
  std::uint64_t flush_gen_ = 0;
  std::uint32_t group_window_ = 1;
  sim::TimeUs group_flush_us_ = 100;

  /// Fuzzy-checkpoint cadence (0 = off) and simulated snapshot write time.
  std::size_t checkpoint_interval_bytes_ = 0;
  sim::TimeUs checkpoint_write_us_ = 500;
  /// appended_bytes() watermark at the last checkpoint begin.
  std::uint64_t checkpoint_mark_ = 0;

  /// Pipelined coordinator (window > 1): fully-voted distributed commits
  /// whose decision records await the batched durability flush. Volatile —
  /// a crash before the flush persisted nothing, so the prepared
  /// participants resolve to presumed abort through their inquiries,
  /// exactly as if the coordinator had never decided.
  std::vector<TxId> decision_queue_;
  bool decision_flush_pending_ = false;  ///< dwell timer armed
  bool decision_flush_hot_ = false;      ///< same-instant flush armed
  std::uint64_t decision_flush_gen_ = 0;

  /// Coordinated transactions begun but not yet done (plain counter: all
  /// mutation happens on the owning sim thread; stats_ carries the
  /// cross-thread-readable mirror).
  std::uint64_t inflight_ = 0;

  TxStats stats_;
  TraceSink* trace_ = nullptr;

  /// Participant-side pending work awaiting the batched flush (window >
  /// 1): PREPAREs not yet persisted/voted and COMMITs not yet
  /// applied/acked. Volatile — a crash drops queued prepares unvoted
  /// (presumed abort) and leaves queued commits to the coordinator's
  /// COMMIT re-drive / the inquiry protocol.
  struct PendingPart {
    TxId tx;
    NodeId coordinator;
  };
  std::vector<PendingPart> prepare_queue_;
  std::vector<PendingPart> apply_queue_;
  bool part_flush_pending_ = false;
  std::uint64_t part_flush_gen_ = 0;
  std::function<void()> apply_listener_;
  std::uint64_t participant_syncs_ = 0;
};

}  // namespace mar::tx
