// Transactional access to a node's agent input queue.
//
// Step and compensation transactions move the agent between stable input
// queues (paper Sec. 2): removal from the executing node's queue and
// insertion into the next node's queue are staged here and applied at
// commit. The agent therefore remains in the source queue across any crash
// until the transaction commits — the foundation of both the exactly-once
// protocol and the rollback algorithm's restartability.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/stable_storage.h"
#include "tx/participant.h"
#include "util/ids.h"

namespace mar::tx {

class QueueManager final : public Participant {
 public:
  explicit QueueManager(storage::StableStorage& stable) : stable_(stable) {}

  /// Simulation clock hook (observability): committed enqueues are
  /// stamped with the current time as QueueRecord::enqueued_us — the
  /// queue-wait span of the hop that will consume the record begins the
  /// moment the record actually lands in the queue, which for a remote
  /// transfer is here at commit, not when the sender built it.
  void set_clock(std::function<std::uint64_t()> now_fn) {
    now_fn_ = std::move(now_fn);
  }

  /// Stage "append this record to the local queue at commit".
  void stage_enqueue(TxId tx, storage::QueueRecord record);
  /// Stage "remove this record from the local queue at commit".
  void stage_remove(TxId tx, std::uint64_t record_id);

  // --- staged record-area ops (incremental agent commits) -----------------
  // An agent's durable image lives in the storage record area when it
  // commits incrementally; updating it must be atomic with the queue
  // movement of the same step transaction, so the ops are staged here and
  // group-committed with the enqueues/removes. Ops apply in staging order.
  /// Stage "replace the record with this base image" (establish/compact).
  void stage_record_reset(TxId tx, std::string key, serial::Bytes base);
  /// Stage "append this delta segment".
  void stage_record_append(TxId tx, std::string key, serial::Bytes delta);
  /// Stage "drop the record" (migration away / terminal state).
  void stage_record_erase(TxId tx, std::string key);

  // --- slotted scheduling (claims by record id) ---------------------------
  // The node runtime no longer consumes the queue "front-first, one at a
  // time": each execution slot claims a specific record by id, works on it
  // inside its own transaction, and either commits (the staged remove
  // consumes the record) or releases the claim so a later slot can retry.
  // Claims are volatile — a crash clears them along with the slots.
  /// The queued record the next free slot should work on: unclaimed, its
  /// agent not in flight, chosen by an aged admission score. The score is
  /// (claim releases − times passed over): strict FIFO while nothing
  /// aborts, but a record whose claims keep being released after lock
  /// conflicts no longer pins the queue head — records behind it are
  /// admitted, and each bypass ages the passed-over record back towards
  /// the front, so nothing starves. Null when none is eligible.
  [[nodiscard]] const storage::QueueRecord* next_eligible(
      const std::unordered_set<AgentId>& busy_agents);
  /// Claim `record_id` for an execution slot. False if absent or taken.
  bool claim(std::uint64_t record_id);
  /// Return a claimed record to the pool (abort / backoff path). Counts
  /// towards the record's admission score only while it is still queued
  /// (terminal paths release after the record was consumed).
  void release(std::uint64_t record_id);

  // Participant interface.
  [[nodiscard]] std::string name() const override { return "queue"; }
  [[nodiscard]] bool has_tx(TxId tx) const override;
  bool prepare(TxId tx) override;
  void commit(TxId tx) override;
  void abort(TxId tx) override;
  void on_crash() override;

 private:
  struct RecordOp {
    enum class Kind : std::uint8_t { reset = 0, append = 1, erase = 2 };
    Kind kind = Kind::reset;
    std::string key;
    serial::Bytes bytes;  // empty for erase

    void serialize(serial::Encoder& enc) const;
    void deserialize(serial::Decoder& dec);
    [[nodiscard]] std::size_t byte_size() const;
  };

  struct Staged {
    std::vector<storage::QueueRecord> enqueues;
    std::vector<std::uint64_t> removes;
    std::vector<RecordOp> record_ops;
    bool prepared = false;

    void serialize(serial::Encoder& enc) const;
    void deserialize(serial::Decoder& dec);
    [[nodiscard]] std::size_t byte_size() const;
  };

  [[nodiscard]] std::string prep_key(TxId tx) const {
    return "prep.queue:" + std::to_string(tx.value());
  }

  storage::StableStorage& stable_;
  std::function<std::uint64_t()> now_fn_;
  std::map<TxId, Staged> staged_;
  /// Aged-admission bookkeeping (volatile, like the claims): per record,
  /// how often its claim was released after an abort, and how often a
  /// younger record was admitted ahead of it. GC'd when the record is
  /// consumed; cleared on crash.
  std::unordered_map<std::uint64_t, std::uint32_t> releases_;
  std::unordered_map<std::uint64_t, std::uint32_t> bypasses_;
};

}  // namespace mar::tx
