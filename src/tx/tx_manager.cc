#include "tx/tx_manager.h"

#include <algorithm>

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "util/check.h"

namespace mar::tx {

namespace {

serial::Bytes encode_tx(TxId tx, bool flag) {
  serial::Encoder enc(8 + 1);
  enc.write_u64(tx.value());
  enc.write_bool(flag);
  return std::move(enc).take();
}

std::pair<TxId, bool> decode_tx(const net::Message& m) {
  serial::Decoder dec(m.payload);
  TxId tx(dec.read_u64());
  const bool flag = dec.read_bool();
  dec.expect_end();
  return {tx, flag};
}

}  // namespace

TxManager::TxManager(NodeId self, sim::Simulator& sim, net::Network& net,
                     storage::StableStorage& stable)
    : self_(self), sim_(sim), net_(net), stable_(stable) {}

void TxManager::register_participant(Participant& p) {
  participants_.push_back(&p);
}

std::string TxManager::decision_key(TxId tx) const {
  return "txdec:" + std::to_string(tx.value());
}

std::string TxManager::prepared_key(TxId tx) const {
  return "txprep:" + std::to_string(tx.value());
}

// --------------------------------------------------------------------------
// Coordinator side
// --------------------------------------------------------------------------

TxId TxManager::begin() {
  const TxId tx = make_tx_id(self_, next_tx_++);
  Coord& c = coords_[tx];
  c.counted = true;
  inflight_add();
  return tx;
}

void TxManager::inflight_add() {
  ++inflight_;
  stats_.inflight_tx.store(inflight_);
  if (inflight_ > stats_.pipeline_depth_max.load()) {
    stats_.pipeline_depth_max.store(inflight_);
  }
}

void TxManager::inflight_remove() {
  MAR_DCHECK(inflight_ > 0);
  --inflight_;
  stats_.inflight_tx.store(inflight_);
}

void TxManager::trace_pipeline(const char* what, TxId tx) {
  if (!trace_) return;
  trace_->emit(sim_.now(), TraceKind::tx_pipeline, self_.value(),
               std::string(what) + " tx=" + std::to_string(tx.value()));
}

void TxManager::enlist_remote(TxId tx, NodeId node) {
  if (node == self_) return;
  auto it = coords_.find(tx);
  MAR_CHECK_MSG(it != coords_.end(), "enlist on unknown tx " << tx);
  it->second.remotes.insert(node);
}

bool TxManager::has_remote(TxId tx, NodeId node) const {
  auto it = coords_.find(tx);
  return it != coords_.end() && it->second.remotes.contains(node);
}

bool TxManager::prepare_locals(TxId tx) {
  bool any = false;
  bool ok = true;
  for (auto* p : participants_) {
    if (!p->has_tx(tx)) continue;
    any = true;
    ok = p->prepare(tx) && ok;
  }
  if (any && ok) persist_prepared_marker(tx);
  return ok;
}

void TxManager::commit_locals(TxId tx) {
  for (auto* p : participants_) p->commit(tx);
  clear_prepared_marker(tx);
}

void TxManager::abort_locals(TxId tx) {
  for (auto* p : participants_) p->abort(tx);
  clear_prepared_marker(tx);
}

void TxManager::persist_decision(TxId tx, const std::set<NodeId>& remotes) {
  serial::Encoder enc(serial::varint_size(remotes.size()) +
                      4 * remotes.size());
  enc.write_varint(remotes.size());
  for (const auto n : remotes) enc.write_u32(n.value());
  stable_.put(decision_key(tx), std::move(enc).take());
}

void TxManager::send(NodeId to, const char* type, TxId tx, bool flag) {
  net_.send(net::Message{self_, to, type, encode_tx(tx, flag)});
}

void TxManager::commit_async(TxId tx, CommitCallback cb) {
  auto it = coords_.find(tx);
  MAR_CHECK_MSG(it != coords_.end(), "commit on unknown tx " << tx);
  Coord& c = it->second;
  c.callback = std::move(cb);

  if (!prepare_locals(tx)) {
    decide_abort(tx, c);
    return;
  }
  if (c.remotes.empty()) {
    if (group_window_ <= 1) {
      commit_locals(tx);
      stable_.sync();
      finish(tx, c, true);
      maybe_begin_checkpoint();
      return;
    }
    // Group commit: the outcome is decided (every local participant
    // prepared), but the stable-storage apply, the metered sync and the
    // callback wait for the window flush — several step transactions
    // share one sync batch.
    commit_queue_.emplace_back(tx, std::move(c.callback));
    coords_.erase(tx);
    if (commit_queue_.size() >= group_window_) {
      flush_commit_group();
    } else {
      schedule_group_flush();
    }
    return;
  }
  c.phase = Phase::preparing;
  c.votes_pending = c.remotes;
  for (const auto n : c.remotes) {
    // A piggybacked remote sees its PREPARE inside the convoy frame that
    // carries the staged state — one round trip, no tx.prepare message.
    if (c.piggybacked.contains(n)) continue;
    send(n, msg::prepare, tx);
  }
  // Re-drive PREPARE until all votes arrive: a participant that crashed
  // before staging will answer NO, resolving the transaction either way.
  // For piggybacked remotes this is the fallback when the convoy (and its
  // embedded prepare) was lost to a crash: an explicit PREPARE finds no
  // staged state, draws a NO vote, and resolves to presumed abort.
  const auto epoch = epoch_;
  auto redrive = [this, tx, epoch](auto&& self_fn) -> void {
    if (epoch != epoch_) return;
    auto cit = coords_.find(tx);
    if (cit == coords_.end() || cit->second.phase != Phase::preparing) return;
    for (const auto n : cit->second.votes_pending) send(n, msg::prepare, tx);
    sim_.schedule_after(inquiry_interval_,
                        [self_fn]() mutable { self_fn(self_fn); });
  };
  sim_.schedule_after(inquiry_interval_,
                      [redrive]() mutable { redrive(redrive); });
}

void TxManager::abort_tx(TxId tx) {
  auto it = coords_.find(tx);
  MAR_CHECK_MSG(it != coords_.end(), "abort on unknown tx " << tx);
  decide_abort(tx, it->second);
}

void TxManager::abort_if_preparing(TxId tx) {
  auto it = coords_.find(tx);
  if (it == coords_.end() || it->second.phase != Phase::preparing) return;
  decide_abort(tx, it->second);
}

void TxManager::note_piggybacked(TxId tx, NodeId node) {
  auto it = coords_.find(tx);
  MAR_CHECK_MSG(it != coords_.end(), "piggyback on unknown tx " << tx);
  it->second.piggybacked.insert(node);
}

void TxManager::flush_commit_group() {
  // A direct (window-full) flush supersedes any armed flush timer: the
  // generation bump keeps a later batch from inheriting the stale, now
  // too-early deadline.
  ++flush_gen_;
  flush_pending_ = false;
  if (commit_queue_.empty()) return;
  auto batch = std::move(commit_queue_);
  commit_queue_.clear();
  for (auto& [tx, cb] : batch) {
    (void)cb;
    commit_locals(tx);
  }
  // One metered sync for the whole batch — the point of group commit.
  // Within the (single-threaded) simulation the applies above are atomic
  // w.r.t. crash events, so batching only moves the durable point, never
  // splits a transaction.
  stable_.sync();
  for (auto& [tx, cb] : batch) {
    (void)tx;
    inflight_remove();
    if (cb) cb(true);
  }
  maybe_begin_checkpoint();
}

void TxManager::maybe_begin_checkpoint() {
  if (checkpoint_interval_bytes_ == 0) return;
  auto* log = stable_.segment_log();
  if (log == nullptr || log->checkpoint_in_progress()) return;
  if (log->appended_bytes() - checkpoint_mark_ < checkpoint_interval_bytes_) {
    return;
  }
  checkpoint_mark_ = log->appended_bytes();
  if (!stable_.begin_checkpoint()) return;
  trace_pipeline("ckpt_begin", TxId(0));
  // The fuzzy window: commits keep flowing while the snapshot "writes".
  // The epoch guard makes a crash inside the window abandon the attempt —
  // the previous checkpoint generation stays the recovery base.
  const auto epoch = epoch_;
  sim_.schedule_after(checkpoint_write_us_, [this, epoch] {
    if (epoch != epoch_) return;
    if (stable_.complete_checkpoint()) trace_pipeline("ckpt_done", TxId(0));
  });
}

void TxManager::schedule_group_flush() {
  if (flush_pending_) return;
  flush_pending_ = true;
  const auto epoch = epoch_;
  const auto gen = flush_gen_;
  sim_.schedule_after(group_flush_us_, [this, epoch, gen] {
    if (epoch != epoch_ || gen != flush_gen_) return;
    flush_commit_group();
  });
}

void TxManager::decide_commit(TxId tx, Coord& c) {
  if (group_window_ > 1) {
    // Pipelined coordinator: the decision is made but its durability
    // record queues for the batched flush — many decisions, one sync.
    // Until the flush nothing is persisted or applied, so a crash here
    // resolves to presumed abort exactly like an undecided transaction.
    c.phase = Phase::deciding;
    decision_queue_.push_back(tx);
    trace_pipeline("decided", tx);
    schedule_decision_flush(decision_queue_.size() >= group_window_);
    return;
  }
  persist_decision(tx, c.remotes);
  commit_locals(tx);
  stable_.sync();
  ++stats_.coordinator_syncs;
  c.phase = Phase::committing;
  c.acks_pending = c.remotes;
  for (const auto n : c.remotes) send(n, msg::commit, tx);
  arm_commit_redrive(tx);
}

void TxManager::arm_commit_redrive(TxId tx) {
  // Re-drive COMMIT until every participant acknowledged.
  const auto epoch = epoch_;
  auto redrive = [this, tx, epoch](auto&& self_fn) -> void {
    if (epoch != epoch_) return;
    auto cit = coords_.find(tx);
    if (cit == coords_.end() || cit->second.phase != Phase::committing) return;
    for (const auto n : cit->second.acks_pending) send(n, msg::commit, tx);
    sim_.schedule_after(inquiry_interval_,
                        [self_fn]() mutable { self_fn(self_fn); });
  };
  sim_.schedule_after(inquiry_interval_,
                      [redrive]() mutable { redrive(redrive); });
}

void TxManager::flush_decision_group() {
  ++decision_flush_gen_;
  decision_flush_pending_ = false;
  decision_flush_hot_ = false;
  if (decision_queue_.empty()) return;
  auto batch = std::move(decision_queue_);
  decision_queue_.clear();
  std::vector<TxId> flushed;
  flushed.reserve(batch.size());
  for (const TxId tx : batch) {
    auto it = coords_.find(tx);
    if (it == coords_.end() || it->second.phase != Phase::deciding) continue;
    Coord& c = it->second;
    persist_decision(tx, c.remotes);
    commit_locals(tx);
    c.phase = Phase::committing;
    c.acks_pending = c.remotes;
    flushed.push_back(tx);
  }
  if (flushed.empty()) return;
  // ONE metered sync makes the whole batch of decision records (and their
  // local applies) durable — the coordinator half of group commit. The
  // completion callbacks still fire at ack drain (finish), preserving the
  // invariant callers rely on: a finished transaction's effects are
  // applied at every participant, not merely decided.
  stable_.sync();
  ++stats_.coordinator_syncs;
  for (const TxId tx : flushed) {
    auto it = coords_.find(tx);
    MAR_CHECK(it != coords_.end());
    for (const auto n : it->second.acks_pending) send(n, msg::commit, tx);
    arm_commit_redrive(tx);
    trace_pipeline("flushed", tx);
  }
  maybe_begin_checkpoint();
}

void TxManager::schedule_decision_flush(bool hot) {
  const auto epoch = epoch_;
  const auto gen = decision_flush_gen_;
  if (hot) {
    if (decision_flush_hot_) return;
    decision_flush_hot_ = true;
    // after(0) runs behind the message deliveries already queued for this
    // instant, so a burst of votes larger than the window still lands in
    // ONE batch (the window is a floor for the flush, not a batch cap).
    sim_.schedule_after(0, [this, epoch, gen] {
      if (epoch != epoch_ || gen != decision_flush_gen_) return;
      flush_decision_group();
    });
    return;
  }
  if (decision_flush_pending_ || decision_flush_hot_) return;
  decision_flush_pending_ = true;
  sim_.schedule_after(group_flush_us_, [this, epoch, gen] {
    if (epoch != epoch_ || gen != decision_flush_gen_) return;
    flush_decision_group();
  });
}

void TxManager::decide_abort(TxId tx, Coord& c) {
  abort_locals(tx);
  for (const auto n : c.remotes) send(n, msg::abort, tx);
  finish(tx, c, false);
}

void TxManager::finish(TxId tx, Coord& c, bool committed) {
  auto cb = std::move(c.callback);
  if (c.counted) inflight_remove();
  coords_.erase(tx);
  if (cb) cb(committed);
}

// --------------------------------------------------------------------------
// Participant side
// --------------------------------------------------------------------------

void TxManager::persist_prepared_marker(TxId tx) {
  stable_.put(prepared_key(tx), {});
}

void TxManager::clear_prepared_marker(TxId tx) {
  stable_.erase(prepared_key(tx));
}

void TxManager::note_remote_staged(TxId tx) {
  const NodeId coord = coordinator_of(tx);
  if (coord == self_) return;
  if (in_doubt_.emplace(tx, coord).second) schedule_inquiry(tx);
}

void TxManager::handle_prepare(TxId tx, NodeId coordinator) {
  if (group_window_ > 1) {
    // Participant-side group commit: the prepare work (and its sync)
    // waits for the batch flush; the vote leaves with it. Convoyed agent
    // transfers arrive together, so their prepares share one barrier.
    const auto queued = std::any_of(
        prepare_queue_.begin(), prepare_queue_.end(),
        [tx](const PendingPart& p) { return p.tx == tx; });
    if (!queued) prepare_queue_.push_back(PendingPart{tx, coordinator});
    if (prepare_queue_.size() + apply_queue_.size() >= group_window_) {
      flush_participant_group();
    } else {
      schedule_participant_flush();
    }
    return;
  }
  bool any = false;
  bool ok = true;
  for (auto* p : participants_) {
    if (!p->has_tx(tx)) continue;
    any = true;
    ok = p->prepare(tx) && ok;
  }
  if (!any) {
    // Nothing staged: either this node crashed and lost the staged state,
    // or the transaction already finished here. Vote NO; a duplicate
    // PREPARE after commit cannot happen because the coordinator stops
    // re-driving PREPARE once decided.
    send(coordinator, msg::vote, tx, false);
    return;
  }
  if (ok) {
    persist_prepared_marker(tx);
    stable_.sync();  // durable before the YES vote leaves this node
    ++participant_syncs_;
    in_doubt_.emplace(tx, coordinator);
    schedule_inquiry(tx);
  }
  send(coordinator, msg::vote, tx, ok);
}

void TxManager::handle_commit(TxId tx, NodeId coordinator) {
  if (group_window_ > 1) {
    const auto queued = std::any_of(
        apply_queue_.begin(), apply_queue_.end(),
        [tx](const PendingPart& p) { return p.tx == tx; });
    if (!queued) apply_queue_.push_back(PendingPart{tx, coordinator});
    if (prepare_queue_.size() + apply_queue_.size() >= group_window_) {
      flush_participant_group();
    } else {
      schedule_participant_flush();
    }
    return;
  }
  commit_locals(tx);
  stable_.sync();
  ++participant_syncs_;
  in_doubt_.erase(tx);
  send(coordinator, msg::commit_ack, tx);
}

void TxManager::flush_participant_group() {
  ++part_flush_gen_;
  part_flush_pending_ = false;
  if (prepare_queue_.empty() && apply_queue_.empty()) return;
  auto applies = std::move(apply_queue_);
  apply_queue_.clear();
  auto prepares = std::move(prepare_queue_);
  prepare_queue_.clear();
  bool durable_work = false;
  // Decided commits first: their staged state is already prepared, the
  // apply only needs the shared barrier before the ack leaves.
  for (const auto& a : applies) {
    commit_locals(a.tx);
    in_doubt_.erase(a.tx);
    durable_work = true;
  }
  struct Vote {
    TxId tx;
    NodeId to;
    bool yes;
  };
  std::vector<Vote> votes;
  votes.reserve(prepares.size());
  for (const auto& pnd : prepares) {
    bool any = false;
    bool ok = true;
    for (auto* p : participants_) {
      if (!p->has_tx(pnd.tx)) continue;
      any = true;
      ok = p->prepare(pnd.tx) && ok;
    }
    // An abort that arrived while the prepare was queued cleared the
    // staged state; the NO vote below resolves the transaction either
    // way, exactly like the unbatched path.
    if (any && ok) {
      persist_prepared_marker(pnd.tx);
      durable_work = true;
      in_doubt_.emplace(pnd.tx, pnd.coordinator);
      schedule_inquiry(pnd.tx);
    }
    votes.push_back(Vote{pnd.tx, pnd.coordinator, any && ok});
  }
  // ONE metered barrier for the whole batch; votes and acks may leave
  // only after it — that is the promise a YES vote / commit-ack makes.
  if (durable_work) {
    stable_.sync();
    ++participant_syncs_;
  }
  for (const auto& a : applies) send(a.coordinator, msg::commit_ack, a.tx);
  for (const auto& v : votes) send(v.to, msg::vote, v.tx, v.yes);
  if (!applies.empty() && apply_listener_) apply_listener_();
  maybe_begin_checkpoint();
}

void TxManager::schedule_participant_flush() {
  if (part_flush_pending_) return;
  part_flush_pending_ = true;
  const auto epoch = epoch_;
  const auto gen = part_flush_gen_;
  sim_.schedule_after(group_flush_us_, [this, epoch, gen] {
    if (epoch != epoch_ || gen != part_flush_gen_) return;
    flush_participant_group();
  });
}

void TxManager::handle_abort(TxId tx) {
  abort_locals(tx);
  in_doubt_.erase(tx);
}

void TxManager::handle_inquiry(TxId tx, NodeId from) {
  if (stable_.contains(decision_key(tx))) {
    send(from, msg::decision, tx, true);
    return;
  }
  if (coords_.contains(tx)) return;  // still deciding; stay silent
  send(from, msg::decision, tx, false);  // presumed abort
}

void TxManager::handle_decision(TxId tx, bool committed) {
  if (committed) {
    // Same path as a direct COMMIT (including the participant-side group
    // flush): apply, barrier, then acknowledge towards the coordinator.
    handle_commit(tx, coordinator_of(tx));
  } else {
    handle_abort(tx);
  }
}

void TxManager::schedule_inquiry(TxId tx) {
  const auto epoch = epoch_;
  auto again = [this, tx, epoch](auto&& self_fn) -> void {
    if (epoch != epoch_) return;
    auto it = in_doubt_.find(tx);
    if (it == in_doubt_.end()) return;
    send(it->second, msg::inquiry, tx);
    sim_.schedule_after(inquiry_interval_,
                        [self_fn]() mutable { self_fn(self_fn); });
  };
  sim_.schedule_after(inquiry_interval_,
                      [again]() mutable { again(again); });
}

// --------------------------------------------------------------------------
// Message dispatch and crash/recovery
// --------------------------------------------------------------------------

void TxManager::on_message(const net::Message& m) {
  const auto [tx, flag] = decode_tx(m);
  const std::string& t = m.type;
  if (t == msg::prepare) {
    handle_prepare(tx, m.from);
  } else if (t == msg::vote) {
    auto it = coords_.find(tx);
    if (it == coords_.end()) {
      // Already decided (or coordinator recovered). A YES voter is left
      // prepared: answer from durable decision state.
      if (flag) handle_inquiry(tx, m.from);
      return;
    }
    Coord& c = it->second;
    if (c.phase != Phase::preparing) return;  // stale duplicate
    if (!flag) {
      decide_abort(tx, c);
      return;
    }
    c.votes_pending.erase(m.from);
    if (c.votes_pending.empty()) decide_commit(tx, c);
  } else if (t == msg::commit) {
    handle_commit(tx, m.from);
  } else if (t == msg::commit_ack) {
    auto it = coords_.find(tx);
    if (it == coords_.end()) return;
    Coord& c = it->second;
    if (c.phase != Phase::committing) return;
    c.acks_pending.erase(m.from);
    if (c.acks_pending.empty()) {
      stable_.erase(decision_key(tx));
      if (group_window_ > 1) trace_pipeline("acked", tx);
      finish(tx, c, true);
    }
  } else if (t == msg::abort) {
    handle_abort(tx);
  } else if (t == msg::inquiry) {
    handle_inquiry(tx, m.from);
  } else if (t == msg::decision) {
    handle_decision(tx, flag);
  } else {
    MAR_CHECK_MSG(false, "unknown tx message type " << t);
  }
}

void TxManager::on_crash() {
  ++epoch_;
  coords_.clear();
  in_doubt_.clear();
  // Queued-but-unflushed group commits die with the crash: nothing was
  // applied, so recovery presumed-aborts them from their prepared markers
  // and their records stay queued (restartability).
  commit_queue_.clear();
  flush_pending_ = false;
  // Queued decisions were never persisted: their prepared participants
  // resolve to presumed abort through the inquiry protocol, their own
  // prepared markers through the recovery scan — exactly-once holds
  // because nothing was applied anywhere.
  decision_queue_.clear();
  decision_flush_pending_ = false;
  decision_flush_hot_ = false;
  inflight_ = 0;
  stats_.inflight_tx.store(0);
  // Likewise the participant-side batch: queued prepares never voted (the
  // coordinator presumes abort from the silence), queued commit applies
  // are re-driven by the coordinator / resolved by inquiry.
  prepare_queue_.clear();
  apply_queue_.clear();
  part_flush_pending_ = false;
  for (auto* p : participants_) p->on_crash();
}

void TxManager::on_recover() {
  ++epoch_;
  // Participant side: resolve prepared transactions. abort_locals may
  // erase the scanned prep key mid-scan, so collect the ids first.
  std::vector<TxId> prepped;
  stable_.for_each_with_prefix(
      "txprep:", [&prepped](const std::string& key, const serial::Bytes&) {
        prepped.emplace_back(std::stoull(key.substr(7)));
      });
  for (const TxId tx : prepped) {
    const NodeId coord = coordinator_of(tx);
    if (coord == self_) {
      if (!stable_.contains(decision_key(tx))) {
        // Presumed abort: this node coordinated, crashed before deciding.
        abort_locals(tx);
      }
      // Decided transactions are re-driven below.
    } else {
      in_doubt_.emplace(tx, coord);
      schedule_inquiry(tx);
    }
  }
  // Coordinator side: re-drive every decided-but-unfinished transaction.
  // commit_locals mutates stable storage, so snapshot the decisions first.
  std::vector<std::pair<TxId, serial::Bytes>> decisions;
  stable_.for_each_with_prefix(
      "txdec:",
      [&decisions](const std::string& key, const serial::Bytes& bytes) {
        decisions.emplace_back(TxId(std::stoull(key.substr(6))), bytes);
      });
  for (const auto& [tx, record] : decisions) {
    serial::Decoder dec(record);
    const auto n = dec.read_varint();
    Coord c;
    for (std::uint64_t i = 0; i < n; ++i) {
      c.remotes.insert(NodeId(dec.read_u32()));
    }
    c.phase = Phase::committing;
    c.acks_pending = c.remotes;
    commit_locals(tx);
    stable_.sync();
    for (const auto node : c.remotes) send(node, msg::commit, tx);
    auto [it, inserted] = coords_.emplace(tx, std::move(c));
    MAR_CHECK(inserted);
    // Re-arm the COMMIT re-drive loop. The rebuilt entry is not counted
    // in the inflight gauge: its caller's callback died with the crash.
    arm_commit_redrive(tx);
  }
}

bool TxManager::idle() const {
  if (!coords_.empty() || !in_doubt_.empty() || !commit_queue_.empty() ||
      !decision_queue_.empty() || !prepare_queue_.empty() ||
      !apply_queue_.empty()) {
    return false;
  }
  return stable_.keys_with_prefix("txdec:").empty() &&
         stable_.keys_with_prefix("txprep:").empty();
}

}  // namespace mar::tx
