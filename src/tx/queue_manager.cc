#include "tx/queue_manager.h"

#include "util/check.h"

namespace mar::tx {

void QueueManager::RecordOp::serialize(serial::Encoder& enc) const {
  enc.write_u8(static_cast<std::uint8_t>(kind));
  enc.write_string(key);
  enc.write_bytes(bytes);
}

void QueueManager::RecordOp::deserialize(serial::Decoder& dec) {
  kind = static_cast<Kind>(dec.read_u8());
  key = dec.read_string();
  bytes = dec.read_bytes();
}

std::size_t QueueManager::RecordOp::byte_size() const {
  return 1 + serial::blob_size(key.size()) + serial::blob_size(bytes.size());
}

void QueueManager::Staged::serialize(serial::Encoder& enc) const {
  enc.write_varint(enqueues.size());
  for (const auto& r : enqueues) r.serialize(enc);
  enc.write_varint(removes.size());
  for (const auto id : removes) enc.write_u64(id);
  enc.write_varint(record_ops.size());
  for (const auto& op : record_ops) op.serialize(enc);
}

std::size_t QueueManager::Staged::byte_size() const {
  std::size_t n = serial::varint_size(enqueues.size()) +
                  serial::varint_size(removes.size()) + 8 * removes.size() +
                  serial::varint_size(record_ops.size());
  for (const auto& r : enqueues) n += r.byte_size();
  for (const auto& op : record_ops) n += op.byte_size();
  return n;
}

void QueueManager::Staged::deserialize(serial::Decoder& dec) {
  const auto ne = dec.read_count();
  enqueues.resize(ne);
  for (auto& r : enqueues) r.deserialize(dec);
  const auto nr = dec.read_count();
  removes.resize(nr);
  for (auto& id : removes) id = dec.read_u64();
  const auto no = dec.read_count();
  record_ops.resize(no);
  for (auto& op : record_ops) op.deserialize(dec);
}

void QueueManager::stage_enqueue(TxId tx, storage::QueueRecord record) {
  staged_[tx].enqueues.push_back(std::move(record));
}

void QueueManager::stage_remove(TxId tx, std::uint64_t record_id) {
  staged_[tx].removes.push_back(record_id);
}

void QueueManager::stage_record_reset(TxId tx, std::string key,
                                      serial::Bytes base) {
  staged_[tx].record_ops.push_back(
      RecordOp{RecordOp::Kind::reset, std::move(key), std::move(base)});
}

void QueueManager::stage_record_append(TxId tx, std::string key,
                                       serial::Bytes delta) {
  staged_[tx].record_ops.push_back(
      RecordOp{RecordOp::Kind::append, std::move(key), std::move(delta)});
}

void QueueManager::stage_record_erase(TxId tx, std::string key) {
  staged_[tx].record_ops.push_back(
      RecordOp{RecordOp::Kind::erase, std::move(key), {}});
}

const storage::QueueRecord* QueueManager::next_eligible(
    const std::unordered_set<AgentId>& busy_agents) {
  // Fast path: with no aging state every score is 0 and the first
  // eligible record wins — return it without materializing candidates.
  if (releases_.empty() && bypasses_.empty()) {
    for (const auto& r : stable_.queue()) {
      if (stable_.claimed(r.record_id)) continue;
      if (busy_agents.contains(r.agent)) continue;
      MAR_DCHECK_MSG(r.agent.valid(),
                     "queued record " << r.record_id << " has no agent");
      return &r;
    }
    return nullptr;
  }
  std::vector<const storage::QueueRecord*> eligible;
  for (const auto& r : stable_.queue()) {
    if (stable_.claimed(r.record_id)) continue;
    if (busy_agents.contains(r.agent)) continue;
    eligible.push_back(&r);
  }
  if (eligible.empty()) return nullptr;
  // Aged admission: score = releases − bypasses, minimum wins, queue
  // (FIFO) order breaks ties. With no aborts every score is 0 and the
  // first eligible record wins — exactly the classic FIFO offer. A
  // repeatedly conflict-aborted record accumulates releases and yields to
  // fresher records behind it; every such bypass ages the passed-over
  // record back towards admission, bounding how often it can be passed.
  auto score_of = [this](std::uint64_t id) {
    const auto rit = releases_.find(id);
    const auto bit = bypasses_.find(id);
    return static_cast<std::int64_t>(rit == releases_.end() ? 0 : rit->second) -
           static_cast<std::int64_t>(bit == bypasses_.end() ? 0 : bit->second);
  };
  const storage::QueueRecord* best = eligible.front();
  std::int64_t best_score = score_of(best->record_id);
  for (std::size_t i = 1; i < eligible.size(); ++i) {
    const auto score = score_of(eligible[i]->record_id);
    if (score < best_score) {
      best = eligible[i];
      best_score = score;
    }
  }
  for (const auto* r : eligible) {
    if (r == best) break;
    ++bypasses_[r->record_id];
  }
  // An admitted record must still be offerable: queued and unclaimed —
  // the claim marks and the queue can only have diverged through a
  // bookkeeping bug, which would hand one record to two slots.
  MAR_DCHECK(stable_.contains_record(best->record_id));
  MAR_DCHECK(!stable_.claimed(best->record_id));
  return best;
}

bool QueueManager::claim(std::uint64_t record_id) {
  return stable_.claim(record_id);
}

void QueueManager::release(std::uint64_t record_id) {
  // Terminal paths release after a committed transaction consumed the
  // record; only an abort of a still-queued record counts for aging.
  if (stable_.contains_record(record_id)) ++releases_[record_id];
  stable_.release_claim(record_id);
}

bool QueueManager::has_tx(TxId tx) const { return staged_.contains(tx); }

bool QueueManager::prepare(TxId tx) {
  auto it = staged_.find(tx);
  if (it == staged_.end()) return false;
  if (it->second.prepared) return true;  // idempotent
  // A transaction staging nothing at all should never reach prepare: the
  // coordinator only enlists participants that hold state for it.
  MAR_DCHECK_MSG(!it->second.enqueues.empty() ||
                     !it->second.removes.empty() ||
                     !it->second.record_ops.empty(),
                 "empty staging prepared for tx " << tx.value());
  serial::Encoder enc(it->second.byte_size());
  it->second.serialize(enc);
  stable_.put(prep_key(tx), std::move(enc).take());
  it->second.prepared = true;
  return true;
}

void QueueManager::commit(TxId tx) {
  auto it = staged_.find(tx);
  if (it == staged_.end()) return;  // idempotent
  for (auto& r : it->second.enqueues) {
    if (now_fn_) r.enqueued_us = now_fn_();
    stable_.enqueue(std::move(r));
  }
  for (const auto id : it->second.removes) {
    stable_.remove(id);
    releases_.erase(id);
    bypasses_.erase(id);
  }
  // Record-area ops apply in staging order (a reset establishing a base
  // may be followed by the first delta append in the same transaction).
  for (auto& op : it->second.record_ops) {
    switch (op.kind) {
      case RecordOp::Kind::reset:
        stable_.record_reset(op.key, std::move(op.bytes));
        break;
      case RecordOp::Kind::append:
        stable_.record_append(op.key, std::move(op.bytes));
        break;
      case RecordOp::Kind::erase:
        stable_.record_erase(op.key);
        break;
    }
  }
  stable_.erase(prep_key(tx));
  staged_.erase(it);
}

void QueueManager::abort(TxId tx) {
  staged_.erase(tx);
  stable_.erase(prep_key(tx));
}

void QueueManager::on_crash() {
  // Volatile (unprepared) staging evaporates with the crash; prepared
  // staging is reloaded from stable storage. Aging bookkeeping dies with
  // the runtime, like the claims it scores.
  staged_.clear();
  releases_.clear();
  bypasses_.clear();
  stable_.for_each_with_prefix(
      "prep.queue:", [this](const std::string& key, const serial::Bytes& bytes) {
        const TxId tx(std::stoull(key.substr(11)));
        serial::Decoder dec(bytes);
        Staged s;
        s.deserialize(dec);
        s.prepared = true;
        staged_.emplace(tx, std::move(s));
      });
}

}  // namespace mar::tx
