#include "tx/queue_manager.h"

namespace mar::tx {

void QueueManager::Staged::serialize(serial::Encoder& enc) const {
  enc.write_varint(enqueues.size());
  for (const auto& r : enqueues) r.serialize(enc);
  enc.write_varint(removes.size());
  for (const auto id : removes) enc.write_u64(id);
}

void QueueManager::Staged::deserialize(serial::Decoder& dec) {
  const auto ne = dec.read_count();
  enqueues.resize(ne);
  for (auto& r : enqueues) r.deserialize(dec);
  const auto nr = dec.read_count();
  removes.resize(nr);
  for (auto& id : removes) id = dec.read_u64();
}

void QueueManager::stage_enqueue(TxId tx, storage::QueueRecord record) {
  staged_[tx].enqueues.push_back(std::move(record));
}

void QueueManager::stage_remove(TxId tx, std::uint64_t record_id) {
  staged_[tx].removes.push_back(record_id);
}

const storage::QueueRecord* QueueManager::next_eligible(
    const std::unordered_set<AgentId>& busy_agents) const {
  for (const auto& r : stable_.queue()) {
    if (stable_.claimed(r.record_id)) continue;
    if (busy_agents.contains(r.agent)) continue;
    return &r;
  }
  return nullptr;
}

bool QueueManager::claim(std::uint64_t record_id) {
  return stable_.claim(record_id);
}

void QueueManager::release(std::uint64_t record_id) {
  stable_.release_claim(record_id);
}

bool QueueManager::has_tx(TxId tx) const { return staged_.contains(tx); }

bool QueueManager::prepare(TxId tx) {
  auto it = staged_.find(tx);
  if (it == staged_.end()) return false;
  if (it->second.prepared) return true;  // idempotent
  serial::Encoder enc;
  it->second.serialize(enc);
  stable_.put(prep_key(tx), std::move(enc).take());
  it->second.prepared = true;
  return true;
}

void QueueManager::commit(TxId tx) {
  auto it = staged_.find(tx);
  if (it == staged_.end()) return;  // idempotent
  for (auto& r : it->second.enqueues) stable_.enqueue(std::move(r));
  for (const auto id : it->second.removes) stable_.remove(id);
  stable_.erase(prep_key(tx));
  staged_.erase(it);
}

void QueueManager::abort(TxId tx) {
  staged_.erase(tx);
  stable_.erase(prep_key(tx));
}

void QueueManager::on_crash() {
  // Volatile (unprepared) staging evaporates with the crash; prepared
  // staging is reloaded from stable storage.
  staged_.clear();
  for (const auto& key : stable_.keys_with_prefix("prep.queue:")) {
    const TxId tx(std::stoull(key.substr(11)));
    const auto bytes = stable_.get(key);
    serial::Decoder dec(*bytes);
    Staged s;
    s.deserialize(dec);
    s.prepared = true;
    staged_.emplace(tx, std::move(s));
  }
}

}  // namespace mar::tx
