// Transaction participant interface.
//
// A participant stages effects for a transaction (resource-state overlays,
// input-queue updates) and makes them durable at prepare, visible at
// commit, or discards them at abort. Participants must be idempotent under
// repeated commit/abort of the same transaction: 2PC retries decisions
// after crashes, and the network can deliver duplicates after a receiver
// lost its dedup state.
#pragma once

#include <string>

#include "util/ids.h"

namespace mar::tx {

class Participant {
 public:
  virtual ~Participant() = default;

  /// Stable identifier used to key prepared state in stable storage.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Whether this participant holds staged or prepared state for `tx`.
  [[nodiscard]] virtual bool has_tx(TxId tx) const = 0;

  /// Persist staged effects and vote. Returning false vetoes the commit.
  /// Must be idempotent.
  virtual bool prepare(TxId tx) = 0;

  /// Apply staged effects durably. Must be idempotent (a no-op when the
  /// transaction is unknown, e.g. after an earlier commit of a duplicate).
  virtual void commit(TxId tx) = 0;

  /// Discard staged effects. Must be idempotent.
  virtual void abort(TxId tx) = 0;

  /// Node crashed: drop volatile (non-prepared) transaction state and
  /// restore prepared state from stable storage.
  virtual void on_crash() = 0;
};

}  // namespace mar::tx
