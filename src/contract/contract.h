// ConTract-style centralized execution: the related-work baseline (Sec. 5).
//
// The ConTract model (Reuter et al., the paper's ref [10]) "comes closest"
// to the paper's approach: exactly-once execution of a long-lived task
// with compensation-based partial rollback — but the script is NOT mobile.
// A central manager drives the whole execution, reaching every resource by
// RPC inside distributed transactions.
//
// This module implements that baseline over the same substrate (network,
// 2PC, resource managers, compensation registry) so the mobile-agent
// approach can be compared against it directly: same workload, same
// transactional guarantees, different placement of the control flow.
// The ablation bench (bench_a1_central_vs_mobile) sweeps the
// interactions-per-node and payload sizes where each side wins — the same
// trade-off the perfmodel (ref [16]) predicts.
//
// Execution model: the script is a flat list of steps; each step invokes
// one operation on one resource of one node within its own distributed
// transaction and records the compensating operation centrally. A partial
// rollback compensates the executed steps in reverse order, each in a
// compensation transaction, again by RPC.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "net/network.h"
#include "rollback/comp_registry.h"
#include "serial/value.h"
#include "sim/simulator.h"
#include "storage/stable_storage.h"
#include "tx/tx_manager.h"
#include "util/ids.h"
#include "util/result.h"

namespace mar::contract {

using serial::Value;

/// One step of a ConTract script.
struct ScriptStep {
  NodeId node;
  std::string resource;
  std::string op;
  Value params;
  /// Compensating operation (CompensationRegistry name); empty = the step
  /// needs no compensation (e.g. a pure read).
  std::string comp_op;
  Value comp_params;
};

/// Message types used for remote resource access (also exercised by the
/// Sec. 4.4.1 "access resources using RPC" optimization).
namespace msg {
inline constexpr const char* invoke = "ctr.invoke";
inline constexpr const char* result = "ctr.result";
}  // namespace msg

/// Statistics of one contract execution.
struct ContractStats {
  std::uint64_t rpcs = 0;
  std::uint64_t steps_committed = 0;
  std::uint64_t steps_compensated = 0;
  std::uint64_t tx_aborts = 0;
};

/// The central manager. It occupies its own network node (the "ConTract
/// manager" machine) and keeps the script, the execution position and the
/// compensation log in ITS stable storage — nothing migrates.
class ContractManager {
 public:
  using Done = std::function<void(Status)>;

  ContractManager(NodeId self, sim::Simulator& sim, net::Network& net,
                  storage::StableStorage& stable,
                  const rollback::CompensationRegistry& comps);

  /// Network handler for this node (wire to Network::add_node).
  void on_message(const net::Message& m);

  /// Execute the script, one distributed transaction per step; `done`
  /// fires after the last commit (or the first permanent failure).
  void run(std::vector<ScriptStep> script, Done done);

  /// Partially roll back: compensate the last `steps` committed steps in
  /// reverse order, one compensation transaction each, then resume
  /// forward execution from that point.
  void rollback(std::size_t steps, Done done);

  [[nodiscard]] const ContractStats& stats() const { return stats_; }
  [[nodiscard]] tx::TxManager& txm() { return txm_; }

 private:
  void run_step();
  void compensate_step(std::size_t remaining, Done done);
  /// RPC a (possibly compensating) operation to a node within `tx`.
  void remote_invoke(TxId tx, NodeId node, const std::string& resource,
                     const std::string& op, const Value& params,
                     std::function<void(Status)> reply);

  NodeId self_;
  sim::Simulator& sim_;
  net::Network& net_;
  tx::TxManager txm_;
  const rollback::CompensationRegistry& comps_;

  std::vector<ScriptStep> script_;
  std::size_t position_ = 0;  ///< next step to execute
  bool executing_ = false;    ///< a run() is in flight (rollback may rewind
                              ///< position_, so it cannot signal this)
  Done done_;
  std::unordered_map<TxId, std::function<void(Status)>> waiting_;
  ContractStats stats_;
  sim::TimeUs retry_backoff_us_ = 25'000;
};

/// Payload helpers shared with NodeRuntime's RPC endpoint.
serial::Bytes encode_invoke(TxId tx, const std::string& resource,
                            const std::string& op, const Value& params,
                            const std::string& comp_op);
struct InvokeRequest {
  TxId tx;
  std::string resource;
  std::string op;
  Value params;
  /// When non-empty, the node runs this registered compensating operation
  /// (resource-entry context) instead of a plain resource op.
  std::string comp_op;
};
InvokeRequest decode_invoke(const net::Message& m);

serial::Bytes encode_result(TxId tx, const Status& status);
std::pair<TxId, Status> decode_result(const net::Message& m);

}  // namespace mar::contract
