#include "contract/contract.h"

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "util/check.h"

namespace mar::contract {

serial::Bytes encode_invoke(TxId tx, const std::string& resource,
                            const std::string& op, const Value& params,
                            const std::string& comp_op) {
  serial::Encoder enc(8 + serial::blob_size(resource.size()) +
                      serial::blob_size(op.size()) + params.encoded_size() +
                      serial::blob_size(comp_op.size()));
  enc.write_u64(tx.value());
  enc.write_string(resource);
  enc.write_string(op);
  params.serialize(enc);
  enc.write_string(comp_op);
  return std::move(enc).take();
}

InvokeRequest decode_invoke(const net::Message& m) {
  serial::Decoder dec(m.payload);
  InvokeRequest req;
  req.tx = TxId(dec.read_u64());
  req.resource = dec.read_string();
  req.op = dec.read_string();
  req.params.deserialize(dec);
  req.comp_op = dec.read_string();
  dec.expect_end();
  return req;
}

serial::Bytes encode_result(TxId tx, const Status& status) {
  serial::Encoder enc(8 + 1 + serial::blob_size(status.message().size()));
  enc.write_u64(tx.value());
  enc.write_u8(static_cast<std::uint8_t>(status.code()));
  enc.write_string(status.message());
  return std::move(enc).take();
}

std::pair<TxId, Status> decode_result(const net::Message& m) {
  serial::Decoder dec(m.payload);
  const TxId tx(dec.read_u64());
  const auto code = static_cast<Errc>(dec.read_u8());
  auto message = dec.read_string();
  dec.expect_end();
  if (code == Errc::ok) return {tx, Status::ok()};
  return {tx, Status(code, std::move(message))};
}

ContractManager::ContractManager(NodeId self, sim::Simulator& sim,
                                 net::Network& net,
                                 storage::StableStorage& stable,
                                 const rollback::CompensationRegistry& comps)
    : self_(self), sim_(sim), net_(net), txm_(self, sim, net, stable),
      comps_(comps) {}

void ContractManager::on_message(const net::Message& m) {
  if (m.type.rfind("tx.", 0) == 0) {
    txm_.on_message(m);
    return;
  }
  if (m.type == msg::result) {
    const auto [tx, status] = decode_result(m);
    auto it = waiting_.find(tx);
    if (it == waiting_.end()) return;
    auto cb = std::move(it->second);
    waiting_.erase(it);
    cb(status);
    return;
  }
  MAR_CHECK_MSG(false, "contract manager: unexpected message " << m.type);
}

void ContractManager::remote_invoke(TxId tx, NodeId node,
                                    const std::string& resource,
                                    const std::string& op,
                                    const Value& params,
                                    std::function<void(Status)> reply) {
  ++stats_.rpcs;
  txm_.enlist_remote(tx, node);
  net_.send(net::Message{self_, node, msg::invoke,
                         encode_invoke(tx, resource, op, params, "")});
  waiting_[tx] = std::move(reply);
}

void ContractManager::run(std::vector<ScriptStep> script, Done done) {
  MAR_CHECK_MSG(!executing_, "contract already executing");
  executing_ = true;
  script_ = std::move(script);
  position_ = 0;
  done_ = std::move(done);
  run_step();
}

void ContractManager::run_step() {
  if (position_ == script_.size()) {
    executing_ = false;
    auto done = std::move(done_);
    if (done) done(Status::ok());
    return;
  }
  const ScriptStep& step = script_[position_];
  const TxId tx = txm_.begin();
  remote_invoke(tx, step.node, step.resource, step.op, step.params,
                [this, tx](Status status) {
                  if (!status.is_ok()) {
                    ++stats_.tx_aborts;
                    txm_.abort_tx(tx);
                    sim_.schedule_after(retry_backoff_us_,
                                        [this] { run_step(); });
                    return;
                  }
                  txm_.commit_async(tx, [this](bool committed) {
                    if (!committed) {
                      ++stats_.tx_aborts;
                      sim_.schedule_after(retry_backoff_us_,
                                          [this] { run_step(); });
                      return;
                    }
                    ++stats_.steps_committed;
                    ++position_;
                    run_step();
                  });
                });
}

void ContractManager::rollback(std::size_t steps, Done done) {
  MAR_CHECK(steps <= position_);
  compensate_step(steps, std::move(done));
}

void ContractManager::compensate_step(std::size_t remaining, Done done) {
  if (remaining == 0) {
    done(Status::ok());
    return;
  }
  const ScriptStep& step = script_[position_ - 1];
  if (step.comp_op.empty()) {
    --position_;
    compensate_step(remaining - 1, std::move(done));
    return;
  }
  const TxId tx = txm_.begin();
  txm_.enlist_remote(tx, step.node);
  ++stats_.rpcs;
  net_.send(net::Message{self_, step.node, msg::invoke,
                         encode_invoke(tx, step.resource, step.op,
                                       step.comp_params, step.comp_op)});
  waiting_[tx] = [this, tx, remaining,
                  done = std::move(done)](Status status) mutable {
    if (!status.is_ok()) {
      ++stats_.tx_aborts;
      txm_.abort_tx(tx);
      auto retry = [this, remaining, done = std::move(done)]() mutable {
        compensate_step(remaining, std::move(done));
      };
      sim_.schedule_after(retry_backoff_us_, std::move(retry));
      return;
    }
    txm_.commit_async(tx, [this, remaining,
                           done = std::move(done)](bool committed) mutable {
      if (!committed) {
        ++stats_.tx_aborts;
        auto retry = [this, remaining, done = std::move(done)]() mutable {
          compensate_step(remaining, std::move(done));
        };
        sim_.schedule_after(retry_backoff_us_, std::move(retry));
        return;
      }
      ++stats_.steps_compensated;
      --position_;
      compensate_step(remaining - 1, std::move(done));
    });
  };
}

}  // namespace mar::contract
