// Reusable test agent exercising every compensation-entry type.
#pragma once

#include <memory>
#include <string>

#include "agent/agent.h"
#include "agent/platform.h"
#include "agent/step_context.h"

namespace mar::harness {

/// A configurable agent whose steps cover the paper's scenarios:
///
///   collect    directory lookup -> strongly reversible "results" list
///              (no compensating operations at all)
///   noop       only bumps the visit counter
///   work       charges `work_ops` (default 1) service-time units without
///              touching any resource: lock-free, contention-free load
///   bank_hot   deposits 1 into the bank account named by the next entry
///              of the "hot_accounts" config list (round-robin by visit;
///              optional "hot_amounts" list overrides the amount) and logs
///              the matching withdraw as RCE — the A6 contention workload:
///              under per-key locking two agents conflict only when their
///              draws collide on the same account
///   spend_logged  weak "cash" -= 1 plus one ACE padded to `param_bytes`;
///              no resource access — the A5 steady-state durability load
///   spend_cash weak "cash" -= 25, agent compensation entry only
///   withdraw   bank withdraw 100 -> cash; RCE (deposit back) + ACEs
///   deposit    bank deposit 50 from cash; RCE (withdraw back, may fail!)
///   fund       mint issues 5x20 USD coins into weak "wallet" (MCE undo)
///   exchange   wallet USD -> EUR at the local exchange (MCE undo — the
///              paper's Sec. 4.4.1 mixed-compensation example)
///   buy        shop purchase paid from cash (MCE cancel w/ fee policy)
///   savepoint  establishes an ad-hoc savepoint, id stored in weak
///              "last_sp"
///   poison     marks the step non-compensatable (Sec. 3.2)
///
/// Every step first increments weak "visits". A rollback trigger can be
/// configured in the weak "trigger" map: {step, at, mode, levels|sp}:
/// when executing step `step` with visits == `at`, it requests a rollback
/// (mode "sub": current/enclosing sub-itinerary; "abandon": roll back AND
/// skip the sub-itinerary; "fail": declare the step permanently failed —
/// the platform abandons the innermost non-vital sub or fails the agent;
/// "last_sp": the ad-hoc savepoint stored in "last_sp"; "explicit":
/// savepoint id `sp`).
class WorkloadAgent final : public agent::Agent {
 public:
  WorkloadAgent();

  [[nodiscard]] std::string type_name() const override { return "workload"; }
  void run_step(const std::string& step, agent::StepContext& ctx) override;

  // Convenience accessors for assertions.
  [[nodiscard]] std::int64_t visits() const {
    return data().weak("visits").as_int();
  }
  [[nodiscard]] std::int64_t cash() const {
    return data().weak("cash").as_int();
  }
  [[nodiscard]] const serial::Value& results() const {
    return data().strong("results");
  }
  [[nodiscard]] const serial::Value& wallet() const {
    return data().weak("wallet");
  }

  /// Configure the rollback trigger (see class comment).
  void set_trigger(const std::string& step, std::int64_t at_visit,
                   const std::string& mode, std::int64_t arg = 0);

  /// Extra integer knobs read by the parameterized bench steps
  /// ("param_bytes" for touch_* undo payloads, "strong_bytes" for
  /// grow_strong). Call after set_trigger (shares the same config map).
  void set_config(const std::string& key, std::int64_t value) {
    data().weak("trigger").set(key, value);
  }
  /// Structured config (lists, maps) for the parameterized bench steps,
  /// e.g. the "hot_accounts" draw sequence of bank_hot.
  void set_config_value(const std::string& key, serial::Value value) {
    data().weak("trigger").set(key, std::move(value));
  }

 private:
  void maybe_trigger(const std::string& step, agent::StepContext& ctx);
};

/// Register the workload agent type and all its compensating operations
/// with a platform. Safe to call once per Platform instance.
void register_workload(agent::Platform& platform);

}  // namespace mar::harness
