#include "harness/agents.h"

#include "resource/mint.h"
#include "util/check.h"

namespace mar::harness {

using serial::Value;

WorkloadAgent::WorkloadAgent() {
  data().declare_strong("results", Value::empty_list());
  data().declare_weak("visits", std::int64_t{0});
  data().declare_weak("cash", std::int64_t{0});
  data().declare_weak("wallet", Value::empty_list());
  data().declare_weak("cash_eur", std::int64_t{0});
  data().declare_weak("withdrawn", std::int64_t{0});
  data().declare_weak("orders", Value::empty_list());
  data().declare_weak("credit_notes", Value::empty_list());
  data().declare_weak("last_sp", std::int64_t{0});
  data().declare_weak("touches", std::int64_t{0});
  data().declare_weak("trigger", Value::empty_map());
}

void WorkloadAgent::set_trigger(const std::string& step, std::int64_t at_visit,
                                const std::string& mode, std::int64_t arg) {
  Value t = Value::empty_map();
  t.set("step", step);
  t.set("at", at_visit);
  t.set("mode", mode);
  t.set("arg", arg);
  data().weak("trigger") = std::move(t);
}

void WorkloadAgent::maybe_trigger(const std::string& step,
                                  agent::StepContext& ctx) {
  // Unconditional permanent failure of every noop step (drives the
  // alternatives tests, where several options must fail in turn —
  // regardless of the one-shot rollback gate below).
  if (step == "noop" &&
      data().weak("trigger").get_or("fail_all_noops", std::int64_t{0})
              .as_int() == 1) {
    ctx.fail_step(Status(Errc::forbidden, "noop configured to fail"));
    return;
  }
  // Triggers are one-shot: after a completed rollback the re-executed
  // steps may hit the same (step, visit-count) condition again — the
  // weakly reversible visit counter is deliberately not compensated —
  // and re-requesting the rollback forever would livelock the agent.
  // rollbacks_completed() is the platform's "you have been rolled back"
  // signal (Sec. 3.2's "changed situation").
  if (rollbacks_completed() > 0) return;
  const Value& t = data().weak("trigger");
  if (!t.has("step")) return;
  if (t.at("step").as_string() != step) return;
  if (t.at("at").as_int() != data().weak("visits").as_int()) return;
  const auto& mode = t.at("mode").as_string();
  if (mode == "sub") {
    ctx.request_rollback_sub_itinerary(
        static_cast<std::uint32_t>(t.at("arg").as_int()));
  } else if (mode == "abandon") {
    ctx.request_abandon_sub_itinerary(
        static_cast<std::uint32_t>(t.at("arg").as_int()));
  } else if (mode == "fail") {
    ctx.fail_step(Status(Errc::forbidden, "configured permanent failure"));
  } else if (mode == "last_sp") {
    ctx.request_rollback(SavepointId(
        static_cast<std::uint32_t>(data().weak("last_sp").as_int())));
  } else {
    ctx.request_rollback(
        SavepointId(static_cast<std::uint32_t>(t.at("arg").as_int())));
  }
}

void WorkloadAgent::run_step(const std::string& step,
                             agent::StepContext& ctx) {
  auto& visits = data().weak("visits");
  visits = visits.as_int() + 1;
  maybe_trigger(step, ctx);

  // E4/E5 baseline: an ad-hoc savepoint after every step (the log-size
  // worst case the itinerary integration of Sec. 4.4.2 improves on).
  if (data().weak("trigger").get_or("sp_every_step", std::int64_t{0})
          .as_int() == 1 &&
      step != "savepoint") {
    const auto id = ctx.establish_savepoint();
    data().weak("last_sp") = static_cast<std::int64_t>(id.value());
  }

  auto params = [](std::initializer_list<std::pair<std::string, Value>> kv) {
    Value v = Value::empty_map();
    for (auto& [k, val] : kv) v.set(k, val);
    return v;
  };

  if (step == "noop") return;

  // Contention-free unit of work: burns `work_ops` resource-op service
  // times without taking any lock, so concurrent slots never conflict —
  // the A4 throughput fleet is built from this.
  if (step == "work") {
    ctx.charge_service(static_cast<std::uint32_t>(
        data().weak("trigger").get_or("work_ops", std::int64_t{1}).as_int()));
    return;
  }

  // Steady-state durability workload (A5): mutate one small weak slot and
  // log a single agent compensation entry padded to `param_bytes` — no
  // resource access, so the only state that grows with agent age is the
  // rollback log the step commit has to make durable.
  if (step == "spend_logged") {
    const auto fill =
        data().weak("trigger").get_or("param_bytes", std::int64_t{32});
    ctx.charge_service(1);  // a unit of real work; advances virtual time
    data().weak("cash") = data().weak("cash").as_int() - 1;
    serial::Value undo = params({{"slot", Value("cash")},
                                 {"amount", Value(1)}});
    undo.set("pad", serial::Value(serial::Bytes(
                        static_cast<std::size_t>(fill.as_int()),
                        std::uint8_t{0xC3})));
    ctx.log_agent_compensation("comp.counter_add", std::move(undo));
    return;
  }

  // Contention workload (A6): a deposit into an account drawn per step
  // from the pre-assigned "hot_accounts" sequence. Under per-key locking,
  // concurrent slots conflict only when their draws collide on one
  // account; under instance locking every pair conflicts.
  if (step == "bank_hot") {
    const Value& cfg = data().weak("trigger");
    MAR_CHECK_MSG(cfg.has("hot_accounts") &&
                      !cfg.at("hot_accounts").as_list().empty(),
                  "bank_hot needs a non-empty hot_accounts list");
    const auto& accounts = cfg.at("hot_accounts").as_list();
    const auto idx =
        static_cast<std::size_t>(visits.as_int() - 1) % accounts.size();
    const std::string account = "a" + std::to_string(accounts[idx].as_int());
    std::int64_t amount = 1;
    if (cfg.has("hot_amounts")) {
      const auto& amounts = cfg.at("hot_amounts").as_list();
      amount = amounts[idx % amounts.size()].as_int();
    }
    auto r = ctx.invoke("bank", "deposit",
                        params({{"account", Value(account)},
                                {"amount", Value(amount)}}));
    if (!r.is_ok()) return;  // e.g. lock conflict: platform restarts us
    ctx.log_resource_compensation(
        "bank", "comp.withdraw",
        params({{"account", Value(account)}, {"amount", Value(amount)}}));
    return;
  }

  if (step == "collect") {
    auto r = ctx.invoke("dir", "lookup", params({{"key", Value("info")}}));
    if (r.is_ok()) {
      data().strong("results").push_back(r.value().at("value"));
    }
    return;
  }

  if (step == "spend_cash") {
    data().weak("cash") = data().weak("cash").as_int() - 25;
    ctx.log_agent_compensation(
        "comp.counter_add",
        params({{"slot", Value("cash")}, {"amount", Value(25)}}));
    return;
  }

  if (step == "withdraw") {
    auto r = ctx.invoke("bank", "withdraw",
                        params({{"account", Value("acct")},
                                {"amount", Value(100)}}));
    if (!r.is_ok()) return;  // e.g. lock conflict: platform restarts us
    ctx.log_resource_compensation(
        "bank", "comp.deposit",
        params({{"account", Value("acct")}, {"amount", Value(100)}}));
    data().weak("cash") = data().weak("cash").as_int() + 100;
    ctx.log_agent_compensation(
        "comp.counter_sub",
        params({{"slot", Value("cash")}, {"amount", Value(100)}}));
    data().weak("withdrawn") = data().weak("withdrawn").as_int() + 100;
    ctx.log_agent_compensation(
        "comp.counter_sub",
        params({{"slot", Value("withdrawn")}, {"amount", Value(100)}}));
    return;
  }

  if (step == "deposit") {
    auto r = ctx.invoke("bank", "deposit",
                        params({{"account", Value("acct")},
                                {"amount", Value(50)}}));
    if (!r.is_ok()) return;
    // Sec. 3.2: compensating a deposit is a withdraw that may fail.
    ctx.log_resource_compensation(
        "bank", "comp.withdraw",
        params({{"account", Value("acct")}, {"amount", Value(50)}}));
    data().weak("cash") = data().weak("cash").as_int() - 50;
    ctx.log_agent_compensation(
        "comp.counter_add",
        params({{"slot", Value("cash")}, {"amount", Value(50)}}));
    return;
  }

  if (step == "fund") {
    auto r = ctx.invoke("mint", "issue",
                        params({{"currency", Value("USD")},
                                {"value", Value(20)},
                                {"count", Value(5)}}));
    MAR_CHECK(r.is_ok());
    data().weak("wallet") = r.value().at("coins");
    ctx.log_mixed_compensation("mint", "comp.unfund",
                               params({{"mint", Value("mint")}}));
    return;
  }

  if (step == "exchange") {
    const auto amount = data().weak("cash").as_int();
    if (amount <= 0) return;
    auto converted = ctx.invoke("exchange", "convert",
                                params({{"from", Value("USD")},
                                        {"to", Value("EUR")},
                                        {"amount", Value(amount)}}));
    if (!converted.is_ok()) return;
    data().weak("cash") = std::int64_t{0};
    data().weak("cash_eur") = converted.value().at("out");
    // The paper's mixed-compensation example (Sec. 4.4.1): changing the
    // money back needs the current EUR amount (weak agent state, known
    // only at compensation time) AND the exchange (resource state).
    ctx.log_mixed_compensation(
        "exchange", "comp.unexchange",
        params({{"exchange", Value("exchange")},
                {"from", Value("EUR")},
                {"to", Value("USD")}}));
    return;
  }

  if (step == "buy") {
    auto r = ctx.invoke("shop", "buy",
                        params({{"item", Value("widget")},
                                {"qty", Value(1)},
                                {"payment", data().weak("cash")},
                                {"now", Value(static_cast<std::int64_t>(
                                            ctx.now_us()))}}));
    if (!r.is_ok()) return;  // e.g. out of stock: agent moves on
    const auto cost = r.value().at("cost").as_int();
    data().weak("cash") = data().weak("cash").as_int() - cost;
    Value order = Value::empty_map();
    order.set("order", r.value().at("order"));
    order.set("paid", cost);
    data().weak("orders").push_back(std::move(order));
    ctx.log_mixed_compensation(
        "shop", "comp.cancel_buy",
        params({{"shop", Value("shop")}, {"order", r.value().at("order")}}));
    return;
  }

  // Parameterized steps for the benchmark harness: publish a filler blob
  // into the local directory and log its undo either as a mixed entry
  // (forces an agent transfer during rollback) or as a split RCE + ACE
  // pair (optimized rollback handles it without moving the agent).
  if (step == "touch_mixed" || step == "touch_split" ||
      step == "touch_plain") {
    const Value& cfg = data().weak("trigger");
    const auto fill = cfg.get_or("param_bytes", std::int64_t{32});
    const std::string key = "touch-" + std::to_string(visits.as_int());
    serial::Value blob(serial::Bytes(
        static_cast<std::size_t>(fill.as_int()), std::uint8_t{0xAB}));
    auto r = ctx.invoke("dir", "publish",
                        params({{"key", Value(key)}, {"value", blob}}));
    if (!r.is_ok()) return;
    data().weak("touches") = data().weak("touches").as_int() + 1;
    if (step == "touch_plain") return;  // exactly-once only, no undo info
    serial::Value undo = params({{"key", Value(key)}, {"pad", blob}});
    if (step == "touch_mixed") {
      ctx.log_mixed_compensation("dir", "comp.untouch", std::move(undo));
    } else {
      // Multiplicity knobs let the concurrency experiment scale the RCE
      // and ACE counts per step independently.
      const auto rces = cfg.get_or("rce_per_step", std::int64_t{1}).as_int();
      const auto aces = cfg.get_or("ace_per_step", std::int64_t{1}).as_int();
      for (std::int64_t i = 0; i < rces; ++i) {
        ctx.log_resource_compensation("dir", "comp.remove_entry", undo);
      }
      for (std::int64_t i = 0; i < aces; ++i) {
        ctx.log_agent_compensation(
            "comp.counter_sub",
            params({{"slot", Value("touches")}, {"amount", Value(1)}}));
      }
      // Keep the counter consistent with the number of ACE undos logged.
      data().weak("touches") =
          data().weak("touches").as_int() + (aces - 1);
    }
    return;
  }

  // Mutate `mutate_count` entries of a strong register file of
  // `strong_entries` blobs (drives the state-vs-transition experiment E5:
  // transition logging wins when the per-savepoint mutated fraction is
  // small).
  if (step == "mutate_strong") {
    const Value& cfg = data().weak("trigger");
    const auto entries = cfg.get_or("strong_entries", std::int64_t{16}).as_int();
    const auto mutate = cfg.get_or("mutate_count", std::int64_t{1}).as_int();
    const auto blob = cfg.get_or("strong_bytes", std::int64_t{64}).as_int();
    auto& reg = data().strong("results");
    if (!reg.is_map()) reg = Value::empty_map();
    for (std::int64_t i = 0; i < entries; ++i) {
      const std::string key = "r" + std::to_string(i);
      if (!reg.has(key)) {
        reg.set(key, serial::Bytes(static_cast<std::size_t>(blob),
                                   std::uint8_t{0}));
      }
    }
    for (std::int64_t i = 0; i < mutate; ++i) {
      const auto slot = (visits.as_int() * mutate + i) % entries;
      reg.set("r" + std::to_string(slot),
              serial::Bytes(static_cast<std::size_t>(blob),
                            static_cast<std::uint8_t>(visits.as_int())));
    }
    return;
  }

  // Append a filler blob to the strongly reversible results (drives the
  // savepoint-size experiments).
  if (step == "grow_strong") {
    const auto fill =
        data().weak("trigger").get_or("strong_bytes", std::int64_t{64});
    data().strong("results").push_back(serial::Value(serial::Bytes(
        static_cast<std::size_t>(fill.as_int()), std::uint8_t{0x5A})));
    return;
  }

  // Append a filler blob to a weakly reversible list (makes the agent's
  // weak-state snapshot — which the adaptive strategy would ship twice —
  // expensive, tilting the ref [16] decision towards migration).
  if (step == "grow_weak") {
    const auto fill =
        data().weak("trigger").get_or("weak_bytes", std::int64_t{64});
    data().weak("wallet").push_back(serial::Value(serial::Bytes(
        static_cast<std::size_t>(fill.as_int()), std::uint8_t{0xA5})));
    ctx.log_agent_compensation("comp.pop_list",
                               params({{"slot", Value("wallet")}}));
    return;
  }

  if (step == "savepoint") {
    const auto id = ctx.establish_savepoint();
    data().weak("last_sp") = static_cast<std::int64_t>(id.value());
    return;
  }

  if (step == "poison") {
    auto r = ctx.invoke(
        "dir", "publish",
        params({{"key", Value("destructive")}, {"value", Value(1)}}));
    MAR_CHECK(r.is_ok());
    ctx.mark_not_compensatable();
    return;
  }

  MAR_CHECK_MSG(false, "workload agent: unknown step " << step);
}

void register_workload(agent::Platform& platform) {
  platform.agent_types().register_type<WorkloadAgent>("workload");
  auto& reg = platform.compensations();

  reg.register_op("comp.deposit", [](rollback::CompensationContext& ctx) {
    return ctx.invoke("bank", "deposit", ctx.params()).status();
  });
  reg.register_op("comp.withdraw", [](rollback::CompensationContext& ctx) {
    return ctx.invoke("bank", "withdraw", ctx.params()).status();
  });
  reg.register_op("comp.counter_add", [](rollback::CompensationContext& ctx) {
    auto& slot = ctx.weak(ctx.params().at("slot").as_string());
    slot = slot.as_int() + ctx.params().at("amount").as_int();
    return Status::ok();
  });
  reg.register_op("comp.pop_list", [](rollback::CompensationContext& ctx) {
    auto& slot = ctx.weak(ctx.params().at("slot").as_string());
    auto& list = slot.as_list();
    if (list.empty()) {
      return Status(Errc::compensation_failed, "pop_list: list is empty");
    }
    list.pop_back();
    return Status::ok();
  });
  reg.register_op("comp.counter_sub", [](rollback::CompensationContext& ctx) {
    auto& slot = ctx.weak(ctx.params().at("slot").as_string());
    slot = slot.as_int() - ctx.params().at("amount").as_int();
    return Status::ok();
  });
  reg.register_op("comp.unfund", [](rollback::CompensationContext& ctx) {
    auto& wallet = ctx.weak("wallet");
    if (!wallet.as_list().empty()) {
      serial::Value p = serial::Value::empty_map();
      p.set("coins", resource::Mint::wallet_serials(wallet));
      auto r = ctx.invoke(ctx.params().at("mint").as_string(), "redeem", p);
      if (!r.is_ok()) return r.status();
    }
    wallet = serial::Value::empty_list();
    return Status::ok();
  });
  reg.register_op("comp.unexchange", [](rollback::CompensationContext& ctx) {
    // Mixed: reads the agent's current EUR holdings AND the resource.
    auto& eur = ctx.weak("cash_eur");
    const auto amount = eur.as_int();
    if (amount <= 0) return Status::ok();
    serial::Value cp = serial::Value::empty_map();
    cp.set("from", ctx.params().at("from"));
    cp.set("to", ctx.params().at("to"));
    cp.set("amount", amount);
    auto converted =
        ctx.invoke(ctx.params().at("exchange").as_string(), "convert", cp);
    if (!converted.is_ok()) return converted.status();
    eur = std::int64_t{0};
    auto& cash = ctx.weak("cash");
    // The round trip may not restore the exact amount (spread/rounding):
    // state-equivalent compensation, not identity (Sec. 3.2).
    cash = cash.as_int() + converted.value().at("out").as_int();
    return Status::ok();
  });
  reg.register_op("comp.remove_entry", [](rollback::CompensationContext& ctx) {
    serial::Value p = serial::Value::empty_map();
    p.set("key", ctx.params().at("key"));
    auto r = ctx.invoke("dir", "remove", p);
    // Removing an already-absent entry is acceptable on retry.
    if (!r.is_ok() && r.code() != Errc::not_found) return r.status();
    return Status::ok();
  });
  reg.register_op("comp.untouch", [](rollback::CompensationContext& ctx) {
    serial::Value p = serial::Value::empty_map();
    p.set("key", ctx.params().at("key"));
    auto r = ctx.invoke("dir", "remove", p);
    if (!r.is_ok() && r.code() != Errc::not_found) return r.status();
    auto& touches = ctx.weak("touches");
    touches = touches.as_int() - 1;
    return Status::ok();
  });
  reg.register_op("comp.cancel_buy", [](rollback::CompensationContext& ctx) {
    serial::Value p = serial::Value::empty_map();
    p.set("order", ctx.params().at("order"));
    p.set("now", static_cast<std::int64_t>(ctx.now_us()));
    auto r = ctx.invoke(ctx.params().at("shop").as_string(), "cancel", p);
    if (!r.is_ok()) return r.status();
    // Integrate the refund into the agent's private data: cash or a
    // credit note, per the shop's time-dependent policy (Sec. 3.2).
    if (r.value().at("mode").as_string() == "cash") {
      auto& cash = ctx.weak("cash");
      cash = cash.as_int() + r.value().at("refund").as_int();
    } else {
      ctx.weak("credit_notes").push_back(r.value().at("refund"));
    }
    auto& orders = ctx.weak("orders").as_list();
    const auto id = ctx.params().at("order").as_int();
    std::erase_if(orders, [id](const serial::Value& o) {
      return o.at("order").as_int() == id;
    });
    return Status::ok();
  });
}

}  // namespace mar::harness
