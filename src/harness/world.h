// Shared test world: simulator + network + platform + stocked resources.
#pragma once

#include <memory>

#include "agent/node_runtime.h"
#include "agent/platform.h"
#include "net/fault_injector.h"
#include "net/network.h"
#include "resource/bank.h"
#include "resource/directory.h"
#include "resource/exchange.h"
#include "resource/mailbox.h"
#include "resource/mint.h"
#include "resource/shop.h"
#include "sim/simulator.h"
#include "util/trace.h"

namespace mar::harness {

/// A world of `node_count` nodes, each hosting one instance of every
/// built-in resource ("bank", "shop", "exchange", "mint", "dir"), with
/// deterministic seed-driven randomness.
class TestWorld {
 public:
  explicit TestWorld(agent::PlatformConfig config = {}, int node_count = 4,
                     std::uint64_t seed = 7)
      : net(sim, trace), faults(sim, net),
        platform(sim, net, trace, config, seed) {
    for (int i = 1; i <= node_count; ++i) {
      auto& rt = platform.add_node(NodeId(static_cast<std::uint32_t>(i)));
      auto& rm = rt.resources();
      rm.add_resource("bank", std::make_unique<resource::Bank>());
      rm.add_resource("shop", std::make_unique<resource::Shop>());
      rm.add_resource("exchange", std::make_unique<resource::Exchange>());
      rm.add_resource("mint", std::make_unique<resource::Mint>());
      rm.add_resource("dir", std::make_unique<resource::Directory>());
      rm.add_resource("mailbox", std::make_unique<resource::Mailbox>());
    }
  }

  [[nodiscard]] static NodeId n(int i) {
    return NodeId(static_cast<std::uint32_t>(i));
  }

  /// Committed state of a resource on a node (post-commit assertions).
  [[nodiscard]] const serial::Value& committed(int node,
                                               const std::string& res) {
    return platform.node(n(node)).resources().committed_state(res);
  }

  /// Seed a directory entry on a node (world setup, not transactional).
  void publish(int node, const std::string& key, serial::Value value) {
    auto& rm = platform.node(n(node)).resources();
    serial::Value state = rm.committed_state("dir");
    state.as_map().at("entries").set(key, std::move(value));
    rm.poke_state("dir", std::move(state));
  }

  /// Seed a bank account with a balance.
  void open_account(int node, const std::string& account,
                    std::int64_t balance, bool overdraft = false) {
    auto& rm = platform.node(n(node)).resources();
    serial::Value state = rm.committed_state("bank");
    serial::Value acc = serial::Value::empty_map();
    acc.set("balance", balance);
    acc.set("overdraft", overdraft);
    state.as_map().at("accounts").set(account, std::move(acc));
    rm.poke_state("bank", std::move(state));
  }

  /// Seed shop inventory.
  void stock(int node, const std::string& item, std::int64_t qty,
             std::int64_t price, std::int64_t cancel_fee = 0) {
    auto& rm = platform.node(n(node)).resources();
    serial::Value state = rm.committed_state("shop");
    serial::Value entry = serial::Value::empty_map();
    entry.set("qty", qty);
    entry.set("price", price);
    state.as_map().at("items").set(item, std::move(entry));
    state.set("cancel_fee", cancel_fee);
    rm.poke_state("shop", std::move(state));
  }

  /// Seed an exchange rate (and its inverse).
  void set_rate(int node, const std::string& from, const std::string& to,
                std::int64_t rate_ppm) {
    auto& rm = platform.node(n(node)).resources();
    serial::Value state = rm.committed_state("exchange");
    state.as_map().at("rates").set(from + "/" + to, rate_ppm);
    const auto inverse =
        (resource::Exchange::kRateScale * resource::Exchange::kRateScale +
         rate_ppm / 2) /
        rate_ppm;
    state.as_map().at("rates").set(to + "/" + from, inverse);
    rm.poke_state("exchange", std::move(state));
  }

  sim::Simulator sim;
  TraceSink trace;
  net::Network net;
  net::FaultInjector faults;
  agent::Platform platform;
};

}  // namespace mar::harness
