// Performance model for RPC-vs-migration decisions.
//
// Section 4.4.1 ("Further optimizations") notes that if compensating
// operations can reach resources by RPC, "a performance model similar to
// that introduced in [16] can be used to determine if the agent or the
// resource compensation objects should be transferred to the node where
// the resources reside or if RPC should be used". This module implements
// that model (Straßer & Schwehm, PDPTA'97): communication cost is
// per-message latency plus size over throughput; an agent migration ships
// code+state+rollback-log once and interacts locally, RPC pays the round
// trip per interaction.
//
// Experiment E7 sweeps the parameter space and compares the model's
// decision with simulated actuals from the network substrate.
#pragma once

#include <cstdint>

namespace mar::perfmodel {

/// Network characteristics between the client (agent's current node) and
/// the server (resource node).
struct NetworkParams {
  double latency_us = 500;        ///< one-way message latency
  double bytes_per_us = 1.25;     ///< link throughput (10 Mbit/s default)
};

/// One remote task: a series of request/reply interactions with a
/// resource, performed either by RPC or by migrating the agent.
struct TaskParams {
  std::int64_t interactions = 1;   ///< number of request/reply pairs
  double request_bytes = 128;      ///< per-interaction request size
  double reply_bytes = 1024;       ///< per-interaction reply size
  double agent_bytes = 4096;       ///< serialized agent incl. rollback log
  double result_bytes = 0;         ///< data the agent accumulates remotely
  double selectivity = 1.0;        ///< fraction of results carried back
  double server_time_us = 100;     ///< per-interaction service time
  bool return_trip = true;         ///< agent must come back afterwards
};

/// Total time to perform the task via per-interaction RPC.
[[nodiscard]] double rpc_time_us(const NetworkParams& net,
                                 const TaskParams& task);

/// Total time to perform the task by migrating the agent to the resource
/// node, interacting locally (zero network cost), and optionally moving on
/// or back with the (filtered) results in its state.
[[nodiscard]] double migration_time_us(const NetworkParams& net,
                                       const TaskParams& task);

enum class Strategy { rpc, migrate };

/// The cheaper strategy under the model.
[[nodiscard]] Strategy choose(const NetworkParams& net,
                              const TaskParams& task);

/// Interactions at which the two strategies cost the same (the crossover
/// the paper's ref [16] reports); computed by the model, < 0 when
/// migration never pays off.
[[nodiscard]] double crossover_interactions(const NetworkParams& net,
                                            TaskParams task);

}  // namespace mar::perfmodel
