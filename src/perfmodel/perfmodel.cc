#include "perfmodel/perfmodel.h"

namespace mar::perfmodel {

namespace {
double transfer_us(const NetworkParams& net, double bytes) {
  return net.latency_us + bytes / net.bytes_per_us;
}
}  // namespace

double rpc_time_us(const NetworkParams& net, const TaskParams& task) {
  const double per_interaction = transfer_us(net, task.request_bytes) +
                                 task.server_time_us +
                                 transfer_us(net, task.reply_bytes);
  return static_cast<double>(task.interactions) * per_interaction;
}

double migration_time_us(const NetworkParams& net, const TaskParams& task) {
  // Outbound: agent (code + state + rollback log) moves to the server.
  double t = transfer_us(net, task.agent_bytes);
  // Local interactions: only service time, no network.
  t += static_cast<double>(task.interactions) * task.server_time_us;
  // Return (or onward) trip: agent plus the filtered result set.
  if (task.return_trip) {
    t += transfer_us(net,
                     task.agent_bytes + task.selectivity * task.result_bytes);
  }
  return t;
}

Strategy choose(const NetworkParams& net, const TaskParams& task) {
  return migration_time_us(net, task) < rpc_time_us(net, task)
             ? Strategy::migrate
             : Strategy::rpc;
}

double crossover_interactions(const NetworkParams& net, TaskParams task) {
  // rpc_time is linear in n with slope `per_interaction`; migration time
  // is constant in n up to the fixed transfer overhead plus n * service.
  const double rpc_slope = transfer_us(net, task.request_bytes) +
                           task.server_time_us +
                           transfer_us(net, task.reply_bytes);
  const double mig_slope = task.server_time_us;
  double fixed = transfer_us(net, task.agent_bytes);
  if (task.return_trip) {
    fixed += transfer_us(net, task.agent_bytes +
                                  task.selectivity * task.result_bytes);
  }
  const double denom = rpc_slope - mig_slope;
  if (denom <= 0) return -1.0;  // RPC never loses
  return fixed / denom;
}

}  // namespace mar::perfmodel
