#include "storage/segment_log.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace mar::storage {
namespace {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::uint32_t crc32(const std::uint8_t* data, std::size_t n,
                    std::uint32_t seed = 0) {
  static constexpr auto kTable = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

constexpr std::size_t kFrameHeader = 8;  // crc32 + len
constexpr std::size_t kPayloadHeader = 5;  // op + key_len

/// Deterministic small PRNG for fault placement (splitmix64).
std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(StorageFault fault) {
  switch (fault) {
    case StorageFault::none: return "none";
    case StorageFault::torn_tail: return "torn_tail";
    case StorageFault::bit_flip: return "bit_flip";
    case StorageFault::torn_checkpoint: return "torn_checkpoint";
  }
  return "unknown";
}

std::optional<StorageFault> storage_fault_from_string(std::string_view name) {
  if (name == "none") return StorageFault::none;
  if (name == "torn_tail") return StorageFault::torn_tail;
  if (name == "bit_flip") return StorageFault::bit_flip;
  if (name == "torn_checkpoint") return StorageFault::torn_checkpoint;
  return std::nullopt;
}

SegmentLog::Segment& SegmentLog::active_segment(
    std::size_t incoming_frame_bytes) {
  if (!segments_.empty()) {
    Segment& tail = segments_.rbegin()->second;
    if (tail.bytes.size() + incoming_frame_bytes <= config_.segment_bytes ||
        tail.bytes.empty()) {
      return tail;
    }
    // Seal the tail; a sealed, fully-dead segment retires on the spot.
    if (tail.live == 0) {
      retired_segments_ += segments_.erase(tail.id);
    }
  }
  Segment seg;
  seg.id = next_segment_id_++;
  seg.first_lsn = next_lsn_;
  return segments_.emplace(seg.id, std::move(seg)).first->second;
}

std::size_t SegmentLog::append_frame(Op op, const std::string& key,
                                     const serial::Bytes& data) {
  const std::size_t payload_size = kPayloadHeader + key.size() + data.size();
  const std::size_t frame_size = kFrameHeader + payload_size;
  Segment& seg = active_segment(frame_size);

  std::vector<std::uint8_t> frame;
  frame.reserve(frame_size);
  put_u32(frame, 0);  // crc placeholder
  put_u32(frame, static_cast<std::uint32_t>(payload_size));
  frame.push_back(static_cast<std::uint8_t>(op));
  put_u32(frame, static_cast<std::uint32_t>(key.size()));
  frame.insert(frame.end(), key.begin(), key.end());
  frame.insert(frame.end(), data.begin(), data.end());
  // CRC covers len + payload so a torn length header fails the same check.
  const std::uint32_t crc = crc32(frame.data() + 4, frame.size() - 4);
  frame[0] = static_cast<std::uint8_t>(crc);
  frame[1] = static_cast<std::uint8_t>(crc >> 8);
  frame[2] = static_cast<std::uint8_t>(crc >> 16);
  frame[3] = static_cast<std::uint8_t>(crc >> 24);

  seg.bytes.insert(seg.bytes.end(), frame.begin(), frame.end());
  ++seg.frames;
  ++seg.live;
  ++next_lsn_;
  appended_bytes_ += frame_size;
  key_frame_segments_[key].push_back(seg.id);
  return frame_size;
}

void SegmentLog::kill_frames_of(const std::string& key) {
  auto it = key_frame_segments_.find(key);
  if (it == key_frame_segments_.end()) return;
  for (std::uint64_t seg_id : it->second) {
    auto sit = segments_.find(seg_id);
    if (sit == segments_.end()) continue;  // already retired
    Segment& seg = sit->second;
    if (seg.live > 0) --seg.live;
    // A sealed segment with nothing live left is pure garbage: every
    // frame in it has been superseded by a younger reset/erase whose
    // replay reproduces the final state without it.
    if (seg.live == 0 && seg.id != segments_.rbegin()->first) {
      segments_.erase(sit);
      ++retired_segments_;
    }
  }
  key_frame_segments_.erase(it);
}

std::size_t SegmentLog::append_reset(const std::string& key,
                                     const serial::Bytes& base) {
  kill_frames_of(key);
  const std::size_t framed = append_frame(Op::reset, key, base);
  auto& segs = index_[key];
  segs.clear();
  segs.push_back(base);
  return framed;
}

std::size_t SegmentLog::append_delta(const std::string& key,
                                     const serial::Bytes& delta) {
  const std::size_t framed = append_frame(Op::append, key, delta);
  index_[key].push_back(delta);
  return framed;
}

std::size_t SegmentLog::append_erase(const std::string& key) {
  kill_frames_of(key);
  const std::size_t framed = append_frame(Op::erase, key, {});
  index_.erase(key);
  return framed;
}

const std::vector<serial::Bytes>* SegmentLog::segments(
    const std::string& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &it->second;
}

std::size_t SegmentLog::segment_count(const std::string& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.size();
}

bool SegmentLog::begin_checkpoint() {
  if (in_progress_.has_value()) return false;
  PendingCheckpoint pending;
  pending.begin_lsn = next_lsn_;
  pending.snapshot = index_;  // consistent at begin; appends keep flowing
  in_progress_ = std::move(pending);
  return true;
}

std::size_t SegmentLog::complete_checkpoint() {
  if (!in_progress_.has_value()) return 0;
  CheckpointSlot slot;
  slot.begin_lsn = in_progress_->begin_lsn;
  // Write-side integrity seal: serialize the snapshot once to meter its
  // durable size and stamp a CRC over the written image. Recovery never
  // re-scans this — like an engine trusting its checkpointed tree pages,
  // it checks only the end marker (`complete`) and installs the state.
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(in_progress_->snapshot.size()));
  for (const auto& [key, segs] : in_progress_->snapshot) {
    put_u32(out, static_cast<std::uint32_t>(key.size()));
    out.insert(out.end(), key.begin(), key.end());
    put_u32(out, static_cast<std::uint32_t>(segs.size()));
    for (const auto& seg : segs) {
      put_u32(out, static_cast<std::uint32_t>(seg.size()));
      out.insert(out.end(), seg.begin(), seg.end());
    }
  }
  slot.crc = crc32(out.data(), out.size());
  slot.byte_size = out.size();
  slot.snapshot = std::move(in_progress_->snapshot);
  slot.valid = true;
  slot.complete = true;  // the end marker lands last
  in_progress_.reset();
  previous_ = std::move(newest_);
  newest_ = std::move(slot);
  ++checkpoints_completed_;
  retire_covered_segments();
  return newest_.byte_size;
}

void SegmentLog::retire_covered_segments() {
  // Recovery may need to fall back one checkpoint generation, so the log
  // must stay replayable from the OLDER slot's begin_lsn. Only when both
  // generations exist — and the fallback one is intact — is anything
  // below the previous slot expendable.
  if (!newest_.valid || !previous_.valid || !previous_.complete) return;
  const std::uint64_t floor_lsn = previous_.begin_lsn;
  for (auto it = segments_.begin(); it != segments_.end();) {
    const Segment& seg = it->second;
    const bool sealed = seg.id != segments_.rbegin()->first;
    if (sealed && seg.first_lsn + seg.frames <= floor_lsn) {
      it = segments_.erase(it);
      ++retired_segments_;
    } else {
      ++it;
    }
  }
}

StorageFault SegmentLog::inject_fault(StorageFault fault, std::uint64_t seed) {
  std::uint64_t rng = seed * 0x2545F4914F6CDD1Dull + 1;
  switch (fault) {
    case StorageFault::none:
      return StorageFault::none;
    case StorageFault::torn_tail: {
      // Model a crash mid-append: a partial frame of garbage lands after
      // the last committed frame. The committed prefix is untouched, so
      // truncation at the first bad checksum restores exactly the
      // pre-crash committed state.
      Segment& seg = active_segment(kFrameHeader + 1);
      const std::size_t torn = 1 + mix64(rng) % (kFrameHeader + 24);
      for (std::size_t i = 0; i < torn; ++i) {
        seg.bytes.push_back(static_cast<std::uint8_t>(mix64(rng)));
      }
      return StorageFault::torn_tail;
    }
    case StorageFault::bit_flip: {
      // Flip one bit inside a committed frame that is NOT the physical
      // tail frame: tail damage is indistinguishable from a torn write
      // and would be (correctly, but silently) truncated away. Mid-log
      // damage must hard-fail instead.
      struct Target {
        Segment* seg;
        std::size_t offset;
        std::size_t size;
      };
      std::vector<Target> frames;
      for (auto& [id, seg] : segments_) {
        std::size_t off = 0;
        while (off + kFrameHeader <= seg.bytes.size()) {
          const std::uint32_t len = get_u32(seg.bytes.data() + off + 4);
          if (off + kFrameHeader + len > seg.bytes.size()) break;
          frames.push_back({&seg, off, kFrameHeader + len});
          off += kFrameHeader + len;
        }
      }
      if (frames.size() < 2) return StorageFault::none;
      frames.pop_back();  // never the physical tail frame
      const Target& t = frames[mix64(rng) % frames.size()];
      const std::size_t bit = mix64(rng) % (t.size * 8);
      t.seg->bytes[t.offset + bit / 8] ^=
          static_cast<std::uint8_t>(1u << (bit % 8));
      return StorageFault::bit_flip;
    }
    case StorageFault::torn_checkpoint: {
      // The crash lands mid-checkpoint-write: the newest slot never got
      // its end marker, and whatever bytes it holds are untrustworthy.
      // Scramble the seal too so nothing downstream can mistake the slot
      // for intact.
      if (!newest_.valid || !newest_.complete) return StorageFault::none;
      newest_.complete = false;
      newest_.crc ^= static_cast<std::uint32_t>(mix64(rng) | 1u);
      return StorageFault::torn_checkpoint;
    }
  }
  return StorageFault::none;
}

RecoveryReport SegmentLog::recover() {
  RecoveryReport report;
  in_progress_.reset();  // volatile: died with the node
  index_.clear();
  key_frame_segments_.clear();

  // Choose the replay base: newest checkpoint, else previous, else empty.
  // A slot without its end marker was torn by a crash mid-write and is
  // never trusted; installing an intact slot is a state copy, not a scan.
  std::uint64_t start_lsn = 0;
  auto install_slot = [&](const CheckpointSlot& slot) -> bool {
    if (!slot.valid || !slot.complete) return false;
    index_ = slot.snapshot;  // copy: the slot must survive the next crash
    start_lsn = slot.begin_lsn;
    return true;
  };
  if (install_slot(newest_)) {
    report.used_checkpoint = true;
  } else if (newest_.valid) {
    // Newest slot torn: fall back a generation. The log is retained back
    // to previous.begin_lsn exactly for this.
    if (install_slot(previous_)) {
      report.used_checkpoint = true;
      report.checkpoint_fell_back = true;
      newest_ = std::move(previous_);
      previous_ = CheckpointSlot{};
    } else if (previous_.valid) {
      // Both generations damaged after the log was trimmed against the
      // older one: a full replay can no longer reproduce the state.
      throw CorruptionError("no intact checkpoint generation survives");
    }
    // No previous slot ever completed => the log was never trimmed; a
    // full replay from LSN 0 is still complete.
  }

  // Replay retained segments in order. Liveness bookkeeping is rebuilt on
  // the fly for every parsed frame (including pre-checkpoint ones) so
  // post-recovery retirement decisions match a never-crashed log.
  const std::uint64_t tail_segment =
      segments_.empty() ? 0 : segments_.rbegin()->first;
  for (auto& [id, seg] : segments_) {
    std::size_t off = 0;
    std::uint64_t lsn = seg.first_lsn;
    std::uint64_t parsed_frames = 0;
    std::uint64_t live = 0;
    bool scanned = false;
    auto torn_or_throw = [&](const char* what) {
      // Truncation is only sound for a torn in-flight write, i.e. damage
      // with nothing valid after it. A bad frame in an earlier segment —
      // or one followed by any validly-framed bytes — is real corruption:
      // truncating there would silently drop committed frames.
      bool valid_frame_follows = false;
      if (id == tail_segment) {
        for (std::size_t p = off + 1; p + kFrameHeader <= seg.bytes.size();
             ++p) {
          const std::uint32_t c = get_u32(seg.bytes.data() + p);
          const std::uint32_t l = get_u32(seg.bytes.data() + p + 4);
          if (p + kFrameHeader + l <= seg.bytes.size() &&
              crc32(seg.bytes.data() + p + 4, 4 + l) == c) {
            valid_frame_follows = true;
            break;
          }
        }
      }
      if (id != tail_segment || valid_frame_follows) {
        throw CorruptionError(std::string("mid-log damage: ") + what);
      }
      seg.bytes.resize(off);  // torn in-flight tail: truncate
      report.truncated_torn_tail = true;
    };
    while (off < seg.bytes.size()) {
      if (off + kFrameHeader > seg.bytes.size()) {
        torn_or_throw("partial frame header");
        break;
      }
      const std::uint32_t stored_crc = get_u32(seg.bytes.data() + off);
      const std::uint32_t len = get_u32(seg.bytes.data() + off + 4);
      if (off + kFrameHeader + len > seg.bytes.size() ||
          crc32(seg.bytes.data() + off + 4, 4 + len) != stored_crc) {
        torn_or_throw("frame checksum mismatch");
        break;
      }
      const std::uint8_t* payload = seg.bytes.data() + off + kFrameHeader;
      if (len < kPayloadHeader) {
        throw CorruptionError("frame payload underrun");
      }
      const Op op = static_cast<Op>(payload[0]);
      const std::uint32_t key_len = get_u32(payload + 1);
      if (kPayloadHeader + key_len > len) {
        throw CorruptionError("frame key underrun");
      }
      std::string key(reinterpret_cast<const char*>(payload + kPayloadHeader),
                      key_len);
      const std::uint8_t* data = payload + kPayloadHeader + key_len;
      const std::size_t data_len = len - kPayloadHeader - key_len;

      // Liveness: this frame supersedes the key's earlier frames on
      // reset/erase, exactly as the live write path would have.
      if (op != Op::append) {
        auto kit = key_frame_segments_.find(key);
        if (kit != key_frame_segments_.end()) {
          for (std::uint64_t sid : kit->second) {
            auto sit = segments_.find(sid);
            if (sit == segments_.end()) continue;
            if (sit->second.live > 0) --sit->second.live;
            if (sid == id && live > 0) --live;
          }
          key_frame_segments_.erase(kit);
        }
      }
      key_frame_segments_[key].push_back(id);
      ++live;

      if (lsn >= start_lsn) {
        switch (op) {
          case Op::reset: {
            auto& segs = index_[key];
            segs.clear();
            segs.emplace_back(data, data + data_len);
            break;
          }
          case Op::append:
            index_[key].emplace_back(data, data + data_len);
            break;
          case Op::erase:
            index_.erase(key);
            break;
        }
        report.replayed_bytes += kFrameHeader + len;
        ++report.replayed_frames;
        scanned = true;
      }
      off += kFrameHeader + len;
      ++lsn;
      ++parsed_frames;
    }
    seg.frames = parsed_frames;
    seg.live = live;
    if (scanned) ++report.segments_scanned;
  }
  // next_lsn resumes after the youngest surviving frame.
  next_lsn_ = 0;
  for (const auto& [id, seg] : segments_) {
    next_lsn_ = std::max(next_lsn_, seg.first_lsn + seg.frames);
  }
  next_lsn_ = std::max(next_lsn_, start_lsn);
  return report;
}

std::size_t SegmentLog::log_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, seg] : segments_) total += seg.bytes.size();
  return total;
}

}  // namespace mar::storage
