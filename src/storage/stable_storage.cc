#include "storage/stable_storage.h"

#include <algorithm>

namespace mar::storage {

void QueueRecord::serialize(serial::Encoder& enc) const {
  enc.write_u64(record_id);
  enc.write_u64(agent.value());
  enc.write_u8(static_cast<std::uint8_t>(kind));
  enc.write_u32(rollback_target.value());
  enc.write_u8(static_cast<std::uint8_t>(completion));
  enc.write_u64(trace_id);
  enc.write_u64(trace_parent);
  enc.write_bytes(payload);
}

void QueueRecord::deserialize(serial::Decoder& dec) {
  record_id = dec.read_u64();
  agent = AgentId(dec.read_u64());
  kind = static_cast<RecordKind>(dec.read_u8());
  rollback_target = SavepointId(dec.read_u32());
  completion = static_cast<Completion>(dec.read_u8());
  trace_id = dec.read_u64();
  trace_parent = dec.read_u64();
  payload = dec.read_bytes();
}

std::size_t QueueRecord::byte_size() const {
  // Arithmetic mirror of serialize() — enqueue meters every record, so
  // this must not cost an encode of the (possibly large) payload.
  return 8 + 8 + 1 + 4 + 1 + 8 + 8 + serial::blob_size(payload.size());
}

void StableStorage::put(const std::string& key, serial::Bytes value) {
  stats_.bytes_written += value.size() + key.size();
  ++stats_.kv_writes;
  kv_[key] = std::move(value);
}

std::optional<serial::Bytes> StableStorage::get(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

bool StableStorage::erase(const std::string& key) {
  return kv_.erase(key) > 0;
}

bool StableStorage::contains(const std::string& key) const {
  return kv_.contains(key);
}

std::vector<std::string> StableStorage::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = kv_.lower_bound(prefix); it != kv_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void StableStorage::for_each_with_prefix(
    const std::string& prefix,
    const std::function<void(const std::string&, const serial::Bytes&)>& fn)
    const {
  for (auto it = kv_.lower_bound(prefix); it != kv_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    fn(it->first, it->second);
  }
}

void StableStorage::record_reset(const std::string& key, serial::Bytes base) {
  ++stats_.record_resets;
  if (seg_log_) {
    stats_.bytes_written += seg_log_->append_reset(key, base);
    return;
  }
  stats_.bytes_written += key.size() + base.size();
  auto& segments = records_[key];
  segments.clear();
  segments.push_back(std::move(base));
}

void StableStorage::record_append(const std::string& key,
                                  serial::Bytes delta) {
  ++stats_.record_appends;
  if (seg_log_) {
    stats_.bytes_written += seg_log_->append_delta(key, delta);
    return;
  }
  stats_.bytes_written += delta.size();
  records_[key].push_back(std::move(delta));
}

bool StableStorage::record_erase(const std::string& key) {
  if (seg_log_) {
    if (!seg_log_->has(key)) return false;
    stats_.bytes_written += seg_log_->append_erase(key);
    return true;
  }
  return records_.erase(key) > 0;
}

bool StableStorage::has_record(const std::string& key) const {
  return seg_log_ ? seg_log_->has(key) : records_.contains(key);
}

const std::vector<serial::Bytes>* StableStorage::record_segments(
    const std::string& key) const {
  if (seg_log_) return seg_log_->segments(key);
  auto it = records_.find(key);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t StableStorage::record_segment_count(const std::string& key)
    const {
  if (seg_log_) return seg_log_->segment_count(key);
  auto it = records_.find(key);
  return it == records_.end() ? 0 : it->second.size();
}

std::size_t StableStorage::record_area_bytes() const {
  if (seg_log_) return seg_log_->log_bytes();
  std::size_t total = 0;
  for (const auto& [key, segments] : records_) {
    total += key.size();
    for (const auto& seg : segments) total += seg.size();
  }
  return total;
}

bool StableStorage::begin_checkpoint() {
  return seg_log_ && seg_log_->begin_checkpoint();
}

bool StableStorage::complete_checkpoint() {
  if (!seg_log_) return false;
  const std::size_t snapshot_bytes = seg_log_->complete_checkpoint();
  if (snapshot_bytes == 0) return false;
  stats_.bytes_written += snapshot_bytes;
  ++stats_.checkpoints_completed;
  return true;
}

StorageFault StableStorage::inject_storage_fault(StorageFault fault,
                                                 std::uint64_t seed) {
  if (!seg_log_) return StorageFault::none;
  return seg_log_->inject_fault(fault, seed);
}

RecoveryReport StableStorage::recover_records() {
  RecoveryReport report;
  if (seg_log_) {
    report = seg_log_->recover();
  } else {
    // Classic mode keeps the materialized map as the durable truth; a
    // real engine would re-read the whole area, so meter exactly that as
    // the unbounded replay envelope the segmented log is gated against.
    for (const auto& [key, segments] : records_) {
      report.replayed_bytes += key.size();
      for (const auto& seg : segments) report.replayed_bytes += seg.size();
      report.replayed_frames += segments.size();
      ++report.segments_scanned;
    }
  }
  stats_.recovery_replayed_bytes += report.replayed_bytes;
  stats_.recovery_segments += report.segments_scanned;
  return report;
}

void StableStorage::enqueue(QueueRecord record) {
  if (!seen_records_.insert(record.record_id).second) return;  // duplicate
  stats_.bytes_written += record.byte_size();
  ++stats_.queue_ops;
  queue_.push_back(std::move(record));
}

bool StableStorage::remove(std::uint64_t record_id) {
  auto it = std::find_if(
      queue_.begin(), queue_.end(),
      [record_id](const QueueRecord& r) { return r.record_id == record_id; });
  if (it == queue_.end()) return false;
  ++stats_.queue_ops;
  queue_.erase(it);
  claimed_.erase(record_id);
  return true;
}

bool StableStorage::contains_record(std::uint64_t record_id) const {
  return std::any_of(
      queue_.begin(), queue_.end(),
      [record_id](const QueueRecord& r) { return r.record_id == record_id; });
}

const QueueRecord* StableStorage::front() const {
  return queue_.empty() ? nullptr : &queue_.front();
}

const QueueRecord* StableStorage::find_record(std::uint64_t record_id) const {
  auto it = std::find_if(
      queue_.begin(), queue_.end(),
      [record_id](const QueueRecord& r) { return r.record_id == record_id; });
  return it == queue_.end() ? nullptr : &*it;
}

bool StableStorage::claim(std::uint64_t record_id) {
  if (!contains_record(record_id)) return false;
  return claimed_.insert(record_id).second;
}

void StableStorage::release_claim(std::uint64_t record_id) {
  claimed_.erase(record_id);
}

bool StableStorage::claimed(std::uint64_t record_id) const {
  return claimed_.contains(record_id);
}

void StableStorage::clear_claims() { claimed_.clear(); }

}  // namespace mar::storage
