// Segmented, checksummed record log with fuzzy checkpoints.
//
// The record area of StableStorage is logically a map from key to a
// segment list (base image + deltas). Classic mode stores that map
// directly, so a node restart replays the *entire* area — replay work
// grows without bound between full-image compactions (ROADMAP item 4).
// This module restructures the durable representation into rotated,
// CRC32-framed log segments in the style of a log-file manager
// (TokuDB's logfilemgr/checkpoint split is the production shape):
//
//   segment := frame*                          (bounded by segment_bytes)
//   frame   := crc32 (4B LE) | len (4B LE) | payload
//   payload := op (1B: reset|append|erase) | key_len (4B LE) | key | data
//
// The crc covers len + payload, so a torn length header is detected the
// same way as a torn body. Frames carry implicit LSNs: a segment records
// the LSN of its first frame and frames within it are consecutive.
//
// The materialized per-key index (same shape the classic record area
// exposes) is the volatile read path; the log is the durable truth.
// Recovery drops the index and replays the log:
//
//   * a bad frame at the physical tail of the log is a torn in-flight
//     write — truncate there and recover the committed prefix;
//   * a bad frame anywhere else is real damage — throw CorruptionError,
//     never silently diverge;
//   * a valid checkpoint bounds the replay: only frames with
//     lsn >= checkpoint.begin_lsn are applied on top of its snapshot.
//
// Checkpoints are fuzzy: begin_checkpoint() captures a consistent
// snapshot of the index at the current LSN without stalling appends;
// complete_checkpoint() (driven by the tx-layer flush timers, so a crash
// in between simply abandons the attempt) makes it durable. Two slots
// are retained — newest and previous — so a checkpoint torn by the crash
// it was racing falls back one generation. Log segments retire when
// every frame in them is superseded (fully dead) or when both checkpoint
// slots cover them (last_lsn < the older slot's begin_lsn).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serial/encoder.h"

namespace mar::storage {

/// Crash-time storage damage the fault hook can inject
/// (PlatformConfig::storage_fault).
enum class StorageFault : std::uint8_t {
  none = 0,
  torn_tail = 1,        ///< partial in-flight frame at the log tail
  bit_flip = 2,         ///< single bit flipped in a committed mid-log frame
  torn_checkpoint = 3,  ///< newest checkpoint slot corrupted mid-write
};

[[nodiscard]] const char* to_string(StorageFault fault);
/// Parse "torn_tail" / "bit_flip" / "torn_checkpoint" / "none"; returns
/// nullopt for anything else (CI matrix parses MAR_STORAGE_FAULT).
[[nodiscard]] std::optional<StorageFault> storage_fault_from_string(
    std::string_view name);

/// Unrecoverable log damage: a checksum failed somewhere truncation
/// cannot reach (mid-log), or every checkpoint generation is bad after
/// the log was already trimmed against one. Recovery throws instead of
/// serving a silently-wrong agent image.
class CorruptionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SegmentLogConfig {
  /// Rotation threshold: a segment accepting a frame that would push it
  /// past this many bytes is sealed first. One oversized frame still
  /// lands whole (frames never split across segments).
  std::size_t segment_bytes = 16 * 1024;
};

/// What one recovery pass did (surfaced as NodeRuntime counters and the
/// storage.recovery trace line).
struct RecoveryReport {
  std::uint64_t replayed_bytes = 0;   ///< framed bytes applied to the index
  std::uint64_t replayed_frames = 0;
  std::uint64_t segments_scanned = 0; ///< segments contributing >= 1 frame
  bool truncated_torn_tail = false;   ///< dropped a torn in-flight tail
  bool used_checkpoint = false;       ///< replay started from a snapshot
  bool checkpoint_fell_back = false;  ///< newest slot bad, previous used
};

class SegmentLog {
 public:
  explicit SegmentLog(SegmentLogConfig config) : config_(config) {}

  // --- write path (mirrors the record-area mutators) ----------------------
  // Each returns the framed byte cost, which the owner meters as
  // bytes_written (the durable write is the frame, not the bare payload).
  std::size_t append_reset(const std::string& key, const serial::Bytes& base);
  std::size_t append_delta(const std::string& key, const serial::Bytes& delta);
  /// Erase frames are live until a checkpoint covers them: dropping one
  /// early would resurrect the key on full replay.
  std::size_t append_erase(const std::string& key);

  // --- read path (materialized index) -------------------------------------
  [[nodiscard]] bool has(const std::string& key) const {
    return index_.contains(key);
  }
  [[nodiscard]] const std::vector<serial::Bytes>* segments(
      const std::string& key) const;
  [[nodiscard]] std::size_t segment_count(const std::string& key) const;

  // --- fuzzy checkpoints ---------------------------------------------------
  /// Capture a snapshot of the index at the current LSN. No-op (returns
  /// false) if a checkpoint is already in progress.
  bool begin_checkpoint();
  [[nodiscard]] bool checkpoint_in_progress() const {
    return in_progress_.has_value();
  }
  /// Make the captured snapshot durable (newest slot; old newest becomes
  /// previous), then retire segments both slots cover. Returns the
  /// serialized snapshot size (0 if none was in progress).
  std::size_t complete_checkpoint();
  /// Crash path: an in-progress checkpoint evaporates with volatile state.
  void abandon_checkpoint() { in_progress_.reset(); }
  [[nodiscard]] std::uint64_t checkpoints_completed() const {
    return checkpoints_completed_;
  }

  // --- crash-time fault injection ------------------------------------------
  /// Damage the durable state as `fault` describes; deterministic in
  /// `seed`. Returns the fault actually applied (a fault with no valid
  /// target degrades to none — e.g. bit_flip on a log with no mid-log
  /// frame, torn_checkpoint with no completed checkpoint).
  StorageFault inject_fault(StorageFault fault, std::uint64_t seed);

  // --- recovery -------------------------------------------------------------
  /// Rebuild the index from the durable log + checkpoint slots. Torn
  /// tails truncate; mid-log damage throws CorruptionError. Idempotent.
  RecoveryReport recover();

  // --- introspection (benchmarks / tests) ----------------------------------
  [[nodiscard]] std::size_t live_segments() const { return segments_.size(); }
  [[nodiscard]] std::uint64_t retired_segments() const {
    return retired_segments_;
  }
  [[nodiscard]] std::size_t log_bytes() const;
  [[nodiscard]] std::uint64_t next_lsn() const { return next_lsn_; }
  /// Monotonic total of framed bytes ever appended (checkpoint cadence:
  /// unlike log_bytes() it never shrinks on retirement).
  [[nodiscard]] std::uint64_t appended_bytes() const {
    return appended_bytes_;
  }

 private:
  /// One rotated log extent. `live` counts frames not yet superseded by a
  /// later reset/erase of their key; a sealed segment at live == 0 is
  /// dead weight and retires immediately.
  struct Segment {
    std::uint64_t id = 0;
    std::uint64_t first_lsn = 0;
    std::uint64_t frames = 0;
    std::uint64_t live = 0;
    std::vector<std::uint8_t> bytes;
  };

  /// A durable checkpoint generation. The snapshot map models the
  /// engine's durable state pages (recovery installs it without an
  /// O(state) re-scan, like a real engine trusts its tree pages); the
  /// `complete` end-marker is what a crash mid-checkpoint tears — an
  /// incomplete slot is never used, recovery falls back a generation.
  /// crc/byte_size record the write-side integrity seal and the metered
  /// snapshot size.
  struct CheckpointSlot {
    bool valid = false;     ///< a snapshot write reached this slot
    bool complete = false;  ///< end marker: the write finished
    std::uint64_t begin_lsn = 0;
    std::uint32_t crc = 0;
    std::size_t byte_size = 0;
    std::map<std::string, std::vector<serial::Bytes>> snapshot;
  };

  /// Volatile in-progress snapshot (fuzzy: appends continue after begin).
  struct PendingCheckpoint {
    std::uint64_t begin_lsn = 0;
    std::map<std::string, std::vector<serial::Bytes>> snapshot;
  };

  enum class Op : std::uint8_t { reset = 0, append = 1, erase = 2 };

  Segment& active_segment(std::size_t incoming_frame_bytes);
  std::size_t append_frame(Op op, const std::string& key,
                           const serial::Bytes& data);
  /// Supersede every earlier frame of `key`, retiring segments that go
  /// fully dead.
  void kill_frames_of(const std::string& key);
  void retire_covered_segments();

  SegmentLogConfig config_;
  /// Durable: log segments in id order (ids are monotonic; retirement
  /// leaves holes).
  std::map<std::uint64_t, Segment> segments_;
  CheckpointSlot newest_;
  CheckpointSlot previous_;
  /// Volatile: read-path index and liveness bookkeeping, rebuilt by
  /// recover().
  std::map<std::string, std::vector<serial::Bytes>> index_;
  std::map<std::string, std::vector<std::uint64_t>> key_frame_segments_;
  std::optional<PendingCheckpoint> in_progress_;
  std::uint64_t next_lsn_ = 0;
  std::uint64_t next_segment_id_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t retired_segments_ = 0;
  std::uint64_t checkpoints_completed_ = 0;
};

}  // namespace mar::storage
