// Per-node stable storage.
//
// The exactly-once protocols of ref [11] keep the agent "in stable storage
// between steps": every node has an *agent input queue* on stable storage,
// and step/compensation transactions stage queue updates that become
// durable at commit. This module models a node's disk: it survives node
// crashes (the simulation only resets volatile runtime state), and it
// meters bytes written so experiments can report logging/savepoint cost.
//
// Three facilities:
//   * a durable key/value area (used for resource state, prepared-
//     transaction records and commit decisions),
//   * an append-only record area: per-key segment lists holding a base
//     image plus appended deltas (incremental agent commits — the write
//     path pays O(delta) per step instead of O(total state)), and
//   * the agent input queue of the node, holding self-contained records.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "storage/segment_log.h"
#include "util/counters.h"
#include "util/ids.h"

namespace mar::storage {

/// What a queued record asks the receiving node to do with the agent.
enum class RecordKind : std::uint8_t {
  execute = 0,     ///< run the next step of the itinerary
  compensate = 1,  ///< run the next compensation transaction (rollback)
  launch = 2,      ///< route a freshly spawned child agent to its first
                   ///< step's node (multi-agent executions, Sec. 6)
};

/// A self-contained unit of agent work parked in a node's input queue:
/// the serialized agent (with its rollback log) plus routing metadata.
struct QueueRecord {
  std::uint64_t record_id = 0;  ///< globally unique; exactly-once dedup
  AgentId agent;
  RecordKind kind = RecordKind::execute;
  /// Target savepoint of an in-progress rollback (invalid when executing).
  SavepointId rollback_target = SavepointId::invalid();
  /// What happens when an in-progress rollback reaches its target
  /// savepoint (carried with the compensate record).
  enum class Completion : std::uint8_t {
    resume = 0,     ///< re-execute from the savepoint (Fig. 4a/4b)
    skip_sub = 1,   ///< abandon the sub-itinerary; resume after it (Sec. 5)
    cancel = 2,     ///< terminate the agent as `cancelled` (Sec. 6)
    next_alt = 3,   ///< enter the next alternative of the enclosing
                    ///< alternatives entry (flexible itineraries, ref [14])
  };
  Completion completion = Completion::resume;
  /// Causal trace context (observability, DESIGN.md §12): trace_id is
  /// minted once per agent execution at launch; trace_parent is the hop
  /// span that produced this record (0 for the launch record). Both are
  /// durable — they ride ship.convoy frames and prepared tx markers with
  /// the record, so a hop timeline survives migration and crash replay.
  std::uint64_t trace_id = 0;
  std::uint64_t trace_parent = 0;
  /// Volatile (NOT serialized): when the record landed in this node's
  /// queue, stamped at enqueue application — the queue-wait span's begin.
  std::uint64_t enqueued_us = 0;
  /// Volatile (NOT serialized): the open hop span of the current claim,
  /// allocated at first claim, plus the hop's begin time. They ride the
  /// processing path's by-value record copies, so the happy path needs
  /// no lookup table; an aborted attempt stashes them in the runtime
  /// (NodeRuntime::hop_traces_) to survive until the re-claim.
  std::uint64_t hop_span_id = 0;
  std::uint64_t hop_begin_us = 0;
  serial::Bytes payload;  ///< serialized agent state + rollback log

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t byte_size() const;
};

/// Write metering, reported by the forward-overhead experiment (E8), the
/// steady-state durability experiment (A5) and the contention experiment
/// (A6). Counters are relaxed atomics so a monitor thread may sample a
/// world's meters while the world runs (see util/counters.h); the write
/// side stays single-threaded.
struct StorageStats {
  RelaxedCounter bytes_written;
  RelaxedCounter kv_writes;
  RelaxedCounter queue_ops;
  /// Append-only record area: segment appends / full-image rewrites.
  RelaxedCounter record_appends;
  RelaxedCounter record_resets;
  /// Metered stable-storage syncs. Each committing step transaction costs
  /// one, unless the group-commit pipeline coalesces several commits of a
  /// window into a single batch — then syncs/step drops below 1 (A6).
  RelaxedCounter sync_batches;
  /// Delta-shipped migrations (A7): payload bytes that arrived over the
  /// wire at this node vs. full-image bytes materialized locally from a
  /// cached base plus the shipped delta. reconstructed > received is the
  /// bandwidth the shipment cache saved the network.
  RelaxedCounter ship_bytes_received;
  RelaxedCounter ship_bytes_reconstructed;
  /// Crash recovery (A8): bytes / segments the record-log replay touched
  /// to rebuild the read path, and fuzzy checkpoints completed. Classic
  /// (unsegmented) mode meters the full record area as its replay
  /// envelope — the unbounded baseline the segmented log exists to beat.
  RelaxedCounter recovery_replayed_bytes;
  RelaxedCounter recovery_segments;
  RelaxedCounter checkpoints_completed;
};

class StableStorage {
 public:
  // --- durable key/value --------------------------------------------------
  void put(const std::string& key, serial::Bytes value);
  [[nodiscard]] std::optional<serial::Bytes> get(const std::string& key) const;
  bool erase(const std::string& key);
  [[nodiscard]] bool contains(const std::string& key) const;
  /// All keys with the given prefix (recovery scans).
  [[nodiscard]] std::vector<std::string> keys_with_prefix(
      const std::string& prefix) const;
  /// Visit every (key, value) with the given prefix, in key order,
  /// without materializing a vector of key copies. Preferred over
  /// keys_with_prefix for scan loops.
  void for_each_with_prefix(
      const std::string& prefix,
      const std::function<void(const std::string&, const serial::Bytes&)>&
          fn) const;

  // --- append-only record area --------------------------------------------
  // A record is a list of segments: segments[0] is a full base image,
  // the rest are deltas in append order. The hot path only ever appends;
  // compaction replaces the whole list with a freshly merged base
  // (record_reset — the storage layer cannot merge segments itself, the
  // owner supplies the merged image).
  /// Replace the record with a single base segment (also: compaction).
  void record_reset(const std::string& key, serial::Bytes base);
  /// Append a delta segment to an existing record (creates the record if
  /// absent, which recovery treats as a base — callers always reset
  /// first).
  void record_append(const std::string& key, serial::Bytes delta);
  /// Drop the record. Returns false if absent.
  bool record_erase(const std::string& key);
  [[nodiscard]] bool has_record(const std::string& key) const;
  /// The record's segments, base first; nullptr when absent.
  [[nodiscard]] const std::vector<serial::Bytes>* record_segments(
      const std::string& key) const;
  /// Number of segments (0 when absent); the delta-chain length is
  /// segment count - 1, which drives periodic compaction.
  [[nodiscard]] std::size_t record_segment_count(const std::string& key)
      const;

  // --- segmented record log (rotation, checkpoints, recovery) --------------
  // When enabled, the record area's durable representation moves into a
  // rotated CRC32-framed SegmentLog; the record_* API above is unchanged
  // (the log maintains the same materialized per-key index) but writes
  // are metered at framed cost and recovery replays the log instead of
  // trusting the in-memory map. Disabled (classic) mode is bit-exact
  // with the unsegmented seed behavior.
  void enable_segmented_log(SegmentLogConfig config) {
    seg_log_.emplace(config);
  }
  [[nodiscard]] bool segmented() const { return seg_log_.has_value(); }
  /// The underlying log, nullptr in classic mode (tests/benchmarks).
  [[nodiscard]] SegmentLog* segment_log() {
    return seg_log_ ? &*seg_log_ : nullptr;
  }
  /// Bytes a full (unsegmented) replay of the record area would read —
  /// the classic recovery envelope.
  [[nodiscard]] std::size_t record_area_bytes() const;

  /// Fuzzy checkpoint pass-throughs (driven by the tx-layer flush
  /// timers). No-ops returning false/0 in classic mode.
  bool begin_checkpoint();
  /// Completes an in-progress checkpoint; meters the snapshot write and
  /// bumps checkpoints_completed. Returns false if none was in progress.
  bool complete_checkpoint();
  [[nodiscard]] bool checkpoint_in_progress() const {
    return seg_log_ && seg_log_->checkpoint_in_progress();
  }

  /// Crash-time damage hook (PlatformConfig::storage_fault). Classic
  /// mode has no checksummed representation to damage: returns none.
  StorageFault inject_storage_fault(StorageFault fault, std::uint64_t seed);

  /// Rebuild the record read path after a crash. Segmented mode replays
  /// the log (may truncate a torn tail or throw CorruptionError);
  /// classic mode just meters the full-area replay envelope. Bumps the
  /// recovery_* counters either way.
  RecoveryReport recover_records();

  /// Force accumulated writes to disk (the fsync of the model): a pure
  /// metering point — the kv/record/queue state is already applied when
  /// this is called; sync marks where a real engine would pay the barrier.
  void sync() { ++stats_.sync_batches; }

  /// Meter one inbound shipment: `received` payload bytes on the wire
  /// became `reconstructed` full-image bytes in the staged record (equal
  /// for full-image frames, received << reconstructed for deltas).
  void note_shipment(std::size_t received, std::size_t reconstructed) {
    stats_.ship_bytes_received += received;
    stats_.ship_bytes_reconstructed += reconstructed;
  }

  // --- agent input queue ---------------------------------------------------
  /// Append a record. Duplicate record_ids are ignored (exactly-once).
  void enqueue(QueueRecord record);
  /// Remove the record with this id. Returns false if absent.
  bool remove(std::uint64_t record_id);
  [[nodiscard]] bool contains_record(std::uint64_t record_id) const;
  [[nodiscard]] const std::deque<QueueRecord>& queue() const { return queue_; }
  [[nodiscard]] bool queue_empty() const { return queue_.empty(); }
  /// Oldest record, if any.
  [[nodiscard]] const QueueRecord* front() const;
  /// Look up a queued record by id (claimed or not).
  [[nodiscard]] const QueueRecord* find_record(std::uint64_t record_id) const;

  // --- volatile claim marks (slotted scheduling) ---------------------------
  // A node runtime claims a record while one of its execution slots works
  // on it. Claims are runtime state, NOT durable: the record itself stays
  // queued until its transaction commits, and a crash clears every claim so
  // recovery re-offers all records — the restartability the protocols need.
  /// Mark a record claimed. Returns false if absent or already claimed.
  bool claim(std::uint64_t record_id);
  /// Return a claimed record to the pool (abort / backoff path). Removing
  /// a record also drops its claim, so terminal paths need no release.
  void release_claim(std::uint64_t record_id);
  [[nodiscard]] bool claimed(std::uint64_t record_id) const;
  /// Crash: volatile claims evaporate with the node's runtime state.
  void clear_claims();

  [[nodiscard]] const StorageStats& stats() const { return stats_; }

 private:
  std::map<std::string, serial::Bytes> kv_;
  /// Classic (unsegmented) record area; unused when seg_log_ is engaged.
  std::map<std::string, std::vector<serial::Bytes>> records_;
  std::optional<SegmentLog> seg_log_;
  std::deque<QueueRecord> queue_;
  /// Volatile: record ids currently claimed by an execution slot.
  std::unordered_set<std::uint64_t> claimed_;
  /// Ids ever enqueued; dedup must outlive removal so a duplicate commit
  /// of the same transfer cannot re-insert a consumed record.
  std::unordered_set<std::uint64_t> seen_records_;
  StorageStats stats_;
};

}  // namespace mar::storage
