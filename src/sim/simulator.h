// Deterministic discrete-event simulation kernel.
//
// The original system ran on a LAN of workstations; this reproduction runs
// the same protocols over a simulated network so that every experiment is
// deterministic and fault injection is precise. All components (network,
// transaction timeouts, retransmission timers, node recovery) schedule
// closures on this kernel. Time is in integer microseconds.
//
// Events at the same timestamp run in scheduling order (a monotone sequence
// number breaks ties), so a run is a pure function of the initial seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mar::sim {

using TimeUs = std::uint64_t;

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in microseconds.
  [[nodiscard]] TimeUs now() const { return now_; }

  /// Schedule `action` to run at absolute time `at` (>= now).
  void schedule_at(TimeUs at, Action action);

  /// Schedule `action` to run `delay` microseconds from now.
  void schedule_after(TimeUs delay, Action action);

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains. Returns the final time.
  TimeUs run();

  /// Run events with time <= t, then set now to t.
  void run_until(TimeUs t);

  /// Run until either the queue drains or `pred()` becomes true (checked
  /// after every event). Returns true if pred was satisfied.
  bool run_while_pending(const std::function<bool()>& pred);

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    TimeUs at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  TimeUs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mar::sim
