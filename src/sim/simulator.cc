#include "sim/simulator.h"

#include "util/check.h"

namespace mar::sim {

void Simulator::schedule_at(TimeUs at, Action action) {
  MAR_CHECK_MSG(at >= now_, "scheduling into the past: " << at << " < "
                                                         << now_);
  queue_.push(Event{at, next_seq_++, std::move(action)});
}

void Simulator::schedule_after(TimeUs delay, Action action) {
  schedule_at(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the action must be moved out, so
  // copy the small fields first and pop before running (the action may
  // schedule further events).
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.at;
  ++executed_;
  ev.action();
  return true;
}

TimeUs Simulator::run() {
  while (step()) {
  }
  return now_;
}

void Simulator::run_until(TimeUs t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

bool Simulator::run_while_pending(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return false;
}

}  // namespace mar::sim
