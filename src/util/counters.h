// Relaxed-atomic metering counters.
//
// Every world is single-threaded by design, but its metering structs
// (StorageStats, ShipStats) are legitimately sampled from OTHER threads:
// a monitor polling a long-running world for progress, or the TSan stress
// suite observing a world mid-run. A plain uint64_t field makes every such
// sample a data race; RelaxedCounter makes concurrent sampling well-defined
// while keeping the single-writer hot path a plain add.
//
// Relaxed ordering is deliberate and sufficient: counters are monotone
// meters, never synchronization points — a reader only needs SOME recent
// value, and readers that need a consistent cross-counter snapshot must
// quiesce the world first (join its thread), exactly as before.
#pragma once

#include <atomic>
#include <cstdint>

namespace mar {

class RelaxedCounter {
 public:
  constexpr RelaxedCounter() = default;
  constexpr RelaxedCounter(std::uint64_t v) : v_(v) {}  // NOLINT(google-explicit-constructor)
  RelaxedCounter(const RelaxedCounter& o) : v_(o.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    store(o.load());
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t v) {
    store(v);
    return *this;
  }

  /// Counters read like the plain integers they replaced.
  operator std::uint64_t() const { return load(); }  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::uint64_t load() const {
    return v_.load(std::memory_order_relaxed);
  }
  void store(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

}  // namespace mar
