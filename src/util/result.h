// Status / Result<T>: expected-style error propagation for *anticipated*
// failures (lock conflicts, aborted transactions, failing compensations).
//
// Programming errors use MAR_CHECK (exceptions); environmental failures the
// algorithms must react to use Status codes, because the paper's protocols
// branch on them (e.g. a failing compensation transaction is retried, a
// lock conflict aborts a step transaction which is then restarted).
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "util/check.h"

namespace mar {

/// Error categories surfaced by the substrate and the rollback machinery.
enum class Errc {
  ok = 0,
  /// Lock could not be acquired: the enclosing transaction must abort.
  lock_conflict,
  /// The transaction was aborted (explicitly or by a crash).
  tx_aborted,
  /// Referenced entity (resource, account, queue record, ...) not found.
  not_found,
  /// Operation arguments violate a resource's rules (e.g. overdraft).
  rejected,
  /// A compensating operation failed (Sec. 3.2: compensation may fail).
  compensation_failed,
  /// The target node is unreachable (crashed / partitioned).
  unreachable,
  /// The operation is not permitted in the current context, e.g. accessing
  /// strongly reversible objects from a compensating operation (Sec. 4.3).
  forbidden,
  /// Serialization / deserialization failure.
  codec_error,
  /// The step contains a non-compensatable operation (Sec. 3.2).
  not_compensatable,
  /// Itinerary is malformed (e.g. step entries in the main itinerary).
  invalid_itinerary,
  /// Internal protocol violation.
  protocol_error,
};

[[nodiscard]] constexpr std::string_view to_string(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::lock_conflict: return "lock_conflict";
    case Errc::tx_aborted: return "tx_aborted";
    case Errc::not_found: return "not_found";
    case Errc::rejected: return "rejected";
    case Errc::compensation_failed: return "compensation_failed";
    case Errc::unreachable: return "unreachable";
    case Errc::forbidden: return "forbidden";
    case Errc::codec_error: return "codec_error";
    case Errc::not_compensatable: return "not_compensatable";
    case Errc::invalid_itinerary: return "invalid_itinerary";
    case Errc::protocol_error: return "protocol_error";
  }
  return "unknown";
}

inline std::ostream& operator<<(std::ostream& os, Errc e) {
  return os << to_string(e);
}

/// Outcome of an operation that produces no value.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(Errc code, std::string message = {})  // NOLINT(google-explicit-constructor)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status{}; }

  [[nodiscard]] bool is_ok() const { return code_ == Errc::ok; }
  [[nodiscard]] Errc code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    std::string s{mar::to_string(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& s, Errc e) { return s.code_ == e; }

 private:
  Errc code_ = Errc::ok;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

/// Outcome of an operation that produces a T on success.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    MAR_CHECK_MSG(!std::get<Status>(data_).is_ok(),
                  "Result constructed from an ok Status without a value");
  }
  Result(Errc code, std::string message = {})  // NOLINT
      : data_(Status(code, std::move(message))) {}

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(data_); }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(data_);
  }
  [[nodiscard]] Errc code() const { return status().code(); }

  [[nodiscard]] const T& value() const& {
    MAR_CHECK_MSG(is_ok(), "Result::value() on error: " << status());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    MAR_CHECK_MSG(is_ok(), "Result::value() on error: " << status());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() && {
    MAR_CHECK_MSG(is_ok(), "Result::take() on error: " << status());
    return std::get<T>(std::move(data_));
  }
  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

/// Early-return helper: propagate a non-ok Status from the current function.
#define MAR_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::mar::Status mar_status_ = (expr);            \
    if (!mar_status_.is_ok()) return mar_status_;  \
  } while (false)

}  // namespace mar
