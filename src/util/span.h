// Causal spans and the per-node flight recorder.
//
// TraceSink (util/trace.h) records *what* happened; spans record *where
// time went*. Every step/migration carries a (trace_id, span_id,
// parent_span) context — trace_id is minted once per agent at launch,
// each executed hop opens a root "hop" span, and the phases inside it
// (queue-wait, lock-wait, step-exec, group-commit-flush, convoy-wait,
// wire, apply, recovery-replay) are children. The context piggybacks on
// the existing QueueRecord, so it rides ship.convoy frames and prepared
// tx markers without new message types; tools/trace_timeline.py stitches
// the spans of all nodes back into per-agent hop timelines.
//
// The sink doubles as the flight recorder: spans land in bounded
// per-node ring buffers, and on a crash, CorruptionError or
// LockAuditError the owning runtime dumps the node's recent ring as
// JSONL for post-mortem reading. Timestamps are simulation time, so a
// dump is deterministic for a seed.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mar {

/// The phase taxonomy. One span kind per place a hop can spend time.
enum class SpanKind : std::uint8_t {
  hop,             ///< root: record enqueued -> step transaction committed
  queue_wait,      ///< enqueued at the node -> claimed by an execution slot
  lock_wait,       ///< lock-conflict abort -> the retry's re-claim
  step_exec,       ///< application step body (service time)
  commit_flush,    ///< commit_async -> completion (group-commit flush wait;
                   ///< for migrations includes the shipping round trip)
  convoy_wait,     ///< transfer staged -> its convoy dispatched
  wire,            ///< convoy sent -> received (network latency)
  apply,           ///< receiver-side staging of a shipped record
  recovery_replay, ///< record-log replay during node recovery
};

[[nodiscard]] std::string_view to_string(SpanKind k);

struct Span {
  std::uint64_t trace_id = 0;  ///< one per agent execution (launch-minted)
  std::uint64_t span_id = 0;
  std::uint64_t parent = 0;    ///< 0 = root
  SpanKind kind = SpanKind::hop;
  std::uint32_t node = 0;
  std::uint64_t agent = 0;     ///< AgentId value; 0 when not agent-bound
  std::uint64_t begin_us = 0;  ///< simulation time
  std::uint64_t end_us = 0;
  std::string note;            ///< small free-form payload ("steps=3")

  void write_jsonl(std::ostream& os) const;
};

/// Collects finished spans into bounded per-node rings. NOT mutex-guarded:
/// unlike the counters (which monitor threads sample mid-run), spans are
/// recorded and read only from the single thread that owns the world —
/// a hop emits several spans, so the record path must stay at
/// store-into-a-slot cost. Read the rings after the world quiesces.
/// Span ids come from one deterministic counter per sink — a world owns
/// exactly one sink, so ids are stable for a seed regardless of host
/// thread count.
class SpanSink {
 public:
  /// Next span id (starts at 1; 0 means "no parent"). Ids are allocated
  /// when a span opens so children can parent to it before it closes.
  std::uint64_t next_id() { return next_id_++; }

  void record(Span span);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  /// Per-node ring capacity; oldest spans fall off beyond it. Resets
  /// the retained rings — configure before recording.
  void set_capacity(std::size_t cap);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t count(SpanKind kind) const;
  /// All retained spans, allocation (span_id) order.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::vector<Span> of_kind(SpanKind kind) const;

  /// JSONL dump of every retained span, span_id order (all nodes).
  void dump(std::ostream& os) const;
  /// Flight-recorder dump: one header line naming the reason, then the
  /// node's retained ring in span_id order.
  void dump_node(std::uint32_t node, std::string_view reason,
                 std::uint64_t time_us, std::ostream& os) const;

  void clear();

 private:
  /// A bounded circular buffer: grows to `capacity_` then overwrites in
  /// place — zero allocations on the steady-state hot path (a deque
  /// would malloc a chunk every few spans). `head` is the oldest slot
  /// once full; logical order is recovered by sorting on span_id.
  struct Ring {
    std::vector<Span> buf;
    std::size_t head = 0;
  };

  /// Oldest-first copy of one ring.
  static void append_in_order(const Ring& ring, std::vector<Span>& out);

  /// Rings indexed by node id (node ids are small dense integers; an
  /// index beats a map lookup on the record path). Grown on demand.
  std::vector<Ring> rings_;
  std::uint64_t next_id_ = 1;
  std::size_t capacity_ = 4096;
  bool enabled_ = true;
};

}  // namespace mar
