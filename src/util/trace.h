// Structured execution tracing.
//
// The figure-reproduction benches (Fig. 1–3 of the paper) and several
// integration tests need an ordered record of what the platform did:
// step-transaction begin/commit/abort, agent migrations, compensation
// transactions, savepoint writes. Components emit events into a TraceSink
// owned by the simulation world; benches render them, tests assert on them.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace mar {

/// Categories of trace events, roughly one per protocol action.
enum class TraceKind {
  step_begin,       ///< A step transaction started.
  step_commit,      ///< A step transaction committed.
  step_abort,       ///< A step transaction aborted.
  migrate,          ///< Agent enqueued at another node (within a tx).
  savepoint,        ///< A savepoint entry was written to the rollback log.
  rollback_begin,   ///< Partial rollback initiated by the application.
  comp_begin,       ///< A compensation transaction started.
  comp_op,          ///< A compensating operation was executed.
  comp_commit,      ///< A compensation transaction committed.
  comp_abort,       ///< A compensation transaction aborted.
  restore,          ///< Strongly reversible objects restored from an SP.
  rollback_done,    ///< Rollback reached the target savepoint.
  rce_shipped,      ///< Resource compensation entries shipped (optimized).
  mce_shipped,      ///< Mixed step's entries + weak state shipped (adaptive).
  convoy,           ///< Batched agent transfers left for one destination.
  log_discard,      ///< Whole rollback log discarded (itinerary semantics).
  sp_gc,            ///< A savepoint entry garbage-collected from the log.
  crash,            ///< Node crashed.
  recover,          ///< Node recovered.
  tx_pipeline,      ///< Commit-pipeline transition (decided/flushed/acked).
  storage_recovery, ///< Record-log recovery scan (replayed bytes/segments).
  msg,              ///< Free-form message.
};

[[nodiscard]] std::string_view to_string(TraceKind k);

struct TraceEvent {
  std::uint64_t time_us = 0;  ///< Simulation time in microseconds.
  TraceKind kind = TraceKind::msg;
  std::uint32_t node = 0;     ///< Node where the event occurred.
  std::string detail;         ///< Human-readable payload.
};

/// Collects trace events in order. Mutations and the copying accessors
/// (emit / count / of_kind / size / clear / print) are mutex-guarded, so a
/// sink may be shared by worlds running on different threads (parallel
/// experiment sweeps that funnel one event stream) or polled live by a
/// monitor thread. events() returns an unguarded reference and remains
/// owner-thread-only: call it only when no other thread is emitting.
class TraceSink {
 public:
  void emit(std::uint64_t time_us, TraceKind kind, std::uint32_t node,
            std::string detail);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear();

  /// Number of events recorded so far.
  [[nodiscard]] std::size_t size() const;

  /// Number of events of the given kind.
  [[nodiscard]] std::size_t count(TraceKind kind) const;

  /// All events of a given kind, in order.
  [[nodiscard]] std::vector<TraceEvent> of_kind(TraceKind kind) const;

  /// Render the whole trace, one event per line.
  void print(std::ostream& os) const;

  /// Whether to also stream events to stderr as they happen (debugging).
  void set_echo(bool on) { echo_ = on; }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  bool echo_ = false;
};

}  // namespace mar
