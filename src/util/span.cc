#include "util/span.h"

#include <algorithm>

namespace mar {

std::string_view to_string(SpanKind k) {
  switch (k) {
    case SpanKind::hop: return "hop";
    case SpanKind::queue_wait: return "queue_wait";
    case SpanKind::lock_wait: return "lock_wait";
    case SpanKind::step_exec: return "step_exec";
    case SpanKind::commit_flush: return "commit_flush";
    case SpanKind::convoy_wait: return "convoy_wait";
    case SpanKind::wire: return "wire";
    case SpanKind::apply: return "apply";
    case SpanKind::recovery_replay: return "recovery_replay";
  }
  return "?";
}

namespace {
// Notes are short ASCII ("steps=3"); escape just enough to keep the
// JSONL well-formed if one ever carries a quote or control byte.
std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}
}  // namespace

void Span::write_jsonl(std::ostream& os) const {
  os << "{\"trace_id\": " << trace_id << ", \"span_id\": " << span_id
     << ", \"parent\": " << parent << ", \"kind\": \"" << to_string(kind)
     << "\", \"node\": " << node << ", \"agent\": " << agent
     << ", \"begin_us\": " << begin_us << ", \"end_us\": " << end_us
     << ", \"note\": \"" << escape(note) << "\"}\n";
}

void SpanSink::record(Span span) {
  if (!enabled_) return;
  if (span.node >= rings_.size()) rings_.resize(span.node + 1);
  auto& ring = rings_[span.node];
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(std::move(span));
  } else {
    // Full: overwrite the oldest slot in place — no allocation.
    ring.buf[ring.head] = std::move(span);
    ring.head = (ring.head + 1) % ring.buf.size();
  }
}

void SpanSink::set_capacity(std::size_t cap) {
  capacity_ = cap;
  rings_.clear();
}

void SpanSink::append_in_order(const Ring& ring, std::vector<Span>& out) {
  for (std::size_t i = ring.head; i < ring.buf.size(); ++i)
    out.push_back(ring.buf[i]);
  for (std::size_t i = 0; i < ring.head; ++i) out.push_back(ring.buf[i]);
}

std::size_t SpanSink::size() const {
  std::size_t n = 0;
  for (const Ring& ring : rings_) n += ring.buf.size();
  return n;
}

std::size_t SpanSink::count(SpanKind kind) const {
  std::size_t n = 0;
  for (const Ring& ring : rings_)
    for (const Span& s : ring.buf)
      if (s.kind == kind) ++n;
  return n;
}

std::vector<Span> SpanSink::spans() const {
  std::vector<Span> out;
  for (const Ring& ring : rings_) append_in_order(ring, out);
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.span_id < b.span_id; });
  return out;
}

std::vector<Span> SpanSink::of_kind(SpanKind kind) const {
  std::vector<Span> out;
  for (Span& s : spans())
    if (s.kind == kind) out.push_back(std::move(s));
  return out;
}

void SpanSink::dump(std::ostream& os) const {
  for (const Span& s : spans()) s.write_jsonl(os);
}

void SpanSink::dump_node(std::uint32_t node, std::string_view reason,
                         std::uint64_t time_us, std::ostream& os) const {
  std::vector<Span> ours;
  if (node < rings_.size()) append_in_order(rings_[node], ours);
  std::sort(ours.begin(), ours.end(),
            [](const Span& a, const Span& b) { return a.span_id < b.span_id; });
  os << "{\"event\": \"flight_dump\", \"node\": " << node << ", \"reason\": \""
     << escape(reason) << "\", \"time_us\": " << time_us
     << ", \"spans\": " << ours.size() << "}\n";
  for (const Span& s : ours) s.write_jsonl(os);
}

void SpanSink::clear() {
  rings_.clear();
  next_id_ = 1;
}

}  // namespace mar
