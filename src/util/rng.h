// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulation (fault plans, workload
// generators, property tests) draws from this generator so that every run
// is reproducible from a single seed. The engine is splitmix64-seeded
// xoshiro256**, which is small, fast and statistically solid.
#pragma once

#include <cstdint>
#include <vector>

namespace mar {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) — bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5);

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for sub-components).
  Rng split();

 private:
  std::uint64_t state_[4];
};

}  // namespace mar
