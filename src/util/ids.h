// Strongly typed identifiers used across the library.
//
// Distinct tag types prevent accidentally passing, say, a transaction id
// where a node id is expected (Core Guidelines I.4: make interfaces
// precisely and strongly typed).
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace mar {

/// A strongly typed integral identifier. `Tag` only disambiguates the type.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid_rep; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

  static constexpr Rep invalid_rep = static_cast<Rep>(-1);
  static constexpr StrongId invalid() { return StrongId(invalid_rep); }

 private:
  Rep value_ = invalid_rep;
};

struct NodeIdTag {};
struct AgentIdTag {};
struct TxIdTag {};
struct SavepointIdTag {};
struct MsgIdTag {};

/// Identifies a network node (an agent server in Mole terminology).
using NodeId = StrongId<NodeIdTag, std::uint32_t>;
/// Identifies an agent instance.
using AgentId = StrongId<AgentIdTag, std::uint64_t>;
/// Identifies a (possibly distributed) transaction.
using TxId = StrongId<TxIdTag, std::uint64_t>;
/// Identifies an agent savepoint (unique within one agent's execution).
using SavepointId = StrongId<SavepointIdTag, std::uint32_t>;
/// Identifies a network message (for reliable-transport dedup).
using MsgId = StrongId<MsgIdTag, std::uint64_t>;

}  // namespace mar

namespace std {
template <typename Tag, typename Rep>
struct hash<mar::StrongId<Tag, Rep>> {
  size_t operator()(mar::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
