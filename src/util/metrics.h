// Unified metrics registry: counters, gauges, and latency histograms.
//
// The stats structs scattered through the tree (StorageStats, ShipStats,
// TxStats) stay where they are — their owners keep bumping plain
// RelaxedCounter fields on the hot path — but every field is *registered*
// here under a dotted name ("storage.bytes_written", "ship.delta_ships"),
// so one snapshot call reports the whole node uniformly instead of each
// bench hand-picking counters. On top of that the registry owns
// log-bucketed Histograms for latency distributions (p50/p95/p99 in bench
// reports): power-of-2 buckets, lock-free relaxed-atomic increments, so a
// monitor thread may sample mid-run exactly like the counters.
//
// Snapshots are deterministic: names are emitted sorted, values are plain
// integers, and within one single-threaded world the recorded multiset is
// seed-determined — so bit-identical JSON across expt::run_worlds thread
// counts is an invariant the tests hold.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "util/counters.h"

namespace mar {

/// Log-bucketed latency histogram. Bucket i counts values whose
/// bit_width is i: bucket 0 holds exactly 0, bucket i (i >= 1) holds
/// [2^(i-1), 2^i). Increments are relaxed atomics — same sampling
/// contract as RelaxedCounter.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum() const;
  [[nodiscard]] std::uint64_t bucket(int i) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// A quiesced copy of one histogram: bucket counts plus the derived
/// quantiles benches report. Mergeable across nodes (bucket-wise sum).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};

  /// Quantile estimate (p in [0,1]): linear interpolation inside the
  /// bucket the p-th sample falls into. Deterministic for a fixed
  /// multiset of recorded values.
  [[nodiscard]] std::uint64_t percentile(double p) const;
  void merge(const HistogramSnapshot& o);
};

/// A quiesced copy of a whole registry. Scalars cover both counters and
/// gauges (the snapshot flattens the distinction — both are one u64).
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> scalars;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Merge another node's snapshot: scalars sum, histograms sum
  /// bucket-wise (a fleet-wide latency distribution is exactly the union
  /// of the per-node ones).
  void merge(const MetricsSnapshot& o);

  /// Deterministic single-line JSON: sorted names, integer values,
  /// histograms as {"count","sum","p50","p95","p99","max"}.
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// Register a counter field by pointer; the owner keeps writing it in
  /// place. The pointee must outlive the registry (stats structs are
  /// members of the same NodeRuntime that owns the registry).
  void register_counter(std::string name, const RelaxedCounter* counter);
  /// Register a computed value, sampled at snapshot time.
  void register_gauge(std::string name, std::function<std::uint64_t()> fn);
  /// Registry-owned histogram; created on first use, stable address.
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::map<std::string, const RelaxedCounter*> counters_;
  std::map<std::string, std::function<std::uint64_t()>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mar
