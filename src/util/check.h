// Lightweight contract checking for the mar library.
//
// MAR_CHECK is used for preconditions and invariants that indicate a
// programming error when violated; it throws mar::LogicError so that tests
// can observe violations deterministically (each simulation world is
// single-threaded, so stack unwinding is always safe).
//
// MAR_DCHECK is the debug-only variant for hot-path internal invariants:
// in release builds (NDEBUG) the condition is type-checked but neither
// evaluated nor branched on. Checks whose violation a test asserts on (the
// per-key declaration audit, public-API preconditions) must stay MAR_CHECK
// — the tier-1 suite runs release builds.
//
// Both macros evaluate the condition expression EXACTLY once when armed
// (and zero times when compiled out); side effects in check conditions are
// still a bug, but they will not double-fire.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mar {

/// Thrown when an internal invariant or precondition is violated.
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MAR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}
}  // namespace detail

}  // namespace mar

#define MAR_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) ::mar::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define MAR_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream mar_check_os;                                \
      mar_check_os << msg;                                            \
      ::mar::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                  mar_check_os.str());                \
    }                                                                 \
  } while (false)

// Debug-only checks. The release expansion keeps the expression inside an
// unevaluated `false && (expr)` so variables referenced only by DCHECKs
// stay used (no -Werror=unused fallout) and the condition stays
// type-checked, while the optimizer removes the whole statement.
#ifdef NDEBUG
#define MAR_DCHECK(expr)                 \
  do {                                   \
    if (false && (expr)) { /* no-op */   \
    }                                    \
  } while (false)
#define MAR_DCHECK_MSG(expr, msg)        \
  do {                                   \
    if (false && (expr)) { /* no-op */   \
    }                                    \
  } while (false)
#else
#define MAR_DCHECK(expr) MAR_CHECK(expr)
#define MAR_DCHECK_MSG(expr, msg) MAR_CHECK_MSG(expr, msg)
#endif
