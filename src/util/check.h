// Lightweight contract checking for the mar library.
//
// MAR_CHECK is used for preconditions and invariants that indicate a
// programming error when violated; it throws mar::LogicError so that tests
// can observe violations deterministically (the library is exercised inside
// a single-threaded simulation, so stack unwinding is always safe).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mar {

/// Thrown when an internal invariant or precondition is violated.
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MAR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw LogicError(os.str());
}
}  // namespace detail

}  // namespace mar

#define MAR_CHECK(expr)                                                   \
  do {                                                                    \
    if (!(expr)) ::mar::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define MAR_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream mar_check_os;                                \
      mar_check_os << msg;                                            \
      ::mar::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                  mar_check_os.str());                \
    }                                                                 \
  } while (false)
