#include "util/metrics.h"

#include <bit>

#include "util/check.h"

namespace mar {

void Histogram::record(std::uint64_t v) {
  const int b = std::bit_width(v);  // 0 for v==0, else floor(log2)+1
  buckets_[static_cast<std::size_t>(b)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}
std::uint64_t Histogram::sum() const {
  return sum_.load(std::memory_order_relaxed);
}
std::uint64_t Histogram::bucket(int i) const {
  MAR_CHECK(i >= 0 && i < kBuckets);
  return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
}

std::uint64_t HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  // Rank of the target sample, 1-based; p=1 lands on the last sample.
  const auto rank =
      static_cast<std::uint64_t>(p * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (seen + n >= rank) {
      if (i == 0) return 0;  // bucket 0 holds exactly the value 0
      // Bucket i spans [2^(i-1), 2^i); interpolate by rank within it.
      const std::uint64_t lo = std::uint64_t{1} << (i - 1);
      const std::uint64_t width = lo;  // 2^i - 2^(i-1)
      const std::uint64_t into = rank - seen - 1;
      return lo + (n > 1 ? width * into / (n - 1) : width / 2);
    }
    seen += n;
  }
  return 0;  // unreachable when counts are consistent
}

void HistogramSnapshot::merge(const HistogramSnapshot& o) {
  count += o.count;
  sum += o.sum;
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += o.buckets[i];
}

void MetricsSnapshot::merge(const MetricsSnapshot& o) {
  for (const auto& [name, v] : o.scalars) scalars[name] += v;
  for (const auto& [name, h] : o.histograms) histograms[name].merge(h);
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"scalars\": {";
  bool first = true;
  for (const auto& [name, v] : scalars) {
    if (!first) out += ", ";
    first = false;
    out += '"' + name + "\": " + std::to_string(v);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ", ";
    first = false;
    out += '"' + name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"p50\": " + std::to_string(h.percentile(0.50)) +
           ", \"p95\": " + std::to_string(h.percentile(0.95)) +
           ", \"p99\": " + std::to_string(h.percentile(0.99)) +
           ", \"max\": " + std::to_string(h.percentile(1.0)) + "}";
  }
  return out + "}}";
}

void MetricsRegistry::register_counter(std::string name,
                                       const RelaxedCounter* counter) {
  MAR_CHECK(counter != nullptr);
  counters_[std::move(name)] = counter;
}

void MetricsRegistry::register_gauge(std::string name,
                                     std::function<std::uint64_t()> fn) {
  MAR_CHECK(fn != nullptr);
  gauges_[std::move(name)] = std::move(fn);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.scalars[name] = c->load();
  for (const auto& [name, fn] : gauges_) snap.scalars[name] = fn();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    for (int i = 0; i < Histogram::kBuckets; ++i)
      hs.buckets[static_cast<std::size_t>(i)] = h->bucket(i);
    snap.histograms[name] = hs;
  }
  return snap;
}

}  // namespace mar
