#include "util/trace.h"

#include <iomanip>
#include <iostream>

namespace mar {

std::string_view to_string(TraceKind k) {
  switch (k) {
    case TraceKind::step_begin: return "STEP-BEGIN";
    case TraceKind::step_commit: return "STEP-COMMIT";
    case TraceKind::step_abort: return "STEP-ABORT";
    case TraceKind::migrate: return "MIGRATE";
    case TraceKind::savepoint: return "SAVEPOINT";
    case TraceKind::rollback_begin: return "ROLLBACK-BEGIN";
    case TraceKind::comp_begin: return "COMP-BEGIN";
    case TraceKind::comp_op: return "COMP-OP";
    case TraceKind::comp_commit: return "COMP-COMMIT";
    case TraceKind::comp_abort: return "COMP-ABORT";
    case TraceKind::restore: return "RESTORE";
    case TraceKind::rollback_done: return "ROLLBACK-DONE";
    case TraceKind::rce_shipped: return "RCE-SHIPPED";
    case TraceKind::mce_shipped: return "MCE-SHIPPED";
    case TraceKind::convoy: return "CONVOY";
    case TraceKind::log_discard: return "LOG-DISCARD";
    case TraceKind::sp_gc: return "SP-GC";
    case TraceKind::crash: return "CRASH";
    case TraceKind::recover: return "RECOVER";
    case TraceKind::tx_pipeline: return "TX-PIPELINE";
    case TraceKind::storage_recovery: return "STORAGE-RECOVERY";
    case TraceKind::msg: return "MSG";
  }
  return "?";
}

void TraceSink::emit(std::uint64_t time_us, TraceKind kind, std::uint32_t node,
                     std::string detail) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(TraceEvent{time_us, kind, node, std::move(detail)});
  if (echo_) {
    const auto& e = events_.back();
    std::cerr << "[t=" << e.time_us << "us N" << e.node << "] "
              << to_string(e.kind) << " " << e.detail << "\n";
  }
}

void TraceSink::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::size_t TraceSink::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t TraceSink::count(TraceKind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<TraceEvent> TraceSink::of_kind(TraceKind kind) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

void TraceSink::print(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : events_) {
    os << "[t=" << std::setw(10) << e.time_us << "us N" << e.node << "] "
       << std::setw(14) << std::left << to_string(e.kind) << std::right << " "
       << e.detail << "\n";
  }
}

}  // namespace mar
