#include "ship/shipment_manager.h"

#include <algorithm>

#include "agent/agent.h"
#include "serial/decoder.h"
#include "serial/encoder.h"
#include "util/check.h"

namespace mar::ship {

namespace {

/// Content identity of a base image (FNV-1a 64). Both channel ends hash
/// the exact bytes a delta applies to; a mismatch (lost ack, divergent
/// caches) downgrades the shipment to a full image instead of silently
/// reconstructing the wrong state.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

/// Convoy entry modes.
constexpr std::uint8_t kFullFrame = 0;
constexpr std::uint8_t kDeltaFrame = 1;
/// OR'd into the frame-mode byte when the coordinator runs the pipelined
/// commit path: the convoy entry doubles as the 2PC PREPARE for its
/// transaction, so a transfer costs one round trip — no tx.prepare
/// message ever crosses the wire for a convoyed hop.
constexpr std::uint8_t kPrepareFlag = 2;
/// Per-entry ack statuses.
constexpr std::uint8_t kStaged = 0;
constexpr std::uint8_t kNeedFull = 1;

}  // namespace

// ---------------------------------------------------------------------------
// BaseCache
// ---------------------------------------------------------------------------

ShipmentManager::BaseEntry* ShipmentManager::BaseCache::find(
    NodeId peer, AgentId agent) {
  auto it = entries_.find(key_of(peer, agent));
  if (it == entries_.end()) return nullptr;
  it->second.tick = ++tick_;
  return &it->second;
}

void ShipmentManager::BaseCache::put(NodeId peer, AgentId agent,
                                     serial::Bytes image,
                                     std::uint64_t epoch, std::size_t budget,
                                     std::shared_ptr<agent::Agent> decoded) {
  erase(peer, agent);
  if (image.size() > budget) return;  // would evict everything else anyway
  BaseEntry e;
  e.epoch = epoch;
  e.hash = fnv1a(image);
  e.tick = ++tick_;
  e.decoded = std::move(decoded);
  total_ += image.size();
  e.image = std::move(image);
  entries_.emplace(key_of(peer, agent), std::move(e));
  while (total_ > budget) {
    auto lru = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.tick < lru->second.tick) lru = it;
    }
    total_ -= lru->second.image.size();
    entries_.erase(lru);
  }
}

void ShipmentManager::BaseCache::erase(NodeId peer, AgentId agent) {
  auto it = entries_.find(key_of(peer, agent));
  if (it == entries_.end()) return;
  total_ -= it->second.image.size();
  entries_.erase(it);
}

void ShipmentManager::BaseCache::clear() {
  entries_.clear();
  total_ = 0;
}

// ---------------------------------------------------------------------------
// ShipmentManager
// ---------------------------------------------------------------------------

ShipmentManager::ShipmentManager(agent::Platform& platform, NodeId self,
                                 tx::TxManager& txm, tx::QueueManager& qm,
                                 storage::StableStorage& storage)
    : p_(platform), self_(self), txm_(txm), qm_(qm), storage_(storage) {}

void ShipmentManager::after(sim::TimeUs delay, std::function<void()> fn) {
  const auto epoch = run_epoch_;
  p_.sim().schedule_after(delay, [this, epoch, fn = std::move(fn)] {
    if (epoch == run_epoch_) fn();
  });
}

void ShipmentManager::encode_frame(Pending& p) {
  const auto& cfg = p_.config();
  // Frame size depends on the delta-vs-full branch below; pre-sizing
  // would have to run the diff twice.
  serial::Encoder enc;  // mar-lint: small-frame
  enc.write_u64(p.tx.value());
  // Piggybacked PREPARE: with the pipelined coordinator the frame itself
  // asks the receiver to prepare-and-vote once it staged the transfer.
  const std::uint8_t prep = txm_.pipelined() ? kPrepareFlag : 0;
  p.delta = false;
  if (cfg.ship_delta && !p.record.payload.empty()) {
    if (auto* base = send_cache_.find(p.dest, p.record.agent)) {
      std::optional<serial::Bytes> delta;
      try {
        if (base->decoded == nullptr) {
          base->decoded = agent::decode_agent(p_.agent_types(), base->image);
        }
        // The payload decode is retained: once acknowledged it becomes
        // the channel's next base in already-decoded form, so steady
        // ping-pong pays one decode per hop, not three.
        p.decoded_payload =
            agent::decode_agent(p_.agent_types(), p.record.payload);
        delta = encode_agent_delta_between(*base->decoded,
                                           *p.decoded_payload);
      } catch (const serial::DecodeError&) {
        delta.reset();  // corrupt cache entry: fall back and re-establish
      }
      if (delta.has_value() &&
          static_cast<double>(delta->size()) <=
              cfg.ship_delta_max_ratio *
                  static_cast<double>(p.record.payload.size())) {
        p.delta = true;
        enc.write_u8(kDeltaFrame | prep);
        // The delta frame carries the record verbatim minus its payload
        // (the delta follows instead). Swapping the payload aside keeps
        // the copy cheap AND future record fields on the delta path.
        serial::Bytes payload;
        payload.swap(p.record.payload);
        storage::QueueRecord header = p.record;
        payload.swap(p.record.payload);
        header.serialize(enc);
        enc.write_u64(base->epoch);
        enc.write_u64(base->hash);
        enc.write_bytes(*delta);
        ++stats_.delta_ships;
      } else {
        ++stats_.delta_fallbacks;
      }
    }
  }
  if (!p.delta) {
    enc.write_u8(kFullFrame | prep);
    p.record.serialize(enc);
    ++stats_.full_images;
  }
  p.frame = std::move(enc).take();
}

void ShipmentManager::stage_remote(TxId tx, NodeId dest,
                                   storage::QueueRecord record,
                                   std::function<void(bool)> done) {
  const auto& cfg = p_.config();
  Pending p;
  p.tx = tx;
  p.dest = dest;
  p.record = std::move(record);
  p.staged_at = p_.sim().now();
  p.done = std::move(done);
  encode_frame(p);
  if (cfg.stage_timeout_us > 0) {
    // Covers the convoy dwell time, the transfer, and a need_full retry
    // round trip — which re-ships the FULL image, so the transfer term is
    // sized from the payload even when the first frame is a small delta.
    const auto wire = std::max(p.frame.size(), p.record.payload.size());
    const auto timeout = cfg.stage_timeout_us + cfg.ship_convoy_flush_us +
                         4 * p_.net().transfer_time(self_, dest, wire);
    after(timeout, [this, tx] { timeout_pending(tx); });
  }
  auto& queue = convoy_queue_[dest];
  queue.push_back(std::move(p));
  if (queue.size() >= std::max<std::uint32_t>(1, cfg.ship_convoy_window)) {
    flush_convoy(dest);
  } else {
    arm_flush(dest);
  }
}

void ShipmentManager::arm_flush(NodeId dest) {
  if (flush_armed_.contains(dest)) return;
  flush_armed_.insert(dest);
  const auto gen = flush_gen_[dest];
  after(p_.config().ship_convoy_flush_us, [this, dest, gen] {
    // A window-full flush in the meantime bumped the generation: this
    // timer must not cut the NEXT partial convoy's dwell time short.
    if (gen != flush_gen_[dest]) return;
    flush_armed_.erase(dest);
    flush_convoy(dest);
  });
}

void ShipmentManager::flush_convoy(NodeId dest) {
  ++flush_gen_[dest];
  flush_armed_.erase(dest);
  auto it = convoy_queue_.find(dest);
  if (it == convoy_queue_.end() || it->second.empty()) return;
  auto batch = std::move(it->second);
  convoy_queue_.erase(it);
  dispatch_convoy(dest, std::move(batch));
}

void ShipmentManager::dispatch_convoy(NodeId dest,
                                      std::vector<Pending> batch) {
  const auto now = p_.sim().now();
  std::size_t wire = 8 + serial::varint_size(batch.size());
  for (const auto& p : batch) wire += serial::blob_size(p.frame.size());
  serial::Encoder enc(wire);
  // Departure stamp: the receiver turns it into the wire span of each
  // entry (global simulation clock, so sender/receiver times compare).
  enc.write_u64(now);
  enc.write_varint(batch.size());
  for (const auto& p : batch) enc.write_bytes(p.frame);
  if (p_.spans().enabled()) {
    for (const auto& p : batch) {
      Span s;
      s.trace_id = p.record.trace_id;
      s.span_id = p_.spans().next_id();
      s.parent = p.record.trace_parent;
      s.kind = SpanKind::convoy_wait;
      s.node = self_.value();
      s.agent = p.record.agent.value();
      s.begin_us = p.staged_at;
      s.end_us = now;
      p_.spans().record(s);
    }
  }
  ++stats_.convoys_sent;
  stats_.entries_sent += batch.size();
  stats_.wire_payload_bytes += enc.size();
  p_.trace().emit(p_.sim().now(), TraceKind::convoy, self_.value(),
                  std::to_string(batch.size()) + " record(s) -> N" +
                      std::to_string(dest.value()) + " (" +
                      std::to_string(enc.size()) + " bytes)");
  for (auto& p : batch) {
    const auto tx = p.tx;
    awaiting_.insert_or_assign(tx, std::move(p));
  }
  p_.net().send(net::Message{self_, dest, msg::convoy, std::move(enc).take()});
}

void ShipmentManager::timeout_pending(TxId tx) {
  for (auto& [dest, queue] : convoy_queue_) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->tx != tx) continue;
      auto done = std::move(it->done);
      queue.erase(it);
      done(false);
      return;
    }
  }
  auto it = awaiting_.find(tx);
  if (it == awaiting_.end()) return;  // already acked
  auto done = std::move(it->second.done);
  awaiting_.erase(it);
  done(false);
}

void ShipmentManager::on_convoy(const net::Message& m) {
  serial::Decoder dec(m.payload);
  const auto sent_at = dec.read_u64();
  const auto count = dec.read_count();
  serial::Encoder ack(8 + serial::varint_size(count) + count * (8 + 1));
  ack.write_u64(epoch_tag_);
  ack.write_varint(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    serial::Decoder entry(dec.read_bytes_view());
    const TxId tx(entry.read_u64());
    const auto mode_byte = entry.read_u8();
    const bool prepare_rides = (mode_byte & kPrepareFlag) != 0;
    const std::uint8_t mode = mode_byte & static_cast<std::uint8_t>(~kPrepareFlag);
    storage::QueueRecord rec;
    rec.deserialize(entry);
    // The record is consumed by the staging below; keep what the spans
    // need.
    const auto trace_id = rec.trace_id;
    const auto trace_parent = rec.trace_parent;
    const auto agent_value = rec.agent.value();
    std::uint8_t status = kStaged;
    std::size_t wire_bytes = rec.payload.size();
    if (mode == kDeltaFrame) {
      const auto base_epoch = entry.read_u64();
      const auto base_hash = entry.read_u64();
      const auto delta = entry.read_bytes_view();
      entry.expect_end();
      wire_bytes = delta.size();
      auto* base = recv_cache_.find(m.from, rec.agent);
      std::shared_ptr<agent::Agent> rebuilt;
      if (base == nullptr || base_epoch != epoch_tag_ ||
          base->hash != base_hash) {
        // No usable base (crash wiped the cache, or the channels
        // diverged): ask for the full image instead of reconstructing
        // from the wrong state.
        status = kNeedFull;
      } else {
        try {
          // The memoized decoded base is advanced in place — after the
          // apply it IS the reconstructed state, re-cached below as the
          // channel's next base.
          rebuilt = base->decoded != nullptr
                        ? std::move(base->decoded)
                        : std::shared_ptr<agent::Agent>(agent::decode_agent(
                              p_.agent_types(), base->image));
          agent::apply_agent_delta(*rebuilt, delta);
          rec.payload = agent::encode_agent(*rebuilt);
        } catch (const serial::DecodeError&) {
          // Divergence the hash did not catch; the half-applied decoded
          // state must not survive as a base.
          recv_cache_.erase(m.from, rec.agent);
          status = kNeedFull;
        }
      }
      if (status == kStaged) {
        storage_.note_shipment(wire_bytes, rec.payload.size());
        recv_cache_.put(m.from, rec.agent, rec.payload, epoch_tag_,
                        p_.config().ship_cache_bytes, std::move(rebuilt));
        txm_.note_remote_staged(tx);
        qm_.stage_enqueue(tx, std::move(rec));
      }
    } else {
      MAR_CHECK_MSG(mode == kFullFrame, "unknown convoy entry mode");
      entry.expect_end();
      storage_.note_shipment(wire_bytes, rec.payload.size());
      if (!rec.payload.empty()) {
        recv_cache_.put(m.from, rec.agent, rec.payload, epoch_tag_,
                        p_.config().ship_cache_bytes);
      }
      txm_.note_remote_staged(tx);
      qm_.stage_enqueue(tx, std::move(rec));
    }
    if (status == kStaged && p_.spans().enabled()) {
      const auto now = p_.sim().now();
      Span w;
      w.trace_id = trace_id;
      w.span_id = p_.spans().next_id();
      w.parent = trace_parent;
      w.kind = SpanKind::wire;
      w.node = self_.value();
      w.agent = agent_value;
      w.begin_us = sent_at;
      w.end_us = now;
      w.note = std::to_string(wire_bytes) + " bytes";
      p_.spans().record(w);
      // Staging/reconstruction is instantaneous in simulation time; the
      // apply span is a zero-width causal marker of where the record
      // landed and in which form.
      Span a = w;
      a.span_id = p_.spans().next_id();
      a.kind = SpanKind::apply;
      a.begin_us = now;
      a.note = mode == kDeltaFrame ? "delta" : "full";
      p_.spans().record(a);
    }
    // The staged entry doubles as the PREPARE (one round trip): queue the
    // prepare-and-vote now that the staged state exists. A kNeedFull
    // entry staged nothing, so no vote leaves — the full-image retry
    // carries the prepare again.
    if (prepare_rides && status == kStaged) {
      txm_.on_piggybacked_prepare(tx, m.from);
    }
    ack.write_u64(tx.value());
    ack.write_u8(status);
  }
  p_.net().send(
      net::Message{self_, m.from, msg::convoy_ack, std::move(ack).take()});
}

void ShipmentManager::on_convoy_ack(const net::Message& m) {
  serial::Decoder dec(m.payload);
  const auto peer_epoch = dec.read_u64();
  const auto count = dec.read_count();
  for (std::uint64_t i = 0; i < count; ++i) {
    const TxId tx(dec.read_u64());
    const auto status = dec.read_u8();
    auto it = awaiting_.find(tx);
    if (it == awaiting_.end()) continue;  // timed out / duplicate ack
    if (status == kStaged) {
      Pending p = std::move(it->second);
      awaiting_.erase(it);
      // The shipped image is now the channel base on both ends, valid
      // under the receiver epoch the ack reported; the payload decode
      // made for the diff is memoized with it.
      if (!p.record.payload.empty()) {
        send_cache_.put(p.dest, p.record.agent, std::move(p.record.payload),
                        peer_epoch, p_.config().ship_cache_bytes,
                        std::move(p.decoded_payload));
      }
      p.done(true);
      continue;
    }
    // need_full: the receiver lost (or never had) the base. Drop ours and
    // re-ship the full image at once, under the same transaction — the
    // caller never notices beyond the extra round trip.
    ++stats_.need_full_retries;
    Pending p = std::move(it->second);
    awaiting_.erase(it);
    const auto dest = p.dest;
    send_cache_.erase(dest, p.record.agent);
    encode_frame(p);  // no cached base left: always a full frame now
    std::vector<Pending> retry;
    retry.push_back(std::move(p));
    dispatch_convoy(dest, std::move(retry));
  }
}

void ShipmentManager::on_node_state(bool up) {
  (void)up;
  // Every transition invalidates the channel world: timers die with the
  // run epoch, in-flight shipments are dropped (their coordinator-side
  // transactions resolve through 2PC recovery), and both cache sides are
  // cleared — the epoch bump makes any base a remote still references
  // unmatchable, so the next delta against it is answered need_full.
  ++run_epoch_;
  ++epoch_tag_;
  convoy_queue_.clear();
  flush_armed_.clear();
  flush_gen_.clear();
  awaiting_.clear();
  send_cache_.clear();
  recv_cache_.clear();
}

}  // namespace mar::ship
