// Delta-shipping migration subsystem: per-pair transfer channels with
// base+delta caching, convoy batching and cross-node commit coalescing.
//
// Migration images dominate the paper's cost model: every inter-node
// transfer ships the agent's full state — data space, itinerary and the
// attached rollback log — even though consecutive migrations of the same
// agent over the same (src, dst) pair differ only by the steps executed
// in between. The ShipmentManager owns all remote queue staging of a node
// and applies the PR 3 delta idea to the WIRE:
//
//   * per destination, a TransferChannel caches the last full image
//     shipped per agent (epoch- and hash-tagged, LRU-bounded under
//     PlatformConfig::ship_cache_bytes). The first migration of an agent
//     establishes the base; later migrations over the same pair ship only
//     encode_agent_delta_between(base, current) — the receiver holds the
//     matching base and reconstructs via apply_agent_delta;
//   * the fallback to a full image is automatic and self-healing: sender
//     cache miss, a rollback that broke the log-prefix property, a delta
//     exceeding ship_delta_max_ratio of the full image, or a receiver-side
//     reject (cache miss after a crash, channel-epoch mismatch, base-hash
//     divergence) answered with need_full;
//   * migrations decided toward the same destination within
//     ship_convoy_window ride ONE convoy message, so their participant-
//     side 2PC prepares/commits arrive together and coalesce into shared
//     stable-storage syncs (TxManager group commit, participant side).
//
// Durability is untouched: the receiver stages a SELF-CONTAINED full
// payload into its queue (reconstructed locally when a delta arrived), so
// prepared state, crash recovery and the exactly-once protocol see
// exactly the record they always saw — the cache is volatile pure
// optimization state, invalidated wholesale by a crash.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "agent/platform.h"
#include "net/network.h"
#include "storage/stable_storage.h"
#include "tx/queue_manager.h"
#include "tx/tx_manager.h"
#include "util/counters.h"
#include "util/ids.h"

namespace mar::ship {

/// Message type tags owned by the shipment layer.
namespace msg {
inline constexpr const char* convoy = "ship.convoy";
inline constexpr const char* convoy_ack = "ship.convoy_ack";
}  // namespace msg

/// Per-node shipping counters (A7 reports these). Relaxed atomics, like
/// StorageStats: safe to sample from a monitor thread while the world runs.
struct ShipStats {
  RelaxedCounter convoys_sent;       ///< convoy messages sent
  RelaxedCounter entries_sent;       ///< records shipped (incl. retries)
  RelaxedCounter full_images;        ///< entries shipped as full images
  RelaxedCounter delta_ships;        ///< entries shipped as deltas
  RelaxedCounter delta_fallbacks;    ///< sender fell back to full (no
                                     ///< usable base / oversized delta)
  RelaxedCounter need_full_retries;  ///< receiver rejected a delta
  RelaxedCounter wire_payload_bytes; ///< convoy payload bytes sent
};

class ShipmentManager {
 public:
  ShipmentManager(agent::Platform& platform, NodeId self, tx::TxManager& txm,
                  tx::QueueManager& qm, storage::StableStorage& storage);

  /// Stage `record` into `dest`'s queue within `tx` (the remote leg of a
  /// step/compensation transaction). Rides the destination's convoy,
  /// delta-shipped against the channel cache when profitable. `done(ok)`
  /// fires once: true after the receiver acknowledged the staging, false
  /// on reject or timeout (the caller aborts and retries — the record
  /// stays in the source queue, which is the restartability the
  /// exactly-once protocol relies on).
  void stage_remote(TxId tx, NodeId dest, storage::QueueRecord record,
                    std::function<void(bool)> done);

  /// Receiver side: stage every convoy entry, answer one ack.
  void on_convoy(const net::Message& m);
  /// Sender side: resolve waiters; re-ship full images on need_full.
  void on_convoy_ack(const net::Message& m);
  /// Crash/recovery: caches, queues and waiters are volatile — dropped
  /// wholesale; the channel epoch bump makes stale remote bases
  /// unreferencable.
  void on_node_state(bool up);

  [[nodiscard]] const ShipStats& stats() const { return stats_; }
  /// This node's receive-channel epoch (bumped per crash/recovery);
  /// deltas referencing an older epoch are answered with need_full.
  [[nodiscard]] std::uint64_t channel_epoch() const { return epoch_tag_; }

 private:
  /// One cached base image: the last full agent image that crossed the
  /// channel, plus the receiver epoch it is valid under and its content
  /// hash (both sides must agree on the exact bytes a delta applies to).
  /// `decoded` memoizes the image's decoded form so the per-hop diff
  /// (sender) / delta apply (receiver) skips re-decoding the base; it is
  /// an optimization slot only — `image` + `hash` stay authoritative.
  struct BaseEntry {
    serial::Bytes image;
    std::uint64_t epoch = 0;
    std::uint64_t hash = 0;
    std::uint64_t tick = 0;  ///< LRU recency
    std::shared_ptr<agent::Agent> decoded;
  };
  /// LRU pool of base images, bounded by ship_cache_bytes. One pool per
  /// direction side: send bases keyed by (dest, agent), receive bases
  /// keyed by (src, agent).
  class BaseCache {
   public:
    [[nodiscard]] BaseEntry* find(NodeId peer, AgentId agent);
    /// `image` is taken by value: callers that are done with the buffer
    /// (the acked sender) move it in instead of copying a full agent
    /// image per hop.
    void put(NodeId peer, AgentId agent, serial::Bytes image,
             std::uint64_t epoch, std::size_t budget,
             std::shared_ptr<agent::Agent> decoded = nullptr);
    void erase(NodeId peer, AgentId agent);
    void clear();

   private:
    using Key = std::pair<std::uint32_t, std::uint64_t>;
    [[nodiscard]] static Key key_of(NodeId peer, AgentId agent) {
      return {peer.value(), agent.value()};
    }
    std::map<Key, BaseEntry> entries_;
    std::size_t total_ = 0;
    std::uint64_t tick_ = 0;
  };

  /// A shipment in flight: queued for its convoy or awaiting the ack. The
  /// full record is retained so a need_full reject can re-ship the image
  /// under the same transaction without involving the caller; the decoded
  /// payload (when the delta path produced one) becomes the channel
  /// base's memoized form once the receiver acknowledges.
  struct Pending {
    TxId tx;
    NodeId dest;
    storage::QueueRecord record;
    serial::Bytes frame;  ///< encoded convoy entry
    bool delta = false;
    std::uint64_t staged_at = 0;  ///< stage_remote time (convoy_wait span)
    std::shared_ptr<agent::Agent> decoded_payload;
    std::function<void(bool)> done;
  };

  /// Encode `p.record` as a convoy entry into `p.frame`: a delta against
  /// the cached base when one applies and stays under the size ratio, a
  /// full image otherwise.
  void encode_frame(Pending& p);
  /// Send one convoy message carrying `batch` and park its entries in
  /// awaiting_. Shared by the window/timer flush and the need_full
  /// full-image retry.
  void dispatch_convoy(NodeId dest, std::vector<Pending> batch);
  void flush_convoy(NodeId dest);
  void arm_flush(NodeId dest);
  void timeout_pending(TxId tx);
  /// Schedule `fn` after `delay`, cancelled automatically by crash.
  void after(sim::TimeUs delay, std::function<void()> fn);

  agent::Platform& p_;
  NodeId self_;
  tx::TxManager& txm_;
  tx::QueueManager& qm_;
  storage::StableStorage& storage_;

  BaseCache send_cache_;
  BaseCache recv_cache_;
  /// Entries collecting towards the next convoy, per destination.
  std::map<NodeId, std::vector<Pending>> convoy_queue_;
  std::set<NodeId> flush_armed_;
  /// Bumped per destination on every flush: a window-full flush must not
  /// leave its armed timer behind to cut the NEXT partial convoy's dwell
  /// time short (same pattern as TxManager's flush generations).
  std::map<NodeId, std::uint64_t> flush_gen_;
  /// Shipments whose convoy left, keyed by transaction.
  std::map<TxId, Pending> awaiting_;
  /// Receive-channel epoch: starts at 1, bumped on every crash/recovery
  /// transition. Carried in every ack so senders tag their bases with the
  /// epoch the receiver held them under.
  std::uint64_t epoch_tag_ = 1;
  /// Bumped with the node runtime's epoch; cancels pending timers.
  std::uint64_t run_epoch_ = 0;
  ShipStats stats_;
};

}  // namespace mar::ship
