#include "rollback/comp_registry.h"

#include "util/check.h"

namespace mar::rollback {

Result<Value> CompensationContext::invoke(const std::string& resource,
                                          std::string_view op,
                                          const Value& op_params) {
  if (kind_ == OpEntryKind::agent) {
    return Status(Errc::forbidden,
                  "agent compensation entries must not access resources");
  }
  MAR_CHECK_MSG(rm_ != nullptr, "no resource manager in this context");
  return rm_->invoke(tx_, resource, op, op_params);
}

Value& CompensationContext::weak(std::string_view name) {
  MAR_CHECK_MSG(kind_ != OpEntryKind::resource,
                "resource compensation entries must not access the agent's "
                "private state (op tried to read weak slot '"
                    << name << "')");
  MAR_CHECK_MSG(weak_ != nullptr, "no agent data in this context");
  MAR_CHECK_MSG(weak_->has(name), "unknown weak slot: " << name);
  return weak_->as_map().find(std::string(name))->second;
}

bool CompensationContext::has_weak(std::string_view name) const {
  return kind_ != OpEntryKind::resource && weak_ != nullptr &&
         weak_->has(name);
}

void CompensationRegistry::register_op(std::string name, CompensationFn fn) {
  MAR_CHECK_MSG(!ops_.contains(name), "duplicate compensation op " << name);
  ops_.emplace(std::move(name), std::move(fn));
}

bool CompensationRegistry::contains(std::string_view name) const {
  return ops_.find(name) != ops_.end();
}

Status CompensationRegistry::run(std::string_view name,
                                 CompensationContext& ctx) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return Status(Errc::protocol_error,
                  "unknown compensating operation: " + std::string(name));
  }
  return it->second(ctx);
}

}  // namespace mar::rollback
