// The agent rollback log (paper Sec. 4.2).
//
// The log is attached to the agent and migrates with it. It records, per
// committed step, everything needed to compensate that step, and at each
// agent savepoint the physical image (or transition delta) of the strongly
// reversible objects. Entry kinds, following Fig. 2:
//
//   SP  (savepoint entry)      id, strong-object data, resume metadata
//   BOS (begin-of-step entry)  node that executed the step
//   OE  (operation entry)      one compensating operation + parameters;
//                              typed resource/agent/mixed (Sec. 4.4.1)
//   EOS (end-of-step entry)    node, mixed-entry flag (the optimization's
//                              lookup key), alternative nodes, and a
//                              cannot-compensate poison flag (Sec. 3.2)
//
// To roll back to savepoint k the log is consumed from the end towards the
// SP_k entry; the compensating operations of a step execute in reverse
// order of their logging (OE_n,p ... OE_n,1).
//
// Both physical logging flavours of Sec. 4.2 are supported for savepoints:
// *state logging* stores a full image of the strongly reversible objects,
// *transition logging* stores a forward delta from the previous savepoint,
// with the full reconstruction and delta-merging (GC) machinery.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "serial/serializable.h"
#include "serial/value.h"
#include "util/ids.h"
#include "util/result.h"

namespace mar::rollback {

/// Itinerary cursor: path of entry indices from the main itinerary down to
/// a step entry. Stored in savepoints so a rollback can resume execution
/// at the step following the savepoint.
using Position = std::vector<std::uint32_t>;

/// Why a savepoint exists. Sub-itinerary savepoints are written
/// automatically on sub-itinerary entry and garbage-collected on
/// completion (Sec. 4.4.2); ad-hoc savepoints are established by the agent
/// program logic at the end of a step (Sec. 2).
enum class SavepointOrigin : std::uint8_t { adhoc = 0, sub_itinerary = 1 };

struct SavepointEntry {
  SavepointId id;
  SavepointOrigin origin = SavepointOrigin::adhoc;
  /// Nesting depth of the owning sub-itinerary (sub_itinerary origin).
  std::uint32_t depth = 0;
  /// Lightweight savepoints (Sec. 4.4.2) carry no data: no step executed
  /// since the previous savepoint, whose data is authoritative.
  bool lightweight = false;
  /// Transition logging: `delta` transforms the previous savepoint's
  /// strong-object state into this one's. State logging: `image` is the
  /// full strong-object state.
  bool transition = false;
  serial::Value image;
  serial::ValuePatch delta;
  /// Itinerary position of the step to execute after restoring here.
  Position resume_position;

  friend bool operator==(const SavepointEntry&, const SavepointEntry&) =
      default;

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t byte_size() const;
};

struct BeginOfStepEntry {
  NodeId node;
  std::string step_name;

  friend bool operator==(const BeginOfStepEntry&, const BeginOfStepEntry&) =
      default;

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t byte_size() const;
};

/// Operation-entry types of Sec. 4.4.1, driving the optimized rollback.
enum class OpEntryKind : std::uint8_t {
  resource = 0,  ///< touches resource state only; shippable without agent
  agent = 1,     ///< touches weakly reversible objects only; runs anywhere
  mixed = 2,     ///< needs both; forces the agent to the resource node
};

[[nodiscard]] std::string_view to_string(OpEntryKind k);

struct OperationEntry {
  OpEntryKind kind = OpEntryKind::resource;
  /// Name of the compensating operation in the CompensationRegistry
  /// (models the "code of the compensating operation" in the entry).
  std::string comp_op;
  serial::Value params;
  /// For resource/mixed entries: where the resource lives and its name.
  NodeId resource_node;
  std::string resource;

  friend bool operator==(const OperationEntry&, const OperationEntry&) =
      default;

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t byte_size() const;
};

struct EndOfStepEntry {
  NodeId node;  ///< node that executed the step
  /// Sec. 4.4.1: flag telling the optimized algorithm whether any mixed
  /// compensation entry exists in this step (agent must travel if so).
  bool has_mixed = false;
  /// Sec. 3.2: the step performed a non-compensatable operation; rollback
  /// across this step is impossible.
  bool cannot_compensate = false;
  /// Sec. 4.3 discussion: alternative nodes able to run the compensation
  /// if `node` is permanently unreachable (fault-tolerant extension).
  std::vector<NodeId> alternatives;

  friend bool operator==(const EndOfStepEntry&, const EndOfStepEntry&) =
      default;

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t byte_size() const;
};

enum class EntryKind : std::uint8_t {
  savepoint = 0,
  begin_of_step = 1,
  operation = 2,
  end_of_step = 3,
};

[[nodiscard]] std::string_view to_string(EntryKind k);

class LogEntry {
 public:
  LogEntry() : body_(SavepointEntry{}) {}
  LogEntry(SavepointEntry e) : body_(std::move(e)) {}      // NOLINT
  LogEntry(BeginOfStepEntry e) : body_(std::move(e)) {}    // NOLINT
  LogEntry(OperationEntry e) : body_(std::move(e)) {}      // NOLINT
  LogEntry(EndOfStepEntry e) : body_(std::move(e)) {}      // NOLINT

  [[nodiscard]] EntryKind kind() const {
    return static_cast<EntryKind>(body_.index());
  }
  [[nodiscard]] bool is_savepoint() const {
    return kind() == EntryKind::savepoint;
  }
  [[nodiscard]] const SavepointEntry& savepoint() const {
    return std::get<SavepointEntry>(body_);
  }
  [[nodiscard]] SavepointEntry& savepoint() {
    return std::get<SavepointEntry>(body_);
  }
  [[nodiscard]] const BeginOfStepEntry& begin_of_step() const {
    return std::get<BeginOfStepEntry>(body_);
  }
  [[nodiscard]] const OperationEntry& operation() const {
    return std::get<OperationEntry>(body_);
  }
  [[nodiscard]] const EndOfStepEntry& end_of_step() const {
    return std::get<EndOfStepEntry>(body_);
  }

  /// Structural equality (delta-shipping uses it to verify that a cached
  /// base image's log is a prefix of the current log).
  friend bool operator==(const LogEntry& a, const LogEntry& b) {
    return a.body_ == b.body_;
  }

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t byte_size() const;
  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<SavepointEntry, BeginOfStepEntry, OperationEntry,
               EndOfStepEntry>
      body_;
};

class RollbackLog {
 public:
  void push(LogEntry entry) { entries_.push_back(std::move(entry)); }
  /// Read and remove the last entry (the paper's LOG.pop()).
  [[nodiscard]] LogEntry pop();
  [[nodiscard]] const LogEntry& back() const;
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<LogEntry>& entries() const {
    return entries_;
  }
  /// Discard everything (top-level sub-itinerary completion, Sec. 4.4.2).
  void clear() {
    entries_.clear();
    append_clean_ = false;
  }

  // --- append tracking (incremental commit) -------------------------------
  // Between two durable commits a steady-state step only PUSHES entries
  // (BOS, OEs, EOS, SPs). The log tracks whether that held since the last
  // mark_baseline(): pop(), clear() and gc_savepoint() — which may rewrite
  // an interior savepoint's delta chain — break it, forcing the next
  // commit to write a full image instead of an append-only delta.
  /// Start a fresh tracking window (after decode or a durable commit).
  void mark_baseline() {
    baseline_ = entries_.size();
    append_clean_ = true;
  }
  /// True while only pushes happened since the last baseline.
  [[nodiscard]] bool append_clean() const { return append_clean_; }
  /// Entries pushed since the baseline (meaningful only when clean).
  [[nodiscard]] std::span<const LogEntry> appended_entries() const {
    return std::span<const LogEntry>(entries_).subspan(baseline_);
  }

  // --- queries used by the rollback algorithms ---------------------------
  /// The savepoint id of the last entry, if the last entry is an SP.
  [[nodiscard]] std::optional<SavepointId> trailing_savepoint() const;
  /// The node of the last end-of-step entry, skipping trailing savepoints
  /// (where the next compensation transaction must run, Fig. 4a).
  [[nodiscard]] const EndOfStepEntry* last_end_of_step() const;
  /// Whether the log contains a savepoint with this id.
  [[nodiscard]] bool contains_savepoint(SavepointId id) const;
  /// Operation entries of the last complete step segment (skipping
  /// trailing savepoint entries), in logging order. Empty when the log
  /// does not end with a BOS..EOS segment. The adaptive strategy prices
  /// shipping these against migrating the agent (Sec. 4.4.1).
  [[nodiscard]] std::vector<const OperationEntry*> last_step_ops() const;

  // --- savepoint garbage collection (Sec. 4.4.2) --------------------------
  /// Remove the savepoint entry with `id` (its sub-itinerary completed).
  /// This is the operation the paper calls "non-trivial if transition
  /// logging is used": the removed entry may carry chain data later
  /// entries depend on, so
  ///   * a removed delta is composed into the next data-carrying
  ///     savepoint's delta,
  ///   * a removed full image converts the next data-carrying transition
  ///     savepoint into a full image (delta applied to the image).
  /// Returns std::nullopt if the savepoint is not in the log; otherwise
  /// true when the caller must write its *next* savepoint as a full image
  /// because the chain's tail information left the log with this entry.
  std::optional<bool> gc_savepoint(SavepointId id);

  /// Reconstruct the strong-object state at savepoint `id`: walk back to
  /// the nearest full image at or before it, then apply forward deltas.
  /// Lightweight savepoints resolve to the previous data-carrying one.
  [[nodiscard]] Result<serial::Value> strong_state_at(SavepointId id) const;

  /// The savepoint entry for `id`, if present.
  [[nodiscard]] const SavepointEntry* find_savepoint(SavepointId id) const;
  /// The OLDEST savepoint still in the log — the farthest point a
  /// complete rollback (agent abort / cancellation) can reach. Invalid
  /// after a top-level log discard.
  [[nodiscard]] SavepointId first_savepoint() const;

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  /// Wire size of the whole log (what migration pays to carry it).
  [[nodiscard]] std::size_t byte_size() const;

  /// Fig. 2-style rendering: "... SP_k BOS_n OE_n,1 .. EOS_n ...".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<LogEntry> entries_;
  // Runtime-only append tracking; not serialized.
  std::size_t baseline_ = 0;
  bool append_clean_ = true;
};

}  // namespace mar::rollback
