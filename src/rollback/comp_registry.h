// Compensating operations: execution context and registry.
//
// The paper stores "the code of one compensating operation and the
// parameters for this operation" in each operation entry (Sec. 4.2). Here
// the code is a named function in a registry shared by all nodes (the same
// code-mobility model used for agents), and the entry carries the name and
// the parameters.
//
// The context enforces the access rules of Sec. 4.3/4.4.1 by construction:
//   * resource compensation entries may only touch resource state — the
//     agent's data is not even reachable (the agent may be on another
//     node);
//   * agent compensation entries may only touch *weakly reversible*
//     objects — resource access is rejected, and strongly reversible
//     objects are simply not exposed (they are restored from the
//     savepoint image when the target savepoint is reached, so reading
//     them during compensation would observe "old" post-abort state);
//   * mixed compensation entries may touch both weak objects and
//     resources, and therefore pin the compensation to the resource node.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "resource/resource_manager.h"
#include "rollback/log.h"
#include "serial/value.h"
#include "util/ids.h"
#include "util/result.h"

namespace mar::rollback {

using serial::Value;

class CompensationContext {
 public:
  /// `weak` is the agent's weakly-reversible slot map (may be null for
  /// resource entries executed away from the agent); `rm` is the resource
  /// manager of the executing node (null for agent entries).
  CompensationContext(OpEntryKind kind, const Value& params,
                      std::uint64_t now_us, resource::ResourceManager* rm,
                      TxId tx, Value* weak)
      : kind_(kind), params_(params), now_us_(now_us), rm_(rm), tx_(tx),
        weak_(weak) {}

  [[nodiscard]] OpEntryKind kind() const { return kind_; }
  [[nodiscard]] const Value& params() const { return params_; }
  [[nodiscard]] std::uint64_t now_us() const { return now_us_; }

  /// Invoke a resource operation within the compensation transaction.
  /// Rejected for agent compensation entries (Sec. 4.4.1).
  Result<Value> invoke(const std::string& resource, std::string_view op,
                       const Value& op_params);

  /// Access a weakly reversible object. Rejected (LogicError) for resource
  /// compensation entries — their operations must carry all information in
  /// the entry parameters and "must not access the private agent state".
  [[nodiscard]] Value& weak(std::string_view name);
  [[nodiscard]] bool has_weak(std::string_view name) const;

 private:
  OpEntryKind kind_;
  const Value& params_;
  std::uint64_t now_us_;
  resource::ResourceManager* rm_;
  TxId tx_;
  Value* weak_;
};

/// A compensating operation: returns ok, or an error making the
/// compensation transaction abort (it will be retried; Sec. 3.2 discusses
/// compensations that may fail).
using CompensationFn = std::function<Status(CompensationContext&)>;

/// World-wide registry of compensating-operation code, keyed by name.
class CompensationRegistry {
 public:
  void register_op(std::string name, CompensationFn fn);
  [[nodiscard]] bool contains(std::string_view name) const;
  /// Run the named operation; unknown names are a protocol error.
  Status run(std::string_view name, CompensationContext& ctx) const;

 private:
  std::map<std::string, CompensationFn, std::less<>> ops_;
};

}  // namespace mar::rollback
