#include "rollback/log.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace mar::rollback {

std::string_view to_string(OpEntryKind k) {
  switch (k) {
    case OpEntryKind::resource: return "RCE";
    case OpEntryKind::agent: return "ACE";
    case OpEntryKind::mixed: return "MCE";
  }
  return "?";
}

std::string_view to_string(EntryKind k) {
  switch (k) {
    case EntryKind::savepoint: return "SP";
    case EntryKind::begin_of_step: return "BOS";
    case EntryKind::operation: return "OE";
    case EntryKind::end_of_step: return "EOS";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Entry serialization
// ---------------------------------------------------------------------------

void SavepointEntry::serialize(serial::Encoder& enc) const {
  enc.write_u32(id.value());
  enc.write_u8(static_cast<std::uint8_t>(origin));
  enc.write_u32(depth);
  enc.write_bool(lightweight);
  enc.write_bool(transition);
  image.serialize(enc);
  delta.serialize(enc);
  enc.write_varint(resume_position.size());
  for (const auto i : resume_position) enc.write_u32(i);
}

void SavepointEntry::deserialize(serial::Decoder& dec) {
  id = SavepointId(dec.read_u32());
  origin = static_cast<SavepointOrigin>(dec.read_u8());
  depth = dec.read_u32();
  lightweight = dec.read_bool();
  transition = dec.read_bool();
  image.deserialize(dec);
  delta.deserialize(dec);
  resume_position.resize(dec.read_count());
  for (auto& i : resume_position) i = dec.read_u32();
}

std::size_t SavepointEntry::byte_size() const {
  return 4 + 1 + 4 + 1 + 1 + image.encoded_size() + delta.encoded_size() +
         serial::varint_size(resume_position.size()) +
         4 * resume_position.size();
}

void BeginOfStepEntry::serialize(serial::Encoder& enc) const {
  enc.write_u32(node.value());
  enc.write_string(step_name);
}

void BeginOfStepEntry::deserialize(serial::Decoder& dec) {
  node = NodeId(dec.read_u32());
  step_name = dec.read_string();
}

std::size_t BeginOfStepEntry::byte_size() const {
  return 4 + serial::blob_size(step_name.size());
}

void OperationEntry::serialize(serial::Encoder& enc) const {
  enc.write_u8(static_cast<std::uint8_t>(kind));
  enc.write_string(comp_op);
  params.serialize(enc);
  enc.write_u32(resource_node.value());
  enc.write_string(resource);
}

void OperationEntry::deserialize(serial::Decoder& dec) {
  kind = static_cast<OpEntryKind>(dec.read_u8());
  comp_op = dec.read_string();
  params.deserialize(dec);
  resource_node = NodeId(dec.read_u32());
  resource = dec.read_string();
}

std::size_t OperationEntry::byte_size() const {
  return 1 + serial::blob_size(comp_op.size()) + params.encoded_size() + 4 +
         serial::blob_size(resource.size());
}

void EndOfStepEntry::serialize(serial::Encoder& enc) const {
  enc.write_u32(node.value());
  enc.write_bool(has_mixed);
  enc.write_bool(cannot_compensate);
  enc.write_varint(alternatives.size());
  for (const auto n : alternatives) enc.write_u32(n.value());
}

void EndOfStepEntry::deserialize(serial::Decoder& dec) {
  node = NodeId(dec.read_u32());
  has_mixed = dec.read_bool();
  cannot_compensate = dec.read_bool();
  alternatives.resize(dec.read_count());
  for (auto& n : alternatives) n = NodeId(dec.read_u32());
}

std::size_t EndOfStepEntry::byte_size() const {
  return 4 + 1 + 1 + serial::varint_size(alternatives.size()) +
         4 * alternatives.size();
}

void LogEntry::serialize(serial::Encoder& enc) const {
  enc.write_u8(static_cast<std::uint8_t>(kind()));
  std::visit([&enc](const auto& e) { e.serialize(enc); }, body_);
}

void LogEntry::deserialize(serial::Decoder& dec) {
  const auto tag = static_cast<EntryKind>(dec.read_u8());
  switch (tag) {
    case EntryKind::savepoint: {
      SavepointEntry e;
      e.deserialize(dec);
      body_ = std::move(e);
      break;
    }
    case EntryKind::begin_of_step: {
      BeginOfStepEntry e;
      e.deserialize(dec);
      body_ = std::move(e);
      break;
    }
    case EntryKind::operation: {
      OperationEntry e;
      e.deserialize(dec);
      body_ = std::move(e);
      break;
    }
    case EntryKind::end_of_step: {
      EndOfStepEntry e;
      e.deserialize(dec);
      body_ = std::move(e);
      break;
    }
    default:
      throw serial::DecodeError("bad log entry kind");
  }
}

std::size_t LogEntry::byte_size() const {
  return 1 + std::visit([](const auto& e) { return e.byte_size(); }, body_);
}

std::string LogEntry::to_string() const {
  std::ostringstream os;
  switch (kind()) {
    case EntryKind::savepoint: {
      const auto& sp = savepoint();
      os << "SP_" << sp.id;
      if (sp.lightweight) os << "(light)";
      if (sp.transition) os << "(delta)";
      break;
    }
    case EntryKind::begin_of_step:
      os << "BOS(N" << begin_of_step().node << ","
         << begin_of_step().step_name << ")";
      break;
    case EntryKind::operation:
      os << "OE[" << rollback::to_string(operation().kind) << ","
         << operation().comp_op << "]";
      break;
    case EntryKind::end_of_step: {
      const auto& e = end_of_step();
      os << "EOS(N" << e.node << (e.has_mixed ? ",mixed" : "")
         << (e.cannot_compensate ? ",poison" : "") << ")";
      break;
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// RollbackLog
// ---------------------------------------------------------------------------

LogEntry RollbackLog::pop() {
  MAR_CHECK_MSG(!entries_.empty(), "pop on empty rollback log");
  LogEntry e = std::move(entries_.back());
  entries_.pop_back();
  append_clean_ = false;
  return e;
}

const LogEntry& RollbackLog::back() const {
  MAR_CHECK_MSG(!entries_.empty(), "back on empty rollback log");
  return entries_.back();
}

std::optional<SavepointId> RollbackLog::trailing_savepoint() const {
  if (entries_.empty() || !entries_.back().is_savepoint()) {
    return std::nullopt;
  }
  return entries_.back().savepoint().id;
}

const EndOfStepEntry* RollbackLog::last_end_of_step() const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->kind() == EntryKind::end_of_step) return &it->end_of_step();
    // Only savepoint entries may trail the last end-of-step entry.
    if (it->kind() != EntryKind::savepoint) return nullptr;
  }
  return nullptr;
}

bool RollbackLog::contains_savepoint(SavepointId id) const {
  return find_savepoint(id) != nullptr;
}

std::vector<const OperationEntry*> RollbackLog::last_step_ops() const {
  std::vector<const OperationEntry*> ops;
  auto it = entries_.rbegin();
  while (it != entries_.rend() && it->is_savepoint()) ++it;
  if (it == entries_.rend() || it->kind() != EntryKind::end_of_step) {
    return ops;
  }
  for (++it; it != entries_.rend(); ++it) {
    if (it->kind() == EntryKind::begin_of_step) break;
    if (it->kind() != EntryKind::operation) return {};  // malformed
    ops.push_back(&it->operation());
  }
  // Collected back-to-front; restore logging order.
  std::reverse(ops.begin(), ops.end());
  return ops;
}

const SavepointEntry* RollbackLog::find_savepoint(SavepointId id) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->is_savepoint() && it->savepoint().id == id) {
      return &it->savepoint();
    }
  }
  return nullptr;
}

SavepointId RollbackLog::first_savepoint() const {
  for (const auto& e : entries_) {
    if (e.is_savepoint()) return e.savepoint().id;
  }
  return SavepointId::invalid();
}

std::optional<bool> RollbackLog::gc_savepoint(SavepointId id) {
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (!entries_[i].is_savepoint() || entries_[i].savepoint().id != id) {
      continue;
    }
    SavepointEntry removed = std::move(entries_[i].savepoint());
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
    append_clean_ = false;  // interior removal (and possible chain rewrite)
    if (removed.lightweight) return false;  // carried no data

    // Find the next data-carrying savepoint; it may depend on the removed
    // entry's data. (Lightweight savepoints after the removed one cannot
    // alias it: they would belong to a sub-itinerary nested inside the
    // completed one, which must have completed — and been GC'd — first.)
    for (std::size_t j = i; j < entries_.size(); ++j) {
      if (!entries_[j].is_savepoint()) continue;
      auto& sp = entries_[j].savepoint();
      if (sp.lightweight) continue;
      if (!sp.transition) return false;  // self-contained; chain intact
      if (removed.transition) {
        // delta chain: fold the removed delta into the successor.
        sp.delta = serial::compose(removed.delta, sp.delta);
      } else {
        // The removed full image was the successor's base: materialize.
        sp.image = serial::apply(sp.delta, std::move(removed.image));
        sp.transition = false;
        sp.delta = serial::ValuePatch::none();
      }
      return false;
    }
    // No later data-carrying savepoint: whatever is written next must be a
    // full image (only relevant under transition logging).
    return true;
  }
  return std::nullopt;
}

Result<serial::Value> RollbackLog::strong_state_at(SavepointId id) const {
  // Locate the target savepoint.
  std::size_t target = entries_.size();
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].is_savepoint() && entries_[i].savepoint().id == id) {
      target = i;
      break;
    }
  }
  if (target == entries_.size()) {
    return Status(Errc::not_found,
                  "savepoint not in log: " + std::to_string(id.value()));
  }
  // Walk back to the nearest full image (lightweight savepoints carry no
  // data; transition savepoints carry deltas).
  std::size_t base = target + 1;
  for (std::size_t i = target + 1; i-- > 0;) {
    if (!entries_[i].is_savepoint()) continue;
    const auto& sp = entries_[i].savepoint();
    if (!sp.lightweight && !sp.transition) {
      base = i;
      break;
    }
  }
  if (base == target + 1) {
    return Status(Errc::protocol_error,
                  "no full strong-object image at or before savepoint " +
                      std::to_string(id.value()));
  }
  serial::Value state = entries_[base].savepoint().image;
  // Apply forward deltas of data-carrying savepoints up to the target.
  for (std::size_t i = base + 1; i <= target; ++i) {
    if (!entries_[i].is_savepoint()) continue;
    const auto& sp = entries_[i].savepoint();
    if (sp.lightweight) continue;
    MAR_CHECK_MSG(sp.transition,
                  "unexpected full image between base and target");
    state = serial::apply(sp.delta, std::move(state));
  }
  return state;
}

void RollbackLog::serialize(serial::Encoder& enc) const {
  enc.write_varint(entries_.size());
  for (const auto& e : entries_) e.serialize(enc);
}

void RollbackLog::deserialize(serial::Decoder& dec) {
  entries_.resize(dec.read_count());
  for (auto& e : entries_) e.deserialize(dec);
  mark_baseline();  // decoded state == the durable state
}

std::size_t RollbackLog::byte_size() const {
  std::size_t n = serial::varint_size(entries_.size());
  for (const auto& e : entries_) n += e.byte_size();
  return n;
}

std::string RollbackLog::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) os << " ";
    os << entries_[i].to_string();
  }
  return os.str();
}

}  // namespace mar::rollback
