#include "serial/encoder.h"

#include <bit>
#include <cstring>

namespace mar::serial {

void Encoder::write_u8(std::uint8_t v) { buf_.push_back(v); }

void Encoder::write_u16(std::uint16_t v) {
  write_u8(static_cast<std::uint8_t>(v));
  write_u8(static_cast<std::uint8_t>(v >> 8));
}

void Encoder::write_u32(std::uint32_t v) {
  write_u16(static_cast<std::uint16_t>(v));
  write_u16(static_cast<std::uint16_t>(v >> 16));
}

void Encoder::write_u64(std::uint64_t v) {
  write_u32(static_cast<std::uint32_t>(v));
  write_u32(static_cast<std::uint32_t>(v >> 32));
}

void Encoder::write_bool(bool v) { write_u8(v ? 1 : 0); }

void Encoder::write_varint(std::uint64_t v) {
  while (v >= 0x80) {
    write_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  write_u8(static_cast<std::uint8_t>(v));
}

void Encoder::write_i64(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  write_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void Encoder::write_double(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void Encoder::write_string(std::string_view s) {
  reserve(buf_.size() + blob_size(s.size()));
  write_varint(s.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
}

void Encoder::write_bytes(std::span<const std::uint8_t> b) {
  reserve(buf_.size() + blob_size(b.size()));
  write_varint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

}  // namespace mar::serial
