// Value: a self-describing, serializable variant.
//
// The augmented state of the paper (Sec. 3.1) — resource state merged with
// the agent's private data space — is modeled uniformly as Values. Strong
// and weak data slots, resource state, compensating-operation parameters
// and savepoint images are all Values, which gives the library:
//   * uniform, byte-accurate serialization (migration-size experiments),
//   * physical before-images for strongly reversible objects (Sec. 4.1),
//   * structural diffs for *transition logging* of savepoints (Sec. 4.2).
//
// ValuePatch implements the transition-logging calculus: diff(a,b) yields a
// patch with apply(diff(a,b), a) == b, and compose() merges adjacent
// patches, which is exactly what garbage-collecting a savepoint entry under
// transition logging requires (Sec. 4.4.2 calls this "non-trivial").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "serial/decoder.h"
#include "serial/encoder.h"

namespace mar::serial {

class Value {
 public:
  enum class Kind : std::uint8_t {
    null = 0,
    boolean = 1,
    integer = 2,
    real = 3,
    string = 4,
    bytes = 5,
    list = 6,
    map = 7,
  };

  using List = std::vector<Value>;
  using Map = std::map<std::string, Value>;

  Value() = default;  // null
  Value(bool b) : data_(b) {}                     // NOLINT
  Value(std::int64_t i) : data_(i) {}             // NOLINT
  Value(int i) : data_(std::int64_t{i}) {}        // NOLINT
  Value(double d) : data_(d) {}                   // NOLINT
  Value(std::string s) : data_(std::move(s)) {}   // NOLINT
  Value(const char* s) : data_(std::string(s)) {} // NOLINT
  Value(Bytes b) : data_(std::move(b)) {}         // NOLINT
  Value(List l) : data_(std::move(l)) {}          // NOLINT
  Value(Map m) : data_(std::move(m)) {}           // NOLINT

  static Value empty_list() { return Value(List{}); }
  static Value empty_map() { return Value(Map{}); }

  [[nodiscard]] Kind kind() const {
    return static_cast<Kind>(data_.index());
  }
  [[nodiscard]] bool is_null() const { return kind() == Kind::null; }
  [[nodiscard]] bool is_bool() const { return kind() == Kind::boolean; }
  [[nodiscard]] bool is_int() const { return kind() == Kind::integer; }
  [[nodiscard]] bool is_real() const { return kind() == Kind::real; }
  [[nodiscard]] bool is_string() const { return kind() == Kind::string; }
  [[nodiscard]] bool is_bytes() const { return kind() == Kind::bytes; }
  [[nodiscard]] bool is_list() const { return kind() == Kind::list; }
  [[nodiscard]] bool is_map() const { return kind() == Kind::map; }

  // Checked accessors: MAR_CHECK-fail on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Bytes& as_bytes() const;
  [[nodiscard]] const List& as_list() const;
  [[nodiscard]] List& as_list();
  [[nodiscard]] const Map& as_map() const;
  [[nodiscard]] Map& as_map();

  // --- Map conveniences (checked: value must be a map) ------------------
  [[nodiscard]] bool has(std::string_view key) const;
  /// Checked lookup; MAR_CHECK-fails if missing.
  [[nodiscard]] const Value& at(std::string_view key) const;
  /// Lookup with fallback.
  [[nodiscard]] Value get_or(std::string_view key, Value fallback) const;
  /// Insert or overwrite; turns a null value into a map first.
  void set(std::string_view key, Value v);
  /// Remove a key if present. Returns true when removed.
  bool erase(std::string_view key);

  // --- List conveniences -------------------------------------------------
  void push_back(Value v);
  [[nodiscard]] std::size_t size() const;

  friend bool operator==(const Value& a, const Value& b) = default;
  /// Total order: by kind first, then by content (lexicographic for
  /// lists/maps). Makes Values usable as ordered-container keys.
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

  void serialize(Encoder& enc) const;
  void deserialize(Decoder& dec);

  /// Number of bytes this value occupies on the wire.
  [[nodiscard]] std::size_t encoded_size() const;

  /// JSON-ish rendering for traces and diagnostics.
  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Bytes,
               List, Map>
      data_;
};

/// A structural patch between two Values. Patches over map values are
/// sparse (per key); any other change is recorded as a whole-value set.
class ValuePatch {
 public:
  enum class Kind : std::uint8_t {
    none = 0,    ///< no change
    set = 1,     ///< replace the whole value
    remove = 2,  ///< remove the entry (only meaningful inside a map patch)
    map = 3,     ///< per-key patches of a map value
  };

  ValuePatch() = default;  // none

  static ValuePatch none() { return ValuePatch{}; }
  static ValuePatch set(Value v);
  static ValuePatch remove();
  static ValuePatch map_patch(std::map<std::string, ValuePatch> entries);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_none() const { return kind_ == Kind::none; }
  [[nodiscard]] const Value& set_value() const { return value_; }
  [[nodiscard]] const std::map<std::string, ValuePatch>& entries() const {
    return entries_;
  }

  friend bool operator==(const ValuePatch& a, const ValuePatch& b) = default;

  void serialize(Encoder& enc) const;
  void deserialize(Decoder& dec);
  [[nodiscard]] std::size_t encoded_size() const;
  [[nodiscard]] std::string to_string() const;

 private:
  Kind kind_ = Kind::none;
  Value value_;                                 // for set
  std::map<std::string, ValuePatch> entries_;   // for map
};

/// Patch such that apply(diff(from, to), from) == to. Map values diff
/// per key (recursively); everything else becomes a whole-value set.
[[nodiscard]] ValuePatch diff(const Value& from, const Value& to);

/// Apply a patch. Applying a map patch to a non-map starts from an empty
/// map (this keeps compose() total). Applying remove yields null.
[[nodiscard]] Value apply(const ValuePatch& patch, Value base);

/// Sequential composition: apply(compose(p, q), S) == apply(q, apply(p, S)).
/// This is what merging a garbage-collected savepoint's transition record
/// into its successor requires (Sec. 4.4.2).
[[nodiscard]] ValuePatch compose(const ValuePatch& first,
                                 const ValuePatch& second);

}  // namespace mar::serial
