// Binary encoder for agent state capture.
//
// Mole relied on Java object serialization to capture an agent's code and
// data before migration; this library replaces that with an explicit,
// versioned little-endian wire format. Sizes produced by the encoder are
// byte-accurate, which the migration-cost experiments (E1, E4) depend on.
//
// Format primitives:
//   - fixed-width little-endian integers (u8/u16/u32/u64)
//   - LEB128 varints for lengths and optionally-small values
//   - zigzag varints for signed integers
//   - IEEE-754 doubles (bit pattern as u64)
//   - length-prefixed strings / byte blobs
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace mar::serial {

using Bytes = std::vector<std::uint8_t>;

class Encoder {
 public:
  Encoder() = default;

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_bool(bool v);
  /// Unsigned LEB128 varint.
  void write_varint(std::uint64_t v);
  /// Zigzag-encoded signed varint.
  void write_i64(std::int64_t v);
  void write_double(double v);
  /// Varint length followed by raw bytes.
  void write_string(std::string_view s);
  void write_bytes(std::span<const std::uint8_t> b);

  [[nodiscard]] const Bytes& buffer() const { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  Bytes buf_;
};

}  // namespace mar::serial
