// Binary encoder for agent state capture.
//
// Mole relied on Java object serialization to capture an agent's code and
// data before migration; this library replaces that with an explicit,
// versioned little-endian wire format. Sizes produced by the encoder are
// byte-accurate, which the migration-cost experiments (E1, E4) depend on.
//
// Format primitives:
//   - fixed-width little-endian integers (u8/u16/u32/u64)
//   - LEB128 varints for lengths and optionally-small values
//   - zigzag varints for signed integers
//   - IEEE-754 doubles (bit pattern as u64)
//   - length-prefixed strings / byte blobs
//
// Sizing: every serializable type exposes a byte-exact size (Value::
// encoded_size, RollbackLog::byte_size, ...) computed WITHOUT encoding,
// so callers on the hot commit path can pre-size the buffer — a full
// agent image is a single allocation (Encoder(reserve_hint)).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace mar::serial {

using Bytes = std::vector<std::uint8_t>;

/// Wire size of an unsigned LEB128 varint (1..10 bytes).
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Wire size of a zigzag-encoded signed varint.
[[nodiscard]] constexpr std::size_t i64_size(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  return varint_size((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

/// Wire size of a length-prefixed string / byte blob.
[[nodiscard]] constexpr std::size_t blob_size(std::size_t n) {
  return varint_size(n) + n;
}

class Encoder {
 public:
  Encoder() = default;
  /// Pre-size the buffer for `reserve_hint` bytes of payload: callers that
  /// know (or can compute) the encoded size write without reallocating.
  explicit Encoder(std::size_t reserve_hint) { buf_.reserve(reserve_hint); }

  /// Grow the buffer capacity to at least `total` payload bytes. Growth is
  /// geometric (like the underlying vector), so interleaving reserve()
  /// with writes stays amortized O(1) even when hints are underestimates.
  void reserve(std::size_t total) {
    if (total <= buf_.capacity()) return;
    buf_.reserve(std::max(total, buf_.capacity() + buf_.capacity() / 2));
  }

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_bool(bool v);
  /// Unsigned LEB128 varint.
  void write_varint(std::uint64_t v);
  /// Zigzag-encoded signed varint.
  void write_i64(std::int64_t v);
  void write_double(double v);
  /// Varint length followed by raw bytes.
  void write_string(std::string_view s);
  void write_bytes(std::span<const std::uint8_t> b);

  [[nodiscard]] const Bytes& buffer() const { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  void clear() { buf_.clear(); }

 private:
  Bytes buf_;
};

}  // namespace mar::serial
