#include "serial/value.h"

#include <sstream>

#include "util/check.h"

namespace mar::serial {

bool Value::as_bool() const {
  MAR_CHECK_MSG(is_bool(), "Value is not a bool: " << to_string());
  return std::get<bool>(data_);
}

std::int64_t Value::as_int() const {
  MAR_CHECK_MSG(is_int(), "Value is not an integer: " << to_string());
  return std::get<std::int64_t>(data_);
}

double Value::as_real() const {
  MAR_CHECK_MSG(is_real(), "Value is not a real: " << to_string());
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  MAR_CHECK_MSG(is_string(), "Value is not a string: " << to_string());
  return std::get<std::string>(data_);
}

const Bytes& Value::as_bytes() const {
  MAR_CHECK_MSG(is_bytes(), "Value is not bytes");
  return std::get<Bytes>(data_);
}

const Value::List& Value::as_list() const {
  MAR_CHECK_MSG(is_list(), "Value is not a list: " << to_string());
  return std::get<List>(data_);
}

Value::List& Value::as_list() {
  MAR_CHECK_MSG(is_list(), "Value is not a list: " << to_string());
  return std::get<List>(data_);
}

const Value::Map& Value::as_map() const {
  MAR_CHECK_MSG(is_map(), "Value is not a map: " << to_string());
  return std::get<Map>(data_);
}

Value::Map& Value::as_map() {
  MAR_CHECK_MSG(is_map(), "Value is not a map: " << to_string());
  return std::get<Map>(data_);
}

bool Value::has(std::string_view key) const {
  return is_map() && as_map().contains(std::string(key));
}

const Value& Value::at(std::string_view key) const {
  const auto& m = as_map();
  auto it = m.find(std::string(key));
  MAR_CHECK_MSG(it != m.end(), "missing map key: " << key);
  return it->second;
}

Value Value::get_or(std::string_view key, Value fallback) const {
  if (!is_map()) return fallback;
  auto it = as_map().find(std::string(key));
  if (it == as_map().end()) return fallback;
  return it->second;
}

void Value::set(std::string_view key, Value v) {
  if (is_null()) data_ = Map{};
  as_map().insert_or_assign(std::string(key), std::move(v));
}

bool Value::erase(std::string_view key) {
  return as_map().erase(std::string(key)) > 0;
}

void Value::push_back(Value v) {
  if (is_null()) data_ = List{};
  as_list().push_back(std::move(v));
}

std::size_t Value::size() const {
  if (is_list()) return as_list().size();
  if (is_map()) return as_map().size();
  if (is_string()) return as_string().size();
  if (is_bytes()) return as_bytes().size();
  return 0;
}

bool operator<(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return a.kind() < b.kind();
  switch (a.kind()) {
    case Value::Kind::null:
      return false;
    case Value::Kind::boolean:
      return std::get<bool>(a.data_) < std::get<bool>(b.data_);
    case Value::Kind::integer:
      return std::get<std::int64_t>(a.data_) < std::get<std::int64_t>(b.data_);
    case Value::Kind::real:
      return std::get<double>(a.data_) < std::get<double>(b.data_);
    case Value::Kind::string:
      return std::get<std::string>(a.data_) < std::get<std::string>(b.data_);
    case Value::Kind::bytes:
      return std::get<Bytes>(a.data_) < std::get<Bytes>(b.data_);
    case Value::Kind::list: {
      const auto& la = std::get<Value::List>(a.data_);
      const auto& lb = std::get<Value::List>(b.data_);
      return std::lexicographical_compare(la.begin(), la.end(), lb.begin(),
                                          lb.end());
    }
    case Value::Kind::map: {
      const auto& ma = std::get<Value::Map>(a.data_);
      const auto& mb = std::get<Value::Map>(b.data_);
      return std::lexicographical_compare(
          ma.begin(), ma.end(), mb.begin(), mb.end(),
          [](const auto& x, const auto& y) {
            if (x.first != y.first) return x.first < y.first;
            return x.second < y.second;
          });
    }
  }
  return false;
}

void Value::serialize(Encoder& enc) const {
  enc.write_u8(static_cast<std::uint8_t>(kind()));
  switch (kind()) {
    case Kind::null:
      break;
    case Kind::boolean:
      enc.write_bool(std::get<bool>(data_));
      break;
    case Kind::integer:
      enc.write_i64(std::get<std::int64_t>(data_));
      break;
    case Kind::real:
      enc.write_double(std::get<double>(data_));
      break;
    case Kind::string:
      enc.write_string(std::get<std::string>(data_));
      break;
    case Kind::bytes:
      enc.write_bytes(std::get<Bytes>(data_));
      break;
    case Kind::list: {
      const auto& l = std::get<List>(data_);
      enc.write_varint(l.size());
      for (const auto& v : l) v.serialize(enc);
      break;
    }
    case Kind::map: {
      const auto& m = std::get<Map>(data_);
      enc.write_varint(m.size());
      for (const auto& [k, v] : m) {
        enc.write_string(k);
        v.serialize(enc);
      }
      break;
    }
  }
}

void Value::deserialize(Decoder& dec) {
  const auto tag = dec.read_u8();
  switch (static_cast<Kind>(tag)) {
    case Kind::null:
      data_ = std::monostate{};
      break;
    case Kind::boolean:
      data_ = dec.read_bool();
      break;
    case Kind::integer:
      data_ = dec.read_i64();
      break;
    case Kind::real:
      data_ = dec.read_double();
      break;
    case Kind::string:
      data_ = dec.read_string();
      break;
    case Kind::bytes:
      data_ = dec.read_bytes();
      break;
    case Kind::list: {
      const auto n = dec.read_count();
      List l;
      l.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        Value v;
        v.deserialize(dec);
        l.push_back(std::move(v));
      }
      data_ = std::move(l);
      break;
    }
    case Kind::map: {
      const auto n = dec.read_varint();
      Map m;
      for (std::uint64_t i = 0; i < n; ++i) {
        auto k = dec.read_string();
        Value v;
        v.deserialize(dec);
        m.emplace(std::move(k), std::move(v));
      }
      data_ = std::move(m);
      break;
    }
    default:
      throw DecodeError("invalid Value kind tag " + std::to_string(tag));
  }
}

std::size_t Value::encoded_size() const {
  // Computed arithmetically (no encoding, no allocation): hot commit paths
  // use this to pre-size the encode buffer, so it must mirror serialize()
  // byte for byte.
  std::size_t n = 1;  // kind tag
  switch (kind()) {
    case Kind::null:
      break;
    case Kind::boolean:
      n += 1;
      break;
    case Kind::integer:
      n += i64_size(std::get<std::int64_t>(data_));
      break;
    case Kind::real:
      n += 8;
      break;
    case Kind::string:
      n += blob_size(std::get<std::string>(data_).size());
      break;
    case Kind::bytes:
      n += blob_size(std::get<Bytes>(data_).size());
      break;
    case Kind::list: {
      const auto& l = std::get<List>(data_);
      n += varint_size(l.size());
      for (const auto& v : l) n += v.encoded_size();
      break;
    }
    case Kind::map: {
      const auto& m = std::get<Map>(data_);
      n += varint_size(m.size());
      for (const auto& [k, v] : m) n += blob_size(k.size()) + v.encoded_size();
      break;
    }
  }
  return n;
}

std::string Value::to_string() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::null:
      os << "null";
      break;
    case Kind::boolean:
      os << (std::get<bool>(data_) ? "true" : "false");
      break;
    case Kind::integer:
      os << std::get<std::int64_t>(data_);
      break;
    case Kind::real:
      os << std::get<double>(data_);
      break;
    case Kind::string:
      os << '"' << std::get<std::string>(data_) << '"';
      break;
    case Kind::bytes:
      os << "bytes[" << std::get<Bytes>(data_).size() << "]";
      break;
    case Kind::list: {
      os << '[';
      bool first = true;
      for (const auto& v : std::get<List>(data_)) {
        if (!first) os << ',';
        first = false;
        os << v.to_string();
      }
      os << ']';
      break;
    }
    case Kind::map: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : std::get<Map>(data_)) {
        if (!first) os << ',';
        first = false;
        os << '"' << k << "\":" << v.to_string();
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// ValuePatch
// ---------------------------------------------------------------------------

ValuePatch ValuePatch::set(Value v) {
  ValuePatch p;
  p.kind_ = Kind::set;
  p.value_ = std::move(v);
  return p;
}

ValuePatch ValuePatch::remove() {
  ValuePatch p;
  p.kind_ = Kind::remove;
  return p;
}

ValuePatch ValuePatch::map_patch(std::map<std::string, ValuePatch> entries) {
  ValuePatch p;
  p.kind_ = Kind::map;
  p.entries_ = std::move(entries);
  return p;
}

void ValuePatch::serialize(Encoder& enc) const {
  enc.write_u8(static_cast<std::uint8_t>(kind_));
  switch (kind_) {
    case Kind::none:
    case Kind::remove:
      break;
    case Kind::set:
      value_.serialize(enc);
      break;
    case Kind::map:
      enc.write_varint(entries_.size());
      for (const auto& [k, p] : entries_) {
        enc.write_string(k);
        p.serialize(enc);
      }
      break;
  }
}

void ValuePatch::deserialize(Decoder& dec) {
  const auto tag = dec.read_u8();
  entries_.clear();
  value_ = Value{};
  switch (static_cast<Kind>(tag)) {
    case Kind::none:
      kind_ = Kind::none;
      break;
    case Kind::remove:
      kind_ = Kind::remove;
      break;
    case Kind::set:
      kind_ = Kind::set;
      value_.deserialize(dec);
      break;
    case Kind::map: {
      kind_ = Kind::map;
      const auto n = dec.read_varint();
      for (std::uint64_t i = 0; i < n; ++i) {
        auto k = dec.read_string();
        ValuePatch p;
        p.deserialize(dec);
        entries_.emplace(std::move(k), std::move(p));
      }
      break;
    }
    default:
      throw DecodeError("invalid ValuePatch kind tag " + std::to_string(tag));
  }
}

std::size_t ValuePatch::encoded_size() const {
  std::size_t n = 1;  // kind tag
  switch (kind_) {
    case Kind::none:
    case Kind::remove:
      break;
    case Kind::set:
      n += value_.encoded_size();
      break;
    case Kind::map:
      n += varint_size(entries_.size());
      for (const auto& [k, p] : entries_) {
        n += blob_size(k.size()) + p.encoded_size();
      }
      break;
  }
  return n;
}

std::string ValuePatch::to_string() const {
  switch (kind_) {
    case Kind::none:
      return "<none>";
    case Kind::remove:
      return "<remove>";
    case Kind::set:
      return "<set " + value_.to_string() + ">";
    case Kind::map: {
      std::string s = "<map ";
      for (const auto& [k, p] : entries_) {
        s += k + "=" + p.to_string() + " ";
      }
      s += ">";
      return s;
    }
  }
  return "?";
}

ValuePatch diff(const Value& from, const Value& to) {
  if (from == to) return ValuePatch::none();
  if (from.is_map() && to.is_map()) {
    std::map<std::string, ValuePatch> entries;
    for (const auto& [k, v] : from.as_map()) {
      auto it = to.as_map().find(k);
      if (it == to.as_map().end()) {
        entries.emplace(k, ValuePatch::remove());
      } else if (v != it->second) {
        entries.emplace(k, diff(v, it->second));
      }
    }
    for (const auto& [k, v] : to.as_map()) {
      if (!from.as_map().contains(k)) {
        entries.emplace(k, ValuePatch::set(v));
      }
    }
    return ValuePatch::map_patch(std::move(entries));
  }
  return ValuePatch::set(to);
}

Value apply(const ValuePatch& patch, Value base) {
  switch (patch.kind()) {
    case ValuePatch::Kind::none:
      return base;
    case ValuePatch::Kind::set:
      return patch.set_value();
    case ValuePatch::Kind::remove:
      return Value{};
    case ValuePatch::Kind::map: {
      if (!base.is_map()) base = Value::empty_map();
      auto& m = base.as_map();
      for (const auto& [k, p] : patch.entries()) {
        if (p.kind() == ValuePatch::Kind::remove) {
          m.erase(k);
          continue;
        }
        auto it = m.find(k);
        Value sub = (it != m.end()) ? it->second : Value{};
        m.insert_or_assign(k, apply(p, std::move(sub)));
      }
      return base;
    }
  }
  return base;
}

ValuePatch compose(const ValuePatch& first, const ValuePatch& second) {
  switch (second.kind()) {
    case ValuePatch::Kind::none:
      return first;
    case ValuePatch::Kind::set:
    case ValuePatch::Kind::remove:
      return second;  // second fully determines the outcome
    case ValuePatch::Kind::map:
      break;
  }
  // second is a map patch.
  switch (first.kind()) {
    case ValuePatch::Kind::none:
      return second;
    case ValuePatch::Kind::set:
      return ValuePatch::set(apply(second, first.set_value()));
    case ValuePatch::Kind::remove:
      // Applying a map patch after removal starts from an empty map.
      return ValuePatch::set(apply(second, Value::empty_map()));
    case ValuePatch::Kind::map: {
      auto entries = first.entries();
      for (const auto& [k, q] : second.entries()) {
        auto it = entries.find(k);
        if (it == entries.end()) {
          entries.emplace(k, q);
        } else {
          it->second = compose(it->second, q);
        }
      }
      return ValuePatch::map_patch(std::move(entries));
    }
  }
  return second;
}

}  // namespace mar::serial
