#include "serial/decoder.h"

#include <bit>

namespace mar::serial {

void Decoder::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw DecodeError("decode past end of buffer (need " + std::to_string(n) +
                      ", have " + std::to_string(data_.size() - pos_) + ")");
  }
}

std::uint8_t Decoder::read_u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Decoder::read_u16() {
  const auto lo = read_u8();
  const auto hi = read_u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t Decoder::read_u32() {
  const auto lo = read_u16();
  const auto hi = read_u16();
  return static_cast<std::uint32_t>(lo) |
         (static_cast<std::uint32_t>(hi) << 16);
}

std::uint64_t Decoder::read_u64() {
  const auto lo = read_u32();
  const auto hi = read_u32();
  return static_cast<std::uint64_t>(lo) |
         (static_cast<std::uint64_t>(hi) << 32);
}

bool Decoder::read_bool() {
  const auto v = read_u8();
  if (v > 1) throw DecodeError("invalid bool value");
  return v != 0;
}

std::uint64_t Decoder::read_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw DecodeError("varint too long");
    const auto b = read_u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::int64_t Decoder::read_i64() {
  const auto u = read_varint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

double Decoder::read_double() { return std::bit_cast<double>(read_u64()); }

std::string Decoder::read_string() {
  return std::string(read_string_view());
}

std::string_view Decoder::read_string_view() {
  const auto n = read_varint();
  need(n);
  std::string_view s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::span<const std::uint8_t> Decoder::read_bytes_view() {
  const auto n = read_varint();
  need(n);
  const auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

std::vector<std::uint8_t> Decoder::read_bytes() {
  const auto n = read_varint();
  need(n);
  std::vector<std::uint8_t> b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                              data_.begin() +
                                  static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

std::uint64_t Decoder::read_count() {
  const auto n = read_varint();
  if (n > remaining()) {
    throw DecodeError("collection count " + std::to_string(n) +
                      " exceeds remaining buffer (" +
                      std::to_string(remaining()) + " bytes)");
  }
  return n;
}

void Decoder::expect_end() const {
  if (!at_end()) {
    throw DecodeError("trailing bytes after decode: " +
                      std::to_string(remaining()));
  }
}

}  // namespace mar::serial
