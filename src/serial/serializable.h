// Serializable interface and polymorphic type registry.
//
// Agent migration captures "the agent object with code and all private
// data" (paper Sec. 2). In this C++ reproduction, *code* mobility is
// modeled by a type registry shared by all nodes: the wire format carries
// a type name, and the receiving node re-instantiates the object through
// the registered factory — faithful to how Mole shipped classes both
// endpoints already knew.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "util/check.h"

namespace mar::serial {

/// An object whose full state can be captured into bytes and restored.
class Serializable {
 public:
  virtual ~Serializable() = default;

  /// Append this object's state to the encoder.
  virtual void serialize(Encoder& enc) const = 0;
  /// Restore this object's state from the decoder.
  virtual void deserialize(Decoder& dec) = 0;
};

/// Convenience: serialize to a fresh byte vector.
template <typename T>
[[nodiscard]] Bytes to_bytes(const T& obj) {
  // Generic helper: T's size interface (if any) is unknown here; sized
  // hot paths construct Encoder(reserve_hint) directly instead.
  Encoder enc;  // mar-lint: small-frame
  obj.serialize(enc);
  return std::move(enc).take();
}

/// Convenience: deserialize a default-constructible object from bytes.
template <typename T>
[[nodiscard]] T from_bytes(std::span<const std::uint8_t> bytes) {
  T obj;
  Decoder dec(bytes);
  obj.deserialize(dec);
  dec.expect_end();
  return obj;
}

/// Registry of polymorphic factories for one base class. Nodes share a
/// registry instance via the simulation world: registering an agent or
/// compensating-operation type makes it instantiable everywhere, which
/// models code availability across the agent system.
template <typename Base>
class TypeRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Base>()>;

  void register_type(std::string name, Factory factory) {
    MAR_CHECK_MSG(!factories_.contains(name),
                  "duplicate type registration: " << name);
    factories_.emplace(std::move(name), std::move(factory));
  }

  template <typename Derived>
  void register_type(std::string name) {
    register_type(std::move(name),
                  [] { return std::make_unique<Derived>(); });
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    // Heterogeneous lookup (std::less<>): no temporary std::string.
    return factories_.find(name) != factories_.end();
  }

  [[nodiscard]] std::unique_ptr<Base> create(std::string_view name) const {
    auto it = factories_.find(name);
    MAR_CHECK_MSG(it != factories_.end(), "unknown type: " << name);
    return it->second();
  }

 private:
  std::map<std::string, Factory, std::less<>> factories_;
};

}  // namespace mar::serial
