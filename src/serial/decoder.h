// Binary decoder matching serial::Encoder.
//
// All reads are bounds-checked; a malformed buffer raises DecodeError
// rather than reading out of bounds. Decoding failures indicate corrupted
// stable storage or a protocol bug, both of which are fatal for the
// affected message, so an exception is the appropriate channel.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mar::serial {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  bool read_bool();
  std::uint64_t read_varint();
  std::int64_t read_i64();
  double read_double();
  std::string read_string();
  /// Zero-copy string read: the returned view aliases the decode buffer
  /// and is valid only while that buffer lives. For callers that compare
  /// or dispatch on the string without retaining it (type tags, map keys
  /// looked up immediately), this skips the per-read allocation.
  std::string_view read_string_view();
  std::vector<std::uint8_t> read_bytes();
  /// Zero-copy blob read: the returned span aliases the decode buffer and
  /// is valid only while that buffer lives. Convoy framing uses this to
  /// hand nested payloads (agent images, deltas) to their own decoders
  /// without copying them out of the message first.
  std::span<const std::uint8_t> read_bytes_view();
  /// A collection length prefix. Every element costs at least one byte on
  /// the wire, so a count exceeding the remaining buffer is malformed —
  /// checked HERE, before the caller sizes a container from it (a flipped
  /// length byte must not trigger a gigantic allocation).
  std::uint64_t read_count();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }

  /// Assert the buffer has been fully consumed (catches framing bugs).
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace mar::serial
