#include "agent/platform.h"

#include <algorithm>

#include "agent/node_runtime.h"
#include "util/check.h"

namespace mar::agent {

Platform::Platform(sim::Simulator& sim, net::Network& net, TraceSink& trace,
                   PlatformConfig config, std::uint64_t seed)
    : sim_(sim), net_(net), trace_(trace), config_(config), rng_(seed) {
  spans_.set_enabled(config_.span_tracing);
  spans_.set_capacity(config_.flight_recorder_spans);
  net_.subscribe_node_state([this](NodeId id, bool up) {
    auto it = nodes_.find(id);
    if (it != nodes_.end()) it->second->on_node_state(up);
  });
  // System compensating operation behind spawn entries (multi-agent
  // executions, Sec. 6): rolling back a step that spawned a child cancels
  // that child — or, if it already finished, re-injects it as a
  // compensating execution of its own committed steps.
  comp_registry_.register_op(
      "sys.cancel_child", [this](rollback::CompensationContext& ctx) {
        return cancel_child(AgentId(static_cast<std::uint64_t>(
            ctx.params().at("child").as_int())));
      });
}

Platform::~Platform() = default;

NodeRuntime& Platform::add_node(NodeId id) {
  MAR_CHECK_MSG(!nodes_.contains(id), "node already exists: " << id);
  auto runtime = std::make_unique<NodeRuntime>(*this, id);
  NodeRuntime& ref = *runtime;
  nodes_.emplace(id, std::move(runtime));
  net_.add_node(id, [&ref](const net::Message& m) { ref.handle_message(m); });
  return ref;
}

NodeRuntime& Platform::node(NodeId id) {
  auto it = nodes_.find(id);
  MAR_CHECK_MSG(it != nodes_.end(), "unknown node: " << id);
  return *it->second;
}

Result<AgentId> Platform::launch(std::unique_ptr<Agent> agent) {
  MAR_CHECK(agent != nullptr);
  MAR_CHECK_MSG(agent_types_.contains(agent->type_name()),
                "agent type not registered: " << agent->type_name());
  if (config_.itinerary_savepoints) {
    MAR_RETURN_IF_ERROR(agent->itinerary().validate_main());
  }
  auto first = agent->itinerary().first_step();
  if (!first.has_value()) {
    return Status(Errc::invalid_itinerary, "itinerary contains no steps");
  }
  const AgentId id(next_agent_++);
  agent->set_id(id);
  agent->set_run_state(Agent::RunState::running);
  agent->set_position(*first);
  agent->set_force_full_savepoint(true);

  const NodeId start = agent->itinerary().step_at(*first).primary();
  MAR_CHECK_MSG(nodes_.contains(start), "itinerary starts at unknown node "
                                            << start);
  // Initial savepoints for the sub-itineraries entered at launch.
  advance_itinerary(start, *agent, Position{}, first, {});

  storage::QueueRecord record;
  record.record_id = next_record_id();
  record.agent = id;
  record.kind = storage::RecordKind::execute;
  // One trace per agent execution; the agent id doubles as the trace id
  // (unique, deterministic, readable in dumps). The launch record has no
  // parent hop.
  record.trace_id = id.value();
  record.payload = encode_agent(*agent);
  outcomes_[id] = AgentOutcome{};
  node(start).enqueue_initial(std::move(record));
  return id;
}

Result<AgentId> Platform::prepare_child(Agent& child, AgentId parent,
                                        NodeId where, NodeId result_node,
                                        std::string result_key) {
  MAR_CHECK_MSG(agent_types_.contains(child.type_name()),
                "agent type not registered: " << child.type_name());
  if (config_.itinerary_savepoints) {
    MAR_RETURN_IF_ERROR(child.itinerary().validate_main());
  }
  auto first = child.itinerary().first_step();
  if (!first.has_value()) {
    return Status(Errc::invalid_itinerary, "itinerary contains no steps");
  }
  if (!result_key.empty() && !nodes_.contains(result_node)) {
    return Status(Errc::not_found, "result node does not exist");
  }
  const AgentId id(next_agent_++);
  child.set_id(id);
  child.set_parent(parent);
  child.set_result_target(result_node, std::move(result_key));
  // The spawn is compensable (sys.cancel_child), so the child must stay
  // completely rollback-able for its whole life (see Agent docs).
  child.set_retain_full_log(true);
  child.set_run_state(Agent::RunState::running);
  child.set_position(*first);
  child.set_force_full_savepoint(true);
  advance_itinerary(where, child, Position{}, first, {});
  outcomes_[id] = AgentOutcome{};
  children_[parent].push_back(id);
  return id;
}

std::vector<AgentId> Platform::children_of(AgentId parent) const {
  auto it = children_.find(parent);
  if (it == children_.end()) return {};
  return it->second;
}

void Platform::request_cancel(AgentId id) { cancel_requested_.insert(id); }

bool Platform::cancel_requested(AgentId id) const {
  return cancel_requested_.contains(id);
}

void Platform::clear_cancel(AgentId id) { cancel_requested_.erase(id); }

void Platform::forget_agent(AgentId id) {
  outcomes_.erase(id);
  cancel_requested_.erase(id);
  for (auto& [parent, kids] : children_) {
    std::erase(kids, id);
  }
}

Status Platform::cancel_child(AgentId child) {
  auto it = outcomes_.find(child);
  if (it == outcomes_.end()) {
    return Status(Errc::not_found, "unknown child agent");
  }
  switch (it->second.state) {
    case AgentOutcome::State::running:
      // Cancelled at the child's next step boundary (eventually — the
      // same liveness argument as the rollback itself).
      request_cancel(child);
      return Status::ok();
    case AgentOutcome::State::failed:
    case AgentOutcome::State::cancelled:
      return Status::ok();  // nothing committed beyond what it undid
    case AgentOutcome::State::done:
      break;
  }
  // The child already finished: compensate it by re-injecting its final
  // state as a compensating execution that rolls back to its oldest
  // savepoint. Possible only while its log still reaches back to launch —
  // after a top-level discard the child's effects are final (Sec. 4.4.2),
  // and this compensation FAILS (Sec. 3.2's failing compensation).
  auto fin = decode(it->second.final_agent);
  const auto target = fin->log().first_savepoint();
  if (!target.valid()) {
    return Status(Errc::not_compensatable,
                  "child's rollback log was discarded; its effects are "
                  "final");
  }
  const NodeId where = it->second.final_node;
  storage::QueueRecord rec;
  rec.record_id = next_record_id();
  rec.agent = child;
  rec.kind = storage::RecordKind::compensate;
  rec.rollback_target = target;
  rec.completion = storage::QueueRecord::Completion::cancel;
  rec.trace_id = child.value();  // compensating execution, same agent trace
  rec.payload = it->second.final_agent;
  it->second = AgentOutcome{};  // running again, as a compensator
  trace_.emit(sim_.now(), TraceKind::msg, where.value(),
              "re-injecting finished child " + std::to_string(child.value()) +
                  " for compensation");
  node(where).enqueue_initial(std::move(rec));
  return Status::ok();
}

const AgentOutcome& Platform::outcome(AgentId id) const {
  auto it = outcomes_.find(id);
  MAR_CHECK_MSG(it != outcomes_.end(), "unknown agent: " << id);
  return it->second;
}

bool Platform::finished(AgentId id) const {
  return outcome(id).state != AgentOutcome::State::running;
}

bool Platform::run_until_finished(AgentId id) {
  return sim_.run_while_pending([this, id] { return finished(id); });
}

bool Platform::run_until_all_finished(std::span<const AgentId> ids) {
  return sim_.run_while_pending([this, ids] {
    return std::all_of(ids.begin(), ids.end(),
                       [this](AgentId id) { return finished(id); });
  });
}

std::unique_ptr<Agent> Platform::decode(
    std::span<const std::uint8_t> bytes) const {
  return decode_agent(agent_types_, bytes);
}

void Platform::record_outcome(AgentId id, AgentOutcome outcome) {
  outcomes_[id] = std::move(outcome);
  // A cancellation may have been requested while the agent's terminal
  // transaction was already committing (its outcome lands here a little
  // after the commit became durable). Settle the request now: a `done`
  // agent is compensated by re-injection; failed/cancelled agents have
  // nothing left to undo.
  if (cancel_requested_.contains(id) &&
      outcomes_[id].state != AgentOutcome::State::running) {
    cancel_requested_.erase(id);
    if (outcomes_[id].state == AgentOutcome::State::done) {
      const auto st = cancel_child(id);
      if (!st.is_ok()) {
        trace_.emit(sim_.now(), TraceKind::msg, 0,
                    "late cancel of agent " + std::to_string(id.value()) +
                        " impossible: " + st.to_string());
      }
    }
  }
}

MetricsSnapshot Platform::metrics_snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [id, runtime] : nodes_) {
    snap.merge(runtime->metrics_snapshot());
  }
  snap.scalars["platform.rollback_transfers"] = rollback_transfers_;
  snap.scalars["platform.mixed_ships"] = mixed_ships_;
  snap.scalars["platform.lock_conflict_aborts"] = lock_conflict_aborts_;
  return snap;
}

// ---------------------------------------------------------------------------
// Savepoints and itinerary integration (Sec. 4.4.2)
// ---------------------------------------------------------------------------

void Platform::append_savepoint(NodeId where, Agent& agent,
                                SavepointId id,
                                rollback::SavepointOrigin origin,
                                std::uint32_t depth, Position resume) {
  auto& log = agent.log();
  rollback::SavepointEntry sp;
  sp.id = id;
  sp.origin = origin;
  sp.depth = depth;
  sp.resume_position = std::move(resume);
  // Sec. 4.4.2: when no step has run since the previous savepoint (the log
  // still ends with an SP entry), a "special savepoint entry without data
  // for the strongly reversible objects" suffices.
  sp.lightweight = !log.empty() && log.back().is_savepoint();
  if (!sp.lightweight) {
    Value strong = agent.data().strong_image();
    if (config_.logging == LoggingMode::state ||
        agent.force_full_savepoint()) {
      sp.transition = false;
      sp.image = strong;
    } else {
      sp.transition = true;
      sp.delta = serial::diff(agent.last_savepoint_strong(), strong);
    }
    agent.set_last_savepoint_strong(std::move(strong));
    agent.set_force_full_savepoint(false);
  }
  trace_.emit(sim_.now(), TraceKind::savepoint, where.value(),
              "SP_" + std::to_string(id.value()) +
                  (sp.lightweight ? " (lightweight)" : "") +
                  (sp.transition ? " (delta)" : ""));
  log.push(std::move(sp));
  agent.savepoint_stack().push_back(SavepointStackEntry{id, origin, depth});
}

void Platform::advance_itinerary(NodeId where, Agent& agent,
                                 const Position& from,
                                 const std::optional<Position>& to,
                                 const std::vector<SavepointId>& adhoc) {
  auto& log = agent.log();
  const Position to_pos = to.value_or(Position{});

  // Application-requested savepoints (Sec. 2) are written first: they were
  // constituted at the end of the just-committed step and belong to that
  // step's (possibly completing) sub-itinerary era — so a top-level
  // discard below wipes them, keeping "no rollback across a completed
  // top-level sub-itinerary" airtight.
  if (to.has_value()) {
    const auto from_depth =
        static_cast<std::uint32_t>(Itinerary::active_subs(from).size());
    for (const auto id : adhoc) {
      append_savepoint(where, agent, id, rollback::SavepointOrigin::adhoc,
                       from_depth, to_pos);
    }
  }

  // Completed sub-itineraries, innermost first.
  for (const auto& sub : Itinerary::exited_subs(from, to_pos)) {
    const auto depth = static_cast<std::uint32_t>(sub.size());
    if (depth == 1 && config_.discard_log_on_top_level &&
        config_.itinerary_savepoints && !agent.retain_full_log()) {
      // Sec. 4.4.2: completing a sub-itinerary directly contained in the
      // main itinerary deletes ALL information in the rollback log.
      trace_.emit(sim_.now(), TraceKind::log_discard, where.value(),
                  "top-level sub-itinerary completed; " +
                      std::to_string(log.size()) + " entries dropped");
      log.clear();
      agent.savepoint_stack().clear();
      agent.set_force_full_savepoint(true);
      continue;
    }
    if (!config_.itinerary_savepoints) continue;
    // Find this sub-itinerary's savepoint on the stack (topmost matching).
    auto& stack = agent.savepoint_stack();
    for (std::size_t i = stack.size(); i-- > 0;) {
      if (stack[i].origin != rollback::SavepointOrigin::sub_itinerary ||
          stack[i].depth != depth) {
        continue;
      }
      const SavepointId sp_id = stack[i].id;
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
      // A retained-log agent keeps its launch savepoint (the first one it
      // allocated) so a complete rollback stays possible.
      if (agent.retain_full_log() && sp_id.value() == 1) continue;
      if (config_.gc_savepoints) {
        auto gc = log.gc_savepoint(sp_id);
        if (gc.has_value()) {
          if (*gc) agent.set_force_full_savepoint(true);
          trace_.emit(sim_.now(), TraceKind::sp_gc, where.value(),
                      "SP_" + std::to_string(sp_id.value()) +
                          " (sub-itinerary completed)");
        }
      }
      break;
    }
  }

  if (!to.has_value()) return;  // agent finished; nothing to establish

  // Sub-itineraries being entered, outermost first (Sec. 4.4.2).
  if (config_.itinerary_savepoints) {
    for (const auto& sub : Itinerary::entered_subs(from, to_pos)) {
      append_savepoint(where, agent, agent.allocate_savepoint_id(),
                       rollback::SavepointOrigin::sub_itinerary,
                       static_cast<std::uint32_t>(sub.size()), to_pos);
    }
  }
}

}  // namespace mar::agent
