#include "agent/data_space.h"

#include "util/check.h"

namespace mar::agent {

void DataSpace::declare_strong(std::string_view name, Value initial) {
  MAR_CHECK_MSG(!weak_.has(name),
                "slot already declared weak: " << name);
  if (!strong_.has(name)) {
    strong_.set(name, std::move(initial));
    dirty_strong_.insert(std::string(name));
  }
}

void DataSpace::declare_weak(std::string_view name, Value initial) {
  MAR_CHECK_MSG(!strong_.has(name),
                "slot already declared strong: " << name);
  if (!weak_.has(name)) {
    weak_.set(name, std::move(initial));
    dirty_weak_.insert(std::string(name));
  }
}

bool DataSpace::has_strong(std::string_view name) const {
  return strong_.has(name);
}

bool DataSpace::has_weak(std::string_view name) const {
  return weak_.has(name);
}

Value& DataSpace::strong(std::string_view name) {
  MAR_CHECK_MSG(mode_ != Mode::compensating,
                "strongly reversible objects must not be accessed during "
                "compensation (slot '"
                    << name << "')");
  MAR_CHECK_MSG(strong_.has(name), "unknown strong slot: " << name);
  dirty_strong_.insert(std::string(name));
  return strong_.as_map().find(std::string(name))->second;
}

const Value& DataSpace::strong(std::string_view name) const {
  MAR_CHECK_MSG(mode_ != Mode::compensating,
                "strongly reversible objects must not be accessed during "
                "compensation (slot '"
                    << name << "')");
  return strong_.at(name);
}

Value& DataSpace::weak(std::string_view name) {
  MAR_CHECK_MSG(weak_.has(name), "unknown weak slot: " << name);
  dirty_weak_.insert(std::string(name));
  return weak_.as_map().find(std::string(name))->second;
}

const Value& DataSpace::weak(std::string_view name) const {
  return weak_.at(name);
}

void DataSpace::restore_strong(Value image) {
  strong_ = std::move(image);
  strong_all_dirty_ = true;
}

void DataSpace::set_strong_slot(const std::string& name, Value v) {
  strong_.set(name, std::move(v));
  dirty_strong_.insert(name);
}

void DataSpace::set_weak_slot(const std::string& name, Value v) {
  weak_.set(name, std::move(v));
  dirty_weak_.insert(name);
}

void DataSpace::replace_weak(Value map) {
  weak_ = std::move(map);
  weak_all_dirty_ = true;
}

void DataSpace::clear_dirty() {
  dirty_strong_.clear();
  dirty_weak_.clear();
  strong_all_dirty_ = false;
  weak_all_dirty_ = false;
}

void DataSpace::serialize(serial::Encoder& enc) const {
  strong_.serialize(enc);
  weak_.serialize(enc);
}

void DataSpace::deserialize(serial::Decoder& dec) {
  strong_.deserialize(dec);
  weak_.deserialize(dec);
  clear_dirty();
}

}  // namespace mar::agent
