// StepContext: the API surface a step's code programs against.
//
// Within a step transaction the agent can (Sec. 2, Sec. 4):
//   * invoke operations on the node's local resources;
//   * log compensating operations for those effects, typed per Sec. 4.4.1
//     (resource / agent / mixed compensation entries);
//   * establish an agent savepoint, to be written at the end of the step;
//   * request a partial rollback — the platform then aborts the step
//     transaction and runs the rollback algorithm (Fig. 4a / 5a);
//   * mark the step non-compensatable (Sec. 3.2), poisoning rollback
//     across it.
//
// Resource errors are returned, not thrown: a lock conflict or transaction
// abort marks the step fatally failed, and the platform restarts it later
// (the exactly-once protocol's abort/restart path).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "agent/agent.h"
#include "resource/resource_manager.h"
#include "rollback/log.h"
#include "serial/value.h"
#include "util/ids.h"
#include "util/result.h"
#include "util/rng.h"

namespace mar::agent {

/// A pending rollback request: either an explicit savepoint id or a
/// sub-itinerary level (0 = current sub-itinerary, 1 = enclosing, ...).
/// With `skip` set, the targeted sub-itinerary is *abandoned*: after the
/// rollback reaches its entry savepoint, execution resumes at the step
/// AFTER the sub-itinerary instead of retrying it (the non-vital-sub-saga
/// semantics of Sec. 5).
struct RollbackRequest {
  std::variant<SavepointId, std::uint32_t> target;
  bool skip = false;
};

/// A child-agent spawn requested during a step (multi-agent executions,
/// the paper's Sec. 6 future work). Staged atomically with the step
/// commit; rolled back by the automatically logged "sys.cancel_child"
/// compensating entry.
struct SpawnRequest {
  std::unique_ptr<Agent> child;
  NodeId result_node;      ///< where the child's result mailbox lives
  std::string result_key;  ///< mailbox key; empty = fire-and-forget
};

class StepContext {
 public:
  StepContext(NodeId node, std::uint64_t now_us, TxId tx, Agent& agent,
              resource::ResourceManager& rm, Rng& rng)
      : node_(node), now_us_(now_us), tx_(tx), agent_(agent), rm_(rm),
        rng_(rng) {}

  // --- environment -----------------------------------------------------------
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t now_us() const { return now_us_; }
  [[nodiscard]] DataSpace& data() { return agent_.data(); }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const Agent& agent() const { return agent_; }

  // --- resource access --------------------------------------------------------
  /// Invoke an operation on a local resource within the step transaction.
  Result<serial::Value> invoke(const std::string& resource,
                               std::string_view op,
                               const serial::Value& params);
  /// Account `ops` resource-operation service-time units to this step
  /// WITHOUT touching any resource (pure local computation — no lock is
  /// taken, so concurrent slots never conflict on it). The platform
  /// charges resource_op_service_us per unit before the step commits;
  /// contention-free throughput workloads (A4) are built from this.
  void charge_service(std::uint32_t ops) { invokes_ += ops; }

  // --- compensation logging (Sec. 4.4.1 operation-entry types) ---------------
  /// Log a resource compensation entry: `comp_op` will run on THIS node
  /// against `resource`, with `params` as its only information source.
  void log_resource_compensation(const std::string& resource,
                                 std::string comp_op, serial::Value params);
  /// Log an agent compensation entry: `comp_op` runs wherever the agent
  /// is, touching only weakly reversible objects.
  void log_agent_compensation(std::string comp_op, serial::Value params);
  /// Log a mixed compensation entry: needs the agent AND `resource` on
  /// this node; forces an agent transfer during rollback.
  void log_mixed_compensation(const std::string& resource,
                              std::string comp_op, serial::Value params);
  /// Declare this step non-compensatable (Sec. 3.2): after commit, no
  /// rollback may cross it.
  void mark_not_compensatable() { not_compensatable_ = true; }

  // --- savepoints and rollback -------------------------------------------------
  /// Establish an agent savepoint at the end of this step (Sec. 2).
  /// Returns its id, usable in later request_rollback calls.
  SavepointId establish_savepoint();
  /// Request rollback to an explicit savepoint.
  void request_rollback(SavepointId target);
  /// Request rollback of the current sub-itinerary (Sec. 4.4.2), or an
  /// enclosing one (`levels_up` > 0).
  void request_rollback_sub_itinerary(std::uint32_t levels_up = 0);
  /// Roll back the current (or an enclosing) sub-itinerary and ABANDON it:
  /// resume forward execution at the step following the sub-itinerary.
  /// This is the application-facing half of the non-vital-sub mechanism.
  void request_abandon_sub_itinerary(std::uint32_t levels_up = 0);
  /// Declare this step permanently failed (retrying cannot help — e.g.
  /// missing permissions, Sec. 1). The platform abandons the innermost
  /// enclosing non-vital sub-itinerary, or fails the agent if every
  /// enclosing sub-itinerary is vital.
  void fail_step(Status status);
  /// Abort this step transaction and have the platform restart it after a
  /// backoff (e.g. waiting for a child's result to arrive). All step
  /// effects so far are undone by the abort; the step re-executes from
  /// the top, which is exactly the exactly-once protocol's restart path.
  void retry_step(Status reason);

  // --- multi-agent executions (Sec. 6 future work) ----------------------------
  /// Spawn a child agent: its launch is staged atomically with this step's
  /// commit (exactly-once spawn) and a "sys.cancel_child" compensating
  /// entry is logged automatically, so rolling this step back cancels the
  /// child (or compensates it, if it already finished). When `result_key`
  /// is non-empty, the platform delivers the child's result — the weak
  /// "result" slot if declared, else its whole weak image — to the
  /// mailbox resource on `result_node` within the child's final step
  /// transaction.
  void spawn_child(std::unique_ptr<Agent> child,
                   NodeId result_node = NodeId::invalid(),
                   std::string result_key = {});
  /// Join helper: take the child result stored under `key` from this
  /// node's mailbox. Not yet there -> the step retries later (retry_step).
  Result<serial::Value> join_child(const std::string& key);

  // --- platform-side accessors -------------------------------------------------
  [[nodiscard]] const std::vector<rollback::OperationEntry>& logged_ops()
      const {
    return ops_;
  }
  [[nodiscard]] const std::vector<SavepointId>& requested_savepoints() const {
    return savepoints_;
  }
  [[nodiscard]] const std::optional<RollbackRequest>& rollback_request()
      const {
    return rollback_;
  }
  [[nodiscard]] std::vector<SpawnRequest>& spawns() { return spawns_; }
  [[nodiscard]] bool fatal() const { return fatal_; }
  [[nodiscard]] Status fatal_status() const { return fatal_status_; }
  [[nodiscard]] bool failed_permanently() const { return permanent_fail_; }
  [[nodiscard]] const Status& permanent_status() const {
    return permanent_status_;
  }
  [[nodiscard]] bool not_compensatable() const { return not_compensatable_; }
  [[nodiscard]] std::uint32_t resource_ops_invoked() const {
    return invokes_;
  }

 private:
  NodeId node_;
  std::uint64_t now_us_;
  TxId tx_;
  Agent& agent_;
  resource::ResourceManager& rm_;
  Rng& rng_;

  std::vector<rollback::OperationEntry> ops_;
  std::vector<SpawnRequest> spawns_;
  std::vector<SavepointId> savepoints_;
  std::optional<RollbackRequest> rollback_;
  bool fatal_ = false;
  Status fatal_status_;
  bool permanent_fail_ = false;
  Status permanent_status_;
  bool not_compensatable_ = false;
  std::uint32_t invokes_ = 0;
};

}  // namespace mar::agent
