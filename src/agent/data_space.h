// The agent's private data space, split into strongly and weakly
// reversible objects (paper Sec. 4.1).
//
// Strongly reversible slots are restored by the system from a physical
// before-image stored in savepoint entries; weakly reversible slots are
// restored by developer-supplied compensating operations, because rollback
// produces information that did not exist before (refunded coins with new
// serials, credit notes, fees).
//
// Access control implements Sec. 4.3's rule that "accessing the strongly
// reversible objects during the execution of the compensating operations
// is not allowed": while the data space is in compensating mode, touching
// a strong slot raises LogicError. (Compensating operations additionally
// never get a reference to the strong map — this is defense in depth.)
#pragma once

#include <set>
#include <string>
#include <string_view>

#include "serial/serializable.h"
#include "serial/value.h"

namespace mar::agent {

using serial::Value;

class DataSpace {
 public:
  enum class Mode { normal, compensating };

  /// Declare a strongly reversible slot (idempotent; keeps existing value).
  void declare_strong(std::string_view name, Value initial);
  /// Declare a weakly reversible slot (idempotent; keeps existing value).
  void declare_weak(std::string_view name, Value initial);

  [[nodiscard]] bool has_strong(std::string_view name) const;
  [[nodiscard]] bool has_weak(std::string_view name) const;

  /// Access a strongly reversible object. LogicError in compensating mode.
  [[nodiscard]] Value& strong(std::string_view name);
  [[nodiscard]] const Value& strong(std::string_view name) const;
  /// Access a weakly reversible object.
  [[nodiscard]] Value& weak(std::string_view name);
  [[nodiscard]] const Value& weak(std::string_view name) const;

  /// Physical before-image of all strong slots (savepoint data).
  [[nodiscard]] const Value& strong_image() const { return strong_; }
  /// Restore all strong slots from a savepoint image.
  void restore_strong(Value image);

  // --- incremental-commit apply ------------------------------------------
  // Overwrite one top-level slot (creating it if needed) or a whole side
  // when replaying a delta record; skips the declare_* exclusivity checks
  // because the delta was produced from a state that already passed them.
  void set_strong_slot(const std::string& name, Value v);
  void set_weak_slot(const std::string& name, Value v);
  void replace_weak(Value map);

  /// The whole weak-slot map; handed to compensating operations. The
  /// caller can mutate arbitrary slots through the pointer, so tracking
  /// degrades to all-dirty (compensation is a full-image path anyway).
  [[nodiscard]] Value* weak_slots() {
    weak_all_dirty_ = true;
    return &weak_;
  }
  [[nodiscard]] const Value& weak_image() const { return weak_; }

  void set_mode(Mode mode) { mode_ = mode; }
  [[nodiscard]] Mode mode() const { return mode_; }

  // --- dirty-slot tracking (incremental commit) --------------------------
  // The data space remembers which top-level slots were handed out mutably
  // since the last clear_dirty(), so a step's changed state is enumerable
  // without a full-tree diff. Tracking is conservative: a slot accessed
  // through the non-const accessors counts as dirty even if only read, and
  // whole-map operations (restore_strong, weak_slots) mark everything
  // dirty. Over-approximation only costs delta bytes, never correctness.
  [[nodiscard]] const std::set<std::string>& dirty_strong() const {
    return dirty_strong_;
  }
  [[nodiscard]] const std::set<std::string>& dirty_weak() const {
    return dirty_weak_;
  }
  /// Whole-map invalidation: a delta must carry the full strong/weak map.
  [[nodiscard]] bool strong_all_dirty() const { return strong_all_dirty_; }
  [[nodiscard]] bool weak_all_dirty() const { return weak_all_dirty_; }
  /// Start a fresh tracking window (after a durable commit or decode).
  void clear_dirty();

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t encoded_size() const {
    return strong_.encoded_size() + weak_.encoded_size();
  }

 private:
  Value strong_ = Value::empty_map();
  Value weak_ = Value::empty_map();
  Mode mode_ = Mode::normal;  // runtime-only; not serialized
  // Runtime-only change tracking; not serialized.
  std::set<std::string> dirty_strong_;
  std::set<std::string> dirty_weak_;
  bool strong_all_dirty_ = false;
  bool weak_all_dirty_ = false;
};

}  // namespace mar::agent
