// The agent's private data space, split into strongly and weakly
// reversible objects (paper Sec. 4.1).
//
// Strongly reversible slots are restored by the system from a physical
// before-image stored in savepoint entries; weakly reversible slots are
// restored by developer-supplied compensating operations, because rollback
// produces information that did not exist before (refunded coins with new
// serials, credit notes, fees).
//
// Access control implements Sec. 4.3's rule that "accessing the strongly
// reversible objects during the execution of the compensating operations
// is not allowed": while the data space is in compensating mode, touching
// a strong slot raises LogicError. (Compensating operations additionally
// never get a reference to the strong map — this is defense in depth.)
#pragma once

#include <string_view>

#include "serial/serializable.h"
#include "serial/value.h"

namespace mar::agent {

using serial::Value;

class DataSpace {
 public:
  enum class Mode { normal, compensating };

  /// Declare a strongly reversible slot (idempotent; keeps existing value).
  void declare_strong(std::string_view name, Value initial);
  /// Declare a weakly reversible slot (idempotent; keeps existing value).
  void declare_weak(std::string_view name, Value initial);

  [[nodiscard]] bool has_strong(std::string_view name) const;
  [[nodiscard]] bool has_weak(std::string_view name) const;

  /// Access a strongly reversible object. LogicError in compensating mode.
  [[nodiscard]] Value& strong(std::string_view name);
  [[nodiscard]] const Value& strong(std::string_view name) const;
  /// Access a weakly reversible object.
  [[nodiscard]] Value& weak(std::string_view name);
  [[nodiscard]] const Value& weak(std::string_view name) const;

  /// Physical before-image of all strong slots (savepoint data).
  [[nodiscard]] Value strong_image() const { return strong_; }
  /// Restore all strong slots from a savepoint image.
  void restore_strong(Value image);

  /// The whole weak-slot map; handed to compensating operations.
  [[nodiscard]] Value* weak_slots() { return &weak_; }
  [[nodiscard]] const Value& weak_image() const { return weak_; }

  void set_mode(Mode mode) { mode_ = mode; }
  [[nodiscard]] Mode mode() const { return mode_; }

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);

 private:
  Value strong_ = Value::empty_map();
  Value weak_ = Value::empty_map();
  Mode mode_ = Mode::normal;  // runtime-only; not serialized
};

}  // namespace mar::agent
