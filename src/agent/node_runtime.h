// Per-node runtime: queue processing, step execution, rollback algorithms.
//
// Each node owns its stable storage (with the agent input queue), a
// transactional queue manager and resource manager, and a transaction
// manager. The runtime multiprograms the queue through a configurable
// number of execution slots (PlatformConfig::node_concurrency); each slot
// claims one record by id — per-agent exclusion, FIFO otherwise — and
// processes it:
//
//   execute records   -> the exactly-once step protocol: run the step in a
//                        step transaction, append BOS/OE/EOS (+SP) entries
//                        to the rollback log, stage the agent into the
//                        next node's queue, commit (2PC when remote);
//   compensate records-> one compensation transaction per hop of the
//                        rollback algorithm (Fig. 4b basic / Fig. 5b
//                        optimized), until the target savepoint is
//                        reached and the strongly reversible objects are
//                        restored.
//
// Concurrent slots are isolated by their transactions: resource locks are
// strict and exclusive, so two slots touching the same resource surface a
// lock conflict that aborts the loser into backoff/retry. Any abort — lock
// conflict, crash, vote-no, timeout — leaves the record in the queue; the
// runtime retries after a backoff, possibly routing to an alternative
// node, which is exactly the restartability the paper's correctness
// argument relies on. A crash bumps the node's epoch, invalidating every
// in-flight slot at once; recovery re-offers all queued records.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "agent/agent.h"
#include "agent/platform.h"
#include "agent/step_context.h"
#include "resource/resource_manager.h"
#include "ship/shipment_manager.h"
#include "storage/stable_storage.h"
#include "tx/queue_manager.h"
#include "tx/tx_manager.h"

namespace mar::agent {

/// Platform message type tags (beyond tx.* and ship.*).
namespace msg {
inline constexpr const char* rce_exec = "rce.exec";
inline constexpr const char* rce_ack = "rce.ack";
/// Adaptive strategy (Sec. 4.4.1 "further optimizations"): a mixed step's
/// operation entries plus a snapshot of the weakly reversible objects,
/// shipped to the resource node instead of transferring the agent.
inline constexpr const char* mce_exec = "mce.exec";
inline constexpr const char* mce_ack = "mce.ack";
}  // namespace msg

class NodeRuntime {
 public:
  NodeRuntime(Platform& platform, NodeId id);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] storage::StableStorage& storage() { return storage_; }
  [[nodiscard]] resource::ResourceManager& resources() { return rm_; }
  [[nodiscard]] tx::TxManager& txm() { return txm_; }
  [[nodiscard]] const tx::TxManager& txm() const { return txm_; }
  [[nodiscard]] ship::ShipmentManager& shipments() { return ship_; }

  /// Network handler entry point (registered by the Platform).
  void handle_message(const net::Message& m);
  /// Crash/recovery notification from the network.
  void on_node_state(bool up);
  /// Non-transactional initial placement of a freshly launched agent.
  void enqueue_initial(storage::QueueRecord record);
  /// Fill free execution slots with eligible queue records.
  void pump();
  /// Stable-record key of an agent's durable image on this node
  /// (incremental commits; exposed for tests and tooling).
  [[nodiscard]] static std::string agent_image_key(AgentId id) {
    return "agentimg:" + std::to_string(id.value());
  }

  // --- observability (DESIGN.md §12) -----------------------------------------
  /// This node's metrics registry: every StorageStats / ShipStats /
  /// TxStats counter registered under a dotted name, the platform-level
  /// gauges, and the node's latency histograms.
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const {
    return metrics_.snapshot();
  }

 private:
  // --- queue processing ------------------------------------------------------
  void process_record(std::uint64_t record_id);
  /// Return a slot: drop the record's claim and its agent's exclusion
  /// mark. Called on every path that stops working on a record, whether
  /// it committed (the record is gone) or aborted (it stays queued).
  void release_slot(const storage::QueueRecord& rec);
  /// Processing attempts so far, without creating an entry.
  [[nodiscard]] std::uint32_t attempt_count(std::uint64_t record_id) const;
  void execute_step(const storage::QueueRecord& rec);
  void execute_compensation(const storage::QueueRecord& rec);
  /// Route a freshly spawned child to its first step's node (multi-agent
  /// executions: the spawn itself committed with the parent's step; this
  /// record performs the initial transfer with the usual retry machinery).
  void execute_launch(const storage::QueueRecord& rec);
  /// A cancellation was requested for this agent: initiate a complete
  /// rollback (to the oldest savepoint in its log) that terminates it, or
  /// let it run on if the log no longer reaches back to launch.
  void execute_cancel(const storage::QueueRecord& rec);
  void initiate_cancel_rollback(const storage::QueueRecord& rec,
                                SavepointId target);

  // --- step machinery -----------------------------------------------------------
  /// After the step body ran: append log entries, write savepoints,
  /// advance the itinerary, route the agent, commit.
  void complete_step(TxId tx, const storage::QueueRecord& rec,
                     std::shared_ptr<Agent> agent, StepContext& ctx);
  /// Begin the rollback towards `target` (Fig. 4a/5a). `completion`
  /// chooses what happens when the savepoint is reached: resume,
  /// abandon the sub-itinerary (Sec. 5), terminate as cancelled
  /// (Sec. 6), or enter the next alternative (ref [14]).
  void initiate_rollback(const storage::QueueRecord& rec, SavepointId target,
                         storage::QueueRecord::Completion completion =
                             storage::QueueRecord::Completion::resume);
  /// Resolve a rollback request against the (pre-step) agent state.
  [[nodiscard]] Result<SavepointId> resolve_rollback_target(
      const Agent& agent, const RollbackRequest& request) const;
  /// The target must be in the log and not poisoned by a
  /// non-compensatable step (Sec. 3.2).
  [[nodiscard]] Status check_rollback_target(const Agent& agent,
                                             SavepointId target) const;
  /// Where a permanent step failure lands (innermost first): the next
  /// option of an enclosing alternatives entry (ref [14]), or the entry
  /// savepoint of an enclosing non-vital sub-itinerary (Sec. 5) — or
  /// nowhere (the agent fails).
  struct FailurePlan {
    SavepointId target;
    storage::QueueRecord::Completion completion;
  };
  [[nodiscard]] std::optional<FailurePlan> failure_plan_for(
      const Agent& agent) const;
  /// Topmost savepoint-stack entry for nesting depth `depth`.
  [[nodiscard]] static SavepointId savepoint_at_depth(const Agent& agent,
                                                      std::uint32_t depth);
  /// After restoring at an abandoned sub-itinerary's savepoint: advance
  /// past the sub (GC its savepoint, handle top-level discard, establish
  /// savepoints of newly entered subs). Returns false when no step follows
  /// (the agent is done).
  bool apply_skip(Agent& agent, SavepointId target);
  /// After restoring at a failed alternatives option's savepoint: enter
  /// the next option (ref [14] flexible itineraries).
  void apply_next_alternative(Agent& agent, SavepointId target);

  // --- compensation machinery ---------------------------------------------------
  /// Execute one compensating operation locally within `tx`. `weak` is the
  /// weakly-reversible slot map the operation may touch (the agent's own
  /// map, or a shipped snapshot; null for pure resource entries).
  Status run_comp_op(TxId tx, const rollback::OperationEntry& op,
                     serial::Value* weak);
  /// Finish a compensation transaction: target check, restore, routing.
  void finish_compensation(TxId tx, const storage::QueueRecord& rec,
                           std::shared_ptr<Agent> agent);
  void restore_at_savepoint(Agent& agent, SavepointId target);
  /// Destination of the next compensation transaction (Fig. 4a vs 5a).
  /// `agent_bytes` is the serialized agent size the adaptive strategy
  /// weighs against shipping the step's compensation objects.
  [[nodiscard]] std::vector<NodeId> next_compensation_nodes(
      const rollback::RollbackLog& log, const Agent& agent,
      std::size_t agent_bytes) const;
  /// Adaptive strategy decision (Sec. 4.4.1): is shipping the last step's
  /// operation entries + weak-state snapshot to `dest` cheaper than
  /// transferring the whole agent there?
  [[nodiscard]] bool ship_mixed_is_cheaper(const rollback::RollbackLog& log,
                                           const Agent& agent, NodeId dest,
                                           std::size_t agent_bytes) const;

  // --- transfer / commit plumbing -----------------------------------------------
  /// Stage `record` into `dest`'s queue inside `tx`, then commit; `done`
  /// gets the commit outcome. Remote staging waits for an ack with an
  /// optional timeout (config.stage_timeout_us).
  void stage_and_commit(TxId tx, NodeId dest, storage::QueueRecord record,
                        std::function<void(bool)> done);
  void retry_later(const storage::QueueRecord& rec);
  void fail_agent(TxId tx, const storage::QueueRecord& rec, Status status);
  void finish_agent(TxId tx, const storage::QueueRecord& rec, Agent& agent);
  /// Terminate a cancelled agent after its complete rollback (multi-agent
  /// executions): record the `cancelled` outcome and notify the mailbox.
  void finish_cancelled(TxId tx, const storage::QueueRecord& rec,
                        Agent& agent);
  /// Deliver an agent's result record to its result mailbox within `tx`
  /// (locally or by transactional RPC), then run `done(ok)`.
  void deliver_result(TxId tx, const Agent& agent, bool ok,
                      const Status& error, std::function<void(bool)> done);

  // --- incremental durability (delta savepoint commits) -----------------------
  /// The committed (pre-step) agent state of a record: its payload, or —
  /// for incremental records with an empty payload — the stable record
  /// area's base image plus appended deltas.
  [[nodiscard]] std::shared_ptr<Agent> load_committed_agent(
      const storage::QueueRecord& rec) const;
  /// Like load_committed_agent, but may return the resident in-memory
  /// copy (committed state cached across local steps; skips the decode).
  [[nodiscard]] std::shared_ptr<Agent> load_agent_for_step(
      const storage::QueueRecord& rec);
  /// The serialized size of the record's agent (adaptive-strategy pricing):
  /// the payload size, or the record area's segment total for incremental
  /// records.
  [[nodiscard]] std::size_t committed_agent_bytes(
      const storage::QueueRecord& rec) const;
  /// Whether the agent's delta chain under `key` should be folded back
  /// into one full image: at the interval cap, or — with
  /// PlatformConfig::compaction_ratio set — once the accumulated delta
  /// bytes outweigh the base image.
  [[nodiscard]] bool should_compact(const std::string& key) const;
  /// Stage the agent's post-step durable image for a local handoff:
  /// an O(delta) append when the step was append-only and the chain is
  /// short, a full-image reset otherwise. Returns the (payload-less)
  /// successor record. `prev` is the record being consumed.
  [[nodiscard]] storage::QueueRecord stage_incremental_image(
      TxId tx, const Agent& agent, const storage::QueueRecord& prev);
  /// Drop the resident cache entry for an agent (any path that aborts,
  /// rolls back, migrates or terminates it).
  void evict_resident(AgentId id) { resident_.erase(id); }

  // --- observability plumbing (DESIGN.md §12) --------------------------------
  /// Stash of an ABORTED attempt's open hop span: the happy path carries
  /// the span in the claimed record copy itself (QueueRecord::hop_span_id
  /// / hop_begin_us — zero lookups per hop); only an abort parks it here
  /// so the re-claim resumes the same span and closes the lock-wait
  /// window. Volatile like the claims — cleared on crash, so a re-offered
  /// record opens a fresh hop span whose begin is still its enqueue time.
  struct HopTrace {
    std::uint64_t span_id = 0;
    std::uint64_t begin_us = 0;
    std::uint64_t lock_wait_since = 0;  ///< abort time (pending window)
  };
  /// Open (or resume) the hop span for a claimed record: first claim
  /// opens the root span in `rec` and emits the queue-wait child, a
  /// re-claim after an abort emits the lock-wait child. No-op when span
  /// tracing is off.
  void span_hop_begin(storage::QueueRecord& rec);
  /// Close the record's hop span (the record was consumed: its
  /// transaction committed or the agent terminated) and feed the hop /
  /// queue-wait latency histograms.
  void span_hop_end(const storage::QueueRecord& rec);
  /// Emit the hop's commit-flush child span (begin_us .. now) and feed
  /// the commit-flush latency histogram. No-op when tracing is off.
  void span_commit_flush(const storage::QueueRecord& rec,
                         std::uint64_t begin_us);
  /// Stamp the successor record with the current hop's causal context.
  void propagate_trace(const storage::QueueRecord& from,
                       storage::QueueRecord& to) const;
  /// Append this node's retained span ring to config.flight_dump_path
  /// (no-op when the path is empty). `reason` names the trigger:
  /// "crash", "corruption", "lock_audit".
  void flight_dump(std::string_view reason);

  // --- small helpers ---------------------------------------------------------
  void trace(TraceKind kind, std::string detail);
  [[nodiscard]] std::unique_ptr<Agent> decode(const serial::Bytes& bytes)
      const;
  [[nodiscard]] storage::QueueRecord make_record(
      const Agent& agent, storage::RecordKind kind,
      SavepointId rollback_target);
  /// Schedule `fn` after `delay`, cancelled automatically by crash.
  void after(sim::TimeUs delay, std::function<void()> fn);

  Platform& p_;
  NodeId id_;
  storage::StableStorage storage_;
  tx::QueueManager qm_;
  resource::ResourceManager rm_;
  tx::TxManager txm_;
  /// Owns all inter-node agent transfer: per-destination convoys, the
  /// base+delta channel caches, need_full fallback (src/ship/).
  ship::ShipmentManager ship_;

  bool up_ = true;
  std::uint64_t epoch_ = 0;
  /// In-flight execution slots (claimed record ids). Capped at
  /// PlatformConfig::node_concurrency; cleared wholesale on crash.
  std::unordered_set<std::uint64_t> slots_;
  /// Agents with an in-flight record (per-agent exclusion: at most one
  /// slot works on a given agent at any time).
  std::unordered_set<AgentId> busy_agents_;
  /// Per-record processing attempts (drives backoff + alternative nodes).
  /// Entries are erased when the record commits or the agent terminates.
  std::unordered_map<std::uint64_t, std::uint32_t> attempts_;
  /// Aborted-attempt hop-span stash (see HopTrace); empty on the happy
  /// path. Volatile, cleared on crash.
  std::unordered_map<std::uint64_t, HopTrace> hop_traces_;
  /// Metrics registry (counters registered in the ctor) and the node's
  /// latency histograms, owned by the registry; raw pointers cached so
  /// the hot path skips the name lookup.
  MetricsRegistry metrics_;
  Histogram* hist_hop_us_ = nullptr;
  Histogram* hist_step_us_ = nullptr;
  Histogram* hist_queue_wait_us_ = nullptr;
  Histogram* hist_commit_flush_us_ = nullptr;
  /// Resident cache: the committed in-memory state of agents whose durable
  /// image lives in this node's record area (incremental commits). Purely
  /// an optimization — volatile, invalidated on crash and on every path
  /// that leaves the steady local-commit loop; the record area stays
  /// authoritative.
  std::unordered_map<AgentId, std::shared_ptr<Agent>> resident_;
  /// Continuations waiting for rce.ack, keyed by tx.
  std::unordered_map<TxId, std::function<void(bool)>> rce_waiters_;
  /// Continuations waiting for mce.ack; receive the updated weak-state
  /// snapshot produced by the remotely executed mixed compensation.
  std::unordered_map<TxId, std::function<void(bool, serial::Value)>>
      mce_waiters_;
  /// Continuations waiting for a transactional RPC reply (ctr.result),
  /// e.g. remote result delivery into a mailbox.
  std::unordered_map<TxId, std::function<void(bool)>> rpc_waiters_;
};

}  // namespace mar::agent
