#include "agent/itinerary.h"

#include <algorithm>
#include <sstream>

#include "util/check.h"

namespace mar::agent {

// ---------------------------------------------------------------------------
// Conditions (ref [14] preconditions)
// ---------------------------------------------------------------------------

bool Condition::eval(const serial::Value& weak) const {
  const bool present = weak.has(slot) && !weak.at(slot).is_null();
  switch (op) {
    case Op::exists: return present;
    case Op::not_exists: return !present;
    default: break;
  }
  if (!present) return false;
  const serial::Value& v = weak.at(slot);
  switch (op) {
    case Op::eq: return v == literal;
    case Op::ne: return !(v == literal);
    case Op::lt: return v.as_int() < literal.as_int();
    case Op::le: return v.as_int() <= literal.as_int();
    case Op::gt: return v.as_int() > literal.as_int();
    case Op::ge: return v.as_int() >= literal.as_int();
    default: return false;
  }
}

void Condition::serialize(serial::Encoder& enc) const {
  enc.write_string(slot);
  enc.write_u8(static_cast<std::uint8_t>(op));
  literal.serialize(enc);
}

void Condition::deserialize(serial::Decoder& dec) {
  slot = dec.read_string();
  op = static_cast<Op>(dec.read_u8());
  literal.deserialize(dec);
}

std::size_t Condition::encoded_size() const {
  return serial::blob_size(slot.size()) + 1 + literal.encoded_size();
}

std::string Condition::to_string() const {
  static constexpr const char* kOps[] = {"?",  "!?", "==", "!=",
                                         "<",  "<=", ">",  ">="};
  return slot + std::string(kOps[static_cast<int>(op)]) +
         (op == Op::exists || op == Op::not_exists ? "" : literal.to_string());
}

// ---------------------------------------------------------------------------
// Entry serialization
// ---------------------------------------------------------------------------

void StepEntry::serialize(serial::Encoder& enc) const {
  enc.write_string(method);
  enc.write_varint(locations.size());
  for (const auto n : locations) enc.write_u32(n.value());
  enc.write_bool(when.has_value());
  if (when.has_value()) when->serialize(enc);
}

void StepEntry::deserialize(serial::Decoder& dec) {
  method = dec.read_string();
  locations.resize(dec.read_count());
  for (auto& n : locations) n = NodeId(dec.read_u32());
  if (dec.read_bool()) {
    when.emplace();
    when->deserialize(dec);
  } else {
    when.reset();
  }
}

std::size_t StepEntry::encoded_size() const {
  return serial::blob_size(method.size()) +
         serial::varint_size(locations.size()) + 4 * locations.size() + 1 +
         (when.has_value() ? when->encoded_size() : 0);
}

void Itinerary::Entry::serialize(serial::Encoder& enc) const {
  enc.write_u8(is_step() ? 0 : is_sub() ? 1 : 2);
  if (is_step()) {
    step().serialize(enc);
  } else if (is_sub()) {
    enc.write_bool(vital_);
    sub().serialize(enc);
  } else {
    enc.write_bool(vital_);
    enc.write_varint(alt().options.size());
    for (const auto& option : alt().options) option.serialize(enc);
  }
}

void Itinerary::Entry::deserialize(serial::Decoder& dec) {
  const auto tag = dec.read_u8();
  if (tag == 0) {
    StepEntry s;
    s.deserialize(dec);
    body_ = std::move(s);
    vital_ = true;
  } else if (tag == 1) {
    vital_ = dec.read_bool();
    Itinerary i;
    i.deserialize(dec);
    body_ = std::move(i);
  } else if (tag == 2) {
    vital_ = dec.read_bool();
    AltEntry a;
    a.options.resize(dec.read_count());
    for (auto& option : a.options) option.deserialize(dec);
    body_ = std::move(a);
  } else {
    throw serial::DecodeError("bad itinerary entry tag");
  }
}

// ---------------------------------------------------------------------------
// Builders and validation
// ---------------------------------------------------------------------------

Itinerary& Itinerary::step(std::string method, NodeId node) {
  return step(std::move(method), std::vector<NodeId>{node});
}

Itinerary& Itinerary::step(std::string method, std::vector<NodeId> locations) {
  MAR_CHECK_MSG(!locations.empty(), "step entry needs at least one node");
  entries_.emplace_back(
      Entry(StepEntry{std::move(method), std::move(locations), {}}));
  return *this;
}

Itinerary& Itinerary::step_if(std::string method, NodeId node,
                              Condition when) {
  entries_.emplace_back(Entry(StepEntry{
      std::move(method), std::vector<NodeId>{node}, std::move(when)}));
  return *this;
}

Itinerary& Itinerary::sub(Itinerary nested, bool vital) {
  entries_.emplace_back(Entry(std::move(nested)));
  entries_.back().set_vital(vital);
  return *this;
}

Itinerary& Itinerary::alt(std::vector<Itinerary> options) {
  MAR_CHECK_MSG(!options.empty(), "alternatives entry needs options");
  entries_.emplace_back(Entry(AltEntry{std::move(options)}));
  return *this;
}

namespace {
Status validate_subtree(const Itinerary& it) {
  if (it.empty()) {
    return Status(Errc::invalid_itinerary, "empty (sub-)itinerary");
  }
  for (const auto& e : it.entries()) {
    if (e.is_sub()) {
      MAR_RETURN_IF_ERROR(validate_subtree(e.sub()));
    } else if (e.is_alt()) {
      if (e.alt().options.empty()) {
        return Status(Errc::invalid_itinerary,
                      "alternatives entry without options");
      }
      for (const auto& option : e.alt().options) {
        MAR_RETURN_IF_ERROR(validate_subtree(option));
      }
    }
  }
  return Status::ok();
}
}  // namespace

Status Itinerary::validate_main() const {
  if (entries_.empty()) {
    return Status(Errc::invalid_itinerary, "main itinerary is empty");
  }
  for (const auto& e : entries_) {
    if (e.is_step()) {
      // Sec. 4.4.2: "To provide a clear semantics, no step entries are
      // allowed in the main itinerary."
      return Status(Errc::invalid_itinerary,
                    "step entries are not allowed in the main itinerary");
    }
    if (e.is_alt()) {
      return Status(Errc::invalid_itinerary,
                    "alternatives are not allowed at the top level; wrap "
                    "them in a sub-itinerary");
    }
    MAR_RETURN_IF_ERROR(validate_subtree(e.sub()));
  }
  return Status::ok();
}

std::size_t Itinerary::Entry::encoded_size() const {
  std::size_t n = 1;  // kind tag
  if (is_step()) {
    n += step().encoded_size();
  } else if (is_sub()) {
    n += 1 + sub().encoded_size();
  } else {
    n += 1 + serial::varint_size(alt().options.size());
    for (const auto& option : alt().options) n += option.encoded_size();
  }
  return n;
}

void Itinerary::serialize(serial::Encoder& enc) const {
  enc.write_varint(entries_.size());
  for (const auto& e : entries_) e.serialize(enc);
}

std::size_t Itinerary::encoded_size() const {
  std::size_t n = serial::varint_size(entries_.size());
  for (const auto& e : entries_) n += e.encoded_size();
  return n;
}

void Itinerary::deserialize(serial::Decoder& dec) {
  entries_.resize(dec.read_count());
  for (auto& e : entries_) e.deserialize(dec);
}

// ---------------------------------------------------------------------------
// Navigation
// ---------------------------------------------------------------------------

const Itinerary* Itinerary::itinerary_at_prefix(const Position& pos,
                                                std::size_t len) const {
  const Itinerary* it = this;
  std::size_t i = 0;
  while (i < len) {
    MAR_CHECK(pos[i] < it->entries_.size());
    const Entry& e = it->entries_[pos[i]];
    if (e.is_sub()) {
      it = &e.sub();
      ++i;
      continue;
    }
    MAR_CHECK_MSG(e.is_alt(), "position prefix crosses a step entry");
    MAR_CHECK_MSG(i + 1 < len, "position prefix splits an alternatives pair");
    MAR_CHECK(pos[i + 1] < e.alt().options.size());
    it = &e.alt().options[pos[i + 1]];
    i += 2;
  }
  return it;
}

std::optional<Position> Itinerary::first_step_from(Position base,
                                                   std::size_t index) const {
  const Itinerary* it = itinerary_at_prefix(base, base.size());
  for (std::size_t i = index; i < it->entries_.size(); ++i) {
    const Entry& e = it->entries_[i];
    base.push_back(static_cast<std::uint32_t>(i));
    if (e.is_step()) return base;
    if (e.is_sub()) {
      auto down = e.sub().first_step_from(Position{}, 0);
      if (down.has_value()) {
        base.insert(base.end(), down->begin(), down->end());
        return base;
      }
    } else {
      // Alternatives always open with their first option.
      base.push_back(0);
      auto down = e.alt().options[0].first_step_from(Position{}, 0);
      if (down.has_value()) {
        base.insert(base.end(), down->begin(), down->end());
        return base;
      }
      base.pop_back();
    }
    base.pop_back();
  }
  return std::nullopt;
}

std::optional<Position> Itinerary::first_step() const {
  return first_step_from(Position{}, 0);
}

std::optional<Position> Itinerary::first_step_under(
    const Position& prefix) const {
  return first_step_from(prefix, 0);
}

std::optional<Position> Itinerary::next_step(const Position& pos) const {
  MAR_CHECK_MSG(!pos.empty(), "next_step on empty position");
  // Classify each index: does it address an itinerary entry, or an option
  // of an alternatives entry?
  std::vector<bool> is_option(pos.size(), false);
  {
    const Itinerary* it = this;
    std::size_t i = 0;
    while (i < pos.size()) {
      MAR_CHECK(pos[i] < it->entries_.size());
      const Entry& e = it->entries_[pos[i]];
      if (e.is_step()) break;
      if (e.is_sub()) {
        it = &e.sub();
        ++i;
        continue;
      }
      MAR_CHECK(i + 1 < pos.size());
      is_option[i + 1] = true;
      it = &e.alt().options[pos[i + 1]];
      i += 2;
    }
  }
  // Try successors at the current level, popping up one level at a time.
  // Option levels are skipped entirely: sibling options are alternatives,
  // not successors — the next candidate is the alternatives entry's own
  // successor, tried when its index is popped.
  Position prefix = pos;
  while (!prefix.empty()) {
    const auto index = prefix.back();
    const bool option = is_option[prefix.size() - 1];
    prefix.pop_back();
    if (option) continue;
    auto found = first_step_from(prefix, index + 1);
    if (found.has_value()) return found;
  }
  return std::nullopt;
}

Itinerary::PrefixKind Itinerary::prefix_kind(const Position& prefix) const {
  if (prefix.empty()) return PrefixKind::invalid;
  const Itinerary* it = this;
  std::size_t i = 0;
  for (;;) {
    if (prefix[i] >= it->entries_.size()) return PrefixKind::invalid;
    const Entry& e = it->entries_[prefix[i]];
    const bool last = i + 1 == prefix.size();
    if (e.is_step()) return last ? PrefixKind::step : PrefixKind::invalid;
    if (e.is_sub()) {
      if (last) return PrefixKind::sub;
      it = &e.sub();
      ++i;
      continue;
    }
    // Alternatives entry: the next index selects the option.
    if (last) return PrefixKind::alt;
    if (prefix[i + 1] >= e.alt().options.size()) return PrefixKind::invalid;
    if (i + 2 == prefix.size()) return PrefixKind::alt_option;
    it = &e.alt().options[prefix[i + 1]];
    i += 2;
  }
}

const Itinerary::Entry& Itinerary::entry_at(const Position& pos) const {
  MAR_CHECK(!pos.empty());
  const auto kind = prefix_kind(pos);
  MAR_CHECK_MSG(kind == PrefixKind::sub || kind == PrefixKind::alt ||
                    kind == PrefixKind::step,
                "position does not address an itinerary entry");
  const Itinerary* it = itinerary_at_prefix(pos, pos.size() - 1);
  return it->entries_[pos.back()];
}

std::size_t Itinerary::alt_option_count(const Position& prefix) const {
  MAR_CHECK(prefix.size() >= 2);
  MAR_CHECK(prefix_kind(prefix) == PrefixKind::alt_option);
  const Itinerary* it = itinerary_at_prefix(prefix, prefix.size() - 2);
  return it->entries_[prefix[prefix.size() - 2]].alt().options.size();
}

const StepEntry& Itinerary::step_at(const Position& pos) const {
  MAR_CHECK(!pos.empty());
  const Itinerary* it = itinerary_at_prefix(pos, pos.size() - 1);
  MAR_CHECK(pos.back() < it->entries_.size());
  const Entry& e = it->entries_[pos.back()];
  MAR_CHECK_MSG(e.is_step(), "position does not address a step entry");
  return e.step();
}

bool Itinerary::valid_step(const Position& pos) const {
  return !pos.empty() && prefix_kind(pos) == PrefixKind::step;
}

std::vector<Position> Itinerary::active_subs(const Position& pos) {
  std::vector<Position> subs;
  for (std::size_t len = 1; len < pos.size(); ++len) {
    subs.emplace_back(pos.begin(), pos.begin() + static_cast<long>(len));
  }
  return subs;
}

namespace {
bool is_prefix_of(const Position& prefix, const Position& pos) {
  if (prefix.size() > pos.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), pos.begin());
}
}  // namespace

std::vector<Position> Itinerary::exited_subs(const Position& from,
                                             const Position& to) {
  std::vector<Position> out;
  const auto active = active_subs(from);
  // Innermost first: walk the active chain from deepest to shallowest.
  for (auto it = active.rbegin(); it != active.rend(); ++it) {
    if (to.empty() || !is_prefix_of(*it, to)) out.push_back(*it);
  }
  return out;
}

std::vector<Position> Itinerary::entered_subs(const Position& from,
                                              const Position& to) {
  std::vector<Position> out;
  for (const auto& sub : active_subs(to)) {  // outermost first
    if (from.empty() || !is_prefix_of(sub, from)) out.push_back(sub);
  }
  return out;
}

namespace {
void render(const Itinerary& it, std::ostringstream& os) {
  os << "[";
  bool first = true;
  for (const auto& e : it.entries()) {
    if (!first) os << " ";
    first = false;
    if (e.is_step()) {
      os << e.step().method << "@N" << e.step().primary();
      if (e.step().when.has_value()) {
        os << "{" << e.step().when->to_string() << "}";
      }
    } else if (e.is_sub()) {
      render(e.sub(), os);
    } else {
      os << "alt(";
      bool first_option = true;
      for (const auto& option : e.alt().options) {
        if (!first_option) os << " | ";
        first_option = false;
        render(option, os);
      }
      os << ")";
    }
  }
  os << "]";
}
}  // namespace

std::string Itinerary::to_string() const {
  std::ostringstream os;
  render(*this, os);
  return os.str();
}

}  // namespace mar::agent
