// The agent platform: a Mole-like distributed runtime over the simulated
// network, implementing
//
//   * the exactly-once step execution protocol of ref [11] (stable input
//     queues, step transactions, abort/restart, alternative nodes), and
//   * the paper's partial-rollback mechanism, in both the basic (Fig. 4)
//     and the optimized (Fig. 5) variant, integrated with hierarchical
//     itineraries (Sec. 4.4.2).
//
// A Platform owns one NodeRuntime per node; agents are launched once and
// then live exclusively in stable queue records, moving between nodes
// inside distributed transactions.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "agent/agent.h"
#include "net/network.h"
#include "resource/resource.h"
#include "rollback/comp_registry.h"
#include "sim/simulator.h"
#include "storage/segment_log.h"
#include "util/ids.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/span.h"
#include "util/trace.h"

namespace mar::agent {

class NodeRuntime;

/// Which rollback algorithm the platform runs.
enum class RollbackStrategy {
  basic,      ///< Fig. 4: agent travels to every compensated step's node
  optimized,  ///< Fig. 5: EOS mixed-flag, RCE shipping, ACE∥RCE overlap
  /// Sec. 4.4.1 "further optimizations": like `optimized`, but for steps
  /// WITH mixed compensation entries the platform consults the ref [16]
  /// performance model and, when cheaper, keeps the agent where it is and
  /// ships the step's operation entries together with a snapshot of the
  /// weakly reversible objects to the resource node instead (the paper's
  /// "resource compensation objects ... transferred" / RPC option). The
  /// updated weak state returns with the acknowledgement and is merged
  /// into the agent before the compensation transaction commits.
  adaptive,
};

/// How strongly reversible objects are physically logged (Sec. 4.2).
enum class LoggingMode { state, transition };

struct PlatformConfig {
  RollbackStrategy strategy = RollbackStrategy::optimized;
  LoggingMode logging = LoggingMode::state;

  /// Queue records a node processes concurrently (execution slots). The
  /// exactly-once protocol already isolates concurrent steps through
  /// transactions and resource locks, so raising this multiprograms a node:
  /// slots claim records by id (per-agent exclusion, FIFO otherwise), lock
  /// conflicts abort the loser's transaction into backoff/retry, and a
  /// crash invalidates every in-flight slot at once. 1 reproduces the
  /// classic one-record-at-a-time runtime bit-for-bit.
  std::uint32_t node_concurrency = 1;

  /// Resource lock/overlay granularity (the contended-fleet fast path).
  /// `instance` reproduces the classic one-exclusive-lock-per-resource
  /// envelope bit for bit; `per_key` lets step transactions with disjoint
  /// declared key-sets (per account, per item, per mailbox slot, ...) run
  /// concurrently against ONE instance — conflicts only arise on
  /// overlapping keys, so contended fleets scale with node_concurrency.
  /// Per-key is the default since undeclared operations fall back to
  /// whole-instance locking (always correct); `instance` remains available
  /// (and tested) as the classic envelope.
  resource::LockGranularity lock_granularity =
      resource::LockGranularity::per_key;

  /// Compiled-in concurrency validator (resource/lock_audit.h): mirror
  /// every lock grant, conflict and release into a per-node LockAudit that
  /// maintains per-transaction held-key sets, the global acquisition-order
  /// graph and the wait-for graph, and hard-fails on a wait-for cycle with
  /// the full cycle printed. Defaults to on in debug builds (the tsan CI
  /// job runs the whole suite with it armed) and off in release, where the
  /// tier-1 envelope must stay bit-identical and unslowed; tests can force
  /// it on either way.
#ifdef NDEBUG
  bool lock_audit = false;
#else
  bool lock_audit = true;
#endif

  /// Group commit: local step-transaction commits enter a queue that is
  /// flushed — participants applied, one metered stable-storage sync,
  /// callbacks — once this many commits are pending or after
  /// group_commit_flush_us. Amortizes the per-commit sync across the
  /// slots of a busy node (syncs/step < 1); 1 syncs every commit. A
  /// window > 1 also coalesces PARTICIPANT-side 2PC work: prepares and
  /// commit-applies arriving within the window share one metered sync
  /// each (votes/acks leave only after the batched sync), with
  /// crash-before-flush presuming abort exactly like the local queue.
  std::uint32_t group_commit_window = 4;
  sim::TimeUs group_commit_flush_us = 100;

  // --- delta-shipping migrations (src/ship/) --------------------------------
  /// Ship migrations between a node pair as base+delta: each (src, dst)
  /// transfer channel caches the last full image shipped per agent
  /// (epoch- and hash-tagged); subsequent migrations of that agent over
  /// the same pair ship only the delta against the cached base, with
  /// automatic fallback to a full image on cache miss, receiver epoch
  /// mismatch, base-hash divergence or an unprofitable delta. false
  /// ships every migration as a full image (the classic path).
  bool ship_delta = true;
  /// Per-node byte budget of each shipment cache side (send channels,
  /// receive channels); least-recently-used bases are evicted beyond it.
  std::size_t ship_cache_bytes = 4u << 20;
  /// Ship a delta only while delta/full-image size stays below this
  /// ratio; larger deltas fall back to (and re-establish) the base.
  double ship_delta_max_ratio = 0.5;
  /// Convoy batching: remote stages decided toward the same destination
  /// within this window ride ONE convoy message (and their participant
  /// 2PC syncs coalesce, see group_commit_window). 1 sends immediately.
  std::uint32_t ship_convoy_window = 1;
  /// How long a convoy waits for further riders after its first entry.
  sim::TimeUs ship_convoy_flush_us = 200;

  /// Incremental durability (the Sec. 4.2 transition-logging idea applied
  /// to the commit path itself): when an agent's next step runs on the
  /// SAME node, commit only a delta — the step's appended log entries and
  /// dirty data-space slots — into an append-only stable record instead of
  /// rewriting the full agent image. Full images are still written on
  /// migration, spawn, rollback and periodic compaction. false reproduces
  /// the full-image-per-step durability path bit for bit.
  bool incremental_commit = true;
  /// Compact an agent's append-only record back to a single full image
  /// after this many delta segments (bounds recovery replay length and
  /// stale-segment space). Minimum 1.
  std::uint32_t compaction_interval_steps = 32;
  /// Bytes-ratio compaction: additionally compact once the accumulated
  /// delta bytes exceed this ratio of the base image, which keeps the
  /// record-area footprint proportional to the agent (amortized-flat)
  /// instead of rewriting on a fixed cadence. 0 disables the ratio
  /// policy; compaction_interval_steps always remains the hard cap.
  double compaction_ratio = 0.0;

  // --- segmented record log + crash recovery (src/storage/segment_log.h) ---
  /// Keep each node's record area in rotated, CRC32-framed log segments
  /// instead of a trusted in-memory map: recovery replays the log
  /// (detecting torn tails and mid-log damage by checksum) and fuzzy
  /// checkpoints bound how much of it. false reproduces the classic
  /// unsegmented record area bit for bit — the unbounded-replay envelope
  /// bench_a8/e6 measure against.
  bool segmented_log = true;
  /// Rotation threshold for one log segment (segmented_log only).
  std::size_t segment_bytes = 16 * 1024;
  /// Begin a fuzzy checkpoint whenever at least this many record-log
  /// bytes accumulated since the last one; completion rides the
  /// group-commit flush timers so the commit pipeline never stalls.
  /// 0 disables checkpoints (recovery replays the whole retained log).
  /// Off by default: the periodic O(state) snapshot writes would skew
  /// steady-state byte meters (A5); recovery-focused runs opt in.
  std::size_t checkpoint_interval_bytes = 0;
  /// Simulated time between checkpoint begin and completion (the fuzzy
  /// window during which commits keep flowing).
  sim::TimeUs checkpoint_write_us = 500;
  /// Crash-time storage damage injected on every node-down transition
  /// (tests / CI fault matrix). none leaves crashes clean.
  storage::StorageFault storage_fault = storage::StorageFault::none;

  /// Write savepoints automatically when entering sub-itineraries and
  /// garbage-collect / discard per Sec. 4.4.2.
  bool itinerary_savepoints = true;
  bool gc_savepoints = true;
  bool discard_log_on_top_level = true;

  /// Simulated service time per resource operation within a step, and per
  /// compensating operation (drives the concurrency experiment E3).
  sim::TimeUs resource_op_service_us = 200;
  sim::TimeUs comp_op_service_us = 500;

  /// Backoff before retrying an aborted step/compensation transaction.
  sim::TimeUs retry_backoff_us = 25'000;
  /// Extra slack on top of the expected transfer time before an
  /// unacknowledged remote stage / RCE shipment is abandoned and the
  /// transaction retried (possibly on an alternative node). 0 disables
  /// timeouts (wait for recovery forever).
  sim::TimeUs stage_timeout_us = 2'000'000;
  /// Abort the rollback (fail the agent) after this many failed attempts
  /// of one compensation transaction; 0 = retry forever (the paper's
  /// baseline assumption under transient faults).
  std::uint32_t max_compensation_attempts = 0;

  // --- observability (DESIGN.md §12) ----------------------------------------
  /// Causal hop tracing: record per-phase spans (queue-wait, lock-wait,
  /// step-exec, commit-flush, convoy-wait, wire, apply, recovery-replay)
  /// into the platform's SpanSink. The trace context still rides every
  /// QueueRecord either way (it is part of the durable format); this only
  /// gates span recording. Default on — the overhead budget is ≤3% of
  /// bench_a4 wall time, measured by that bench's `overhead` phase.
  bool span_tracing = true;
  /// Flight recorder: retained spans per node (ring buffer); oldest spans
  /// fall off beyond this.
  std::size_t flight_recorder_spans = 4096;
  /// When non-empty, a node that crashes or throws CorruptionError /
  /// LockAuditError appends its retained span ring to this file as JSONL
  /// (one flight_dump header line, then spans). Empty disables dumping —
  /// the recorder still runs, tests/tools can dump it explicitly.
  std::string flight_dump_path;
};

/// Terminal (or current) state of a launched agent.
struct AgentOutcome {
  enum class State { running, done, failed, cancelled };
  State state = State::running;
  Status status;
  serial::Bytes final_agent;  ///< captured state at completion
  NodeId final_node;
  sim::TimeUs finished_at = 0;
};

class Platform {
 public:
  Platform(sim::Simulator& sim, net::Network& net, TraceSink& trace,
           PlatformConfig config = {}, std::uint64_t seed = 42);
  ~Platform();
  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  // --- world setup -----------------------------------------------------------
  /// Create a node runtime and register it with the network.
  NodeRuntime& add_node(NodeId id);
  [[nodiscard]] NodeRuntime& node(NodeId id);
  [[nodiscard]] AgentTypeRegistry& agent_types() { return agent_types_; }
  [[nodiscard]] rollback::CompensationRegistry& compensations() {
    return comp_registry_;
  }

  // --- agent lifecycle ---------------------------------------------------------
  /// Validate the agent's (main) itinerary, assign an id, write the
  /// initial savepoints and place the agent in its first node's queue.
  Result<AgentId> launch(std::unique_ptr<Agent> agent);

  // --- multi-agent executions (Sec. 6 future work) ----------------------------
  /// Prepare a child agent spawned by `parent` during a step on `where`:
  /// validate, assign an id, set the result target and write the initial
  /// savepoints. The caller stages the launch record transactionally.
  Result<AgentId> prepare_child(Agent& child, AgentId parent, NodeId where,
                                NodeId result_node, std::string result_key);
  /// Children spawned by `parent`, in spawn order (committed spawns only
  /// are guaranteed to have run; see NodeRuntime::complete_step).
  [[nodiscard]] std::vector<AgentId> children_of(AgentId parent) const;
  /// Request eventual cancellation of a running agent: at its next step
  /// boundary the platform rolls it back completely (to its oldest
  /// savepoint — possible only while "the first sub-itinerary of the main
  /// itinerary" executes, Sec. 4.4.2) and terminates it as `cancelled`.
  void request_cancel(AgentId id);
  [[nodiscard]] bool cancel_requested(AgentId id) const;
  void clear_cancel(AgentId id);
  /// The compensating operation behind spawn entries ("sys.cancel_child"):
  /// cancel a running child, or re-inject an already finished one as a
  /// compensating execution that rolls its committed effects back.
  Status cancel_child(AgentId child);
  /// Drop all bookkeeping for an agent whose spawn never committed.
  void forget_agent(AgentId id);

  [[nodiscard]] const AgentOutcome& outcome(AgentId id) const;
  [[nodiscard]] bool finished(AgentId id) const;
  /// Drive the simulation until the agent finishes (or events drain).
  /// Returns true when the agent reached a terminal state.
  bool run_until_finished(AgentId id);
  /// Drive the simulation until EVERY listed agent finishes (or events
  /// drain). Returns true when all reached a terminal state. Multi-agent
  /// benches use this instead of polling one id at a time.
  bool run_until_all_finished(std::span<const AgentId> ids);
  /// Decode a captured agent (e.g. AgentOutcome::final_agent).
  [[nodiscard]] std::unique_ptr<Agent> decode(
      std::span<const std::uint8_t> bytes) const;

  // --- services shared by node runtimes ---------------------------------------
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] net::Network& net() { return net_; }
  [[nodiscard]] TraceSink& trace() { return trace_; }
  /// The platform-owned span sink / flight recorder (DESIGN.md §12).
  [[nodiscard]] SpanSink& spans() { return spans_; }
  /// Fleet-wide metrics: every node's registry snapshot merged (scalars
  /// summed, histograms merged bucket-wise) plus the platform-level
  /// counters (platform.rollback_transfers / mixed_ships /
  /// lock_conflict_aborts).
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const;
  [[nodiscard]] PlatformConfig& config() { return config_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] std::uint64_t next_record_id() { return next_record_++; }
  void record_outcome(AgentId id, AgentOutcome outcome);

  /// Total count of agent migrations that were part of rollback processing
  /// (compensation transfers), reported by experiment E2.
  [[nodiscard]] std::uint64_t& rollback_transfers() {
    return rollback_transfers_;
  }
  /// Mixed-compensation shipments performed instead of agent transfers by
  /// the adaptive strategy (Sec. 4.4.1 "further optimizations"), reported
  /// by experiment A2.
  [[nodiscard]] std::uint64_t& mixed_ships() { return mixed_ships_; }
  /// Step transactions aborted by a resource lock conflict — the cost of
  /// node multiprogramming (node_concurrency > 1), reported by A4.
  [[nodiscard]] std::uint64_t& lock_conflict_aborts() {
    return lock_conflict_aborts_;
  }

  // --- savepoint / itinerary integration (Sec. 4.4.2) -------------------------
  /// Append a savepoint entry (plus stack entry) to the agent's log,
  /// honouring the configured logging mode and the lightweight-savepoint
  /// rule. `where` is the node attributed in the trace.
  void append_savepoint(NodeId where, Agent& agent, SavepointId id,
                        rollback::SavepointOrigin origin, std::uint32_t depth,
                        Position resume);
  /// Process the itinerary movement `from` -> `to` at a step boundary:
  /// GC savepoints of completed sub-itineraries, discard the log at
  /// top-level completions, write ad-hoc and entered-sub savepoints.
  void advance_itinerary(NodeId where, Agent& agent, const Position& from,
                         const std::optional<Position>& to,
                         const std::vector<SavepointId>& adhoc);

 private:
  sim::Simulator& sim_;
  net::Network& net_;
  TraceSink& trace_;
  SpanSink spans_;
  PlatformConfig config_;
  Rng rng_;
  AgentTypeRegistry agent_types_;
  rollback::CompensationRegistry comp_registry_;
  std::map<NodeId, std::unique_ptr<NodeRuntime>> nodes_;
  std::unordered_map<AgentId, AgentOutcome> outcomes_;
  std::unordered_map<AgentId, std::vector<AgentId>> children_;
  std::unordered_set<AgentId> cancel_requested_;
  std::uint64_t next_agent_ = 1;
  std::uint64_t next_record_ = 1;
  std::uint64_t rollback_transfers_ = 0;
  std::uint64_t mixed_ships_ = 0;
  std::uint64_t lock_conflict_aborts_ = 0;
};

}  // namespace mar::agent
