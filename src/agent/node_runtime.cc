#include "agent/node_runtime.h"

#include <algorithm>
#include <fstream>
#include <memory>

#include "contract/contract.h"
#include "resource/lock_audit.h"
#include "serial/decoder.h"
#include "serial/encoder.h"
#include "util/check.h"

namespace mar::agent {

using rollback::EntryKind;
using rollback::OpEntryKind;
using rollback::OperationEntry;
using storage::QueueRecord;
using storage::RecordKind;

NodeRuntime::NodeRuntime(Platform& platform, NodeId id)
    : p_(platform), id_(id), qm_(storage_), rm_(storage_),
      txm_(id, platform.sim(), platform.net(), storage_),
      ship_(platform, id, txm_, qm_, storage_) {
  txm_.register_participant(qm_);
  txm_.register_participant(rm_);
  txm_.set_apply_listener([this] {
    if (up_) pump();
  });
  rm_.set_granularity(platform.config().lock_granularity);
  if (platform.config().lock_audit) rm_.enable_lock_audit();
  txm_.set_group_commit(platform.config().group_commit_window,
                        platform.config().group_commit_flush_us);
  txm_.set_trace(&platform.trace());
  if (platform.config().segmented_log) {
    storage_.enable_segmented_log(
        storage::SegmentLogConfig{platform.config().segment_bytes});
    txm_.set_checkpoint(platform.config().checkpoint_interval_bytes,
                        platform.config().checkpoint_write_us);
  }
  qm_.set_clock([this] { return p_.sim().now(); });

  // Metrics registry (DESIGN.md §12): every stats counter of this node's
  // subsystems under a dotted name, so one snapshot reports the node
  // uniformly. The structs stay the hot-path write sites; the registry
  // only holds pointers.
  const auto& st = storage_.stats();
  metrics_.register_counter("storage.bytes_written", &st.bytes_written);
  metrics_.register_counter("storage.kv_writes", &st.kv_writes);
  metrics_.register_counter("storage.queue_ops", &st.queue_ops);
  metrics_.register_counter("storage.record_appends", &st.record_appends);
  metrics_.register_counter("storage.record_resets", &st.record_resets);
  metrics_.register_counter("storage.sync_batches", &st.sync_batches);
  metrics_.register_counter("storage.ship_bytes_received",
                            &st.ship_bytes_received);
  metrics_.register_counter("storage.ship_bytes_reconstructed",
                            &st.ship_bytes_reconstructed);
  metrics_.register_counter("storage.recovery_replayed_bytes",
                            &st.recovery_replayed_bytes);
  metrics_.register_counter("storage.recovery_segments",
                            &st.recovery_segments);
  metrics_.register_counter("storage.checkpoints_completed",
                            &st.checkpoints_completed);
  const auto& sh = ship_.stats();
  metrics_.register_counter("ship.convoys_sent", &sh.convoys_sent);
  metrics_.register_counter("ship.entries_sent", &sh.entries_sent);
  metrics_.register_counter("ship.full_images", &sh.full_images);
  metrics_.register_counter("ship.delta_ships", &sh.delta_ships);
  metrics_.register_counter("ship.delta_fallbacks", &sh.delta_fallbacks);
  metrics_.register_counter("ship.need_full_retries", &sh.need_full_retries);
  metrics_.register_counter("ship.wire_payload_bytes",
                            &sh.wire_payload_bytes);
  const auto& tx = txm_.stats();
  metrics_.register_counter("tx.inflight_tx", &tx.inflight_tx);
  metrics_.register_counter("tx.coordinator_syncs", &tx.coordinator_syncs);
  metrics_.register_counter("tx.pipeline_depth_max", &tx.pipeline_depth_max);
  metrics_.register_gauge("tx.participant_syncs",
                          [this] { return txm_.participant_syncs(); });
  hist_hop_us_ = &metrics_.histogram("hop.latency_us");
  hist_step_us_ = &metrics_.histogram("step.latency_us");
  hist_queue_wait_us_ = &metrics_.histogram("queue.wait_us");
  hist_commit_flush_us_ = &metrics_.histogram("commit.flush_us");
}

void NodeRuntime::trace(TraceKind kind, std::string detail) {
  p_.trace().emit(p_.sim().now(), kind, id_.value(), std::move(detail));
}

// ---------------------------------------------------------------------------
// Observability plumbing (DESIGN.md §12)
// ---------------------------------------------------------------------------

void NodeRuntime::span_hop_begin(QueueRecord& rec) {
  auto& spans = p_.spans();
  if (!spans.enabled()) return;
  const auto now = p_.sim().now();
  if (!hop_traces_.empty()) {
    if (const auto it = hop_traces_.find(rec.record_id);
        it != hop_traces_.end()) {
      // Re-claim after an abort: resume the stashed hop span and close
      // the lock-wait (backoff + re-admission) window the abort opened.
      rec.hop_span_id = it->second.span_id;
      rec.hop_begin_us = it->second.begin_us;
      if (it->second.lock_wait_since != 0) {
        Span lw;
        lw.trace_id = rec.trace_id;
        lw.span_id = spans.next_id();
        lw.parent = rec.hop_span_id;
        lw.kind = SpanKind::lock_wait;
        lw.node = id_.value();
        lw.agent = rec.agent.value();
        lw.begin_us = it->second.lock_wait_since;
        lw.end_us = now;
        spans.record(std::move(lw));
      }
      hop_traces_.erase(it);
      return;
    }
  }
  // First claim: open the root hop span (its id is needed NOW so the
  // phase children and the successor record can parent to it; the span
  // itself is recorded when the hop closes) and emit the queue-wait.
  // The state lives in THIS record copy — the processing path threads it
  // by value through its continuations, so no lookup table is touched.
  rec.hop_span_id = spans.next_id();
  rec.hop_begin_us = rec.enqueued_us != 0 && rec.enqueued_us <= now
                         ? rec.enqueued_us
                         : now;
  Span qw;
  qw.trace_id = rec.trace_id;
  qw.span_id = spans.next_id();
  qw.parent = rec.hop_span_id;
  qw.kind = SpanKind::queue_wait;
  qw.node = id_.value();
  qw.agent = rec.agent.value();
  qw.begin_us = rec.hop_begin_us;
  qw.end_us = now;
  spans.record(std::move(qw));
  hist_queue_wait_us_->record(now - rec.hop_begin_us);
}

void NodeRuntime::span_hop_end(const QueueRecord& rec) {
  if (rec.hop_span_id == 0) return;  // tracing was off when claimed
  auto& spans = p_.spans();
  if (!spans.enabled()) return;
  const auto now = p_.sim().now();
  Span hop;
  hop.trace_id = rec.trace_id;
  hop.span_id = rec.hop_span_id;
  hop.parent = rec.trace_parent;
  hop.kind = SpanKind::hop;
  hop.node = id_.value();
  hop.agent = rec.agent.value();
  hop.begin_us = rec.hop_begin_us;
  hop.end_us = now;
  if (rec.kind == RecordKind::compensate) hop.note = "comp";
  spans.record(std::move(hop));
  hist_hop_us_->record(now - rec.hop_begin_us);
}

void NodeRuntime::span_commit_flush(const QueueRecord& rec,
                                    std::uint64_t begin_us) {
  auto& spans = p_.spans();
  if (!spans.enabled()) return;
  const auto now = p_.sim().now();
  Span cf;
  cf.trace_id = rec.trace_id;
  cf.span_id = spans.next_id();
  cf.parent = rec.hop_span_id;
  cf.kind = SpanKind::commit_flush;
  cf.node = id_.value();
  cf.agent = rec.agent.value();
  cf.begin_us = begin_us;
  cf.end_us = now;
  spans.record(std::move(cf));
  hist_commit_flush_us_->record(now - begin_us);
}

void NodeRuntime::propagate_trace(const QueueRecord& from,
                                  QueueRecord& to) const {
  to.trace_id = from.trace_id;
  to.trace_parent =
      from.hop_span_id != 0 ? from.hop_span_id : from.trace_parent;
}

void NodeRuntime::flight_dump(std::string_view reason) {
  const auto& path = p_.config().flight_dump_path;
  if (path.empty()) return;
  std::ofstream os(path, std::ios::app);
  if (!os) return;
  p_.spans().dump_node(id_.value(), reason, p_.sim().now(), os);
}

std::unique_ptr<Agent> NodeRuntime::decode(const serial::Bytes& bytes) const {
  return decode_agent(p_.agent_types(), bytes);
}

std::shared_ptr<Agent> NodeRuntime::load_committed_agent(
    const storage::QueueRecord& rec) const {
  if (!rec.payload.empty()) return decode(rec.payload);
  const auto* segments = storage_.record_segments(agent_image_key(rec.agent));
  MAR_CHECK_MSG(segments != nullptr,
                "incremental record has no stable agent image");
  return decode_agent_segments(p_.agent_types(), *segments);
}

std::shared_ptr<Agent> NodeRuntime::load_agent_for_step(
    const storage::QueueRecord& rec) {
  if (rec.payload.empty()) {
    auto it = resident_.find(rec.agent);
    if (it != resident_.end()) return it->second;
  }
  return load_committed_agent(rec);
}

std::size_t NodeRuntime::committed_agent_bytes(
    const storage::QueueRecord& rec) const {
  if (!rec.payload.empty()) return rec.payload.size();
  const auto* segments = storage_.record_segments(agent_image_key(rec.agent));
  if (segments == nullptr) return 0;
  std::size_t n = 0;
  for (const auto& s : *segments) n += s.size();
  return n;
}

bool NodeRuntime::should_compact(const std::string& key) const {
  const auto& cfg = p_.config();
  const auto interval =
      std::max<std::uint32_t>(1, cfg.compaction_interval_steps);
  const auto* segments = storage_.record_segments(key);
  if (segments == nullptr || segments->size() < 2) return false;
  // Hard cap: bound the recovery replay length regardless of sizes.
  if (segments->size() >= interval + 1) return true;
  // Bytes-ratio policy: compact once the delta chain outweighs the base,
  // so the stale-segment footprint stays proportional to the agent
  // (amortized-flat) instead of rewriting on a fixed cadence.
  if (cfg.compaction_ratio > 0) {
    std::size_t delta_bytes = 0;
    for (std::size_t i = 1; i < segments->size(); ++i) {
      delta_bytes += (*segments)[i].size();
    }
    return static_cast<double>(delta_bytes) >
           cfg.compaction_ratio * static_cast<double>(segments->front().size());
  }
  return false;
}

storage::QueueRecord NodeRuntime::stage_incremental_image(
    TxId tx, const Agent& agent, const storage::QueueRecord& prev) {
  const auto key = agent_image_key(agent.id());
  if (!agent.delta_ready()) {
    // The log saw pops / GC / discard this step: not expressible as an
    // append. Rewrite the base (which also resets the delta chain).
    qm_.stage_record_reset(tx, key, encode_agent(agent));
  } else if (!prev.payload.empty()) {
    // First local commit after arrival: the consumed record's payload is
    // exactly the pre-step image — establish it as the base and append
    // this step's delta, all within the step transaction.
    qm_.stage_record_reset(tx, key, prev.payload);
    qm_.stage_record_append(tx, key, encode_agent_delta(agent));
  } else if (should_compact(key)) {
    // Compaction: fold the chain back into one full image.
    qm_.stage_record_reset(tx, key, encode_agent(agent));
  } else {
    qm_.stage_record_append(tx, key, encode_agent_delta(agent));
  }
  storage::QueueRecord rec;
  rec.record_id = p_.next_record_id();
  rec.agent = agent.id();
  rec.kind = RecordKind::execute;
  rec.rollback_target = SavepointId::invalid();
  // payload stays empty: the record area holds the durable image.
  return rec;
}

QueueRecord NodeRuntime::make_record(const Agent& agent, RecordKind kind,
                                     SavepointId rollback_target) {
  QueueRecord rec;
  rec.record_id = p_.next_record_id();
  rec.agent = agent.id();
  rec.kind = kind;
  rec.rollback_target = rollback_target;
  rec.payload = encode_agent(agent);
  return rec;
}

void NodeRuntime::after(sim::TimeUs delay, std::function<void()> fn) {
  const auto epoch = epoch_;
  p_.sim().schedule_after(delay, [this, epoch, fn = std::move(fn)] {
    if (epoch == epoch_) fn();
  });
}

void NodeRuntime::enqueue_initial(QueueRecord record) {
  record.enqueued_us = p_.sim().now();
  storage_.enqueue(std::move(record));
  pump();
}

void NodeRuntime::pump() {
  if (!up_) return;
  const auto slot_cap =
      std::max<std::uint32_t>(1, p_.config().node_concurrency);
  while (slots_.size() < slot_cap) {
    const QueueRecord* next = qm_.next_eligible(busy_agents_);
    if (next == nullptr) return;
    const auto record_id = next->record_id;
    MAR_CHECK(qm_.claim(record_id));
    slots_.insert(record_id);
    busy_agents_.insert(next->agent);
    after(0, [this, record_id] { process_record(record_id); });
  }
}

void NodeRuntime::release_slot(const QueueRecord& rec) {
  qm_.release(rec.record_id);
  slots_.erase(rec.record_id);
  busy_agents_.erase(rec.agent);
}

std::uint32_t NodeRuntime::attempt_count(std::uint64_t record_id) const {
  auto it = attempts_.find(record_id);
  return it == attempts_.end() ? 0 : it->second;
}

void NodeRuntime::process_record(std::uint64_t record_id) {
  if (!up_ || !slots_.contains(record_id)) return;
  const QueueRecord* found = storage_.find_record(record_id);
  MAR_CHECK_MSG(found != nullptr, "claimed record vanished from the queue");
  QueueRecord rec = *found;  // stable copy; the queue owns the original
  span_hop_begin(rec);
  try {
    // Multi-agent executions (Sec. 6): a requested cancellation takes
    // effect at the next step boundary — exactly here, before the record
    // is processed. In-flight rollbacks are never interrupted.
    if (rec.kind != RecordKind::compensate &&
        p_.cancel_requested(rec.agent)) {
      execute_cancel(rec);
      return;
    }
    switch (rec.kind) {
      case RecordKind::execute:
        execute_step(rec);
        return;
      case RecordKind::compensate:
        execute_compensation(rec);
        return;
      case RecordKind::launch:
        execute_launch(rec);
        return;
    }
  } catch (const resource::LockAuditError&) {
    // Post-mortem artifact before the validator's hard failure unwinds
    // the run: the node's recent spans show what led into the cycle.
    flight_dump("lock_audit");
    throw;
  }
  MAR_CHECK_MSG(false, "unknown queue record kind");
}

void NodeRuntime::execute_launch(const QueueRecord& rec) {
  // The spawn committed with the parent's step; this record only routes
  // the child to its first step's node, with the usual retry machinery.
  const TxId tx = txm_.begin();
  qm_.stage_remove(tx, rec.record_id);
  std::shared_ptr<Agent> agent = decode(rec.payload);
  const StepEntry step = agent->itinerary().step_at(agent->position());
  const auto attempt = attempt_count(rec.record_id);
  const NodeId dest = step.locations[attempt % step.locations.size()];
  QueueRecord next_rec =
      make_record(*agent, RecordKind::execute, SavepointId::invalid());
  propagate_trace(rec, next_rec);
  if (dest != id_) {
    trace(TraceKind::migrate,
          "child agent " + std::to_string(rec.agent.value()) + " -> N" +
              std::to_string(dest.value()) + " (launch, " +
              std::to_string(next_rec.payload.size()) + " bytes)");
  }
  stage_and_commit(tx, dest, std::move(next_rec),
                   [this, rec](bool committed) {
                     release_slot(rec);
                     if (committed) {
                       span_hop_end(rec);
                       attempts_.erase(rec.record_id);
                       pump();
                     } else {
                       ++attempts_[rec.record_id];
                       retry_later(rec);
                     }
                   });
}

void NodeRuntime::execute_cancel(const QueueRecord& rec) {
  std::shared_ptr<Agent> agent = load_committed_agent(rec);
  const auto target = agent->log().first_savepoint();
  if (!target.valid()) {
    // Sec. 4.4.2: a complete rollback (abort) is only possible while the
    // first top-level sub-itinerary executes. The log was discarded: the
    // cancellation is void; the agent runs on to completion.
    trace(TraceKind::msg,
          "cancel of agent " + std::to_string(rec.agent.value()) +
              " void (rollback log discarded); agent continues");
    p_.clear_cancel(rec.agent);
    if (rec.kind == RecordKind::execute) {
      execute_step(rec);
    } else {
      execute_launch(rec);
    }
    return;
  }
  p_.clear_cancel(rec.agent);
  trace(TraceKind::rollback_begin,
        "cancelling agent " + std::to_string(rec.agent.value()) +
            " (complete rollback to SP_" + std::to_string(target.value()) +
            ")");
  initiate_cancel_rollback(rec, target);
}

void NodeRuntime::initiate_cancel_rollback(const QueueRecord& rec,
                                           SavepointId target) {
  const TxId tx = txm_.begin();
  qm_.stage_remove(tx, rec.record_id);
  evict_resident(rec.agent);
  std::shared_ptr<Agent> agent = load_committed_agent(rec);
  auto& log = agent->log();
  while (!log.empty() && log.back().is_savepoint() &&
         log.back().savepoint().id != target) {
    (void)log.pop();
  }
  if (log.trailing_savepoint() == target) {
    // Nothing committed since launch: terminate right away.
    finish_cancelled(tx, rec, *agent);
    return;
  }
  const auto dests =
      next_compensation_nodes(log, *agent, committed_agent_bytes(rec));
  if (dests.empty()) {
    fail_agent(tx, rec, Status(Errc::protocol_error,
                               "cancel: rollback log has no end-of-step"));
    return;
  }
  const auto attempt = attempt_count(rec.record_id);
  const NodeId dest = dests[attempt % dests.size()];
  QueueRecord comp_rec = make_record(*agent, RecordKind::compensate, target);
  comp_rec.completion = QueueRecord::Completion::cancel;
  propagate_trace(rec, comp_rec);
  if (dest != id_) {
    ++p_.rollback_transfers();
    trace(TraceKind::migrate,
          "agent " + std::to_string(rec.agent.value()) + " -> N" +
              std::to_string(dest.value()) + " (cancel rollback)");
  }
  stage_and_commit(tx, dest, std::move(comp_rec),
                   [this, rec](bool committed) {
                     release_slot(rec);
                     if (committed) {
                       span_hop_end(rec);
                       attempts_.erase(rec.record_id);
                       pump();
                     } else {
                       ++attempts_[rec.record_id];
                       retry_later(rec);
                     }
                   });
}

void NodeRuntime::retry_later(const QueueRecord& rec) {
  const auto backoff =
      p_.config().retry_backoff_us +
      p_.rng().next_below(p_.config().retry_backoff_us + 1);
  // The abort -> re-claim window is the hop's lock-wait phase. The open
  // hop span rode this attempt's record copy; stash it so the re-claim
  // (a fresh copy of the queued original) can resume the same span and
  // close the lock-wait window.
  if (rec.hop_span_id != 0 && p_.spans().enabled()) {
    auto& ht = hop_traces_[rec.record_id];
    if (ht.span_id == 0) {
      ht.span_id = rec.hop_span_id;
      ht.begin_us = rec.hop_begin_us;
      ht.lock_wait_since = p_.sim().now();
    }
  }
  after(backoff, [this] { pump(); });
}

void NodeRuntime::on_node_state(bool up) {
  // The epoch bump cancels every pending continuation; the slot and claim
  // wipes invalidate all in-flight executions at once. Their records are
  // still queued (removal only commits), so recovery re-offers them.
  ++epoch_;
  up_ = up;
  if (!up) flight_dump("crash");  // post-mortem before volatile state goes
  slots_.clear();
  busy_agents_.clear();
  resident_.clear();  // volatile cache; recovery decodes from the record area
  hop_traces_.clear();  // re-offered records open fresh hop spans
  storage_.clear_claims();
  rce_waiters_.clear();
  mce_waiters_.clear();
  rpc_waiters_.clear();
  ship_.on_node_state(up);
  if (up) {
    // Rebuild the record read path BEFORE the tx layer re-drives decided
    // commits: commit_locals may apply staged record ops on top of it.
    // Segmented mode replays the checksummed log (possibly truncating a
    // torn tail, or throwing CorruptionError on mid-log damage); classic
    // mode meters the full-area replay envelope.
    storage::RecoveryReport report;
    const auto recovery_begin = p_.sim().now();
    try {
      report = storage_.recover_records();
    } catch (const storage::CorruptionError&) {
      flight_dump("corruption");
      throw;
    }
    trace(TraceKind::storage_recovery,
          "replayed_bytes=" + std::to_string(report.replayed_bytes) +
              " segments=" + std::to_string(report.segments_scanned) +
              " torn_tail=" + std::to_string(report.truncated_torn_tail) +
              " checkpoint=" + std::to_string(report.used_checkpoint) +
              " fell_back=" + std::to_string(report.checkpoint_fell_back));
    if (p_.spans().enabled()) {
      // The replay is instantaneous in simulated time (its cost is a
      // byte meter, A8's subject); the span marks the event and carries
      // the replay size for the timeline.
      Span rs;
      rs.span_id = p_.spans().next_id();
      rs.kind = SpanKind::recovery_replay;
      rs.node = id_.value();
      rs.begin_us = recovery_begin;
      rs.end_us = p_.sim().now();
      rs.note = "replayed_bytes=" + std::to_string(report.replayed_bytes) +
                " segments=" + std::to_string(report.segments_scanned);
      p_.spans().record(std::move(rs));
    }
    txm_.on_recover();
    pump();
  } else {
    const auto fault = p_.config().storage_fault;
    if (fault != storage::StorageFault::none) {
      // Crash-time damage: deterministic in the platform seed, drawn only
      // when a fault is configured so clean runs stay bit-identical.
      storage_.inject_storage_fault(fault, p_.rng().next_u64());
    }
    txm_.on_crash();
  }
}

// ---------------------------------------------------------------------------
// Message handling
// ---------------------------------------------------------------------------

void NodeRuntime::handle_message(const net::Message& m) {
  if (m.type.rfind("tx.", 0) == 0) {
    txm_.on_message(m);
    pump();  // a tx.commit may have delivered a queue record
    return;
  }
  if (m.type == ship::msg::convoy) {
    // A remote coordinator's convoy stages agent transfers into our queue
    // (full images or deltas against the channel cache).
    ship_.on_convoy(m);
    return;
  }
  if (m.type == ship::msg::convoy_ack) {
    ship_.on_convoy_ack(m);
    return;
  }
  serial::Decoder dec(m.payload);
  if (m.type == msg::rce_exec) {
    // Shipped resource compensation entries (optimized algorithm): run
    // them here inside the coordinator's compensation transaction.
    const TxId tx(dec.read_u64());
    const auto n = dec.read_count();
    std::vector<OperationEntry> ops(n);
    for (auto& op : ops) op.deserialize(dec);
    txm_.note_remote_staged(tx);
    const auto service =
        static_cast<sim::TimeUs>(ops.size()) * p_.config().comp_op_service_us;
    after(service, [this, tx, ops = std::move(ops), from = m.from] {
      Status st = Status::ok();
      for (const auto& op : ops) {
        st = run_comp_op(tx, op, nullptr);
        if (!st.is_ok()) break;
      }
      serial::Encoder enc(8 + 1);
      enc.write_u64(tx.value());
      enc.write_bool(st.is_ok());
      p_.net().send(
          net::Message{id_, from, msg::rce_ack, std::move(enc).take()});
    });
    return;
  }
  if (m.type == msg::mce_exec) {
    // Adaptive strategy (Sec. 4.4.1): a mixed step's complete operation
    // entry list plus a snapshot of the agent's weakly reversible objects,
    // executed here (the resource node) inside the coordinator's
    // compensation transaction. The weak-state mutations travel back with
    // the acknowledgement; they become durable only when the coordinator
    // commits the transaction, so a lost reply or an abort discards them.
    const TxId tx(dec.read_u64());
    const auto n = dec.read_count();
    std::vector<OperationEntry> ops(n);
    for (auto& op : ops) op.deserialize(dec);
    serial::Value weak;
    weak.deserialize(dec);
    txm_.note_remote_staged(tx);
    const auto service =
        static_cast<sim::TimeUs>(ops.size()) * p_.config().comp_op_service_us;
    after(service, [this, tx, ops = std::move(ops), weak = std::move(weak),
                    from = m.from]() mutable {
      Status st = Status::ok();
      for (const auto& op : ops) {
        st = run_comp_op(tx, op, &weak);
        if (!st.is_ok()) break;
      }
      serial::Encoder enc(8 + 1 + weak.encoded_size());
      enc.write_u64(tx.value());
      enc.write_bool(st.is_ok());
      weak.serialize(enc);
      p_.net().send(
          net::Message{id_, from, msg::mce_ack, std::move(enc).take()});
    });
    return;
  }
  if (m.type == msg::mce_ack) {
    const TxId tx(dec.read_u64());
    const bool ok = dec.read_bool();
    serial::Value weak;
    weak.deserialize(dec);
    auto it = mce_waiters_.find(tx);
    if (it == mce_waiters_.end()) return;  // timed out / duplicate
    auto cb = std::move(it->second);
    mce_waiters_.erase(it);
    cb(ok, std::move(weak));
    return;
  }
  if (m.type == contract::msg::invoke) {
    // Remote resource access by RPC: used by the ConTract-style central
    // baseline and available as the Sec. 4.4.1 "further optimization".
    auto req = contract::decode_invoke(m);
    txm_.note_remote_staged(req.tx);
    const auto service = p_.config().resource_op_service_us;
    after(service, [this, req = std::move(req), from = m.from] {
      Status st;
      if (req.comp_op.empty()) {
        st = rm_.invoke(req.tx, req.resource, req.op, req.params).status();
      } else {
        // A shipped compensating operation in a resource-entry context.
        rollback::CompensationContext ctx(rollback::OpEntryKind::resource,
                                          req.params, p_.sim().now(), &rm_,
                                          req.tx, nullptr);
        st = p_.compensations().run(req.comp_op, ctx);
      }
      p_.net().send(net::Message{id_, from, contract::msg::result,
                                 contract::encode_result(req.tx, st)});
    });
    return;
  }
  if (m.type == contract::msg::result) {
    const auto [tx, status] = contract::decode_result(m);
    auto it = rpc_waiters_.find(tx);
    if (it == rpc_waiters_.end()) return;  // timed out / duplicate
    auto cb = std::move(it->second);
    rpc_waiters_.erase(it);
    cb(status.is_ok());
    return;
  }
  if (m.type == msg::rce_ack) {
    const TxId tx(dec.read_u64());
    const bool ok = dec.read_bool();
    auto it = rce_waiters_.find(tx);
    if (it == rce_waiters_.end()) return;
    auto cb = std::move(it->second);
    rce_waiters_.erase(it);
    cb(ok);
    return;
  }
  MAR_CHECK_MSG(false, "unknown message type " << m.type);
}

// ---------------------------------------------------------------------------
// Transfer / commit plumbing
// ---------------------------------------------------------------------------

void NodeRuntime::stage_and_commit(TxId tx, NodeId dest, QueueRecord record,
                                   std::function<void(bool)> done) {
  // A full-payload handoff (migration, rollback, launch, resume)
  // supersedes any incremental image this node still holds for the agent:
  // drop the record-area state within the same transaction.
  if (!record.payload.empty()) {
    const auto key = agent_image_key(record.agent);
    if (storage_.has_record(key)) qm_.stage_record_erase(tx, key);
  }
  if (dest == id_) {
    qm_.stage_enqueue(tx, std::move(record));
    txm_.commit_async(tx, std::move(done));
    return;
  }
  // Remote staging rides the destination's convoy: the shipment manager
  // batches transfers, delta-ships against the channel cache and handles
  // full-image fallback and timeouts.
  txm_.enlist_remote(tx, dest);
  if (txm_.pipelined()) {
    // Pipelined commit: the convoy frame carries the PREPARE, so the
    // commit machinery starts NOW instead of after a staging ack round
    // trip — one round trip covers transfer + vote, and the batched
    // decision flush amortizes the coordinator sync across every
    // transaction decided in the window. The continuation in `done`
    // re-pumps the scheduler slot at ack drain. A shipment timeout
    // aborts only while votes are still outstanding (once decided, the
    // timeout is stale).
    txm_.note_piggybacked(tx, dest);
    ship_.stage_remote(tx, dest, std::move(record),
                       [this, tx](bool ok) {
                         if (!ok) txm_.abort_if_preparing(tx);
                       });
    txm_.commit_async(tx, std::move(done));
    return;
  }
  ship_.stage_remote(tx, dest, std::move(record),
                     [this, tx, done = std::move(done)](bool ok) {
                       if (!ok) {
                         txm_.abort_tx(tx);
                         done(false);
                         return;
                       }
                       txm_.commit_async(tx, done);
                     });
}

void NodeRuntime::fail_agent(TxId tx, const QueueRecord& rec, Status status) {
  txm_.abort_tx(tx);
  evict_resident(rec.agent);
  trace(TraceKind::msg, "agent " + std::to_string(rec.agent.value()) +
                            " FAILED: " + status.to_string());
  const TxId cleanup = txm_.begin();
  qm_.stage_remove(cleanup, rec.record_id);
  const auto image_key = agent_image_key(rec.agent);
  if (storage_.has_record(image_key)) {
    qm_.stage_record_erase(cleanup, image_key);
  }
  // Multi-agent executions: a waiting parent learns of the failure
  // through the mailbox, within the same cleanup transaction.
  auto failed = load_committed_agent(rec);
  serial::Bytes final_bytes =
      rec.payload.empty() ? encode_agent(*failed) : rec.payload;
  const auto commit_begin = p_.sim().now();
  deliver_result(
      cleanup, *failed, /*ok=*/false, status,
      [this, cleanup, rec, status, commit_begin,
       final_bytes = std::move(final_bytes)](bool delivered) {
        if (!delivered) {
          txm_.abort_tx(cleanup);
          release_slot(rec);
          retry_later(rec);
          return;
        }
        txm_.commit_async(cleanup, [this, rec, status, commit_begin,
                                    final_bytes](bool committed) {
          if (!committed) {
            release_slot(rec);
            retry_later(rec);
            return;
          }
          AgentOutcome out;
          out.state = AgentOutcome::State::failed;
          out.status = status;
          out.final_agent = final_bytes;
          out.final_node = id_;
          out.finished_at = p_.sim().now();
          p_.record_outcome(rec.agent, std::move(out));
          span_commit_flush(rec, commit_begin);
          span_hop_end(rec);
          attempts_.erase(rec.record_id);
          release_slot(rec);
          pump();
        });
      });
}

void NodeRuntime::finish_agent(TxId tx, const QueueRecord& rec,
                               Agent& agent) {
  evict_resident(rec.agent);
  const auto image_key = agent_image_key(rec.agent);
  if (storage_.has_record(image_key)) qm_.stage_record_erase(tx, image_key);
  serial::Bytes final_bytes = encode_agent(agent);
  const auto commit_begin = p_.sim().now();
  // Multi-agent executions: the result is delivered to the parent's
  // mailbox within this final step transaction — exactly once.
  deliver_result(
      tx, agent, /*ok=*/true, Status::ok(),
      [this, tx, rec, commit_begin,
       final_bytes = std::move(final_bytes)](bool delivered) {
        if (!delivered) {
          txm_.abort_tx(tx);
          release_slot(rec);
          retry_later(rec);
          return;
        }
        txm_.commit_async(tx, [this, rec, commit_begin,
                               final_bytes = std::move(
                                   final_bytes)](bool ok) {
          if (!ok) {
            release_slot(rec);
            retry_later(rec);
            return;
          }
          trace(TraceKind::step_commit,
                "agent " + std::to_string(rec.agent.value()) + " completed");
          AgentOutcome out;
          out.state = AgentOutcome::State::done;
          out.final_agent = final_bytes;
          out.final_node = id_;
          out.finished_at = p_.sim().now();
          p_.record_outcome(rec.agent, std::move(out));
          span_commit_flush(rec, commit_begin);
          span_hop_end(rec);
          attempts_.erase(rec.record_id);
          release_slot(rec);
          pump();
        });
      });
}

void NodeRuntime::deliver_result(TxId tx, const Agent& agent, bool ok,
                                 const Status& error,
                                 std::function<void(bool)> done) {
  if (agent.result_key().empty()) {
    done(true);
    return;
  }
  // The result record the parent's join_child() takes from the mailbox.
  serial::Value record = serial::Value::empty_map();
  record.set("ok", ok);
  record.set("agent", static_cast<std::int64_t>(agent.id().value()));
  if (ok) {
    record.set("result", agent.data().weak_image().has("result")
                             ? agent.data().weak_image().at("result")
                             : agent.data().weak_image());
  } else {
    record.set("error", error.to_string());
  }
  serial::Value params = serial::Value::empty_map();
  params.set("key", agent.result_key());
  params.set("value", std::move(record));

  if (agent.result_node() == id_) {
    done(rm_.invoke(tx, "mailbox", "put", params).is_ok());
    return;
  }
  // Remote delivery: a transactional RPC to the mailbox node, enlisted in
  // this transaction (the Sec. 4.4.1 RPC mechanism) — delivery commits
  // atomically with the agent's terminal transaction.
  txm_.enlist_remote(tx, agent.result_node());
  p_.net().send(net::Message{
      id_, agent.result_node(), contract::msg::invoke,
      contract::encode_invoke(tx, "mailbox", "put", params, "")});
  rpc_waiters_[tx] = done;
  if (p_.config().stage_timeout_us > 0) {
    const auto timeout = p_.config().stage_timeout_us;
    after(timeout, [this, tx, done] {
      auto it = rpc_waiters_.find(tx);
      if (it == rpc_waiters_.end()) return;
      rpc_waiters_.erase(it);
      done(false);
    });
  }
}

void NodeRuntime::finish_cancelled(TxId tx, const QueueRecord& rec,
                                   Agent& agent) {
  evict_resident(rec.agent);
  const auto image_key = agent_image_key(rec.agent);
  if (storage_.has_record(image_key)) qm_.stage_record_erase(tx, image_key);
  serial::Bytes final_bytes = encode_agent(agent);
  const auto commit_begin = p_.sim().now();
  deliver_result(
      tx, agent, /*ok=*/false, Status(Errc::tx_aborted, "cancelled"),
      [this, tx, rec, commit_begin,
       final_bytes = std::move(final_bytes)](bool delivered) {
        if (!delivered) {
          txm_.abort_tx(tx);
          release_slot(rec);
          retry_later(rec);
          return;
        }
        txm_.commit_async(tx, [this, rec, commit_begin,
                               final_bytes =
                                   std::move(final_bytes)](bool ok) {
          if (!ok) {
            release_slot(rec);
            retry_later(rec);
            return;
          }
          trace(TraceKind::rollback_done,
                "agent " + std::to_string(rec.agent.value()) + " CANCELLED");
          AgentOutcome out;
          out.state = AgentOutcome::State::cancelled;
          out.status = Status(Errc::tx_aborted, "cancelled");
          out.final_agent = final_bytes;
          out.final_node = id_;
          out.finished_at = p_.sim().now();
          p_.record_outcome(rec.agent, std::move(out));
          span_commit_flush(rec, commit_begin);
          span_hop_end(rec);
          attempts_.erase(rec.record_id);
          release_slot(rec);
          pump();
        });
      });
}

// ---------------------------------------------------------------------------
// Step execution (exactly-once protocol of ref [11])
// ---------------------------------------------------------------------------

void NodeRuntime::execute_step(const QueueRecord& rec) {
  const TxId tx = txm_.begin();
  qm_.stage_remove(tx, rec.record_id);
  std::shared_ptr<Agent> agent = load_agent_for_step(rec);
  MAR_CHECK_MSG(agent->itinerary().valid_step(agent->position()),
                "agent position does not address a step");
  const StepEntry step = agent->itinerary().step_at(agent->position());
  trace(TraceKind::step_begin,
        "T(" + step.method + ") agent " + std::to_string(rec.agent.value()));

  StepContext ctx(id_, p_.sim().now(), tx, *agent, rm_, p_.rng());
  if (step.when.has_value() &&
      !step.when->eval(agent->data().weak_image())) {
    // Ref [14] preconditions: an unsatisfied step is skipped — the step
    // transaction still runs (empty), keeping the itinerary bookkeeping
    // and exactly-once machinery uniform.
    trace(TraceKind::msg, step.method + " skipped (precondition " +
                              step.when->to_string() + " unsatisfied)");
  } else {
    agent->run_step(step.method, ctx);
  }

  if (ctx.fatal()) {
    // Lock conflict / forced abort: undo and restart the step later. A
    // lock conflict here is the multiprogramming cost of concurrent slots
    // (or of a sibling agent) — count it so A4 can report the contention.
    if (ctx.fatal_status().code() == Errc::lock_conflict) {
      ++p_.lock_conflict_aborts();
    }
    // The (possibly resident) in-memory agent was mutated by the aborted
    // step: the retry must re-read the committed state.
    evict_resident(rec.agent);
    txm_.abort_tx(tx);
    trace(TraceKind::step_abort, step.method + ": " +
                                     ctx.fatal_status().to_string() +
                                     " (will restart)");
    ++attempts_[rec.record_id];
    release_slot(rec);
    retry_later(rec);
    return;
  }

  if (ctx.failed_permanently()) {
    // The step cannot succeed, ever (e.g. missing permission, Sec. 1).
    // Flexible-itinerary semantics: try the next option of the innermost
    // enclosing alternatives entry (ref [14]); otherwise abandon the
    // innermost non-vital sub-itinerary (Sec. 5); otherwise the agent
    // fails.
    evict_resident(rec.agent);
    auto pre_agent = load_committed_agent(rec);
    txm_.abort_tx(tx);
    trace(TraceKind::step_abort,
          step.method + " failed permanently: " +
              ctx.permanent_status().to_string());
    const auto plan = failure_plan_for(*pre_agent);
    if (!plan.has_value()) {
      const TxId dummy = txm_.begin();
      fail_agent(dummy, rec, ctx.permanent_status());
      return;
    }
    const auto check = check_rollback_target(*pre_agent, plan->target);
    if (!check.is_ok()) {
      const TxId dummy = txm_.begin();
      fail_agent(dummy, rec, check);
      return;
    }
    trace(TraceKind::rollback_begin,
          std::string(plan->completion == QueueRecord::Completion::next_alt
                          ? "try next alternative"
                          : "abandon non-vital sub") +
              " (SP_" + std::to_string(plan->target.value()) + ")");
    initiate_rollback(rec, plan->target, plan->completion);
    return;
  }

  if (ctx.rollback_request().has_value()) {
    // Fig. 4a/5a: abort the step transaction; the agent state and log read
    // from stable storage (the queue record) are the pre-step state.
    evict_resident(rec.agent);
    auto pre_agent = load_committed_agent(rec);
    const auto target =
        resolve_rollback_target(*pre_agent, *ctx.rollback_request());
    txm_.abort_tx(tx);
    trace(TraceKind::step_abort, step.method + " (rollback requested)");
    if (!target.is_ok()) {
      const TxId dummy = txm_.begin();
      fail_agent(dummy, rec, target.status());
      return;
    }
    trace(TraceKind::rollback_begin,
          "to SP_" + std::to_string(target.value().value()) +
              (ctx.rollback_request()->skip ? " (abandon)" : ""));
    initiate_rollback(rec, target.value(),
                      ctx.rollback_request()->skip
                          ? QueueRecord::Completion::skip_sub
                          : QueueRecord::Completion::resume);
    return;
  }

  complete_step(tx, rec, std::move(agent), ctx);
}

SavepointId NodeRuntime::savepoint_at_depth(const Agent& agent,
                                            std::uint32_t depth) {
  const auto& stack = agent.savepoint_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->origin == rollback::SavepointOrigin::sub_itinerary &&
        it->depth == depth) {
      return it->id;
    }
  }
  return SavepointId::invalid();
}

std::optional<NodeRuntime::FailurePlan> NodeRuntime::failure_plan_for(
    const Agent& agent) const {
  const auto& itinerary = agent.itinerary();
  const auto levels = Itinerary::active_subs(agent.position());
  for (auto p = levels.rbegin(); p != levels.rend(); ++p) {
    const auto depth = static_cast<std::uint32_t>(p->size());
    switch (itinerary.prefix_kind(*p)) {
      case Itinerary::PrefixKind::alt_option: {
        // Untried options left? Roll this option back and enter the next.
        if (p->back() + 1 < itinerary.alt_option_count(*p)) {
          const auto sp = savepoint_at_depth(agent, depth);
          if (sp.valid()) {
            return FailurePlan{sp, QueueRecord::Completion::next_alt};
          }
        }
        break;  // options exhausted: keep searching outward
      }
      case Itinerary::PrefixKind::sub: {
        if (!itinerary.entry_at(*p).vital()) {
          const auto sp = savepoint_at_depth(agent, depth);
          if (sp.valid()) {
            return FailurePlan{sp, QueueRecord::Completion::skip_sub};
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return std::nullopt;
}

void NodeRuntime::complete_step(TxId tx, const QueueRecord& rec,
                                std::shared_ptr<Agent> agent,
                                StepContext& ctx) {
  const StepEntry step = agent->itinerary().step_at(agent->position());
  auto& log = agent->log();

  // Multi-agent executions (Sec. 6): prepare and stage the children
  // spawned during this step. Their launch records enter THIS node's
  // queue within the step transaction, so spawns commit atomically with
  // the step — exactly once, like any other step effect.
  std::vector<AgentId> spawned;
  for (auto& spawn : ctx.spawns()) {
    auto child = p_.prepare_child(*spawn.child, agent->id(), id_,
                                  spawn.result_node, spawn.result_key);
    MAR_CHECK_MSG(child.is_ok(),
                  "spawned child is invalid: " << child.status());
    QueueRecord launch_rec;
    launch_rec.record_id = p_.next_record_id();
    launch_rec.agent = child.value();
    launch_rec.kind = RecordKind::launch;
    launch_rec.payload = encode_agent(*spawn.child);
    qm_.stage_enqueue(tx, std::move(launch_rec));
    spawned.push_back(child.value());
    trace(TraceKind::msg,
          "spawned child agent " + std::to_string(child.value().value()));
  }

  // Append the step's log segment: BOS, OE..., EOS (Sec. 4.2, Fig. 2).
  log.push(rollback::BeginOfStepEntry{id_, step.method});
  bool has_mixed = false;
  for (const auto& op : ctx.logged_ops()) {
    has_mixed = has_mixed || op.kind == OpEntryKind::mixed;
    log.push(op);
  }
  // Compensating a spawn cancels the child; logged after the step's own
  // entries so that (in reverse execution order) children are cancelled
  // before the step's other effects are compensated.
  for (const auto child : spawned) {
    serial::Value params = serial::Value::empty_map();
    params.set("child", static_cast<std::int64_t>(child.value()));
    log.push(OperationEntry{OpEntryKind::agent, "sys.cancel_child",
                            std::move(params), NodeId::invalid(),
                            std::string{}});
  }
  rollback::EndOfStepEntry eos;
  eos.node = id_;
  eos.has_mixed = has_mixed;
  eos.cannot_compensate = ctx.not_compensatable();
  for (const auto n : step.locations) {
    if (n != id_) eos.alternatives.push_back(n);
  }
  log.push(std::move(eos));

  // Advance the itinerary; write savepoints; GC/discard (Sec. 4.4.2).
  const Position from = agent->position();
  const auto next = agent->itinerary().next_step(from);
  p_.advance_itinerary(id_, *agent, from, next, ctx.requested_savepoints());
  if (next.has_value()) {
    agent->set_position(*next);
  } else {
    agent->set_run_state(Agent::RunState::done);
  }

  const auto service = static_cast<sim::TimeUs>(ctx.resource_ops_invoked()) *
                       p_.config().resource_op_service_us;
  const auto exec_begin = p_.sim().now();
  after(service, [this, tx, rec, agent = std::move(agent), spawned,
                  exec_begin] {
    if (p_.spans().enabled()) {
      // The step body plus its modeled service time — the hop's
      // step-exec phase (the commit phase starts right here).
      Span se;
      se.trace_id = rec.trace_id;
      se.span_id = p_.spans().next_id();
      se.parent = rec.hop_span_id;
      se.kind = SpanKind::step_exec;
      se.node = id_.value();
      se.agent = rec.agent.value();
      se.begin_us = exec_begin;
      se.end_us = p_.sim().now();
      p_.spans().record(std::move(se));
    }
    if (agent->run_state() == Agent::RunState::done) {
      finish_agent(tx, rec, *agent);
      return;
    }
    // Route to the next step's node; rotate through the alternatives on
    // repeated failures (fault-tolerant execution, ref [11]).
    const StepEntry next_step = agent->itinerary().step_at(agent->position());
    const auto attempt = attempt_count(rec.record_id);
    const NodeId dest =
        next_step.locations[attempt % next_step.locations.size()];
    // The hot path: when the agent stays on this node, commit only the
    // step's delta into its append-only stable record — O(changed state)
    // instead of O(total state). Spawning steps write a full image (the
    // children's launch records reference the parent's committed state).
    const bool incremental =
        p_.config().incremental_commit && dest == id_ && spawned.empty();
    QueueRecord next_rec;
    if (incremental) {
      next_rec = stage_incremental_image(tx, *agent, rec);
      // From here on the in-memory agent matches the staged durable image;
      // the next delta (if the commit succeeds) starts at this state.
      agent->mark_commit_baseline();
    } else {
      next_rec =
          make_record(*agent, RecordKind::execute, SavepointId::invalid());
    }
    propagate_trace(rec, next_rec);
    if (dest != id_) {
      trace(TraceKind::migrate,
            "agent " + std::to_string(rec.agent.value()) + " -> N" +
                std::to_string(dest.value()) + " (" +
                std::to_string(next_rec.payload.size()) + " bytes)");
    }
    const auto commit_begin = p_.sim().now();
    stage_and_commit(tx, dest, std::move(next_rec),
                     [this, rec, spawned, agent, incremental, exec_begin,
                      commit_begin](bool committed) {
                       if (committed) {
                         trace(TraceKind::step_commit, "T committed");
                         // Commit wait: group-commit flush for local
                         // handoffs, flush + convoy round trip for
                         // migrations (its convoy-wait / wire children
                         // land from the shipment manager).
                         span_commit_flush(rec, commit_begin);
                         if (p_.spans().enabled()) {
                           hist_step_us_->record(p_.sim().now() - exec_begin);
                         }
                         span_hop_end(rec);
                         attempts_.erase(rec.record_id);
                         if (incremental) {
                           // Keep the committed state resident: the next
                           // local step skips the full decode entirely.
                           resident_[rec.agent] = agent;
                         } else {
                           evict_resident(rec.agent);
                         }
                       } else {
                         trace(TraceKind::step_abort,
                               "commit failed (will restart)");
                         ++attempts_[rec.record_id];
                         evict_resident(rec.agent);
                         // The spawns died with the transaction; the step
                         // will re-execute and re-spawn under fresh ids.
                         for (const auto child : spawned) {
                           p_.forget_agent(child);
                         }
                       }
                       release_slot(rec);
                       if (committed) {
                         pump();
                       } else {
                         retry_later(rec);
                       }
                     });
  });
}

// ---------------------------------------------------------------------------
// Rollback (Sec. 4.3 / 4.4)
// ---------------------------------------------------------------------------

Result<SavepointId> NodeRuntime::resolve_rollback_target(
    const Agent& agent, const RollbackRequest& request) const {
  SavepointId target = SavepointId::invalid();
  if (std::holds_alternative<SavepointId>(request.target)) {
    target = std::get<SavepointId>(request.target);
  } else {
    target = agent.sub_savepoint(std::get<std::uint32_t>(request.target));
  }
  if (!target.valid()) {
    return Status(Errc::not_found, "no such rollback target");
  }
  MAR_RETURN_IF_ERROR(check_rollback_target(agent, target));
  return target;
}

Status NodeRuntime::check_rollback_target(const Agent& agent,
                                          SavepointId target) const {
  const auto& log = agent.log();
  if (!log.contains_savepoint(target)) {
    return Status(Errc::not_found,
                  "savepoint " + std::to_string(target.value()) +
                      " is not in the rollback log");
  }
  // Sec. 3.2: a step containing a non-compensatable operation cannot be
  // rolled back after commit — scan the segment that would be compensated.
  for (auto it = log.entries().rbegin(); it != log.entries().rend(); ++it) {
    if (it->is_savepoint() && it->savepoint().id == target) break;
    if (it->kind() == EntryKind::end_of_step &&
        it->end_of_step().cannot_compensate) {
      return Status(Errc::not_compensatable,
                    "a step between here and the target savepoint is not "
                    "compensatable");
    }
  }
  return Status::ok();
}

namespace {
const char* completion_suffix(QueueRecord::Completion c) {
  switch (c) {
    case QueueRecord::Completion::resume: return "";
    case QueueRecord::Completion::skip_sub: return " (abandoned)";
    case QueueRecord::Completion::cancel: return " (cancelled)";
    case QueueRecord::Completion::next_alt: return " (next alternative)";
  }
  return "";
}
}  // namespace

void NodeRuntime::initiate_rollback(const QueueRecord& rec,
                                    SavepointId target,
                                    QueueRecord::Completion completion) {
  // Fig. 4a / 5a: new transaction; read agent + LOG from stable storage.
  const TxId tx = txm_.begin();
  qm_.stage_remove(tx, rec.record_id);
  evict_resident(rec.agent);
  std::shared_ptr<Agent> agent = load_committed_agent(rec);
  auto& log = agent->log();

  // Trailing savepoints that are not the target are dead: they belong to
  // sub-itineraries being rolled back (this is the "tested before the
  // agent is written to stable storage" of Fig. 4b, generalized to the
  // nested case where several savepoints were established back-to-back).
  while (!log.empty() && log.back().is_savepoint() &&
         log.back().savepoint().id != target) {
    (void)log.pop();
  }

  if (log.trailing_savepoint() == target) {
    // The savepoint was set directly before the aborting step: the
    // rollback is already finished; start the next step transaction.
    trace(TraceKind::rollback_done,
          "savepoint SP_" + std::to_string(target.value()) +
              " reached immediately");
    agent->note_rollback_completed();
    if (completion == QueueRecord::Completion::skip_sub &&
        !apply_skip(*agent, target)) {
      finish_agent(tx, rec, *agent);
      return;
    }
    if (completion == QueueRecord::Completion::next_alt) {
      apply_next_alternative(*agent, target);
    }
    const StepEntry step = agent->itinerary().step_at(agent->position());
    const auto attempt = attempt_count(rec.record_id);
    const NodeId dest = step.locations[attempt % step.locations.size()];
    QueueRecord next_rec =
        make_record(*agent, RecordKind::execute, SavepointId::invalid());
    propagate_trace(rec, next_rec);
    stage_and_commit(tx, dest, std::move(next_rec),
                     [this, rec](bool committed) {
                       release_slot(rec);
                       if (committed) {
                         span_hop_end(rec);
                         attempts_.erase(rec.record_id);
                         pump();
                       } else {
                         ++attempts_[rec.record_id];
                         retry_later(rec);
                       }
                     });
    return;
  }

  // Send the agent (or just the record, when it can stay) towards the
  // first compensation transaction.
  const auto dests =
      next_compensation_nodes(log, *agent, committed_agent_bytes(rec));
  if (dests.empty()) {
    fail_agent(tx, rec, Status(Errc::protocol_error,
                               "rollback log has no end-of-step entry"));
    return;
  }
  const auto attempt = attempt_count(rec.record_id);
  const NodeId dest = dests[attempt % dests.size()];
  QueueRecord comp_rec = make_record(*agent, RecordKind::compensate, target);
  comp_rec.completion = completion;
  propagate_trace(rec, comp_rec);
  if (dest != id_) {
    ++p_.rollback_transfers();
    trace(TraceKind::migrate,
          "agent " + std::to_string(rec.agent.value()) + " -> N" +
              std::to_string(dest.value()) + " (rollback, " +
              std::to_string(comp_rec.payload.size()) + " bytes)");
  }
  stage_and_commit(tx, dest, std::move(comp_rec),
                   [this, rec](bool committed) {
                     release_slot(rec);
                     if (committed) {
                       span_hop_end(rec);
                       attempts_.erase(rec.record_id);
                       pump();
                     } else {
                       ++attempts_[rec.record_id];
                       retry_later(rec);
                     }
                   });
}

std::vector<NodeId> NodeRuntime::next_compensation_nodes(
    const rollback::RollbackLog& log, const Agent& agent,
    std::size_t agent_bytes) const {
  const auto* eos = log.last_end_of_step();
  if (eos == nullptr) return {};
  const auto strategy = p_.config().strategy;
  std::vector<NodeId> dests;
  if (strategy != RollbackStrategy::basic && !eos->has_mixed) {
    // Fig. 5a/5b: without a mixed compensation entry the agent stays where
    // it is; resource compensation entries are shipped instead.
    dests.push_back(id_);
    return dests;
  }
  if (strategy == RollbackStrategy::adaptive && eos->node != id_ &&
      ship_mixed_is_cheaper(log, agent, eos->node, agent_bytes)) {
    // Sec. 4.4.1 "further optimizations": the performance model says
    // shipping the compensation objects beats transferring the agent.
    dests.push_back(id_);
    return dests;
  }
  dests.push_back(eos->node);
  for (const auto n : eos->alternatives) dests.push_back(n);
  return dests;
}

bool NodeRuntime::ship_mixed_is_cheaper(const rollback::RollbackLog& log,
                                        const Agent& agent, NodeId dest,
                                        std::size_t agent_bytes) const {
  // Price the two options with the ref [16] cost structure (latency +
  // size/bandwidth), evaluated on the actual link parameters:
  //   ship:    request (operation entries + weak-state snapshot) there,
  //            reply (updated weak state) back;
  //   migrate: the whole agent — state, itinerary and attached rollback
  //            log — travels there (and would later have to travel on).
  std::size_t ops_bytes = 0;
  for (const auto* op : log.last_step_ops()) ops_bytes += op->byte_size();
  const auto weak_bytes = agent.data().weak_image().encoded_size();
  const auto request = ops_bytes + weak_bytes + 16;
  const auto reply = weak_bytes + 16;
  const auto ship_time = p_.net().transfer_time(id_, dest, request) +
                         p_.net().transfer_time(dest, id_, reply);
  const auto migrate_time = p_.net().transfer_time(id_, dest, agent_bytes);
  return ship_time <= migrate_time;
}

Status NodeRuntime::run_comp_op(TxId tx, const OperationEntry& op,
                                serial::Value* weak) {
  rollback::CompensationContext ctx(op.kind, op.params, p_.sim().now(), &rm_,
                                    tx, weak);
  Status st = p_.compensations().run(op.comp_op, ctx);
  trace(TraceKind::comp_op,
        std::string(rollback::to_string(op.kind)) + " " + op.comp_op +
            (st.is_ok() ? "" : " FAILED: " + st.to_string()));
  return st;
}

void NodeRuntime::execute_compensation(const QueueRecord& rec) {
  const TxId tx = txm_.begin();
  qm_.stage_remove(tx, rec.record_id);
  std::shared_ptr<Agent> agent = decode(rec.payload);
  const SavepointId target = rec.rollback_target;
  trace(TraceKind::comp_begin,
        "CT for agent " + std::to_string(rec.agent.value()) + " (target SP_" +
            std::to_string(target.value()) + ")");
  // Sec. 4.3: strongly reversible objects must not be accessed until the
  // savepoint is reached.
  agent->data().set_mode(DataSpace::Mode::compensating);
  auto& log = agent->log();

  // Fig. 4b/5b: drop trailing savepoint entries (they cannot be the target
  // — that was checked before the agent was written to stable storage).
  while (!log.empty() && log.back().is_savepoint()) {
    MAR_CHECK_MSG(log.back().savepoint().id != target,
                  "target savepoint would be deleted");
    (void)log.pop();
  }
  if (log.empty() || log.back().kind() != EntryKind::end_of_step) {
    fail_agent(tx, rec, Status(Errc::protocol_error,
                               "malformed rollback log (no EOS)"));
    return;
  }
  const rollback::EndOfStepEntry eos = log.pop().end_of_step();
  // Collect this step's operation entries; popping yields them in reverse
  // logging order, which is exactly the compensation execution order.
  std::vector<OperationEntry> ops;
  for (;;) {
    MAR_CHECK_MSG(!log.empty(), "rollback log has no begin-of-step entry");
    auto entry = log.pop();
    if (entry.kind() == EntryKind::begin_of_step) break;
    MAR_CHECK(entry.kind() == EntryKind::operation);
    ops.push_back(entry.operation());
  }

  const auto& cfg = p_.config();
  const bool ship_rces = cfg.strategy != RollbackStrategy::basic &&
                         !eos.has_mixed && eos.node != id_;
  // Adaptive strategy (Sec. 4.4.1 "further optimizations"): the routing
  // decision already kept the agent here because shipping the step's
  // operation entries + weak-state snapshot is cheaper than transferring
  // the agent to the resource node.
  const bool ship_mixed = cfg.strategy == RollbackStrategy::adaptive &&
                          eos.has_mixed && eos.node != id_;

  auto comp_failed = [this, tx, rec](Status st) {
    trace(TraceKind::comp_abort, st.to_string());
    const auto attempts = ++attempts_[rec.record_id];
    const auto max = p_.config().max_compensation_attempts;
    if (max > 0 && attempts >= max) {
      // Sec. 3.2: some compensations cannot succeed (e.g. the withdrawn
      // deposit); surface the permanently failed rollback to the owner.
      fail_agent(tx, rec,
                 Status(Errc::compensation_failed,
                        "compensation permanently failed: " + st.to_string()));
      return;
    }
    txm_.abort_tx(tx);
    release_slot(rec);
    retry_later(rec);
  };

  if (ship_mixed) {
    // Ship the complete operation-entry list (mixed entries need both the
    // resource and the weak agent state, so everything must execute in
    // log order at one place — the resource node) together with a weak
    // snapshot; merge the updated weak state back on acknowledgement.
    ++p_.mixed_ships();
    txm_.enlist_remote(tx, eos.node);
    std::size_t frame = 8 + serial::varint_size(ops.size()) +
                        agent->data().weak_image().encoded_size();
    for (const auto& op : ops) frame += op.byte_size();
    serial::Encoder enc(frame);
    enc.write_u64(tx.value());
    enc.write_varint(ops.size());
    for (const auto& op : ops) op.serialize(enc);
    agent->data().weak_image().serialize(enc);
    const auto wire_bytes = enc.size();
    trace(TraceKind::mce_shipped,
          std::to_string(ops.size()) + " OEs + weak state -> N" +
              std::to_string(eos.node.value()) + " (" +
              std::to_string(wire_bytes) + " bytes)");
    p_.net().send(
        net::Message{id_, eos.node, msg::mce_exec, std::move(enc).take()});
    mce_waiters_[tx] = [this, tx, rec, agent,
                        comp_failed](bool ok, serial::Value weak) {
      if (!ok) {
        comp_failed(Status(Errc::compensation_failed,
                           "shipped mixed compensation failed"));
        return;
      }
      *agent->data().weak_slots() = std::move(weak);
      finish_compensation(tx, rec, agent);
    };
    if (cfg.stage_timeout_us > 0) {
      const auto timeout =
          cfg.stage_timeout_us +
          4 * p_.net().transfer_time(id_, eos.node, wire_bytes);
      after(timeout, [this, tx, comp_failed] {
        auto it = mce_waiters_.find(tx);
        if (it == mce_waiters_.end()) return;
        mce_waiters_.erase(it);
        comp_failed(Status(Errc::unreachable, "mce shipment unacknowledged"));
      });
    }
    return;
  }

  if (!ship_rces) {
    // Basic algorithm (Fig. 4b), or a mixed/step-local compensation in the
    // optimized algorithm: everything runs here, sequentially. Sec. 4.3's
    // fault-tolerant extension allows the EOS entry's alternative nodes.
    if (cfg.strategy == RollbackStrategy::basic || eos.has_mixed) {
      const bool allowed =
          eos.node == id_ ||
          cfg.strategy == RollbackStrategy::adaptive ||
          std::find(eos.alternatives.begin(), eos.alternatives.end(), id_) !=
              eos.alternatives.end();
      MAR_CHECK_MSG(allowed,
                    "compensation transaction routed to the wrong node");
    }
    Status st = Status::ok();
    for (const auto& op : ops) {
      st = run_comp_op(tx, op, agent->data().weak_slots());
      if (!st.is_ok()) break;
    }
    const auto service =
        static_cast<sim::TimeUs>(ops.size()) * cfg.comp_op_service_us;
    after(service, [this, tx, rec, agent = std::move(agent), st,
                    comp_failed] {
      if (!st.is_ok()) {
        comp_failed(st);
        return;
      }
      finish_compensation(tx, rec, agent);
    });
    return;
  }

  // Optimized algorithm, no mixed entries (Fig. 5b): group the operation
  // entries; ship the RCE list to the resource node; run the ACE list
  // locally, concurrently with the shipped list.
  std::vector<OperationEntry> aces;
  std::vector<OperationEntry> rces;
  for (auto& op : ops) {
    MAR_CHECK_MSG(op.kind != OpEntryKind::mixed,
                  "mixed entry in a step whose EOS mixed-flag is false");
    (op.kind == OpEntryKind::agent ? aces : rces).push_back(std::move(op));
  }

  struct Join {
    int pending = 0;
    Status status;
  };
  auto join = std::make_shared<Join>();
  auto arrived = [this, tx, rec, agent, join, comp_failed](Status st) {
    if (!st.is_ok() && join->status.is_ok()) join->status = st;
    if (--join->pending > 0) return;
    if (!join->status.is_ok()) {
      comp_failed(join->status);
      return;
    }
    finish_compensation(tx, rec, agent);
  };

  if (!rces.empty()) {
    ++join->pending;
    txm_.enlist_remote(tx, eos.node);
    std::size_t frame = 8 + serial::varint_size(rces.size());
    for (const auto& op : rces) frame += op.byte_size();
    serial::Encoder enc(frame);
    enc.write_u64(tx.value());
    enc.write_varint(rces.size());
    for (const auto& op : rces) op.serialize(enc);
    const auto wire_bytes = enc.size();
    trace(TraceKind::rce_shipped,
          std::to_string(rces.size()) + " RCEs -> N" +
              std::to_string(eos.node.value()) + " (" +
              std::to_string(wire_bytes) + " bytes)");
    p_.net().send(
        net::Message{id_, eos.node, msg::rce_exec, std::move(enc).take()});
    rce_waiters_[tx] = [arrived](bool ok) {
      arrived(ok ? Status::ok()
                 : Status(Errc::compensation_failed,
                          "shipped resource compensation failed"));
    };
    if (cfg.stage_timeout_us > 0) {
      const auto timeout =
          cfg.stage_timeout_us +
          4 * p_.net().transfer_time(id_, eos.node, wire_bytes);
      after(timeout, [this, tx] {
        auto it = rce_waiters_.find(tx);
        if (it == rce_waiters_.end()) return;
        auto cb = std::move(it->second);
        rce_waiters_.erase(it);
        cb(false);
      });
    }
  }

  // Agent compensation entries run locally, overlapping the shipped RCEs.
  ++join->pending;
  Status ace_status = Status::ok();
  for (const auto& op : aces) {
    ace_status = run_comp_op(tx, op, agent->data().weak_slots());
    if (!ace_status.is_ok()) break;
  }
  const auto ace_service =
      static_cast<sim::TimeUs>(aces.size()) * cfg.comp_op_service_us;
  after(ace_service, [arrived, ace_status] { arrived(ace_status); });
}

void NodeRuntime::finish_compensation(TxId tx, const QueueRecord& rec,
                                      std::shared_ptr<Agent> agent) {
  const SavepointId target = rec.rollback_target;
  auto& log = agent->log();

  // Dead trailing savepoints (inner sub-itineraries being rolled across)
  // are dropped before the target check — see initiate_rollback.
  while (!log.empty() && log.back().is_savepoint() &&
         log.back().savepoint().id != target) {
    (void)log.pop();
  }

  if (log.trailing_savepoint() == target) {
    // Target reached: restore the strongly reversible objects from the
    // savepoint entry (without deleting it) and start the next step.
    restore_at_savepoint(*agent, target);
    trace(TraceKind::rollback_done,
          "agent " + std::to_string(rec.agent.value()) + " rolled back to SP_" +
              std::to_string(target.value()) +
              completion_suffix(rec.completion));
    if (rec.completion == QueueRecord::Completion::cancel) {
      // Multi-agent executions: a complete rollback that terminates the
      // agent instead of resuming it.
      finish_cancelled(tx, rec, *agent);
      return;
    }
    if (rec.completion == QueueRecord::Completion::skip_sub &&
        !apply_skip(*agent, target)) {
      finish_agent(tx, rec, *agent);
      return;
    }
    if (rec.completion == QueueRecord::Completion::next_alt) {
      apply_next_alternative(*agent, target);
    }
    const StepEntry step = agent->itinerary().step_at(agent->position());
    const auto attempt = attempt_count(rec.record_id);
    const NodeId dest = step.locations[attempt % step.locations.size()];
    QueueRecord next_rec =
        make_record(*agent, RecordKind::execute, SavepointId::invalid());
    propagate_trace(rec, next_rec);
    if (dest != id_) {
      trace(TraceKind::migrate,
            "agent " + std::to_string(rec.agent.value()) + " -> N" +
                std::to_string(dest.value()) + " (resume)");
    }
    stage_and_commit(tx, dest, std::move(next_rec),
                     [this, rec](bool committed) {
                       release_slot(rec);
                       if (committed) {
                         trace(TraceKind::comp_commit, "CT committed");
                         span_hop_end(rec);
                         attempts_.erase(rec.record_id);
                         pump();
                       } else {
                         trace(TraceKind::comp_abort,
                               "commit failed (will retry)");
                         ++attempts_[rec.record_id];
                         retry_later(rec);
                       }
                     });
    return;
  }

  // Not there yet: write the agent (and log) towards the next compensation
  // transaction (Fig. 4b), or keep it local when the optimized algorithm
  // can ship the next step's RCEs (Fig. 5b).
  const auto dests = next_compensation_nodes(log, *agent, rec.payload.size());
  if (dests.empty()) {
    fail_agent(tx, rec,
               Status(Errc::protocol_error,
                      "target savepoint not reached but log is exhausted"));
    return;
  }
  const auto attempt = attempt_count(rec.record_id);
  const NodeId dest = dests[attempt % dests.size()];
  QueueRecord comp_rec = make_record(*agent, RecordKind::compensate, target);
  comp_rec.completion = rec.completion;
  propagate_trace(rec, comp_rec);
  if (dest != id_) {
    ++p_.rollback_transfers();
    trace(TraceKind::migrate,
          "agent " + std::to_string(rec.agent.value()) + " -> N" +
              std::to_string(dest.value()) + " (rollback, " +
              std::to_string(comp_rec.payload.size()) + " bytes)");
  }
  stage_and_commit(tx, dest, std::move(comp_rec),
                   [this, rec](bool committed) {
                     release_slot(rec);
                     if (committed) {
                       trace(TraceKind::comp_commit, "CT committed");
                       span_hop_end(rec);
                       attempts_.erase(rec.record_id);
                       pump();
                     } else {
                       trace(TraceKind::comp_abort,
                             "commit failed (will retry)");
                       ++attempts_[rec.record_id];
                       retry_later(rec);
                     }
                   });
}

bool NodeRuntime::apply_skip(Agent& agent, SavepointId target) {
  const auto* sp = agent.log().find_savepoint(target);
  MAR_CHECK(sp != nullptr);
  MAR_CHECK_MSG(sp->origin == rollback::SavepointOrigin::sub_itinerary,
                "abandon targets must be sub-itinerary savepoints");
  // The abandoned sub-itinerary is the depth-long prefix of the position
  // the savepoint would normally resume at.
  MAR_CHECK(sp->depth > 0 && sp->depth < sp->resume_position.size());
  const Position from = sp->resume_position;
  const Position prefix(from.begin(),
                        from.begin() + static_cast<long>(sp->depth));
  const auto next = agent.itinerary().next_step(prefix);
  trace(TraceKind::msg,
        "abandoning sub-itinerary at depth " + std::to_string(sp->depth));
  // Treat the abandoned sub-itinerary as exited: its savepoint entry is
  // garbage-collected (or the whole log discarded for a top-level sub),
  // and savepoints for newly entered sub-itineraries are established —
  // the same bookkeeping as a normal step boundary (Sec. 4.4.2).
  p_.advance_itinerary(id_, agent, from, next, {});
  if (!next.has_value()) {
    agent.set_run_state(Agent::RunState::done);
    return false;
  }
  agent.set_position(*next);
  return true;
}

void NodeRuntime::apply_next_alternative(Agent& agent, SavepointId target) {
  const auto* sp = agent.log().find_savepoint(target);
  MAR_CHECK(sp != nullptr);
  MAR_CHECK_MSG(sp->depth >= 2, "alternative option savepoints sit at least "
                                "two levels deep");
  const Position from = sp->resume_position;
  Position option(from.begin(), from.begin() + static_cast<long>(sp->depth));
  MAR_CHECK(agent.itinerary().prefix_kind(option) ==
            Itinerary::PrefixKind::alt_option);
  Position next_option = option;
  ++next_option.back();
  MAR_CHECK_MSG(next_option.back() <
                    agent.itinerary().alt_option_count(option),
                "no alternative option left to enter");
  const auto next = agent.itinerary().first_step_under(next_option);
  MAR_CHECK_MSG(next.has_value(), "alternative option contains no steps");
  trace(TraceKind::msg,
        "entering alternative option " + std::to_string(next_option.back()));
  // Exits the failed option (GC its savepoint) and enters the next one
  // (fresh savepoint) — the alternatives entry itself stays active.
  p_.advance_itinerary(id_, agent, from, next, {});
  agent.set_position(*next);
}

void NodeRuntime::restore_at_savepoint(Agent& agent, SavepointId target) {
  auto strong = agent.log().strong_state_at(target);
  MAR_CHECK_MSG(strong.is_ok(), "cannot reconstruct strong state: "
                                    << strong.status());
  const auto* sp = agent.log().find_savepoint(target);
  MAR_CHECK(sp != nullptr);
  agent.data().restore_strong(strong.value());
  agent.data().set_mode(DataSpace::Mode::normal);
  agent.set_position(sp->resume_position);
  agent.set_run_state(Agent::RunState::running);
  // Savepoints established after the target died with the rollback.
  auto& stack = agent.savepoint_stack();
  std::erase_if(stack, [target](const SavepointStackEntry& e) {
    return e.id.value() > target.value();
  });
  agent.set_last_savepoint_strong(strong.value());
  agent.set_force_full_savepoint(false);
  agent.note_rollback_completed();
  trace(TraceKind::restore,
        "strongly reversible objects restored from SP_" +
            std::to_string(target.value()));
}

}  // namespace mar::agent
