// Hierarchical, flexible itineraries (paper Sec. 4.4.2, Fig. 6; ref [14]).
//
// An itinerary is a sequence of entries; an entry is a *step entry*
// (method to execute / node to execute it on, plus alternative nodes for
// the fault-tolerant execution of ref [11]), a nested *sub-itinerary*, or
// an *alternatives entry* — a list of option sub-itineraries of which
// exactly one is executed ("entries which have to be executed
// alternatively", Sec. 4.4.2 / ref [14]). Step entries may carry a
// *precondition* over the agent's weakly reversible data ("complex rules
// which specify under which conditions an entry has to be executed");
// unsatisfied steps are skipped.
//
// The paper's integration rules implemented by the platform on top of
// this structure:
//
//   * the main itinerary may contain only sub-itineraries — completing a
//     top-level sub-itinerary discards the whole rollback log;
//   * entering a sub-itinerary (or an alternatives option) automatically
//     establishes a savepoint; completing it garbage-collects that
//     savepoint entry;
//   * a rollback can target the savepoint of any *currently executing*
//     (enclosing) sub-itinerary;
//   * when a step fails permanently inside an alternatives option, the
//     platform rolls the option back to its entry savepoint and enters
//     the next option; with the options exhausted the failure propagates
//     outward (innermost non-vital sub, else agent failure).
//
// Positions into the hierarchy are paths of indices (rollback::Position);
// an alternatives entry consumes TWO indices: the entry's index, then the
// chosen option's. This header provides the DFS navigation and the
// entered/exited sub-itinerary computations the platform needs.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rollback/log.h"
#include "serial/serializable.h"
#include "util/ids.h"
#include "util/result.h"

namespace mar::agent {

using rollback::Position;

/// A precondition over the agent's weakly reversible data (ref [14]'s
/// per-entry conditions): compare the weak slot `slot` with `literal`.
struct Condition {
  enum class Op : std::uint8_t {
    exists = 0,      ///< slot is present and non-null
    not_exists = 1,  ///< slot is absent or null
    eq = 2,
    ne = 3,
    lt = 4,  ///< integer comparison
    le = 5,
    gt = 6,
    ge = 7,
  };
  std::string slot;
  Op op = Op::exists;
  serial::Value literal;

  /// Evaluate against the agent's weak-slot map.
  [[nodiscard]] bool eval(const serial::Value& weak) const;

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t encoded_size() const;
  [[nodiscard]] std::string to_string() const;
};

/// A step entry: which method to run, and where. `locations.front()` is
/// the primary node; the rest are alternatives tried in turn when the
/// primary is unreachable (fault-tolerant step execution, ref [11]).
struct StepEntry {
  std::string method;
  std::vector<NodeId> locations;
  /// Executed only when satisfied (skipped otherwise); no condition =
  /// always executed.
  std::optional<Condition> when;

  [[nodiscard]] NodeId primary() const { return locations.front(); }

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t encoded_size() const;
};

class Itinerary {
 public:
  class Entry;
  /// The alternatives entry: options tried in order; exactly one runs.
  struct AltEntry {
    std::vector<Itinerary> options;
  };

  Itinerary() = default;

  // --- builder -------------------------------------------------------------
  Itinerary& step(std::string method, NodeId node);
  Itinerary& step(std::string method, std::vector<NodeId> locations);
  /// A conditional step (ref [14] preconditions).
  Itinerary& step_if(std::string method, NodeId node, Condition when);
  /// Append a nested sub-itinerary. `vital` follows the nested-saga
  /// terminology the paper adopts in Sec. 5: when a *non-vital* sub fails
  /// permanently, the platform abandons it (rolls it back to its entry
  /// savepoint and skips past it) instead of failing the whole agent.
  Itinerary& sub(Itinerary nested, bool vital = true);
  /// Append an alternatives entry (ref [14]): `options` are tried in
  /// order; a permanent failure inside one rolls it back and enters the
  /// next.
  Itinerary& alt(std::vector<Itinerary> options);

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Validate the Sec. 4.4.2 structural rule for a *main* itinerary: only
  /// sub-itinerary entries at the top level, and at least one of them, and
  /// no empty sub-itineraries or empty alternatives anywhere.
  [[nodiscard]] Status validate_main() const;

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  /// Exact wire size of serialize() (pre-sizing full agent images).
  [[nodiscard]] std::size_t encoded_size() const;

  // --- navigation ------------------------------------------------------------
  /// Position of the first step in DFS order, if any. Alternatives open
  /// with their first option.
  [[nodiscard]] std::optional<Position> first_step() const;
  /// Position of the step following `pos` in DFS order, if any. Leaving
  /// an alternatives option skips the remaining options (they are
  /// alternatives, not a sequence).
  [[nodiscard]] std::optional<Position> next_step(const Position& pos) const;
  /// First step under the container addressed by `prefix` (a
  /// sub-itinerary or an alternatives option), if any.
  [[nodiscard]] std::optional<Position> first_step_under(
      const Position& prefix) const;
  /// The step entry at `pos` (checked).
  [[nodiscard]] const StepEntry& step_at(const Position& pos) const;
  /// Whether `pos` addresses a step entry.
  [[nodiscard]] bool valid_step(const Position& pos) const;

  /// What a (proper, non-empty) position prefix addresses.
  enum class PrefixKind {
    sub,         ///< a sub-itinerary entry
    alt,         ///< an alternatives entry (the entry index itself)
    alt_option,  ///< one option inside an alternatives entry
    step,        ///< a step entry (only for full step positions)
    invalid,
  };
  [[nodiscard]] PrefixKind prefix_kind(const Position& prefix) const;
  /// The entry addressed by a non-empty position ending at an entry index
  /// (kinds sub / alt / step — NOT alt_option).
  [[nodiscard]] const Entry& entry_at(const Position& pos) const;
  /// For an `alt_option` prefix: how many options its alternatives entry
  /// has (the option index is prefix.back()).
  [[nodiscard]] std::size_t alt_option_count(const Position& prefix) const;

  /// The nesting-level prefixes active at `pos`: every proper prefix of
  /// `pos` except the whole position (which addresses the step itself).
  /// A prefix of length d identifies a nesting level at depth d
  /// (sub-itineraries, alternatives entries and their options all count).
  [[nodiscard]] static std::vector<Position> active_subs(const Position& pos);

  /// Nesting levels exited when moving from `from` to `to` (innermost
  /// first). Pass an empty `to` for "execution finished".
  [[nodiscard]] static std::vector<Position> exited_subs(const Position& from,
                                                        const Position& to);
  /// Nesting levels entered when moving from `from` to `to` (outermost
  /// first). Pass an empty `from` for "execution starts".
  [[nodiscard]] static std::vector<Position> entered_subs(const Position& from,
                                                          const Position& to);

  [[nodiscard]] std::string to_string() const;

 private:
  /// Walk `pos[0..len)` down the hierarchy; the returned container is the
  /// itinerary the next index would address. Alternatives consume two
  /// indices (entry, option); `len` must not stop between them.
  [[nodiscard]] const Itinerary* itinerary_at_prefix(const Position& pos,
                                                     std::size_t len) const;
  [[nodiscard]] std::optional<Position> first_step_from(Position base,
                                                        std::size_t index)
      const;

  std::vector<Entry> entries_;
};

/// One itinerary entry: a step, a nested sub-itinerary, or alternatives.
class Itinerary::Entry {
 public:
  Entry() : body_(StepEntry{}) {}
  explicit Entry(StepEntry s) : body_(std::move(s)) {}
  explicit Entry(Itinerary i) : body_(std::move(i)) {}
  explicit Entry(AltEntry a) : body_(std::move(a)) {}

  [[nodiscard]] bool is_step() const {
    return std::holds_alternative<StepEntry>(body_);
  }
  [[nodiscard]] bool is_sub() const {
    return std::holds_alternative<Itinerary>(body_);
  }
  [[nodiscard]] bool is_alt() const {
    return std::holds_alternative<AltEntry>(body_);
  }
  [[nodiscard]] const StepEntry& step() const {
    return std::get<StepEntry>(body_);
  }
  [[nodiscard]] const Itinerary& sub() const {
    return std::get<Itinerary>(body_);
  }
  [[nodiscard]] const AltEntry& alt() const {
    return std::get<AltEntry>(body_);
  }
  /// Non-vital sub-itineraries may be abandoned on permanent failure
  /// (Sec. 5: "non vital sub-sagas can be realized in our model").
  [[nodiscard]] bool vital() const { return vital_; }
  void set_vital(bool vital) { vital_ = vital; }

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] std::size_t encoded_size() const;

 private:
  std::variant<StepEntry, Itinerary, AltEntry> body_;
  bool vital_ = true;
};

}  // namespace mar::agent
