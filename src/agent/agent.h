// The mobile agent base class.
//
// Agents are autonomous objects whose execution proceeds in *steps*, one
// per visited node, dispatched by name through run_step() (the paper's
// "single method of the agent object" per step). ALL application state
// must live in the DataSpace — the platform captures an agent for
// migration by serializing exactly: identity, data space, itinerary,
// position, savepoint bookkeeping and the attached rollback log (Sec. 4.2:
// "the log is attached to the agent and hence migrates with the agent").
//
// Subclasses therefore keep no mutable C++ members of their own; they
// declare strong/weak slots in their constructor and register their
// compensating operations in a CompensationRegistry at world setup.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "agent/data_space.h"
#include "agent/itinerary.h"
#include "rollback/log.h"
#include "serial/serializable.h"
#include "util/ids.h"

namespace mar::agent {

class StepContext;

/// Entry of the agent's savepoint stack: the savepoints that can currently
/// be targeted by a rollback, innermost last.
struct SavepointStackEntry {
  SavepointId id;
  rollback::SavepointOrigin origin = rollback::SavepointOrigin::adhoc;
  /// Nesting depth of the owning sub-itinerary (sub_itinerary origin).
  std::uint32_t depth = 0;

  void serialize(serial::Encoder& enc) const;
  void deserialize(serial::Decoder& dec);
  [[nodiscard]] static constexpr std::size_t byte_size() { return 4 + 1 + 4; }
};

class Agent : public serial::Serializable {
 public:
  enum class RunState : std::uint8_t { fresh = 0, running = 1, done = 2 };

  ~Agent() override = default;

  /// Registered type name used to re-instantiate the agent after transfer.
  [[nodiscard]] virtual std::string type_name() const = 0;

  /// Execute the step named `step` (from the itinerary's step entry).
  virtual void run_step(const std::string& step, StepContext& ctx) = 0;

  // --- application-visible state -------------------------------------------
  [[nodiscard]] DataSpace& data() { return data_; }
  [[nodiscard]] const DataSpace& data() const { return data_; }
  [[nodiscard]] Itinerary& itinerary() { return itinerary_; }
  [[nodiscard]] const Itinerary& itinerary() const { return itinerary_; }

  // --- platform state --------------------------------------------------------
  [[nodiscard]] AgentId id() const { return id_; }
  void set_id(AgentId id) { id_ = id; }
  [[nodiscard]] RunState run_state() const { return run_state_; }
  void set_run_state(RunState s) { run_state_ = s; }
  [[nodiscard]] const Position& position() const { return position_; }
  void set_position(Position p) { position_ = std::move(p); }

  [[nodiscard]] rollback::RollbackLog& log() { return log_; }
  [[nodiscard]] const rollback::RollbackLog& log() const { return log_; }

  [[nodiscard]] std::vector<SavepointStackEntry>& savepoint_stack() {
    return sp_stack_;
  }
  [[nodiscard]] const std::vector<SavepointStackEntry>& savepoint_stack()
      const {
    return sp_stack_;
  }

  /// Allocate the next savepoint id (monotone within the agent).
  [[nodiscard]] SavepointId allocate_savepoint_id() {
    return SavepointId(next_sp_++);
  }

  /// Number of partial rollbacks this agent has completed. Maintained by
  /// the platform inside the transaction that finishes a rollback, so it
  /// is durable — and it is deliberately NOT rolled back itself: Sec. 3.2
  /// requires the application to "deal with the changed situation" after
  /// compensation, which it can only do if it can observe that a rollback
  /// happened. Without this signal an agent whose step logic
  /// deterministically re-requests the same rollback would livelock.
  [[nodiscard]] std::uint32_t rollbacks_completed() const {
    return rollbacks_completed_;
  }
  void note_rollback_completed() { ++rollbacks_completed_; }

  // --- multi-agent executions (the paper's Sec. 6 future work) -------------
  /// Spawning agent's id; invalid for top-level agents.
  [[nodiscard]] AgentId parent() const { return parent_; }
  void set_parent(AgentId parent) { parent_ = parent; }
  /// Where (node / mailbox key) the platform delivers this agent's result
  /// when it terminates. Empty key = no delivery.
  [[nodiscard]] NodeId result_node() const { return result_node_; }
  [[nodiscard]] const std::string& result_key() const { return result_key_; }
  void set_result_target(NodeId node, std::string key) {
    result_node_ = node;
    result_key_ = std::move(key);
  }
  /// Retain the complete rollback log: suppress the Sec. 4.4.2 top-level
  /// discard and keep the launch savepoint, so a COMPLETE rollback stays
  /// possible for the agent's whole life. Set automatically for spawned
  /// children — the compensating operation of their spawn must be able to
  /// roll them back even after they finish.
  [[nodiscard]] bool retain_full_log() const { return retain_full_log_; }
  void set_retain_full_log(bool retain) { retain_full_log_ = retain; }

  /// Innermost active sub-itinerary savepoint, `levels_up` levels out
  /// (0 = current sub-itinerary). Invalid id if there is no such level.
  [[nodiscard]] SavepointId sub_savepoint(std::uint32_t levels_up = 0) const;

  /// Transition-logging bookkeeping: strong-object state at the last
  /// data-carrying savepoint, and whether the next savepoint must be a
  /// full image (after log discard or chain-breaking GC).
  [[nodiscard]] const Value& last_savepoint_strong() const {
    return last_sp_strong_;
  }
  void set_last_savepoint_strong(Value v) {
    last_sp_strong_ = std::move(v);
    last_sp_dirty_ = true;
  }
  [[nodiscard]] bool force_full_savepoint() const { return force_full_sp_; }
  void set_force_full_savepoint(bool f) { force_full_sp_ = f; }

  // --- incremental commit (delta savepoints) ---------------------------------
  /// Whether the changes since the last baseline are expressible as an
  /// append-only delta: the rollback log saw only pushes. (Dirty data
  /// slots degrade the delta's data section to a full map, never the
  /// delta itself.)
  [[nodiscard]] bool delta_ready() const { return log_.append_clean(); }
  /// Start a fresh change-tracking window. Called after decode and after
  /// every durable commit of this in-memory instance, so deltas always
  /// describe "changes since the durable image".
  void mark_commit_baseline() {
    data_.clear_dirty();
    log_.mark_baseline();
    last_sp_dirty_ = false;
  }
  [[nodiscard]] bool last_savepoint_strong_dirty() const {
    return last_sp_dirty_;
  }

  // --- capture / re-instantiation -------------------------------------------
  void serialize(serial::Encoder& enc) const final;
  void deserialize(serial::Decoder& dec) final;
  /// Exact wire size of serialize() (pre-sizing full images).
  [[nodiscard]] std::size_t serialized_size() const;

 private:
  AgentId id_;
  RunState run_state_ = RunState::fresh;
  DataSpace data_;
  Itinerary itinerary_;
  Position position_;
  std::vector<SavepointStackEntry> sp_stack_;
  std::uint32_t next_sp_ = 1;
  std::uint32_t rollbacks_completed_ = 0;
  AgentId parent_;
  NodeId result_node_;
  std::string result_key_;
  bool retain_full_log_ = false;
  bool force_full_sp_ = false;
  Value last_sp_strong_;
  rollback::RollbackLog log_;
  /// Runtime-only: last_sp_strong_ changed since the baseline.
  bool last_sp_dirty_ = false;

  friend serial::Bytes encode_agent_delta(const Agent& agent);
  friend void apply_agent_delta(Agent& agent,
                                std::span<const std::uint8_t> delta);
  friend std::optional<serial::Bytes> encode_agent_delta_between(
      const Agent& base, const Agent& cur);
};

/// Registry of agent types shared by all nodes (code availability).
using AgentTypeRegistry = serial::TypeRegistry<Agent>;

/// Capture an agent: type name + full state. Single allocation: the
/// buffer is pre-sized from the agent's exact serialized size.
[[nodiscard]] serial::Bytes encode_agent(const Agent& agent);
/// Re-instantiate an agent from captured bytes via the registry.
[[nodiscard]] std::unique_ptr<Agent> decode_agent(
    const AgentTypeRegistry& registry, std::span<const std::uint8_t> bytes);

// --- incremental capture (delta savepoint commits) -------------------------
// A long-lived agent's durable image is a BASE full image plus a chain of
// per-step DELTAS (Sec. 4.2's transition logging applied to the commit
// path itself): each delta carries the step's appended log entries, the
// dirty data-space slots and the small platform fields. Reconstructing
// base + deltas yields an agent bit-identical to a full capture.
//
// Preconditions: encode_agent_delta requires agent.delta_ready() — the
// log saw only appends since the last mark_commit_baseline(). The
// itinerary is immutable after launch and therefore lives only in the
// base image.

/// Capture the changes since the last baseline as a delta record.
[[nodiscard]] serial::Bytes encode_agent_delta(const Agent& agent);
/// Diff two captures of the SAME agent (delta-shipping migrations): a
/// delta in the apply_agent_delta format transforming `base` into `cur`,
/// or nullopt when `cur`'s rollback log does not extend `base`'s (a
/// rollback ran in between) — the caller ships a full image instead.
/// Unlike encode_agent_delta this needs no dirty tracking: the data
/// sections are diffed slot by slot against the base.
[[nodiscard]] std::optional<serial::Bytes> encode_agent_delta_between(
    const Agent& base, const Agent& cur);
/// Apply a delta produced by encode_agent_delta to the predecessor state.
void apply_agent_delta(Agent& agent, std::span<const std::uint8_t> delta);
/// Reconstruct an agent from its stable record: segments[0] is a full
/// image (encode_agent format), the rest are deltas, oldest first.
[[nodiscard]] std::unique_ptr<Agent> decode_agent_segments(
    const AgentTypeRegistry& registry,
    const std::vector<serial::Bytes>& segments);

}  // namespace mar::agent
