#include "agent/agent.h"

#include "util/check.h"

namespace mar::agent {

void SavepointStackEntry::serialize(serial::Encoder& enc) const {
  enc.write_u32(id.value());
  enc.write_u8(static_cast<std::uint8_t>(origin));
  enc.write_u32(depth);
}

void SavepointStackEntry::deserialize(serial::Decoder& dec) {
  id = SavepointId(dec.read_u32());
  origin = static_cast<rollback::SavepointOrigin>(dec.read_u8());
  depth = dec.read_u32();
}

SavepointId Agent::sub_savepoint(std::uint32_t levels_up) const {
  std::uint32_t seen = 0;
  for (auto it = sp_stack_.rbegin(); it != sp_stack_.rend(); ++it) {
    if (it->origin != rollback::SavepointOrigin::sub_itinerary) continue;
    if (seen == levels_up) return it->id;
    ++seen;
  }
  return SavepointId::invalid();
}

void Agent::serialize(serial::Encoder& enc) const {
  enc.write_u64(id_.value());
  enc.write_u8(static_cast<std::uint8_t>(run_state_));
  data_.serialize(enc);
  itinerary_.serialize(enc);
  enc.write_varint(position_.size());
  for (const auto i : position_) enc.write_u32(i);
  enc.write_varint(sp_stack_.size());
  for (const auto& e : sp_stack_) e.serialize(enc);
  enc.write_u32(next_sp_);
  enc.write_u32(rollbacks_completed_);
  enc.write_u64(parent_.value());
  enc.write_u32(result_node_.value());
  enc.write_string(result_key_);
  enc.write_bool(retain_full_log_);
  enc.write_bool(force_full_sp_);
  last_sp_strong_.serialize(enc);
  log_.serialize(enc);
}

void Agent::deserialize(serial::Decoder& dec) {
  id_ = AgentId(dec.read_u64());
  run_state_ = static_cast<RunState>(dec.read_u8());
  data_.deserialize(dec);
  itinerary_.deserialize(dec);
  position_.resize(dec.read_count());
  for (auto& i : position_) i = dec.read_u32();
  sp_stack_.resize(dec.read_count());
  for (auto& e : sp_stack_) e.deserialize(dec);
  next_sp_ = dec.read_u32();
  rollbacks_completed_ = dec.read_u32();
  parent_ = AgentId(dec.read_u64());
  result_node_ = NodeId(dec.read_u32());
  result_key_ = dec.read_string();
  retain_full_log_ = dec.read_bool();
  force_full_sp_ = dec.read_bool();
  last_sp_strong_.deserialize(dec);
  log_.deserialize(dec);
  mark_commit_baseline();  // the decoded state IS the durable state
}

std::size_t Agent::serialized_size() const {
  std::size_t n = 8 + 1;  // id, run_state
  n += data_.encoded_size();
  n += itinerary_.encoded_size();
  n += serial::varint_size(position_.size()) + 4 * position_.size();
  n += serial::varint_size(sp_stack_.size()) +
       sp_stack_.size() * SavepointStackEntry::byte_size();
  n += 4 + 4 + 8 + 4;  // next_sp, rollbacks, parent, result_node
  n += serial::blob_size(result_key_.size());
  n += 1 + 1;  // retain_full_log, force_full_sp
  n += last_sp_strong_.encoded_size();
  n += log_.byte_size();
  return n;
}

serial::Bytes encode_agent(const Agent& agent) {
  const auto type = agent.type_name();
  serial::Encoder enc(serial::blob_size(type.size()) +
                      agent.serialized_size());
  enc.write_string(type);
  agent.serialize(enc);
  return std::move(enc).take();
}

std::unique_ptr<Agent> decode_agent(const AgentTypeRegistry& registry,
                                    std::span<const std::uint8_t> bytes) {
  serial::Decoder dec(bytes);
  const auto type = dec.read_string_view();
  // Wire input is untrusted: an unknown type is a malformed buffer, not
  // a programming error.
  if (!registry.contains(type)) {
    throw serial::DecodeError("unknown agent type: " + std::string(type));
  }
  auto agent = registry.create(type);
  agent->deserialize(dec);
  dec.expect_end();
  return agent;
}

// ---------------------------------------------------------------------------
// Incremental capture
// ---------------------------------------------------------------------------
//
// Delta record wire format (version-free; a delta is only ever decoded
// against the base image it was produced from, inside one storage record):
//
//   u8      run_state
//   varint  |position| + u32 each
//   varint  |sp_stack| + entries          (small; carried whole)
//   u32     next_sp
//   u32     rollbacks_completed
//   u64     parent
//   u32     result_node
//   string  result_key
//   bool    retain_full_log
//   bool    force_full_sp
//   bool    last_sp_strong changed        [+ Value when set]
//   u8      strong section: 0 = sparse slots, 1 = full map
//           sparse: varint n + (string name, Value) each; full: Value
//   u8      weak section: same encoding
//   varint  appended log entries + LogEntry each

namespace {
constexpr std::uint8_t kSparseSlots = 0;
constexpr std::uint8_t kFullMap = 1;

void encode_data_section(serial::Encoder& enc, const serial::Value& map,
                         const std::set<std::string>& dirty, bool all_dirty) {
  if (all_dirty) {
    enc.write_u8(kFullMap);
    map.serialize(enc);
    return;
  }
  enc.write_u8(kSparseSlots);
  enc.write_varint(dirty.size());
  for (const auto& name : dirty) {
    enc.write_string(name);
    // Top-level slots are never removed outside whole-map replacement
    // (which takes the full-map branch), so every dirty name resolves.
    map.at(name).serialize(enc);
  }
}
}  // namespace

serial::Bytes encode_agent_delta(const Agent& agent) {
  MAR_CHECK_MSG(agent.delta_ready(),
                "agent changes are not append-only; a full image is due");
  serial::Encoder enc;
  enc.write_u8(static_cast<std::uint8_t>(agent.run_state_));
  enc.write_varint(agent.position_.size());
  for (const auto i : agent.position_) enc.write_u32(i);
  enc.write_varint(agent.sp_stack_.size());
  for (const auto& e : agent.sp_stack_) e.serialize(enc);
  enc.write_u32(agent.next_sp_);
  enc.write_u32(agent.rollbacks_completed_);
  enc.write_u64(agent.parent_.value());
  enc.write_u32(agent.result_node_.value());
  enc.write_string(agent.result_key_);
  enc.write_bool(agent.retain_full_log_);
  enc.write_bool(agent.force_full_sp_);
  enc.write_bool(agent.last_sp_dirty_);
  if (agent.last_sp_dirty_) agent.last_sp_strong_.serialize(enc);
  const auto& data = agent.data_;
  encode_data_section(enc, data.strong_image(), data.dirty_strong(),
                      data.strong_all_dirty());
  encode_data_section(enc, data.weak_image(), data.dirty_weak(),
                      data.weak_all_dirty());
  const auto appended = agent.log_.appended_entries();
  enc.write_varint(appended.size());
  for (const auto& e : appended) e.serialize(enc);
  return std::move(enc).take();
}

void apply_agent_delta(Agent& agent, std::span<const std::uint8_t> delta) {
  serial::Decoder dec(delta);
  agent.run_state_ = static_cast<Agent::RunState>(dec.read_u8());
  agent.position_.resize(dec.read_count());
  for (auto& i : agent.position_) i = dec.read_u32();
  agent.sp_stack_.resize(dec.read_count());
  for (auto& e : agent.sp_stack_) e.deserialize(dec);
  agent.next_sp_ = dec.read_u32();
  agent.rollbacks_completed_ = dec.read_u32();
  agent.parent_ = AgentId(dec.read_u64());
  agent.result_node_ = NodeId(dec.read_u32());
  agent.result_key_ = dec.read_string();
  agent.retain_full_log_ = dec.read_bool();
  agent.force_full_sp_ = dec.read_bool();
  if (dec.read_bool()) agent.last_sp_strong_.deserialize(dec);
  for (const bool strong : {true, false}) {
    const auto mode = dec.read_u8();
    if (mode == kFullMap) {
      Value map;
      map.deserialize(dec);
      if (strong) {
        agent.data_.restore_strong(std::move(map));
      } else {
        agent.data_.replace_weak(std::move(map));
      }
      continue;
    }
    if (mode != kSparseSlots) {
      throw serial::DecodeError("bad delta data-section mode");
    }
    const auto n = dec.read_count();
    for (std::uint64_t i = 0; i < n; ++i) {
      auto name = dec.read_string();
      Value v;
      v.deserialize(dec);
      if (strong) {
        agent.data_.set_strong_slot(name, std::move(v));
      } else {
        agent.data_.set_weak_slot(name, std::move(v));
      }
    }
  }
  const auto appended = dec.read_count();
  for (std::uint64_t i = 0; i < appended; ++i) {
    rollback::LogEntry e;
    e.deserialize(dec);
    agent.log_.push(std::move(e));
  }
  dec.expect_end();
  agent.mark_commit_baseline();  // now bit-identical to the durable state
}

std::unique_ptr<Agent> decode_agent_segments(
    const AgentTypeRegistry& registry,
    const std::vector<serial::Bytes>& segments) {
  MAR_CHECK_MSG(!segments.empty(), "agent record has no base segment");
  auto agent = decode_agent(registry, segments.front());
  for (std::size_t i = 1; i < segments.size(); ++i) {
    apply_agent_delta(*agent, segments[i]);
  }
  return agent;
}

}  // namespace mar::agent
