#include "agent/agent.h"

#include "util/check.h"

namespace mar::agent {

void SavepointStackEntry::serialize(serial::Encoder& enc) const {
  enc.write_u32(id.value());
  enc.write_u8(static_cast<std::uint8_t>(origin));
  enc.write_u32(depth);
}

void SavepointStackEntry::deserialize(serial::Decoder& dec) {
  id = SavepointId(dec.read_u32());
  origin = static_cast<rollback::SavepointOrigin>(dec.read_u8());
  depth = dec.read_u32();
}

SavepointId Agent::sub_savepoint(std::uint32_t levels_up) const {
  std::uint32_t seen = 0;
  for (auto it = sp_stack_.rbegin(); it != sp_stack_.rend(); ++it) {
    if (it->origin != rollback::SavepointOrigin::sub_itinerary) continue;
    if (seen == levels_up) return it->id;
    ++seen;
  }
  return SavepointId::invalid();
}

void Agent::serialize(serial::Encoder& enc) const {
  enc.write_u64(id_.value());
  enc.write_u8(static_cast<std::uint8_t>(run_state_));
  data_.serialize(enc);
  itinerary_.serialize(enc);
  enc.write_varint(position_.size());
  for (const auto i : position_) enc.write_u32(i);
  enc.write_varint(sp_stack_.size());
  for (const auto& e : sp_stack_) e.serialize(enc);
  enc.write_u32(next_sp_);
  enc.write_u32(rollbacks_completed_);
  enc.write_u64(parent_.value());
  enc.write_u32(result_node_.value());
  enc.write_string(result_key_);
  enc.write_bool(retain_full_log_);
  enc.write_bool(force_full_sp_);
  last_sp_strong_.serialize(enc);
  log_.serialize(enc);
}

void Agent::deserialize(serial::Decoder& dec) {
  id_ = AgentId(dec.read_u64());
  run_state_ = static_cast<RunState>(dec.read_u8());
  data_.deserialize(dec);
  itinerary_.deserialize(dec);
  position_.resize(dec.read_count());
  for (auto& i : position_) i = dec.read_u32();
  sp_stack_.resize(dec.read_count());
  for (auto& e : sp_stack_) e.deserialize(dec);
  next_sp_ = dec.read_u32();
  rollbacks_completed_ = dec.read_u32();
  parent_ = AgentId(dec.read_u64());
  result_node_ = NodeId(dec.read_u32());
  result_key_ = dec.read_string();
  retain_full_log_ = dec.read_bool();
  force_full_sp_ = dec.read_bool();
  last_sp_strong_.deserialize(dec);
  log_.deserialize(dec);
  mark_commit_baseline();  // the decoded state IS the durable state
}

std::size_t Agent::serialized_size() const {
  std::size_t n = 8 + 1;  // id, run_state
  n += data_.encoded_size();
  n += itinerary_.encoded_size();
  n += serial::varint_size(position_.size()) + 4 * position_.size();
  n += serial::varint_size(sp_stack_.size()) +
       sp_stack_.size() * SavepointStackEntry::byte_size();
  n += 4 + 4 + 8 + 4;  // next_sp, rollbacks, parent, result_node
  n += serial::blob_size(result_key_.size());
  n += 1 + 1;  // retain_full_log, force_full_sp
  n += last_sp_strong_.encoded_size();
  n += log_.byte_size();
  return n;
}

serial::Bytes encode_agent(const Agent& agent) {
  const auto type = agent.type_name();
  serial::Encoder enc(serial::blob_size(type.size()) +
                      agent.serialized_size());
  enc.write_string(type);
  agent.serialize(enc);
  return std::move(enc).take();
}

std::unique_ptr<Agent> decode_agent(const AgentTypeRegistry& registry,
                                    std::span<const std::uint8_t> bytes) {
  serial::Decoder dec(bytes);
  const auto type = dec.read_string_view();
  // Wire input is untrusted: an unknown type is a malformed buffer, not
  // a programming error.
  if (!registry.contains(type)) {
    throw serial::DecodeError("unknown agent type: " + std::string(type));
  }
  auto agent = registry.create(type);
  agent->deserialize(dec);
  dec.expect_end();
  return agent;
}

// ---------------------------------------------------------------------------
// Incremental capture
// ---------------------------------------------------------------------------
//
// Delta record wire format (version-free; a delta is only ever decoded
// against the base image it was produced from, inside one storage record):
//
//   u8      run_state
//   varint  |position| + u32 each
//   varint  |sp_stack| + entries          (small; carried whole)
//   u32     next_sp
//   u32     rollbacks_completed
//   u64     parent
//   u32     result_node
//   string  result_key
//   bool    retain_full_log
//   bool    force_full_sp
//   bool    last_sp_strong changed        [+ Value when set]
//   u8      strong section: 0 = sparse slots, 1 = full map
//           sparse: varint n + (string name, Value) each; full: Value
//   u8      weak section: same encoding
//   varint  appended log entries + LogEntry each

namespace {
constexpr std::uint8_t kSparseSlots = 0;
constexpr std::uint8_t kFullMap = 1;

/// The delta record's platform-field header (everything above the data
/// sections), shared by both delta encoders so the wire format cannot
/// drift between them; apply_agent_delta is the single decoder.
/// `next_sp` is passed in because the helper is not a friend of Agent.
void encode_delta_header(serial::Encoder& enc, const Agent& agent,
                         std::uint32_t next_sp, bool sp_changed) {
  enc.write_u8(static_cast<std::uint8_t>(agent.run_state()));
  enc.write_varint(agent.position().size());
  for (const auto i : agent.position()) enc.write_u32(i);
  enc.write_varint(agent.savepoint_stack().size());
  for (const auto& e : agent.savepoint_stack()) e.serialize(enc);
  enc.write_u32(next_sp);
  enc.write_u32(agent.rollbacks_completed());
  enc.write_u64(agent.parent().value());
  enc.write_u32(agent.result_node().value());
  enc.write_string(agent.result_key());
  enc.write_bool(agent.retain_full_log());
  enc.write_bool(agent.force_full_savepoint());
  enc.write_bool(sp_changed);
  if (sp_changed) agent.last_savepoint_strong().serialize(enc);
}

void encode_data_section(serial::Encoder& enc, const serial::Value& map,
                         const std::set<std::string>& dirty, bool all_dirty) {
  if (all_dirty) {
    enc.write_u8(kFullMap);
    map.serialize(enc);
    return;
  }
  enc.write_u8(kSparseSlots);
  enc.write_varint(dirty.size());
  for (const auto& name : dirty) {
    enc.write_string(name);
    // Top-level slots are never removed outside whole-map replacement
    // (which takes the full-map branch), so every dirty name resolves.
    map.at(name).serialize(enc);
  }
}
}  // namespace

serial::Bytes encode_agent_delta(const Agent& agent) {
  MAR_CHECK_MSG(agent.delta_ready(),
                "agent changes are not append-only; a full image is due");
  // Deltas are small by design; pre-sizing would run the dirty-slot walk
  // twice for a frame that rarely outgrows the first growth step.
  serial::Encoder enc;  // mar-lint: small-frame
  encode_delta_header(enc, agent, agent.next_sp_, agent.last_sp_dirty_);
  const auto& data = agent.data_;
  encode_data_section(enc, data.strong_image(), data.dirty_strong(),
                      data.strong_all_dirty());
  encode_data_section(enc, data.weak_image(), data.dirty_weak(),
                      data.weak_all_dirty());
  const auto appended = agent.log_.appended_entries();
  enc.write_varint(appended.size());
  for (const auto& e : appended) e.serialize(enc);
  return std::move(enc).take();
}

void apply_agent_delta(Agent& agent, std::span<const std::uint8_t> delta) {
  serial::Decoder dec(delta);
  agent.run_state_ = static_cast<Agent::RunState>(dec.read_u8());
  agent.position_.resize(dec.read_count());
  for (auto& i : agent.position_) i = dec.read_u32();
  agent.sp_stack_.resize(dec.read_count());
  for (auto& e : agent.sp_stack_) e.deserialize(dec);
  agent.next_sp_ = dec.read_u32();
  agent.rollbacks_completed_ = dec.read_u32();
  agent.parent_ = AgentId(dec.read_u64());
  agent.result_node_ = NodeId(dec.read_u32());
  agent.result_key_ = dec.read_string();
  agent.retain_full_log_ = dec.read_bool();
  agent.force_full_sp_ = dec.read_bool();
  if (dec.read_bool()) agent.last_sp_strong_.deserialize(dec);
  for (const bool strong : {true, false}) {
    const auto mode = dec.read_u8();
    if (mode == kFullMap) {
      Value map;
      map.deserialize(dec);
      if (strong) {
        agent.data_.restore_strong(std::move(map));
      } else {
        agent.data_.replace_weak(std::move(map));
      }
      continue;
    }
    if (mode != kSparseSlots) {
      throw serial::DecodeError("bad delta data-section mode");
    }
    const auto n = dec.read_count();
    for (std::uint64_t i = 0; i < n; ++i) {
      auto name = dec.read_string();
      Value v;
      v.deserialize(dec);
      if (strong) {
        agent.data_.set_strong_slot(name, std::move(v));
      } else {
        agent.data_.set_weak_slot(name, std::move(v));
      }
    }
  }
  const auto appended = dec.read_count();
  for (std::uint64_t i = 0; i < appended; ++i) {
    rollback::LogEntry e;
    e.deserialize(dec);
    agent.log_.push(std::move(e));
  }
  dec.expect_end();
  agent.mark_commit_baseline();  // now bit-identical to the durable state
}

std::optional<serial::Bytes> encode_agent_delta_between(const Agent& base,
                                                        const Agent& cur) {
  // The delta format carries appended log entries only: usable iff the
  // base's log is a strict prefix of the current log. Forward execution
  // only pushes, so this holds across any number of committed steps; a
  // rollback (pop/clear/GC) in between breaks it and forces a full image.
  const auto& base_log = base.log_.entries();
  const auto& cur_log = cur.log_.entries();
  if (cur_log.size() < base_log.size()) return std::nullopt;
  for (std::size_t i = 0; i < base_log.size(); ++i) {
    if (!(base_log[i] == cur_log[i])) return std::nullopt;
  }
  // The itinerary is immutable after launch and lives in the base image
  // only; everything else is diffed or carried whole.
  serial::Encoder enc;  // mar-lint: small-frame
  encode_delta_header(enc, cur, cur.next_sp_,
                      !(base.last_sp_strong_ == cur.last_sp_strong_));
  // Data sections: sparse slots that differ from the base; a slot removed
  // from the base degrades the section to a full map (the sparse form can
  // only add/overwrite).
  const auto encode_diff_section = [&enc](const Value& base_map,
                                          const Value& cur_map) {
    for (const auto& [name, v] : base_map.as_map()) {
      (void)v;
      if (!cur_map.has(name)) {
        enc.write_u8(kFullMap);
        cur_map.serialize(enc);
        return;
      }
    }
    std::vector<const std::string*> changed;
    for (const auto& [name, v] : cur_map.as_map()) {
      if (!base_map.has(name) || !(base_map.at(name) == v)) {
        changed.push_back(&name);
      }
    }
    enc.write_u8(kSparseSlots);
    enc.write_varint(changed.size());
    for (const auto* name : changed) {
      enc.write_string(*name);
      cur_map.at(*name).serialize(enc);
    }
  };
  encode_diff_section(base.data_.strong_image(), cur.data_.strong_image());
  encode_diff_section(base.data_.weak_image(), cur.data_.weak_image());
  enc.write_varint(cur_log.size() - base_log.size());
  for (std::size_t i = base_log.size(); i < cur_log.size(); ++i) {
    cur_log[i].serialize(enc);
  }
  return std::move(enc).take();
}

std::unique_ptr<Agent> decode_agent_segments(
    const AgentTypeRegistry& registry,
    const std::vector<serial::Bytes>& segments) {
  MAR_CHECK_MSG(!segments.empty(), "agent record has no base segment");
  auto agent = decode_agent(registry, segments.front());
  for (std::size_t i = 1; i < segments.size(); ++i) {
    apply_agent_delta(*agent, segments[i]);
  }
  return agent;
}

}  // namespace mar::agent
