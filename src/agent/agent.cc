#include "agent/agent.h"

#include "util/check.h"

namespace mar::agent {

void SavepointStackEntry::serialize(serial::Encoder& enc) const {
  enc.write_u32(id.value());
  enc.write_u8(static_cast<std::uint8_t>(origin));
  enc.write_u32(depth);
}

void SavepointStackEntry::deserialize(serial::Decoder& dec) {
  id = SavepointId(dec.read_u32());
  origin = static_cast<rollback::SavepointOrigin>(dec.read_u8());
  depth = dec.read_u32();
}

SavepointId Agent::sub_savepoint(std::uint32_t levels_up) const {
  std::uint32_t seen = 0;
  for (auto it = sp_stack_.rbegin(); it != sp_stack_.rend(); ++it) {
    if (it->origin != rollback::SavepointOrigin::sub_itinerary) continue;
    if (seen == levels_up) return it->id;
    ++seen;
  }
  return SavepointId::invalid();
}

void Agent::serialize(serial::Encoder& enc) const {
  enc.write_u64(id_.value());
  enc.write_u8(static_cast<std::uint8_t>(run_state_));
  data_.serialize(enc);
  itinerary_.serialize(enc);
  enc.write_varint(position_.size());
  for (const auto i : position_) enc.write_u32(i);
  enc.write_varint(sp_stack_.size());
  for (const auto& e : sp_stack_) e.serialize(enc);
  enc.write_u32(next_sp_);
  enc.write_u32(rollbacks_completed_);
  enc.write_u64(parent_.value());
  enc.write_u32(result_node_.value());
  enc.write_string(result_key_);
  enc.write_bool(retain_full_log_);
  enc.write_bool(force_full_sp_);
  last_sp_strong_.serialize(enc);
  log_.serialize(enc);
}

void Agent::deserialize(serial::Decoder& dec) {
  id_ = AgentId(dec.read_u64());
  run_state_ = static_cast<RunState>(dec.read_u8());
  data_.deserialize(dec);
  itinerary_.deserialize(dec);
  position_.resize(dec.read_count());
  for (auto& i : position_) i = dec.read_u32();
  sp_stack_.resize(dec.read_count());
  for (auto& e : sp_stack_) e.deserialize(dec);
  next_sp_ = dec.read_u32();
  rollbacks_completed_ = dec.read_u32();
  parent_ = AgentId(dec.read_u64());
  result_node_ = NodeId(dec.read_u32());
  result_key_ = dec.read_string();
  retain_full_log_ = dec.read_bool();
  force_full_sp_ = dec.read_bool();
  last_sp_strong_.deserialize(dec);
  log_.deserialize(dec);
}

serial::Bytes encode_agent(const Agent& agent) {
  serial::Encoder enc;
  enc.write_string(agent.type_name());
  agent.serialize(enc);
  return std::move(enc).take();
}

std::unique_ptr<Agent> decode_agent(const AgentTypeRegistry& registry,
                                    std::span<const std::uint8_t> bytes) {
  serial::Decoder dec(bytes);
  const auto type = dec.read_string();
  // Wire input is untrusted: an unknown type is a malformed buffer, not
  // a programming error.
  if (!registry.contains(type)) {
    throw serial::DecodeError("unknown agent type: " + type);
  }
  auto agent = registry.create(type);
  agent->deserialize(dec);
  dec.expect_end();
  return agent;
}

}  // namespace mar::agent
