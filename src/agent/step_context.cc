#include "agent/step_context.h"

#include "util/check.h"

namespace mar::agent {

Result<serial::Value> StepContext::invoke(const std::string& resource,
                                          std::string_view op,
                                          const serial::Value& params) {
  ++invokes_;
  auto result = rm_.invoke(tx_, resource, op, params);
  if (!result.is_ok()) {
    const auto code = result.code();
    if (code == Errc::lock_conflict || code == Errc::tx_aborted) {
      // The step transaction cannot proceed; the platform aborts and
      // restarts the step (Sec. 2).
      fatal_ = true;
      fatal_status_ = result.status();
    }
  }
  return result;
}

void StepContext::log_resource_compensation(const std::string& resource,
                                            std::string comp_op,
                                            serial::Value params) {
  ops_.push_back(rollback::OperationEntry{
      rollback::OpEntryKind::resource, std::move(comp_op), std::move(params),
      node_, resource});
}

void StepContext::log_agent_compensation(std::string comp_op,
                                         serial::Value params) {
  ops_.push_back(rollback::OperationEntry{rollback::OpEntryKind::agent,
                                          std::move(comp_op),
                                          std::move(params), NodeId::invalid(),
                                          std::string{}});
}

void StepContext::log_mixed_compensation(const std::string& resource,
                                         std::string comp_op,
                                         serial::Value params) {
  ops_.push_back(rollback::OperationEntry{
      rollback::OpEntryKind::mixed, std::move(comp_op), std::move(params),
      node_, resource});
}

SavepointId StepContext::establish_savepoint() {
  const auto id = agent_.allocate_savepoint_id();
  savepoints_.push_back(id);
  return id;
}

void StepContext::request_rollback(SavepointId target) {
  rollback_ = RollbackRequest{target};
}

void StepContext::request_rollback_sub_itinerary(std::uint32_t levels_up) {
  rollback_ = RollbackRequest{levels_up};
}

void StepContext::request_abandon_sub_itinerary(std::uint32_t levels_up) {
  rollback_ = RollbackRequest{levels_up, /*skip=*/true};
}

void StepContext::fail_step(Status status) {
  permanent_fail_ = true;
  permanent_status_ = std::move(status);
}

void StepContext::retry_step(Status reason) {
  fatal_ = true;
  fatal_status_ = std::move(reason);
}

void StepContext::spawn_child(std::unique_ptr<Agent> child,
                              NodeId result_node, std::string result_key) {
  MAR_CHECK(child != nullptr);
  spawns_.push_back(
      SpawnRequest{std::move(child), result_node, std::move(result_key)});
}

Result<serial::Value> StepContext::join_child(const std::string& key) {
  serial::Value params = serial::Value::empty_map();
  params.set("key", key);
  auto r = invoke("mailbox", "take", params);
  if (!r.is_ok() && r.code() == Errc::not_found) {
    // The child has not delivered yet: park the step and retry.
    retry_step(Status(Errc::not_found, "child result not yet delivered"));
  }
  return r;
}

}  // namespace mar::agent
