#include "net/network.h"

#include <algorithm>

#include "util/check.h"

namespace mar::net {

namespace {
std::pair<NodeId, NodeId> normalized(NodeId a, NodeId b) {
  return (a.value() <= b.value()) ? std::make_pair(a, b)
                                  : std::make_pair(b, a);
}
}  // namespace

void Network::add_node(NodeId id, Handler handler) {
  MAR_CHECK_MSG(!nodes_.contains(id), "node already registered: " << id);
  nodes_.emplace(id, NodeState{std::move(handler), /*up=*/true, {}});
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, _] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void Network::set_link(NodeId a, NodeId b, LinkParams params) {
  links_[normalized(a, b)] = params;
}

const LinkParams& Network::link_params(NodeId a, NodeId b) const {
  auto it = links_.find(normalized(a, b));
  return (it != links_.end()) ? it->second : default_link_;
}

void Network::crash_node(NodeId id) {
  auto it = nodes_.find(id);
  MAR_CHECK(it != nodes_.end());
  if (!it->second.up) return;
  it->second.up = false;
  it->second.seen.clear();  // dedup state is volatile
  // Retransmission state of the crashed sender is volatile too.
  std::erase_if(outbox_,
                [id](const auto& kv) { return kv.second.msg.from == id; });
  trace_.emit(sim_.now(), TraceKind::crash, id.value(), "node crashed");
  for (const auto& l : listeners_) l(id, false);
}

void Network::recover_node(NodeId id) {
  auto it = nodes_.find(id);
  MAR_CHECK(it != nodes_.end());
  if (it->second.up) return;
  it->second.up = true;
  trace_.emit(sim_.now(), TraceKind::recover, id.value(), "node recovered");
  for (const auto& l : listeners_) l(id, true);
}

bool Network::node_up(NodeId id) const {
  auto it = nodes_.find(id);
  MAR_CHECK(it != nodes_.end());
  return it->second.up;
}

void Network::set_link_up(NodeId a, NodeId b, bool up) {
  link_state_[normalized(a, b)] = up;
}

bool Network::link_up(NodeId a, NodeId b) const {
  auto it = link_state_.find(normalized(a, b));
  return (it == link_state_.end()) ? true : it->second;
}

void Network::subscribe_node_state(NodeStateListener listener) {
  listeners_.push_back(std::move(listener));
}

sim::TimeUs Network::transfer_time(NodeId from, NodeId to,
                                   std::size_t bytes) const {
  if (from == to) return 0;
  const auto& lp = link_params(from, to);
  return lp.latency_us +
         static_cast<sim::TimeUs>(static_cast<double>(bytes) /
                                  lp.bandwidth_bytes_per_us);
}

void Network::send(Message msg) {
  MAR_CHECK_MSG(nodes_.contains(msg.to), "unknown destination " << msg.to);
  MAR_CHECK_MSG(nodes_.contains(msg.from), "unknown source " << msg.from);
  msg.id = MsgId(next_msg_id_++);
  ++stats_.messages_sent;
  if (msg.from == msg.to) {
    // Local dispatch: no network cost, no retransmission needed, but
    // deliver asynchronously so callers never re-enter handlers.
    Message local = std::move(msg);
    sim_.schedule_after(0, [this, local = std::move(local)] {
      auto it = nodes_.find(local.to);
      if (it == nodes_.end() || !it->second.up) return;
      ++stats_.messages_delivered;
      it->second.handler(local);
    });
    return;
  }
  const MsgId id = msg.id;
  outbox_.emplace(id, Pending{std::move(msg), false});
  transmit(outbox_.at(id).msg, /*count_bytes=*/true);
  schedule_retransmit(id);
}

void Network::transmit(const Message& msg, bool count_bytes) {
  ++stats_.transmissions;
  if (count_bytes) {
    stats_.bytes_sent += msg.wire_size();
    stats_.bytes_by_type[msg.type] += msg.wire_size();
  }
  const auto delay = transfer_time(msg.from, msg.to, msg.wire_size());
  Message copy = msg;
  sim_.schedule_after(delay, [this, copy = std::move(copy)] {
    deliver(copy);
  });
}

void Network::deliver(const Message& msg) {
  // Loss conditions are evaluated at delivery time: a message in flight
  // when the destination crashes is lost.
  if (!link_up(msg.from, msg.to)) return;
  auto it = nodes_.find(msg.to);
  if (it == nodes_.end() || !it->second.up) return;

  // Acknowledge even duplicates (the original ack may have been lost).
  deliver_ack(msg.to, msg.from, msg.id);
  if (!it->second.seen.insert(msg.id).second) return;  // duplicate
  ++stats_.messages_delivered;
  it->second.handler(msg);
}

void Network::deliver_ack(NodeId receiver, NodeId sender, MsgId id) {
  // An ack is a tiny frame travelling back over the same link.
  const auto delay = transfer_time(receiver, sender, /*bytes=*/16);
  sim_.schedule_after(delay, [this, receiver, sender, id] {
    if (!link_up(receiver, sender)) return;  // lost; duplicate will re-ack
    auto nit = nodes_.find(sender);
    if (nit == nodes_.end() || !nit->second.up) return;
    outbox_.erase(id);
  });
}

void Network::schedule_retransmit(MsgId id) {
  sim_.schedule_after(retransmit_interval_, [this, id] {
    auto it = outbox_.find(id);
    if (it == outbox_.end()) return;  // acked or sender crashed
    // Retransmissions cost wire bytes too.
    transmit(it->second.msg, /*count_bytes=*/true);
    schedule_retransmit(id);
  });
}

}  // namespace mar::net
