#include "net/fault_injector.h"

namespace mar::net {

void FaultInjector::crash_at(NodeId node, sim::TimeUs at,
                             sim::TimeUs downtime) {
  sim_.schedule_at(at, [this, node] {
    ++crashes_;
    net_.crash_node(node);
  });
  sim_.schedule_at(at + downtime, [this, node] { net_.recover_node(node); });
}

void FaultInjector::link_down_at(NodeId a, NodeId b, sim::TimeUs at,
                                 sim::TimeUs duration) {
  sim_.schedule_at(at, [this, a, b] { net_.set_link_up(a, b, false); });
  sim_.schedule_at(at + duration,
                   [this, a, b] { net_.set_link_up(a, b, true); });
}

void FaultInjector::random_crashes(const std::vector<NodeId>& nodes, Rng& rng,
                                   const CrashPlan& plan) {
  for (const auto node : nodes) {
    sim::TimeUs t = 0;
    for (;;) {
      t += static_cast<sim::TimeUs>(
          rng.next_exponential(plan.mean_time_between_crashes_us));
      if (t >= plan.horizon_us) break;
      const auto down = std::max<sim::TimeUs>(
          1, static_cast<sim::TimeUs>(
                 rng.next_exponential(plan.mean_downtime_us)));
      crash_at(node, t, down);
      t += down;
    }
  }
}

}  // namespace mar::net
