// Fault injection: transient node crashes and link outages.
//
// The rollback mechanism's liveness claim (Sec. 4.3) is conditioned on
// "node crashes and network crashes are only temporary" plus reliable data
// transfer. The injector produces exactly that fault model, either from an
// explicit schedule (tests reproducing a scenario) or as a seeded Poisson
// process (experiment E6 sweeps crash rate and outage duration).
#pragma once

#include <vector>

#include "net/network.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/rng.h"

namespace mar::net {

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, Network& net) : sim_(sim), net_(net) {}

  /// Crash `node` at absolute time `at` and recover it `downtime` later.
  void crash_at(NodeId node, sim::TimeUs at, sim::TimeUs downtime);

  /// Take the (a, b) link down at `at` for `duration`.
  void link_down_at(NodeId a, NodeId b, sim::TimeUs at, sim::TimeUs duration);

  /// Parameters for a random transient-crash process.
  struct CrashPlan {
    double mean_time_between_crashes_us = 5e6;  ///< per node
    double mean_downtime_us = 200'000;
    sim::TimeUs horizon_us = 60'000'000;  ///< stop injecting after this time
  };

  /// Schedule an independent Poisson crash/recover process on every node in
  /// `nodes`, deterministic in `rng`. Crashes never overlap per node and
  /// are always followed by recovery (the transient-fault assumption).
  void random_crashes(const std::vector<NodeId>& nodes, Rng& rng,
                      const CrashPlan& plan);

  [[nodiscard]] std::uint64_t crashes_injected() const { return crashes_; }

 private:
  sim::Simulator& sim_;
  Network& net_;
  std::uint64_t crashes_ = 0;
};

}  // namespace mar::net
