// Simulated network with a latency/bandwidth cost model and a reliable
// (at-least-once, deduplicating) transport.
//
// The paper assumes "the network provides reliable data transfer" and that
// node/network crashes are non-lasting (Sec. 4.3). This module provides
// exactly that fault model:
//   * the raw channel delivers a message after latency + size/bandwidth,
//     dropping it if the destination or the link is down at delivery time;
//   * the reliable layer retransmits until acknowledged, so transient
//     outages only delay delivery;
//   * receivers deduplicate by message id, giving at-most-once dispatch to
//     the handler under retransmission (handlers stay idempotent anyway,
//     because dedup state is volatile and lost on a crash — exactly the
//     situation a real messaging layer faces).
//
// The cost model (per-message latency plus size over bandwidth) is the one
// Straßer & Schwehm's performance model for mobile agent systems uses
// (ref [16]), which experiment E7 reproduces.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serial/encoder.h"
#include "sim/simulator.h"
#include "util/ids.h"
#include "util/trace.h"

namespace mar::net {

/// A protocol message. `type` selects the handler branch at the receiver;
/// `payload` is an opaque serialized body.
struct Message {
  NodeId from;
  NodeId to;
  std::string type;
  serial::Bytes payload;
  MsgId id = MsgId::invalid();  ///< Assigned by the reliable layer.

  /// Wire size used by the cost model: payload plus a fixed header.
  [[nodiscard]] std::size_t wire_size() const {
    return payload.size() + type.size() + kHeaderBytes;
  }
  static constexpr std::size_t kHeaderBytes = 48;
};

/// Link cost parameters. Defaults approximate a late-90s LAN.
struct LinkParams {
  sim::TimeUs latency_us = 500;          ///< one-way propagation delay
  double bandwidth_bytes_per_us = 1.25;  ///< 10 Mbit/s
};

/// Aggregate traffic statistics, used by the network-load experiments.
struct NetStats {
  std::uint64_t messages_sent = 0;      ///< reliable sends (first attempts)
  std::uint64_t transmissions = 0;      ///< physical transmissions (w/ retx)
  std::uint64_t messages_delivered = 0; ///< handler dispatches after dedup
  std::uint64_t bytes_sent = 0;         ///< bytes over all transmissions
  std::map<std::string, std::uint64_t> bytes_by_type;

  void reset() { *this = NetStats{}; }
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;
  using NodeStateListener = std::function<void(NodeId, bool up)>;

  Network(sim::Simulator& sim, TraceSink& trace)
      : sim_(sim), trace_(trace) {}

  // --- topology ----------------------------------------------------------
  /// Register a node and its message handler. Nodes start up.
  void add_node(NodeId id, Handler handler);
  [[nodiscard]] bool has_node(NodeId id) const { return nodes_.contains(id); }
  [[nodiscard]] std::vector<NodeId> node_ids() const;

  void set_default_link(LinkParams params) { default_link_ = params; }
  /// Override parameters for the (a, b) pair, both directions.
  void set_link(NodeId a, NodeId b, LinkParams params);

  // --- fault control -----------------------------------------------------
  void crash_node(NodeId id);
  void recover_node(NodeId id);
  [[nodiscard]] bool node_up(NodeId id) const;
  void set_link_up(NodeId a, NodeId b, bool up);
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;
  void subscribe_node_state(NodeStateListener listener);

  // --- messaging ---------------------------------------------------------
  /// Reliable send: retransmits until the destination acknowledges.
  /// Local sends (to == from) are delivered through the same path with
  /// zero network cost.
  void send(Message msg);

  /// Predicted one-way transfer time for `bytes` between two nodes.
  [[nodiscard]] sim::TimeUs transfer_time(NodeId from, NodeId to,
                                          std::size_t bytes) const;

  [[nodiscard]] const NetStats& stats() const { return stats_; }
  NetStats& mutable_stats() { return stats_; }

  /// Retransmission interval for unacknowledged messages.
  void set_retransmit_interval(sim::TimeUs t) { retransmit_interval_ = t; }

 private:
  struct NodeState {
    Handler handler;
    bool up = true;
    /// Dedup of delivered reliable message ids (volatile: cleared on crash).
    std::unordered_set<MsgId> seen;
  };
  struct Pending {
    Message msg;
    bool acked = false;
  };

  [[nodiscard]] const LinkParams& link_params(NodeId a, NodeId b) const;
  void transmit(const Message& msg, bool count_bytes);
  void deliver(const Message& msg);
  void deliver_ack(NodeId receiver, NodeId sender, MsgId id);
  void schedule_retransmit(MsgId id);

  sim::Simulator& sim_;
  TraceSink& trace_;
  LinkParams default_link_;
  std::map<std::pair<NodeId, NodeId>, LinkParams> links_;
  std::map<std::pair<NodeId, NodeId>, bool> link_state_;
  std::unordered_map<NodeId, NodeState> nodes_;
  std::unordered_map<MsgId, Pending> outbox_;
  std::vector<NodeStateListener> listeners_;
  NetStats stats_;
  std::uint64_t next_msg_id_ = 1;
  sim::TimeUs retransmit_interval_ = 50'000;  // 50 ms
};

}  // namespace mar::net
