// Currency exchange: the paper's mixed-compensation example (Sec. 4.4.1).
//
// An agent changes digital cash from one currency into another. The
// compensating operation needs access to *both* the agent's weakly
// reversible objects (the coins it currently holds) and the resource (the
// exchange's rates and books) — hence a *mixed compensation entry*, which
// forces the agent to travel back to this node during rollback.
//
// Amounts are integer minor units; rates are scaled by 1e6.
//
// Operations:
//   convert  {from, to, amount}      -> {out, rate}
//   set_rate {from, to, rate_ppm}    -> {}
//   rate     {from, to}              -> {rate_ppm}
#pragma once

#include "resource/resource.h"

namespace mar::resource {

class Exchange final : public Resource {
 public:
  [[nodiscard]] std::string type_name() const override { return "exchange"; }
  [[nodiscard]] Value initial_state() const override;
  /// Per-pair keys: "rates/<from>/<to>" and "volume/<from>/<to>" (the sub
  /// part of a unit may itself contain '/'). Conversions of different
  /// pairs never conflict; conversions of the same pair share the rate
  /// read but conflict on the pair's volume counter.
  [[nodiscard]] KeySet key_set(std::string_view op,
                               const Value& params) const override;
  Result<Value> invoke(std::string_view op, const Value& params,
                       Value& state) override;

  static constexpr std::int64_t kRateScale = 1'000'000;
};

}  // namespace mar::resource
