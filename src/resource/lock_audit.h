// Debug lock-order and wait-for-graph validator.
//
// The per-key lock table (resource_manager.cc) is no-wait today: a
// conflict aborts the losing transaction, so deadlock is impossible — but
// ROADMAP item 1 (blocking lock waits for hot keys) will change that, and
// a latent lock-order inversion that is harmless under abort/restart
// becomes a deadlock the moment waits block. LockAudit is the compiled-in
// validator that makes those hazards visible NOW, at acquire time:
//
//   * it records, per transaction, the set of held lock keys
//     ("resource:unit"), mirroring every grant and release of the lock
//     tables;
//   * it maintains the global acquisition-order graph: an edge a -> b
//     means some transaction acquired b while holding a. A cycle in this
//     graph is a lock-order inversion — two transactions take the same
//     keys in opposite orders, the classic deadlock recipe;
//   * it maintains the wait-for graph: at conflict time the would-block
//     edge waiter -> holder is recorded (in no-wait mode the waiter aborts
//     right after, so the edge is transient; under blocking waits it is
//     the real wait). A cycle here IS a deadlock: detection walks the
//     graph at edge-insert time and reports the full cycle with each
//     participant's held keys, TokuDB lock_tree style.
//
// Policy: wait-for-graph cycles hard-fail by default (they are never
// legitimate); acquisition-order inversions are counted and remembered by
// default (the abort/restart engine survives them) and hard-fail only in
// strict mode — the gate later blocking-wait work must keep green.
//
// The audit is wired into ResourceManager behind PlatformConfig::
// lock_audit, which defaults to on in debug builds (and the sanitizer CI
// jobs) and off in release; tests force it on explicitly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/ids.h"

namespace mar::resource {

/// Thrown on a hard-failing audit finding; what() carries the rendered
/// cycle (every edge plus each participant's held keys).
class LockAuditError : public LogicError {
 public:
  explicit LockAuditError(const std::string& what) : LogicError(what) {}
};

class LockAudit {
 public:
  struct Config {
    /// Hard-fail when a wait-for-graph cycle closes (a deadlock).
    bool fail_on_cycle = true;
    /// Hard-fail on acquisition-order inversions too (strict mode).
    bool fail_on_inversion = false;
  };

  struct Stats {
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    std::uint64_t wait_edges = 0;
    std::uint64_t order_inversions = 0;
    std::uint64_t wfg_cycles = 0;
  };

  LockAudit() = default;
  explicit LockAudit(Config config) : config_(config) {}

  /// The canonical audit key of one lockable unit.
  [[nodiscard]] static std::string key_of(const std::string& resource,
                                          const std::string& unit) {
    return resource + ":" + unit;
  }

  /// Record that `tx` was granted the lock on `resource`/`unit`. Extends
  /// the acquisition-order graph with held-key -> new-key edges and checks
  /// them for inversions. Returns the inversion witness ("a before b, but
  /// b -> ... -> a already recorded") when one was found.
  std::optional<std::string> on_acquire(TxId tx, const std::string& resource,
                                        const std::string& unit);

  /// Record that `tx` hit a conflict against `holder` (a would-block
  /// wait-for edge) and check the wait-for graph for a cycle. Returns the
  /// cycle — waiter first, closing back on the waiter — when adding this
  /// edge closed one. Self-conflicts (tx == holder) are a caller bug.
  std::optional<std::vector<TxId>> on_conflict(TxId tx, TxId holder);

  /// Drop every trace of `tx`: held keys and wait-for edges in both
  /// directions (commit, abort, or — under blocking waits — wake-up).
  void on_release(TxId tx);

  /// Crash: all lock state is volatile. Clears the held sets and both
  /// graphs; cumulative stats survive so detections cannot be hidden by a
  /// crash-recover cycle.
  void reset();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }
  /// Keys currently held by `tx` (empty set when none).
  [[nodiscard]] std::set<std::string> held(TxId tx) const;
  /// First inversion witness seen, if any (diagnostics).
  [[nodiscard]] const std::optional<std::string>& first_inversion() const {
    return first_inversion_;
  }

  /// Render a wait-for cycle with every participant's held keys.
  [[nodiscard]] std::string describe_cycle(
      const std::vector<TxId>& cycle) const;

 private:
  /// Is `to` reachable from `from` in the acquisition-order graph?
  [[nodiscard]] bool order_reaches(const std::string& from,
                                   const std::string& to) const;
  /// Path holder -> ... -> waiter in the wait-for graph, if one exists.
  [[nodiscard]] std::optional<std::vector<TxId>> wait_path(TxId from,
                                                           TxId to) const;

  Config config_;
  Stats stats_;
  std::map<TxId, std::set<std::string>> held_;
  /// Acquisition-order graph: key -> keys acquired later while it was held.
  std::map<std::string, std::set<std::string>> order_after_;
  /// Wait-for graph: waiter -> holders it would block on.
  std::map<TxId, std::set<TxId>> waits_;
  std::optional<std::string> first_inversion_;
};

}  // namespace mar::resource
