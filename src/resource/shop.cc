#include "resource/shop.h"

namespace mar::resource {

Value Shop::initial_state() const {
  Value state = Value::empty_map();
  state.set("items", Value::empty_map());
  state.set("orders", Value::empty_map());
  state.set("next_order", std::int64_t{1});
  state.set("cancel_fee", std::int64_t{0});
  // Default: one simulated hour of full (minus fee) cash reimbursement.
  state.set("cash_window", std::int64_t{3'600'000'000});
  return state;
}

KeySet Shop::key_set(std::string_view op, const Value& params) const {
  if (!params.is_map()) return KeySet::whole();
  const bool has_item = params.has("item") && params.at("item").is_string();
  if (op == "restock" && has_item) {
    return KeySet().write("items/" + params.at("item").as_string());
  }
  if (op == "stock" && has_item) {
    return KeySet().read("items/" + params.at("item").as_string());
  }
  if (op == "buy" && has_item) {
    return KeySet()
        .write("items/" + params.at("item").as_string())
        .write("next_order")
        .write("orders");
  }
  if (op == "cancel") {
    // The order record names the item, so the item touched is unknown
    // before execution: lock both keyed slots wholesale, plus the policy
    // fields the refund computation reads.
    return KeySet()
        .write("orders")
        .write("items")
        .read("cancel_fee")
        .read("cash_window");
  }
  if (op == "set_policy") {
    return KeySet().write("cancel_fee").write("cash_window");
  }
  return KeySet::whole();
}

Result<Value> Shop::invoke(std::string_view op, const Value& params,
                           Value& state) {
  if (op == "restock") {
    const auto& item = params.at("item").as_string();
    Value entry = state.at("items").get_or(item, Value::empty_map());
    entry.set("qty",
              entry.get_or("qty", std::int64_t{0}).as_int() +
                  params.at("qty").as_int());
    if (params.has("price")) entry.set("price", params.at("price").as_int());
    state.as_map().at("items").set(item, std::move(entry));
    return Value::empty_map();
  }

  if (op == "buy") {
    const auto& item = params.at("item").as_string();
    const auto qty = params.at("qty").as_int();
    if (qty <= 0) return Status(Errc::rejected, "qty must be positive");
    if (!state.at("items").has(item)) {
      return Status(Errc::not_found, "shop does not carry " + item);
    }
    Value& entry = state.as_map().at("items").as_map().at(item);
    const auto have = entry.at("qty").as_int();
    if (have < qty) {
      // Sec. 3.2: the desired good is out of stock — the agent falls back
      // to another shop; this result is not affected by a later
      // compensation of whoever bought the stock.
      return Status(Errc::rejected, "out of stock: " + item);
    }
    const auto price = entry.at("price").as_int();
    const auto cost = price * qty;
    const auto payment = params.at("payment").as_int();
    if (payment < cost) return Status(Errc::rejected, "insufficient payment");
    entry.set("qty", have - qty);

    const auto order_id = state.at("next_order").as_int();
    state.set("next_order", order_id + 1);
    Value order = Value::empty_map();
    order.set("item", item);
    order.set("qty", qty);
    order.set("paid", cost);
    order.set("bought_at", params.get_or("now", std::int64_t{0}));
    state.as_map().at("orders").set(std::to_string(order_id),
                                    std::move(order));

    Value result = Value::empty_map();
    result.set("order", order_id);
    result.set("cost", cost);
    result.set("change", payment - cost);
    return result;
  }

  if (op == "cancel") {
    const auto order_id = std::to_string(params.at("order").as_int());
    if (!state.at("orders").has(order_id)) {
      return Status(Errc::not_found, "no order " + order_id);
    }
    const Value order = state.at("orders").at(order_id);
    const auto& item = order.at("item").as_string();
    // Return the goods to stock.
    Value& entry = state.as_map().at("items").as_map().at(item);
    entry.set("qty", entry.at("qty").as_int() + order.at("qty").as_int());
    state.as_map().at("orders").erase(order_id);

    // Time-dependent reimbursement policy (Sec. 3.2).
    const auto now = params.get_or("now", std::int64_t{0}).as_int();
    const auto age = now - order.at("bought_at").as_int();
    const auto fee = state.at("cancel_fee").as_int();
    Value result = Value::empty_map();
    if (age <= state.at("cash_window").as_int()) {
      const auto refund = std::max<std::int64_t>(
          0, order.at("paid").as_int() - fee);
      result.set("mode", "cash");
      result.set("refund", refund);
      result.set("fee", order.at("paid").as_int() - refund);
    } else {
      result.set("mode", "credit");
      result.set("refund", order.at("paid").as_int());
      result.set("fee", std::int64_t{0});
    }
    return result;
  }

  if (op == "stock") {
    const auto& item = params.at("item").as_string();
    if (!state.at("items").has(item)) {
      return Status(Errc::not_found, "shop does not carry " + item);
    }
    const Value& entry = state.at("items").at(item);
    Value result = Value::empty_map();
    result.set("qty", entry.at("qty").as_int());
    result.set("price", entry.at("price").as_int());
    return result;
  }

  if (op == "set_policy") {
    if (params.has("cancel_fee")) {
      state.set("cancel_fee", params.at("cancel_fee").as_int());
    }
    if (params.has("cash_window")) {
      state.set("cash_window", params.at("cash_window").as_int());
    }
    return Value::empty_map();
  }

  return Status(Errc::rejected, "shop: unknown op " + std::string(op));
}

}  // namespace mar::resource
