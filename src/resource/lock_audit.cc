#include "resource/lock_audit.h"

#include <sstream>

namespace mar::resource {

namespace {

/// Depth-first search over an adjacency map, reconstructing the path
/// from `from` to `to` (inclusive) when one exists.
template <typename Node>
bool dfs_path(const std::map<Node, std::set<Node>>& adj, const Node& from,
              const Node& to, std::set<Node>& visited,
              std::vector<Node>& path) {
  if (!visited.insert(from).second) return false;
  path.push_back(from);
  if (from == to) return true;
  auto it = adj.find(from);
  if (it != adj.end()) {
    for (const Node& next : it->second) {
      if (dfs_path(adj, next, to, visited, path)) return true;
    }
  }
  path.pop_back();
  return false;
}

}  // namespace

std::optional<std::string> LockAudit::on_acquire(TxId tx,
                                                 const std::string& resource,
                                                 const std::string& unit) {
  ++stats_.acquires;
  const std::string key = key_of(resource, unit);
  auto& held = held_[tx];
  if (held.contains(key)) return std::nullopt;  // re-grant of a held key
  std::optional<std::string> witness;
  for (const auto& prior : held) {
    if (prior == key) continue;
    // Edge prior -> key is about to be recorded; if key already reaches
    // prior, some other transaction took these keys in the opposite order.
    if (!witness && order_reaches(key, prior)) {
      ++stats_.order_inversions;
      std::ostringstream os;
      os << "lock-order inversion: tx " << tx.value() << " acquires \"" << key
         << "\" while holding \"" << prior << "\", but the acquisition-order "
         << "graph already has \"" << key << "\" -> ... -> \"" << prior
         << "\" (some transaction takes these keys in the opposite order; "
         << "under blocking waits this is a deadlock)";
      witness = os.str();
      if (!first_inversion_) first_inversion_ = witness;
    }
    order_after_[prior].insert(key);
  }
  held.insert(key);
  if (witness && config_.fail_on_inversion) throw LockAuditError(*witness);
  return witness;
}

std::optional<std::vector<TxId>> LockAudit::on_conflict(TxId tx, TxId holder) {
  MAR_CHECK_MSG(tx != holder, "tx " << tx.value()
                                    << " reported a wait-for edge on itself");
  ++stats_.wait_edges;
  waits_[tx].insert(holder);
  // The new edge tx -> holder closes a cycle iff tx was already reachable
  // from holder.
  auto back = wait_path(holder, tx);
  if (!back) return std::nullopt;
  ++stats_.wfg_cycles;
  // Cycle as waiter-first edge list: tx -> holder -> ... -> tx.
  std::vector<TxId> cycle;
  cycle.push_back(tx);
  for (const TxId node : *back) cycle.push_back(node);
  if (config_.fail_on_cycle) throw LockAuditError(describe_cycle(cycle));
  return cycle;
}

void LockAudit::on_release(TxId tx) {
  ++stats_.releases;
  held_.erase(tx);
  waits_.erase(tx);
  for (auto it = waits_.begin(); it != waits_.end();) {
    it->second.erase(tx);
    if (it->second.empty()) {
      it = waits_.erase(it);
    } else {
      ++it;
    }
  }
}

void LockAudit::reset() {
  held_.clear();
  order_after_.clear();
  waits_.clear();
}

std::set<std::string> LockAudit::held(TxId tx) const {
  auto it = held_.find(tx);
  return it == held_.end() ? std::set<std::string>{} : it->second;
}

std::string LockAudit::describe_cycle(const std::vector<TxId>& cycle) const {
  std::ostringstream os;
  os << "wait-for-graph cycle (deadlock): ";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) os << " -> ";
    os << "tx " << cycle[i].value();
  }
  os << " -> tx " << cycle.front().value();
  for (const TxId tx : cycle) {
    os << "\n  tx " << tx.value() << " holds {";
    bool first = true;
    auto it = held_.find(tx);
    if (it != held_.end()) {
      for (const auto& key : it->second) {
        if (!first) os << ", ";
        os << "\"" << key << "\"";
        first = false;
      }
    }
    os << "}";
  }
  return os.str();
}

bool LockAudit::order_reaches(const std::string& from,
                              const std::string& to) const {
  std::set<std::string> visited;
  std::vector<std::string> path;
  return dfs_path(order_after_, from, to, visited, path);
}

std::optional<std::vector<TxId>> LockAudit::wait_path(TxId from,
                                                      TxId to) const {
  std::set<TxId> visited;
  std::vector<TxId> path;
  if (!dfs_path(waits_, from, to, visited, path)) return std::nullopt;
  return path;
}

}  // namespace mar::resource
