// Shop resource: inventory sales with a compensation-fee policy.
//
// Models the paper's e-commerce scenarios (Sec. 3.2):
//   * a purchase can fail because another transaction bought the last
//     items ("out of stock" — the dependent-transaction example);
//   * cancelling a purchase (the compensating operation) reimburses
//     according to a time-dependent policy: within `cash_window_us` of the
//     purchase the buyer gets cash back minus `cancel_fee`; after the
//     window only a credit note is issued. The agent must integrate that
//     new information into its private data — the reason weakly
//     reversible objects cannot be restored from a before-image.
//
// Operations:
//   restock {item, qty, price}                  -> {}
//   buy     {item, qty, payment, now}           -> {order, cost, change}
//   cancel  {order, now}                        -> {mode:"cash"|"credit",
//                                                   refund, fee}
//   stock   {item}                              -> {qty, price}
//   set_policy {cancel_fee, cash_window}        -> {}
#pragma once

#include "resource/resource.h"

namespace mar::resource {

class Shop final : public Resource {
 public:
  [[nodiscard]] std::string type_name() const override { return "shop"; }
  [[nodiscard]] Value initial_state() const override;
  /// Per-item keys ("items/<item>"); `buy` additionally serializes on the
  /// order book ("orders", "next_order") it appends to, and `cancel` —
  /// whose item is only known from the order record — on the whole item
  /// and order slots.
  [[nodiscard]] KeySet key_set(std::string_view op,
                               const Value& params) const override;
  Result<Value> invoke(std::string_view op, const Value& params,
                       Value& state) override;
};

}  // namespace mar::resource
