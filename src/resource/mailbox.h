// Mailbox: transactional rendezvous storage for multi-agent executions.
//
// The paper's future work (Sec. 6) names "an enhanced agent execution
// model supporting exactly-once executions comprising more than one
// agent". The platform's spawn/join mechanism delivers a child agent's
// result into a mailbox *within the child's final step transaction*, so
// result delivery commits atomically with the child's completion —
// exactly once, like every other step effect.
//
// Operations:
//   put   {key, value}  -> {}           (overwrites; system use)
//   peek  {key}         -> {value}      (read without consuming)
//   take  {key}         -> {value}      (read and remove; the join op)
//   exists{key}         -> {present}
#pragma once

#include "resource/resource.h"

namespace mar::resource {

class Mailbox final : public Resource {
 public:
  [[nodiscard]] std::string type_name() const override { return "mailbox"; }
  [[nodiscard]] Value initial_state() const override;
  /// Per-slot keys: "slots/<key>" — deliveries into different mailbox
  /// slots (e.g. result records of sibling children) never conflict.
  [[nodiscard]] KeySet key_set(std::string_view op,
                               const Value& params) const override;
  Result<Value> invoke(std::string_view op, const Value& params,
                       Value& state) override;
};

}  // namespace mar::resource
