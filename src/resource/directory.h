// Information directory: a read-mostly lookup service.
//
// Models the systems-management / information-gathering workloads the
// paper's introduction motivates: an agent visits nodes, queries the local
// directory and stores results in *strongly reversible* objects. Reads
// need no compensating operations at all, which is what makes the
// optimized rollback skip agent transfers for such steps (Sec. 4.3's
// closing discussion).
//
// Operations:
//   publish {key, value}   -> {}
//   lookup  {key}          -> {value}
//   list    {prefix}       -> {keys: [...]}
//   remove  {key}          -> {}
#pragma once

#include "resource/resource.h"

namespace mar::resource {

class Directory final : public Resource {
 public:
  [[nodiscard]] std::string type_name() const override { return "directory"; }
  [[nodiscard]] Value initial_state() const override;
  /// Per-entry keys: "entries/<key>" for publish/lookup/remove, a shared
  /// read of the whole "entries" slot for list (it scans every entry).
  /// Two agents publishing under different keys never conflict under
  /// per-key locking — the read-mostly directory stops serializing.
  [[nodiscard]] KeySet key_set(std::string_view op,
                               const Value& params) const override;
  Result<Value> invoke(std::string_view op, const Value& params,
                       Value& state) override;
};

}  // namespace mar::resource
