#include "resource/mailbox.h"

namespace mar::resource {

Value Mailbox::initial_state() const {
  Value state = Value::empty_map();
  state.set("slots", Value::empty_map());
  return state;
}

KeySet Mailbox::key_set(std::string_view op, const Value& params) const {
  if (!params.is_map() || !params.has("key") ||
      !params.at("key").is_string()) {
    return KeySet::whole();
  }
  const std::string unit = "slots/" + params.at("key").as_string();
  if (op == "put" || op == "take") return KeySet().write(unit);
  if (op == "peek" || op == "exists") return KeySet().read(unit);
  return KeySet::whole();
}

Result<Value> Mailbox::invoke(std::string_view op, const Value& params,
                              Value& state) {
  Value& slots = state.as_map().at("slots");

  if (op == "put") {
    slots.set(params.at("key").as_string(), params.at("value"));
    return Value::empty_map();
  }

  if (op == "peek" || op == "take") {
    const auto& key = params.at("key").as_string();
    if (!slots.has(key)) {
      return Status(Errc::not_found, "mailbox: no message " + key);
    }
    Value result = Value::empty_map();
    result.set("value", slots.at(key));
    if (op == "take") slots.erase(key);
    return result;
  }

  if (op == "exists") {
    Value result = Value::empty_map();
    result.set("present", slots.has(params.at("key").as_string()));
    return result;
  }

  return Status(Errc::rejected, "mailbox: unknown op " + std::string(op));
}

}  // namespace mar::resource
