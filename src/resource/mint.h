// Mint: digital cash with serial numbers (Chaum-style, paper ref [2]).
//
// Sec. 3.2 uses digital cash to show *state-equivalent* compensation: if an
// agent pays with digital coins and the purchase is compensated, it gets
// back the same amount — but the coins carry different serial numbers. The
// mint issues and redeems coins; refunds necessarily mint fresh serials,
// so a before-image of the agent's wallet would resurrect spent coins.
// That is why wallets are weakly reversible objects.
//
// Coins are Value maps {serial, currency, value}.
//
// Operations:
//   issue  {currency, value, count}   -> {coins: [coin...]}
//   redeem {coins: [serial...]}       -> {total, currency}
//   verify {serial}                   -> {valid}
#pragma once

#include "resource/resource.h"

namespace mar::resource {

class Mint final : public Resource {
 public:
  [[nodiscard]] std::string type_name() const override { return "mint"; }
  [[nodiscard]] Value initial_state() const override;
  /// Per-coin keys: redeem/verify touch exactly the serials named in
  /// their params ("live/<serial>"), so agents redeeming or verifying
  /// disjoint wallets run concurrently. issue allocates fresh serials
  /// from the shared counter, so it remains a wide write ("next_serial"
  /// plus the whole "live" slot) — the parallelism win is redeem∥redeem
  /// and redeem∥verify on disjoint coins.
  [[nodiscard]] KeySet key_set(std::string_view op,
                               const Value& params) const override;
  Result<Value> invoke(std::string_view op, const Value& params,
                       Value& state) override;

  /// Sum of coin values in a wallet (a Value list of coins).
  [[nodiscard]] static std::int64_t wallet_total(const Value& wallet);
  /// Serials in a wallet, as a Value list (for redeem params).
  [[nodiscard]] static Value wallet_serials(const Value& wallet);
};

}  // namespace mar::resource
