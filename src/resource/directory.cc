#include "resource/directory.h"

namespace mar::resource {

Value Directory::initial_state() const {
  Value state = Value::empty_map();
  state.set("entries", Value::empty_map());
  return state;
}

KeySet Directory::key_set(std::string_view op, const Value& params) const {
  if (!params.is_map()) return KeySet::whole();
  const bool has_key = params.has("key") && params.at("key").is_string();
  const auto entry_key = [&params] {
    return "entries/" + params.at("key").as_string();
  };
  if ((op == "publish" || op == "remove") && has_key) {
    return KeySet().write(entry_key());
  }
  if (op == "lookup" && has_key) {
    return KeySet().read(entry_key());
  }
  if (op == "list") {
    // Scans every entry: a shared read of the whole slot (conflicts only
    // with concurrent writers, not with other readers).
    return KeySet().read("entries");
  }
  return KeySet::whole();
}

Result<Value> Directory::invoke(std::string_view op, const Value& params,
                                Value& state) {
  Value& entries = state.as_map().at("entries");

  if (op == "publish") {
    entries.set(params.at("key").as_string(), params.at("value"));
    return Value::empty_map();
  }

  if (op == "lookup") {
    const auto& key = params.at("key").as_string();
    if (!entries.has(key)) {
      return Status(Errc::not_found, "no entry " + key);
    }
    Value result = Value::empty_map();
    result.set("value", entries.at(key));
    return result;
  }

  if (op == "list") {
    const auto prefix = params.get_or("prefix", "").as_string();
    Value keys = Value::empty_list();
    for (const auto& [k, v] : entries.as_map()) {
      if (k.compare(0, prefix.size(), prefix) == 0) keys.push_back(k);
    }
    Value result = Value::empty_map();
    result.set("keys", std::move(keys));
    return result;
  }

  if (op == "remove") {
    const auto& key = params.at("key").as_string();
    if (!entries.has(key)) {
      return Status(Errc::not_found, "no entry " + key);
    }
    entries.erase(key);
    return Value::empty_map();
  }

  return Status(Errc::rejected, "directory: unknown op " + std::string(op));
}

}  // namespace mar::resource
