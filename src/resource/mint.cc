#include "resource/mint.h"

namespace mar::resource {

Value Mint::initial_state() const {
  Value state = Value::empty_map();
  state.set("next_serial", std::int64_t{1});
  state.set("live", Value::empty_map());  // serial -> {currency, value}
  return state;
}

KeySet Mint::key_set(std::string_view op, const Value& params) const {
  if (!params.is_map()) return KeySet::whole();
  if (op == "issue") {
    // Fresh serials come from the shared counter; the coins written are
    // unknowable before the invoke, so the whole live map is declared.
    return KeySet().write("next_serial").write("live");
  }
  if (op == "redeem" && params.has("coins") && params.at("coins").is_list() &&
      !params.at("coins").as_list().empty()) {
    KeySet keys;
    for (const auto& s : params.at("coins").as_list()) {
      if (!s.is_int()) return KeySet::whole();
      keys.write("live/" + std::to_string(s.as_int()));
    }
    return keys;
  }
  if (op == "verify" && params.has("serial") && params.at("serial").is_int()) {
    return KeySet().read("live/" + std::to_string(params.at("serial").as_int()));
  }
  return KeySet::whole();
}

std::int64_t Mint::wallet_total(const Value& wallet) {
  std::int64_t total = 0;
  for (const auto& coin : wallet.as_list()) {
    total += coin.at("value").as_int();
  }
  return total;
}

Value Mint::wallet_serials(const Value& wallet) {
  Value serials = Value::empty_list();
  for (const auto& coin : wallet.as_list()) {
    serials.push_back(coin.at("serial").as_int());
  }
  return serials;
}

Result<Value> Mint::invoke(std::string_view op, const Value& params,
                           Value& state) {
  if (op == "issue") {
    const auto& currency = params.at("currency").as_string();
    const auto value = params.at("value").as_int();
    const auto count = params.get_or("count", std::int64_t{1}).as_int();
    if (value <= 0 || count <= 0) {
      return Status(Errc::rejected, "value and count must be positive");
    }
    auto serial = state.at("next_serial").as_int();
    Value coins = Value::empty_list();
    for (std::int64_t i = 0; i < count; ++i) {
      Value coin = Value::empty_map();
      coin.set("serial", serial);
      coin.set("currency", currency);
      coin.set("value", value);
      Value live = Value::empty_map();
      live.set("currency", currency);
      live.set("value", value);
      state.as_map().at("live").set(std::to_string(serial), std::move(live));
      coins.push_back(std::move(coin));
      ++serial;
    }
    state.set("next_serial", serial);
    Value result = Value::empty_map();
    result.set("coins", std::move(coins));
    return result;
  }

  if (op == "redeem") {
    const auto& serials = params.at("coins").as_list();
    Value& live = state.as_map().at("live");
    std::int64_t total = 0;
    std::string currency;
    // Validate all serials before spending any (all-or-nothing).
    for (const auto& s : serials) {
      const auto key = std::to_string(s.as_int());
      if (!live.has(key)) {
        return Status(Errc::rejected,
                      "coin not live (double spend?): " + key);
      }
      const auto& coin = live.at(key);
      if (currency.empty()) {
        currency = coin.at("currency").as_string();
      } else if (currency != coin.at("currency").as_string()) {
        return Status(Errc::rejected, "mixed-currency redeem");
      }
      total += coin.at("value").as_int();
    }
    for (const auto& s : serials) {
      live.erase(std::to_string(s.as_int()));
    }
    Value result = Value::empty_map();
    result.set("total", total);
    result.set("currency", currency);
    return result;
  }

  if (op == "verify") {
    const auto key = std::to_string(params.at("serial").as_int());
    Value result = Value::empty_map();
    result.set("valid", state.at("live").has(key));
    return result;
  }

  return Status(Errc::rejected, "mint: unknown op " + std::string(op));
}

}  // namespace mar::resource
