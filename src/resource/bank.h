// Bank resource: accounts with deposit / withdraw / transfer.
//
// This is the running example of the paper's Sec. 3: deposit(x) and
// withdraw(x) commute on an overdraftable account (sound compensation),
// but withdraw on a non-overdraftable account can *fail* — which makes the
// compensation of a deposit a potentially failing compensating operation
// (Sec. 3.2's 20-USD example). The overdraft policy is therefore
// per-account state.
//
// Operations (params / result are Value maps):
//   open      {account, overdraft?}            -> {}
//   deposit   {account, amount}                -> {balance}
//   withdraw  {account, amount}                -> {balance}
//   transfer  {from, to, amount}               -> {}
//   balance   {account}                        -> {balance}
#pragma once

#include "resource/resource.h"

namespace mar::resource {

class Bank final : public Resource {
 public:
  [[nodiscard]] std::string type_name() const override { return "bank"; }
  [[nodiscard]] Value initial_state() const override;
  /// Per-account keys: "accounts/<id>" — two transactions on different
  /// accounts never conflict under per-key locking.
  [[nodiscard]] KeySet key_set(std::string_view op,
                               const Value& params) const override;
  Result<Value> invoke(std::string_view op, const Value& params,
                       Value& state) override;

  /// Convenience for tests/examples: committed balance of an account.
  [[nodiscard]] static std::int64_t balance_in(const Value& state,
                                               const std::string& account);
};

}  // namespace mar::resource
