#include "resource/exchange.h"

namespace mar::resource {

namespace {
std::string pair_key(const Value& params) {
  return params.at("from").as_string() + "/" + params.at("to").as_string();
}
}  // namespace

Value Exchange::initial_state() const {
  Value state = Value::empty_map();
  state.set("rates", Value::empty_map());
  state.set("volume", Value::empty_map());  // per-pair converted volume
  return state;
}

KeySet Exchange::key_set(std::string_view op, const Value& params) const {
  if (!params.is_map() || !params.has("from") ||
      !params.at("from").is_string() || !params.has("to") ||
      !params.at("to").is_string()) {
    return KeySet::whole();
  }
  const auto& from = params.at("from").as_string();
  const auto& to = params.at("to").as_string();
  if (op == "set_rate") {
    // Installs the pair and its inverse.
    return KeySet()
        .write("rates/" + from + "/" + to)
        .write("rates/" + to + "/" + from);
  }
  if (op == "rate") return KeySet().read("rates/" + from + "/" + to);
  if (op == "convert") {
    return KeySet()
        .read("rates/" + from + "/" + to)
        .write("volume/" + from + "/" + to);
  }
  return KeySet::whole();
}

Result<Value> Exchange::invoke(std::string_view op, const Value& params,
                               Value& state) {
  if (op == "set_rate") {
    const auto rate = params.at("rate_ppm").as_int();
    if (rate <= 0) return Status(Errc::rejected, "rate must be positive");
    state.as_map().at("rates").set(pair_key(params), rate);
    // Install the inverse rate as well so conversions are reversible.
    const auto inverse =
        (kRateScale * kRateScale + rate / 2) / rate;  // rounded
    const std::string inv_key =
        params.at("to").as_string() + "/" + params.at("from").as_string();
    state.as_map().at("rates").set(inv_key, inverse);
    return Value::empty_map();
  }

  if (op == "rate") {
    const auto key = pair_key(params);
    if (!state.at("rates").has(key)) {
      return Status(Errc::not_found, "no rate for " + key);
    }
    Value result = Value::empty_map();
    result.set("rate_ppm", state.at("rates").at(key).as_int());
    return result;
  }

  if (op == "convert") {
    const auto key = pair_key(params);
    if (!state.at("rates").has(key)) {
      return Status(Errc::not_found, "no rate for " + key);
    }
    const auto amount = params.at("amount").as_int();
    if (amount < 0) return Status(Errc::rejected, "negative amount");
    const auto rate = state.at("rates").at(key).as_int();
    const auto out = (amount * rate) / kRateScale;
    Value& volume = state.as_map().at("volume");
    volume.set(key, volume.get_or(key, std::int64_t{0}).as_int() + amount);
    Value result = Value::empty_map();
    result.set("out", out);
    result.set("rate", rate);
    return result;
  }

  return Status(Errc::rejected, "exchange: unknown op " + std::string(op));
}

}  // namespace mar::resource
