// Transactional resource manager: one per node.
//
// Provides the ACID envelope the paper assumes of node-local resources:
//   * strict exclusive locking (conflicts surface as Errc::lock_conflict;
//     the enclosing step transaction aborts and the platform restarts it —
//     the paper's abort/restart of a step), at a configurable granularity:
//     per resource *instance* (the classic envelope), or per declared
//     state *key* (Sec. 2 requires isolation per datum — two transactions
//     with disjoint key-sets on one instance run concurrently);
//   * per-transaction copy-on-write overlays, so "if the execution of a
//     step aborts, all changes to resources during the step transaction
//     are undone automatically" (Sec. 2) — whole-state copies under
//     instance locking, sparse per-key slices under per-key locking;
//   * durable committed state plus prepared-overlay persistence (at the
//     matching granularity), making it a well-behaved 2PC participant.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "resource/lock_audit.h"
#include "resource/resource.h"
#include "storage/stable_storage.h"
#include "tx/participant.h"
#include "util/ids.h"
#include "util/result.h"

namespace mar::resource {

class ResourceManager final : public tx::Participant {
 public:
  explicit ResourceManager(storage::StableStorage& stable)
      : stable_(stable) {}

  /// Install a resource instance under `name`. Setup-time only.
  void add_resource(const std::string& name, std::unique_ptr<Resource> logic);
  [[nodiscard]] bool has_resource(const std::string& name) const;

  /// Lock/overlay granularity. Setup-time only (fixed for a node's life);
  /// `instance` reproduces the classic manager bit for bit.
  void set_granularity(LockGranularity g) { granularity_ = g; }
  [[nodiscard]] LockGranularity granularity() const { return granularity_; }

  /// Attach the debug lock-order / wait-for-graph validator (see
  /// lock_audit.h). Every grant, conflict and release of both lock tables
  /// is mirrored into it; a wait-for cycle hard-fails by default. On by
  /// default in debug builds via PlatformConfig::lock_audit.
  void enable_lock_audit(LockAudit::Config config = {}) {
    audit_ = std::make_unique<LockAudit>(config);
  }
  /// The attached validator, or nullptr when auditing is off.
  [[nodiscard]] LockAudit* lock_audit() { return audit_.get(); }
  [[nodiscard]] const LockAudit* lock_audit() const { return audit_.get(); }

  /// Invoke an operation within transaction `tx`. Takes the instance lock
  /// (or, under per-key locking, shared/exclusive locks on the operation's
  /// declared key-set), held to commit/abort, and runs against the tx's
  /// overlay copy.
  Result<Value> invoke(TxId tx, const std::string& resource,
                       std::string_view op, const Value& params);

  /// Committed (post-commit) state, for tests and experiment checks.
  [[nodiscard]] const Value& committed_state(const std::string& name) const;

  /// Direct committed-state mutation for world setup (not transactional).
  void poke_state(const std::string& name, Value state);

  /// Whether any transaction currently holds a lock on the instance (the
  /// instance lock, or — per-key — any key lock of the instance).
  [[nodiscard]] bool locked(const std::string& name) const;
  /// Per-key mode: whether any held lock overlaps `unit` of `name`.
  [[nodiscard]] bool locked_key(const std::string& name,
                                const std::string& unit) const;

  // Participant interface.
  [[nodiscard]] std::string name() const override { return "res"; }
  [[nodiscard]] bool has_tx(TxId tx) const override;
  bool prepare(TxId tx) override;
  void commit(TxId tx) override;
  void abort(TxId tx) override;
  void on_crash() override;

 private:
  struct Instance {
    std::unique_ptr<Resource> logic;
    Value state;
  };
  /// Per-key overlay: the tx's private copy of one declared key.
  struct KeySlice {
    Value value;
    bool present = true;  ///< key exists (false: deleted / never existed)
    bool dirty = false;   ///< modified by this tx; written back at commit
  };
  struct Overlay {
    // Instance granularity: whole-state copies.
    std::map<std::string, Value> touched;
    /// Resources whose overlay state was actually modified. Read-only
    /// access must not write anything back at commit: comparing against
    /// the committed state is NOT equivalent (it may have been changed by
    /// world setup while we held the untouched copy).
    std::set<std::string> dirty;
    // Per-key granularity: resource -> unit -> slice. Units of one
    // resource are pairwise non-overlapping (widening invokes fold
    // narrower slices into the covering one).
    std::map<std::string, std::map<std::string, KeySlice>> slices;
    bool prepared = false;
  };
  /// Per-key lock state of one unit: one writer XOR any readers (a
  /// transaction may hold both roles itself — read then upgrade).
  struct UnitLock {
    TxId writer = TxId::invalid();
    std::set<TxId> readers;
  };

  [[nodiscard]] std::string prep_key(TxId tx) const {
    return "prep.res:" + std::to_string(tx.value());
  }
  void release_locks(TxId tx);

  // Per-key machinery (see resource_manager.cc for the unit algebra).
  Result<Value> invoke_per_key(TxId tx, Instance& inst,
                               const std::string& resource,
                               std::string_view op, const Value& params);
  Status acquire_key_locks(TxId tx, const std::string& resource,
                           const std::vector<KeyRef>& units);
  /// The value at `unit` within any state root ("*" / slot / slot-sub).
  [[nodiscard]] static KeySlice read_unit(const Value& root,
                                          std::string_view unit);
  [[nodiscard]] KeySlice committed_slice(const Instance& inst,
                                         const std::string& unit) const;
  void fold_into(const Instance& inst,
                 std::map<std::string, KeySlice>& res_slices,
                 const std::string& unit);
  void commit_per_key(TxId tx, Overlay& overlay);

  storage::StableStorage& stable_;
  LockGranularity granularity_ = LockGranularity::instance;
  /// Debug concurrency validator; null when off (release default).
  std::unique_ptr<LockAudit> audit_;
  std::map<std::string, Instance> instances_;
  std::map<TxId, Overlay> overlays_;
  /// Instance-granularity lock table: resource -> holder.
  std::map<std::string, TxId> locks_;
  /// Per-key lock table: resource -> unit -> lock. Units of different
  /// transactions may overlap (e.g. "accounts" vs "accounts/alice");
  /// acquisition scans the instance's held units for overlap.
  std::map<std::string, std::map<std::string, UnitLock>> key_locks_;
};

}  // namespace mar::resource
