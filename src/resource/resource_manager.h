// Transactional resource manager: one per node.
//
// Provides the ACID envelope the paper assumes of node-local resources:
//   * strict exclusive locking per resource instance (conflicts surface as
//     Errc::lock_conflict; the enclosing step transaction aborts and the
//     platform restarts it — the paper's abort/restart of a step);
//   * per-transaction copy-on-write overlays, so "if the execution of a
//     step aborts, all changes to resources during the step transaction
//     are undone automatically" (Sec. 2);
//   * durable committed state plus prepared-overlay persistence, making it
//     a well-behaved 2PC participant.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "resource/resource.h"
#include "storage/stable_storage.h"
#include "tx/participant.h"
#include "util/ids.h"
#include "util/result.h"

namespace mar::resource {

class ResourceManager final : public tx::Participant {
 public:
  explicit ResourceManager(storage::StableStorage& stable)
      : stable_(stable) {}

  /// Install a resource instance under `name`. Setup-time only.
  void add_resource(const std::string& name, std::unique_ptr<Resource> logic);
  [[nodiscard]] bool has_resource(const std::string& name) const;

  /// Invoke an operation within transaction `tx`. Takes the instance lock
  /// (held to commit/abort) and runs against the tx's overlay copy.
  Result<Value> invoke(TxId tx, const std::string& resource,
                       std::string_view op, const Value& params);

  /// Committed (post-commit) state, for tests and experiment checks.
  [[nodiscard]] const Value& committed_state(const std::string& name) const;

  /// Direct committed-state mutation for world setup (not transactional).
  void poke_state(const std::string& name, Value state);

  /// Whether any transaction currently holds the instance lock.
  [[nodiscard]] bool locked(const std::string& name) const;

  // Participant interface.
  [[nodiscard]] std::string name() const override { return "res"; }
  [[nodiscard]] bool has_tx(TxId tx) const override;
  bool prepare(TxId tx) override;
  void commit(TxId tx) override;
  void abort(TxId tx) override;
  void on_crash() override;

 private:
  struct Instance {
    std::unique_ptr<Resource> logic;
    Value state;
  };
  struct Overlay {
    std::map<std::string, Value> touched;
    /// Resources whose overlay state was actually modified. Read-only
    /// access must not write anything back at commit: comparing against
    /// the committed state is NOT equivalent (it may have been changed by
    /// world setup while we held the untouched copy).
    std::set<std::string> dirty;
    bool prepared = false;
  };

  [[nodiscard]] std::string prep_key(TxId tx) const {
    return "prep.res:" + std::to_string(tx.value());
  }
  void release_locks(TxId tx);

  storage::StableStorage& stable_;
  std::map<std::string, Instance> instances_;
  std::map<TxId, Overlay> overlays_;
  std::map<std::string, TxId> locks_;
};

}  // namespace mar::resource
