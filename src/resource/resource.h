// Resource abstraction: the "local resources" agents visit nodes to use.
//
// A Resource encapsulates the domain logic (bank, shop, currency exchange,
// ...) as pure operations over a serializable state Value. Transactional
// concerns — locking, overlays, durability, 2PC participation — live in
// ResourceManager, so resource authors only write operation logic plus its
// domain rules (e.g. "no overdraft"), mirroring how the paper layers agent
// operations over a conventional transactional resource manager.
#pragma once

#include <string>
#include <string_view>

#include "serial/value.h"
#include "util/result.h"

namespace mar::resource {

using serial::Value;

class Resource {
 public:
  virtual ~Resource() = default;

  /// Stable type identifier, e.g. "bank".
  [[nodiscard]] virtual std::string type_name() const = 0;

  /// State a fresh instance starts from.
  [[nodiscard]] virtual Value initial_state() const {
    return Value::empty_map();
  }

  /// Execute `op` with `params` against `state` (the transaction's private
  /// overlay copy). Return a result Value, or an error Status — in which
  /// case the caller discards any partial mutation by aborting.
  virtual Result<Value> invoke(std::string_view op, const Value& params,
                               Value& state) = 0;
};

}  // namespace mar::resource
