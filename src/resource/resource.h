// Resource abstraction: the "local resources" agents visit nodes to use.
//
// A Resource encapsulates the domain logic (bank, shop, currency exchange,
// ...) as pure operations over a serializable state Value. Transactional
// concerns — locking, overlays, durability, 2PC participation — live in
// ResourceManager, so resource authors only write operation logic plus its
// domain rules (e.g. "no overdraft"), mirroring how the paper layers agent
// operations over a conventional transactional resource manager.
//
// The paper's ACID envelope (Sec. 2) requires isolation per *datum*, not
// per instance: two agents touching different accounts of one bank need
// not serialize. A resource therefore declares, per operation, the keys
// within its state the operation reads and writes (KeySet); under per-key
// locking the manager locks and overlays exactly those keys, so conflicts
// only arise on overlapping key-sets. The default declaration — the whole
// instance — is always correct and reproduces classic instance locking.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "serial/value.h"
#include "util/result.h"

namespace mar::resource {

using serial::Value;

/// Lock/overlay granularity of a node's resource manager.
enum class LockGranularity {
  instance,  ///< one exclusive lock + one overlay per resource instance
  per_key,   ///< locks and copy-on-write overlays per declared state key
};

/// One lockable unit within a resource instance's state Value, named by a
/// path string:
///   "*"          the whole instance (the conservative fallback),
///   "slot"       a whole top-level slot of the state map,
///   "slot/sub"   one entry of a map-typed top-level slot (`sub` may
///                contain further '/'; only the first one separates).
struct KeyRef {
  std::string unit;
  bool write = true;
};

/// The read/write key-set an operation declares. Default-constructed it
/// means "whole instance"; adding the first read()/write() switches it to
/// an explicit key list.
struct KeySet {
  bool whole_instance = true;
  std::vector<KeyRef> keys;

  static KeySet whole() { return {}; }

  KeySet& read(std::string unit) {
    whole_instance = false;
    keys.push_back(KeyRef{std::move(unit), false});
    return *this;
  }
  KeySet& write(std::string unit) {
    whole_instance = false;
    keys.push_back(KeyRef{std::move(unit), true});
    return *this;
  }
};

class Resource {
 public:
  virtual ~Resource() = default;

  /// Stable type identifier, e.g. "bank".
  [[nodiscard]] virtual std::string type_name() const = 0;

  /// State a fresh instance starts from.
  [[nodiscard]] virtual Value initial_state() const {
    return Value::empty_map();
  }

  /// The keys `op` with `params` may read or write, consulted by the
  /// per-key locking mode before the operation runs. Whole-instance (the
  /// default) is always correct; overriding narrows the conflict
  /// footprint. Declarations must be conservative: under per-key locking
  /// a *write* outside the declared set is a hard (audited) error, while
  /// an undeclared *read* sees absent state — so every key whose presence
  /// or value the operation branches on must be declared.
  [[nodiscard]] virtual KeySet key_set(std::string_view op,
                                       const Value& params) const {
    (void)op;
    (void)params;
    return KeySet::whole();
  }

  /// Execute `op` with `params` against `state` (the transaction's private
  /// overlay copy — under per-key locking a sparse state holding exactly
  /// the declared keys). Return a result Value, or an error Status — in
  /// which case the caller discards any partial mutation by aborting.
  virtual Result<Value> invoke(std::string_view op, const Value& params,
                               Value& state) = 0;
};

}  // namespace mar::resource
