#include "resource/bank.h"

namespace mar::resource {

Value Bank::initial_state() const {
  Value state = Value::empty_map();
  state.set("accounts", Value::empty_map());
  return state;
}

KeySet Bank::key_set(std::string_view op, const Value& params) const {
  if (!params.is_map()) return KeySet::whole();
  const auto acct_key = [&params](std::string_view field) {
    return "accounts/" + params.at(field).as_string();
  };
  const bool has_acct = params.has("account") && params.at("account").is_string();
  if ((op == "open" || op == "deposit" || op == "withdraw") && has_acct) {
    return KeySet().write(acct_key("account"));
  }
  if (op == "balance" && has_acct) {
    return KeySet().read(acct_key("account"));
  }
  if (op == "transfer" && params.has("from") && params.at("from").is_string() &&
      params.has("to") && params.at("to").is_string()) {
    return KeySet().write(acct_key("from")).write(acct_key("to"));
  }
  return KeySet::whole();
}

std::int64_t Bank::balance_in(const Value& state, const std::string& account) {
  return state.at("accounts").at(account).at("balance").as_int();
}

Result<Value> Bank::invoke(std::string_view op, const Value& params,
                           Value& state) {
  Value& accounts = state.as_map().at("accounts");

  auto find_account = [&](const std::string& id) -> Value* {
    auto it = accounts.as_map().find(id);
    return it == accounts.as_map().end() ? nullptr : &it->second;
  };

  if (op == "open") {
    const auto& id = params.at("account").as_string();
    if (find_account(id) != nullptr) {
      return Status(Errc::rejected, "account exists: " + id);
    }
    Value acc = Value::empty_map();
    acc.set("balance", std::int64_t{0});
    acc.set("overdraft", params.get_or("overdraft", false));
    accounts.set(id, std::move(acc));
    return Value::empty_map();
  }

  if (op == "deposit" || op == "withdraw") {
    const auto& id = params.at("account").as_string();
    const auto amount = params.at("amount").as_int();
    if (amount < 0) return Status(Errc::rejected, "negative amount");
    Value* acc = find_account(id);
    if (acc == nullptr) return Status(Errc::not_found, "no account " + id);
    auto balance = acc->at("balance").as_int();
    if (op == "deposit") {
      balance += amount;
    } else {
      if (balance < amount && !acc->at("overdraft").as_bool()) {
        // Sec. 3.2: the compensation of a deposit is a withdraw that may
        // fail if the money has been taken in the meantime.
        return Status(Errc::rejected, "insufficient funds in " + id);
      }
      balance -= amount;
    }
    acc->set("balance", balance);
    Value result = Value::empty_map();
    result.set("balance", balance);
    return result;
  }

  if (op == "transfer") {
    const auto& from = params.at("from").as_string();
    const auto& to = params.at("to").as_string();
    const auto amount = params.at("amount").as_int();
    Value wp = Value::empty_map();
    wp.set("account", from);
    wp.set("amount", amount);
    auto w = invoke("withdraw", wp, state);
    if (!w.is_ok()) return w.status();
    Value dp = Value::empty_map();
    dp.set("account", to);
    dp.set("amount", amount);
    return invoke("deposit", dp, state);
  }

  if (op == "balance") {
    const auto& id = params.at("account").as_string();
    Value* acc = find_account(id);
    if (acc == nullptr) return Status(Errc::not_found, "no account " + id);
    Value result = Value::empty_map();
    result.set("balance", acc->at("balance").as_int());
    return result;
  }

  return Status(Errc::rejected, "bank: unknown op " + std::string(op));
}

}  // namespace mar::resource
