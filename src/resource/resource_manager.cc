#include "resource/resource_manager.h"

#include <algorithm>

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "serial/serializable.h"
#include "util/check.h"

namespace mar::resource {

namespace {

constexpr std::string_view kWholeInstance = "*";

// --- unit algebra ----------------------------------------------------------
// A unit is "*" (whole instance), "slot" (whole top-level slot) or
// "slot/sub" (one entry of a map-typed slot; only the FIRST '/' separates,
// so subs may contain '/' themselves, e.g. exchange pairs "EUR/USD").

std::string_view unit_slot(std::string_view unit) {
  const auto pos = unit.find('/');
  return pos == std::string_view::npos ? unit : unit.substr(0, pos);
}

std::string_view unit_sub(std::string_view unit) {
  const auto pos = unit.find('/');
  return pos == std::string_view::npos ? std::string_view{}
                                       : unit.substr(pos + 1);
}

/// Does locking/overlaying `a` subsume `b`?
bool unit_covers(std::string_view a, std::string_view b) {
  if (a == kWholeInstance) return true;
  if (b == kWholeInstance) return false;
  if (unit_slot(a) != unit_slot(b)) return false;
  return unit_sub(a).empty() || a == b;
}

bool units_overlap(std::string_view a, std::string_view b) {
  return unit_covers(a, b) || unit_covers(b, a);
}

/// Drop duplicates and units covered by another unit in the set; a covered
/// write promotes its coverer to write.
void normalize_units(std::vector<KeyRef>& units) {
  std::vector<KeyRef> out;
  for (auto& u : units) {
    bool absorbed = false;
    for (auto& v : out) {
      if (unit_covers(v.unit, u.unit)) {
        v.write = v.write || u.write;
        absorbed = true;
        break;
      }
    }
    if (absorbed) continue;
    // u may in turn cover earlier units: absorb them into u.
    std::erase_if(out, [&u](const KeyRef& v) {
      if (!unit_covers(u.unit, v.unit)) return false;
      u.write = u.write || v.write;
      return true;
    });
    out.push_back(std::move(u));
  }
  units = std::move(out);
}

}  // namespace

void ResourceManager::add_resource(const std::string& name,
                                   std::unique_ptr<Resource> logic) {
  MAR_CHECK_MSG(!instances_.contains(name), "duplicate resource " << name);
  Value state = logic->initial_state();
  instances_.emplace(name, Instance{std::move(logic), std::move(state)});
}

bool ResourceManager::has_resource(const std::string& name) const {
  return instances_.contains(name);
}

Result<Value> ResourceManager::invoke(TxId tx, const std::string& resource,
                                      std::string_view op,
                                      const Value& params) {
  auto it = instances_.find(resource);
  if (it == instances_.end()) {
    return Status(Errc::not_found, "no such resource: " + resource);
  }
  if (granularity_ == LockGranularity::per_key) {
    return invoke_per_key(tx, it->second, resource, op, params);
  }
  // Strict exclusive locking, no waiting: a conflict aborts the caller's
  // transaction, which the platform restarts later (Sec. 2 abort/restart).
  auto lock = locks_.find(resource);
  if (lock != locks_.end() && lock->second != tx) {
    if (audit_) audit_->on_conflict(tx, lock->second);
    return Status(Errc::lock_conflict,
                  "resource " + resource + " locked by tx " +
                      std::to_string(lock->second.value()));
  }
  locks_[resource] = tx;
  if (audit_) audit_->on_acquire(tx, resource, "*");
  auto& overlay = overlays_[tx];
  auto [sit, inserted] =
      overlay.touched.try_emplace(resource, it->second.state);
  Value& state = sit->second;
  Value before = state;
  auto result = it->second.logic->invoke(op, params, state);
  if (!result.is_ok()) {
    // Failed operations must not leave partial mutations in the overlay;
    // the transaction may continue with other work.
    state = std::move(before);
  } else if (state != before) {
    overlay.dirty.insert(resource);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Per-key path
// ---------------------------------------------------------------------------

ResourceManager::KeySlice ResourceManager::read_unit(
    const Value& root, std::string_view unit) {
  if (unit == kWholeInstance) return {root, true, false};
  const auto slot = unit_slot(unit);
  const auto sub = unit_sub(unit);
  if (!root.has(slot)) return {Value(), false, false};
  const Value& sv = root.at(slot);
  if (sub.empty()) return {sv, true, false};
  if (!sv.is_map() || !sv.has(sub)) return {Value(), false, false};
  return {sv.at(sub), true, false};
}

ResourceManager::KeySlice ResourceManager::committed_slice(
    const Instance& inst, const std::string& unit) const {
  const auto sub = unit_sub(unit);
  if (!sub.empty() && inst.state.has(unit_slot(unit))) {
    MAR_CHECK_MSG(inst.state.at(unit_slot(unit)).is_map(),
                  "key-set declares sub-key of non-map slot "
                      << unit_slot(unit));
  }
  return read_unit(inst.state, unit);
}

void ResourceManager::fold_into(const Instance& inst,
                                std::map<std::string, KeySlice>& res_slices,
                                const std::string& unit) {
  // Merge every existing slice the (wider) `unit` covers into one slice at
  // `unit`, so the tx's units stay pairwise non-overlapping.
  std::vector<std::string> covered;
  for (const auto& [v, slice] : res_slices) {
    if (v != unit && unit_covers(unit, v)) covered.push_back(v);
  }
  if (covered.empty()) return;
  MAR_DCHECK(!res_slices.contains(unit));  // would overlap `covered`
  KeySlice merged = committed_slice(inst, unit);
  for (const auto& v : covered) {
    KeySlice& s = res_slices.at(v);
    merged.dirty = merged.dirty || s.dirty;
    if (unit == kWholeInstance && unit_sub(v).empty()) {
      if (s.present) {
        merged.value.set(unit_slot(v), std::move(s.value));
      } else {
        merged.value.erase(unit_slot(v));
      }
    } else {
      // Covered unit is "slot/sub"; merged is "*" or "slot".
      const auto slot = unit_slot(v);
      Value* target = &merged.value;
      if (unit == kWholeInstance) {
        if (!merged.value.has(slot)) merged.value.set(slot, Value::empty_map());
        target = &merged.value.as_map().at(std::string(slot));
      } else if (!merged.present) {
        merged.value = Value::empty_map();
        merged.present = true;
      }
      if (s.present) {
        target->set(unit_sub(v), std::move(s.value));
      } else {
        target->erase(unit_sub(v));
      }
    }
    res_slices.erase(v);
  }
  res_slices.emplace(unit, std::move(merged));
}

Status ResourceManager::acquire_key_locks(TxId tx, const std::string& resource,
                                          const std::vector<KeyRef>& units) {
  // All-or-nothing, no waiting: check every requested unit against every
  // held overlapping unit first, then record the grants.
  auto tit = key_locks_.find(resource);
  if (tit != key_locks_.end()) {
    for (const auto& u : units) {
      for (const auto& [held, l] : tit->second) {
        if (!units_overlap(u.unit, held)) continue;
        if (l.writer.valid() && l.writer != tx) {
          if (audit_) audit_->on_conflict(tx, l.writer);
          return Status(Errc::lock_conflict,
                        "resource " + resource + " key " + u.unit +
                            " locked by tx " + std::to_string(l.writer.value()));
        }
        if (u.write) {
          for (const TxId r : l.readers) {
            if (r != tx) {
              if (audit_) audit_->on_conflict(tx, r);
              return Status(Errc::lock_conflict,
                            "resource " + resource + " key " + u.unit +
                                " read-locked by tx " +
                                std::to_string(r.value()));
            }
          }
        }
      }
    }
  }
  auto& table = key_locks_[resource];
  for (const auto& u : units) {
    auto& l = table[u.unit];
    if (u.write) {
      l.writer = tx;
    } else {
      l.readers.insert(tx);
    }
    if (audit_) audit_->on_acquire(tx, resource, u.unit);
  }
  return Status::ok();
}

Result<Value> ResourceManager::invoke_per_key(TxId tx, Instance& inst,
                                              const std::string& resource,
                                              std::string_view op,
                                              const Value& params) {
  KeySet ks = inst.logic->key_set(op, params);
  std::vector<KeyRef> units;
  if (ks.whole_instance || ks.keys.empty()) {
    // Whole-instance access is one exclusive "*" key: semantics identical
    // to instance granularity for this operation.
    units.push_back(KeyRef{std::string(kWholeInstance), true});
  } else {
    units = std::move(ks.keys);
    normalize_units(units);
  }

  // Widen requested units to any covering unit this tx already staged, so
  // the operation sees (and writes back through) its own earlier effects.
  auto oit = overlays_.find(tx);
  if (oit != overlays_.end()) {
    auto rit = oit->second.slices.find(resource);
    if (rit != oit->second.slices.end()) {
      for (auto& u : units) {
        for (const auto& [held_unit, slice] : rit->second) {
          if (held_unit != u.unit && unit_covers(held_unit, u.unit)) {
            u.unit = held_unit;
            break;
          }
        }
      }
      normalize_units(units);
    }
  }

  MAR_RETURN_IF_ERROR(acquire_key_locks(tx, resource, units));

  auto& res_slices = overlays_[tx].slices[resource];
  // The other direction of widening: a requested unit may cover slices
  // staged earlier at finer grain — fold them so units stay disjoint.
  for (const auto& u : units) fold_into(inst, res_slices, u.unit);

  // Materialize the sparse working state: exactly the declared units,
  // each read through the overlay (repeatable reads within the tx). The
  // materialized slice doubles as the pre-op snapshot for change
  // detection, so each unit is copied once into `working` and kept.
  Value working = Value::empty_map();
  std::map<std::string, KeySlice> before;
  for (const auto& u : units) {
    auto sit = res_slices.find(u.unit);
    KeySlice slice = sit != res_slices.end() ? sit->second
                                             : committed_slice(inst, u.unit);
    if (u.unit == kWholeInstance) {
      working = slice.value;
      before.emplace(u.unit, std::move(slice));
      break;  // normalize_units guarantees "*" is alone
    }
    const auto slot = unit_slot(u.unit);
    const auto sub = unit_sub(u.unit);
    if (sub.empty()) {
      if (slice.present) working.set(slot, slice.value);
    } else {
      if (!working.has(slot)) working.set(slot, Value::empty_map());
      if (slice.present) {
        working.as_map().at(std::string(slot)).set(sub, slice.value);
      }
    }
    before.emplace(u.unit, std::move(slice));
  }

  auto result = inst.logic->invoke(op, params, working);
  if (!result.is_ok()) {
    // Failed operations leave no trace in the overlay (the working copy is
    // discarded); acquired locks are held to tx end, as in instance mode.
    return result;
  }

  // Declaration audit: everything the operation created or changed must be
  // covered by a declared write unit — undeclared effects would silently
  // vanish at commit.
  if (units.front().unit != kWholeInstance) {
    for (const auto& [slot, sv] : working.as_map()) {
      bool slot_declared = false;
      bool sub_only = true;
      for (const auto& u : units) {
        if (unit_slot(u.unit) != slot) continue;
        slot_declared = true;
        sub_only = sub_only && !unit_sub(u.unit).empty();
      }
      MAR_CHECK_MSG(slot_declared,
                    "resource " << resource << " op " << op
                                << " touched undeclared slot " << slot);
      if (!sub_only) continue;
      MAR_CHECK_MSG(sv.is_map(), "resource " << resource << " op " << op
                                             << " replaced keyed slot "
                                             << slot << " wholesale");
      for (const auto& [sub, ignored] : sv.as_map()) {
        (void)ignored;
        const std::string full = slot + "/" + sub;
        const bool declared =
            std::any_of(units.begin(), units.end(), [&full](const KeyRef& u) {
              return u.unit == full;
            });
        MAR_CHECK_MSG(declared, "resource " << resource << " op " << op
                                            << " touched undeclared key "
                                            << full);
      }
    }
  }

  for (const auto& u : units) {
    KeySlice after = read_unit(working, u.unit);
    const KeySlice& prev = before.at(u.unit);
    const bool changed =
        after.present != prev.present ||
        (after.present && !(after.value == prev.value));
    MAR_CHECK_MSG(!changed || u.write, "resource " << resource << " op " << op
                                                   << " wrote read-only key "
                                                   << u.unit);
    auto sit = res_slices.find(u.unit);
    const bool was_dirty = sit != res_slices.end() && sit->second.dirty;
    res_slices[u.unit] =
        KeySlice{std::move(after.value), after.present, changed || was_dirty};
  }
  return result;
}

// ---------------------------------------------------------------------------
// Committed state, locks
// ---------------------------------------------------------------------------

const Value& ResourceManager::committed_state(const std::string& name) const {
  auto it = instances_.find(name);
  MAR_CHECK_MSG(it != instances_.end(), "no such resource " << name);
  return it->second.state;
}

void ResourceManager::poke_state(const std::string& name, Value state) {
  auto it = instances_.find(name);
  MAR_CHECK_MSG(it != instances_.end(), "no such resource " << name);
  it->second.state = std::move(state);
}

bool ResourceManager::locked(const std::string& name) const {
  if (locks_.contains(name)) return true;
  auto it = key_locks_.find(name);
  return it != key_locks_.end() && !it->second.empty();
}

bool ResourceManager::locked_key(const std::string& name,
                                 const std::string& unit) const {
  if (locks_.contains(name)) return true;
  auto it = key_locks_.find(name);
  if (it == key_locks_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&unit](const auto& kv) {
                       return units_overlap(kv.first, unit);
                     });
}

// ---------------------------------------------------------------------------
// Participant interface
// ---------------------------------------------------------------------------

bool ResourceManager::has_tx(TxId tx) const { return overlays_.contains(tx); }

bool ResourceManager::prepare(TxId tx) {
  auto it = overlays_.find(tx);
  if (it == overlays_.end()) return false;
  if (it->second.prepared) return true;  // idempotent
  serial::Encoder enc;
  if (granularity_ == LockGranularity::per_key) {
    // Only dirty slices need to survive a crash; the write path pays
    // O(touched keys), not O(instance state). The counting pass doubles
    // as the size pass, so the marker is one allocation.
    std::size_t dirty = 0;
    std::size_t bytes = 0;
    for (const auto& [resource, res_slices] : it->second.slices) {
      for (const auto& [unit, slice] : res_slices) {
        if (!slice.dirty) continue;
        ++dirty;
        bytes += serial::blob_size(resource.size()) +
                 serial::blob_size(unit.size()) + 1 +
                 (slice.present ? slice.value.encoded_size() : 0);
      }
    }
    enc.reserve(serial::varint_size(dirty) + bytes);
    enc.write_varint(dirty);
    for (const auto& [resource, res_slices] : it->second.slices) {
      for (const auto& [unit, slice] : res_slices) {
        if (!slice.dirty) continue;
        enc.write_string(resource);
        enc.write_string(unit);
        enc.write_bool(slice.present);
        if (slice.present) slice.value.serialize(enc);
      }
    }
  } else {
    // Only modified states need to survive a crash; clean copies are
    // reconstructible (and irrelevant to the commit).
    std::size_t bytes = serial::varint_size(it->second.dirty.size());
    for (const auto& name : it->second.dirty) {
      bytes += serial::blob_size(name.size()) +
               it->second.touched.at(name).encoded_size();
    }
    enc.reserve(bytes);
    enc.write_varint(it->second.dirty.size());
    for (const auto& name : it->second.dirty) {
      enc.write_string(name);
      it->second.touched.at(name).serialize(enc);
    }
  }
  stable_.put(prep_key(tx), std::move(enc).take());
  it->second.prepared = true;
  return true;
}

void ResourceManager::commit_per_key(TxId tx, Overlay& overlay) {
  (void)tx;
  for (auto& [resource, res_slices] : overlay.slices) {
    auto iit = instances_.find(resource);
    MAR_DCHECK(iit != instances_.end());
    Value& state = iit->second.state;
    for (auto& [unit, slice] : res_slices) {
      // Read-only access writes nothing back (and costs no stable I/O).
      if (!slice.dirty) continue;
      // Committed resource state is durable (models the resource's DB) —
      // metered per key, so a one-account commit pays one account's bytes.
      serial::Bytes durable =
          slice.present ? serial::to_bytes(slice.value) : serial::Bytes{};
      if (unit == kWholeInstance) {
        state = std::move(slice.value);
        stable_.put("res:" + resource, std::move(durable));
        continue;
      }
      const auto slot = unit_slot(unit);
      const auto sub = unit_sub(unit);
      if (sub.empty()) {
        if (slice.present) {
          state.set(slot, std::move(slice.value));
        } else {
          state.erase(slot);
        }
      } else {
        if (!state.has(slot)) state.set(slot, Value::empty_map());
        Value& sv = state.as_map().at(std::string(slot));
        if (slice.present) {
          sv.set(sub, std::move(slice.value));
        } else {
          sv.erase(sub);
        }
      }
      stable_.put("res:" + resource + "/" + unit, std::move(durable));
    }
  }
}

void ResourceManager::commit(TxId tx) {
  auto it = overlays_.find(tx);
  if (it == overlays_.end()) return;  // idempotent
  if (granularity_ == LockGranularity::per_key) {
    commit_per_key(tx, it->second);
  } else {
    for (auto& [name, state] : it->second.touched) {
      // Read-only access writes nothing back (and costs no stable I/O).
      if (!it->second.dirty.contains(name)) continue;
      auto iit = instances_.find(name);
      MAR_DCHECK(iit != instances_.end());
      iit->second.state = std::move(state);
      // Committed resource state is durable (models the resource's DB).
      stable_.put("res:" + name, serial::to_bytes(iit->second.state));
    }
  }
  stable_.erase(prep_key(tx));
  overlays_.erase(it);
  release_locks(tx);
}

void ResourceManager::abort(TxId tx) {
  // Drops the whole staging for the transaction — including per-key
  // overlay slices — together with its locks: an aborted invoke must
  // leave neither lock nor slice behind.
  overlays_.erase(tx);
  stable_.erase(prep_key(tx));
  release_locks(tx);
}

void ResourceManager::release_locks(TxId tx) {
  if (audit_) audit_->on_release(tx);
  std::erase_if(locks_, [tx](const auto& kv) { return kv.second == tx; });
  for (auto rit = key_locks_.begin(); rit != key_locks_.end();) {
    auto& table = rit->second;
    for (auto uit = table.begin(); uit != table.end();) {
      UnitLock& l = uit->second;
      if (l.writer == tx) l.writer = TxId::invalid();
      l.readers.erase(tx);
      if (!l.writer.valid() && l.readers.empty()) {
        uit = table.erase(uit);
      } else {
        ++uit;
      }
    }
    if (table.empty()) {
      rit = key_locks_.erase(rit);
    } else {
      ++rit;
    }
  }
}

void ResourceManager::on_crash() {
  // All in-flight overlays and locks are volatile; prepared overlays are
  // reloaded from stable storage and their locks re-acquired (a prepared
  // participant must keep isolating its writes until the decision).
  overlays_.clear();
  locks_.clear();
  key_locks_.clear();
  if (audit_) audit_->reset();
  stable_.for_each_with_prefix("prep.res:", [this](const std::string& key,
                                                   const serial::Bytes&
                                                       bytes) {
    const TxId tx(std::stoull(key.substr(9)));
    serial::Decoder dec(bytes);
    Overlay o;
    o.prepared = true;
    const auto n = dec.read_varint();
    if (granularity_ == LockGranularity::per_key) {
      for (std::uint64_t i = 0; i < n; ++i) {
        auto resource = dec.read_string();
        auto unit = dec.read_string();
        KeySlice slice;
        slice.dirty = true;
        slice.present = dec.read_bool();
        if (slice.present) slice.value.deserialize(dec);
        key_locks_[resource][unit].writer = tx;
        if (audit_) audit_->on_acquire(tx, resource, unit);
        o.slices[resource].emplace(std::move(unit), std::move(slice));
      }
    } else {
      for (std::uint64_t i = 0; i < n; ++i) {
        auto name = dec.read_string();
        Value state;
        state.deserialize(dec);
        locks_[name] = tx;
        if (audit_) audit_->on_acquire(tx, name, "*");
        o.dirty.insert(name);
        o.touched.emplace(std::move(name), std::move(state));
      }
    }
    overlays_.emplace(tx, std::move(o));
  });
}

}  // namespace mar::resource
