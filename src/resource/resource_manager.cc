#include "resource/resource_manager.h"

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "serial/serializable.h"
#include "util/check.h"

namespace mar::resource {

void ResourceManager::add_resource(const std::string& name,
                                   std::unique_ptr<Resource> logic) {
  MAR_CHECK_MSG(!instances_.contains(name), "duplicate resource " << name);
  Value state = logic->initial_state();
  instances_.emplace(name, Instance{std::move(logic), std::move(state)});
}

bool ResourceManager::has_resource(const std::string& name) const {
  return instances_.contains(name);
}

Result<Value> ResourceManager::invoke(TxId tx, const std::string& resource,
                                      std::string_view op,
                                      const Value& params) {
  auto it = instances_.find(resource);
  if (it == instances_.end()) {
    return Status(Errc::not_found, "no such resource: " + resource);
  }
  // Strict exclusive locking, no waiting: a conflict aborts the caller's
  // transaction, which the platform restarts later (Sec. 2 abort/restart).
  auto lock = locks_.find(resource);
  if (lock != locks_.end() && lock->second != tx) {
    return Status(Errc::lock_conflict,
                  "resource " + resource + " locked by tx " +
                      std::to_string(lock->second.value()));
  }
  locks_[resource] = tx;
  auto& overlay = overlays_[tx];
  auto [sit, inserted] =
      overlay.touched.try_emplace(resource, it->second.state);
  Value& state = sit->second;
  Value before = state;
  auto result = it->second.logic->invoke(op, params, state);
  if (!result.is_ok()) {
    // Failed operations must not leave partial mutations in the overlay;
    // the transaction may continue with other work.
    state = std::move(before);
  } else if (state != before) {
    overlay.dirty.insert(resource);
  }
  return result;
}

const Value& ResourceManager::committed_state(const std::string& name) const {
  auto it = instances_.find(name);
  MAR_CHECK_MSG(it != instances_.end(), "no such resource " << name);
  return it->second.state;
}

void ResourceManager::poke_state(const std::string& name, Value state) {
  auto it = instances_.find(name);
  MAR_CHECK_MSG(it != instances_.end(), "no such resource " << name);
  it->second.state = std::move(state);
}

bool ResourceManager::locked(const std::string& name) const {
  return locks_.contains(name);
}

bool ResourceManager::has_tx(TxId tx) const { return overlays_.contains(tx); }

bool ResourceManager::prepare(TxId tx) {
  auto it = overlays_.find(tx);
  if (it == overlays_.end()) return false;
  if (it->second.prepared) return true;  // idempotent
  // Only modified states need to survive a crash; clean copies are
  // reconstructible (and irrelevant to the commit).
  serial::Encoder enc;
  enc.write_varint(it->second.dirty.size());
  for (const auto& name : it->second.dirty) {
    enc.write_string(name);
    it->second.touched.at(name).serialize(enc);
  }
  stable_.put(prep_key(tx), std::move(enc).take());
  it->second.prepared = true;
  return true;
}

void ResourceManager::commit(TxId tx) {
  auto it = overlays_.find(tx);
  if (it == overlays_.end()) return;  // idempotent
  for (auto& [name, state] : it->second.touched) {
    // Read-only access writes nothing back (and costs no stable I/O).
    if (!it->second.dirty.contains(name)) continue;
    auto iit = instances_.find(name);
    MAR_CHECK(iit != instances_.end());
    iit->second.state = std::move(state);
    // Committed resource state is durable (models the resource's DB).
    stable_.put("res:" + name, serial::to_bytes(iit->second.state));
  }
  stable_.erase(prep_key(tx));
  overlays_.erase(it);
  release_locks(tx);
}

void ResourceManager::abort(TxId tx) {
  overlays_.erase(tx);
  stable_.erase(prep_key(tx));
  release_locks(tx);
}

void ResourceManager::release_locks(TxId tx) {
  std::erase_if(locks_, [tx](const auto& kv) { return kv.second == tx; });
}

void ResourceManager::on_crash() {
  // All in-flight overlays and locks are volatile; prepared overlays are
  // reloaded from stable storage and their locks re-acquired (a prepared
  // participant must keep isolating its writes until the decision).
  overlays_.clear();
  locks_.clear();
  stable_.for_each_with_prefix("prep.res:", [this](const std::string& key,
                                                   const serial::Bytes&
                                                       bytes) {
    const TxId tx(std::stoull(key.substr(9)));
    serial::Decoder dec(bytes);
    Overlay o;
    o.prepared = true;
    const auto n = dec.read_varint();
    for (std::uint64_t i = 0; i < n; ++i) {
      auto name = dec.read_string();
      Value state;
      state.deserialize(dec);
      locks_[name] = tx;
      o.dirty.insert(name);
      o.touched.emplace(std::move(name), std::move(state));
    }
    overlays_.emplace(tx, std::move(o));
  });
}

}  // namespace mar::resource
