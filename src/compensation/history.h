// Formal model of compensation (paper Sec. 3, following Korth et al. [8]).
//
// Operations are functions over the *augmented state* — the resource state
// space merged with the agent's private data space — and a history is both
// a sequence of operations and the state-to-state function the sequence
// composes (X = f1 • f2 • ... • fn). Two histories are equal iff they map
// every state to the same state; since the state space is unbounded, the
// checkers here evaluate equality over caller-supplied sample states,
// which is exact for the finite scenarios the tests construct and a sound
// falsifier in general (a counterexample proves non-equivalence).
//
// The module provides the paper's Sec. 3.1 definitions — history equality,
// commutation — and the Sec. 3.2 soundness criterion: the history X of
// T, CT and dep(T) is *sound* iff X(S) = Y(S) where Y is the history of
// dep(T) alone. It also checks the sufficient condition the paper cites:
// if CT's operations commute with every operation of dep(T), the history
// is sound. Note that soundness implies T • CT ≡ I on the touched states.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "serial/value.h"

namespace mar::compensation {

/// The augmented state: a structured value (by convention a map with a
/// "resources" and an "agent" subtree, but the formalism does not care).
using State = serial::Value;

/// An operation f mapping augmented states to augmented states. Operations
/// may read and write any number of entities of the augmented state.
struct Operation {
  std::string name;
  std::function<State(const State&)> fn;

  [[nodiscard]] State operator()(const State& s) const { return fn(s); }
};

/// A history: a total order of operations *and* the composed function.
class History {
 public:
  History() = default;
  History(std::initializer_list<Operation> ops) : ops_(ops) {}
  explicit History(std::vector<Operation> ops) : ops_(std::move(ops)) {}

  void append(Operation op) { ops_.push_back(std::move(op)); }
  /// Concatenation: *this followed by `other` (X • Y).
  [[nodiscard]] History then(const History& other) const;
  /// The reversal of the sequence (used to build compensation order).
  [[nodiscard]] History reversed() const;

  [[nodiscard]] const std::vector<Operation>& ops() const { return ops_; }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

  /// Apply the composed function to a state.
  [[nodiscard]] State apply(State s) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Operation> ops_;
};

/// X ≡ Y over the given sample states: X(S) = Y(S) for every sample.
[[nodiscard]] bool equivalent(const History& x, const History& y,
                              std::span<const State> samples);

/// Two operations commute iff (f • g) ≡ (g • f) over the samples.
[[nodiscard]] bool commute(const Operation& f, const Operation& g,
                           std::span<const State> samples);

/// Two histories commute iff (X • Y) ≡ (Y • X) over the samples.
[[nodiscard]] bool commute(const History& x, const History& y,
                           std::span<const State> samples);

/// Sec. 3.2 soundness: `executed` is the actually executed history of
/// T, CT and dep(T) (any interleaving consistent with T < CT); it is sound
/// iff it maps `initial` to the same state as executing dep(T) alone.
[[nodiscard]] bool sound(const History& executed, const History& dep_only,
                         const State& initial);

/// The paper's sufficient condition: if every operation of CT commutes
/// with every operation of dep(T) (over the samples), then the history of
/// T, CT, dep(T) is sound. Checking the condition, not the conclusion.
[[nodiscard]] bool compensation_commutes_with_dependents(
    const History& ct, const History& dep, std::span<const State> samples);

/// Classification of a compensating operation for a given forward
/// operation, over sample states (Sec. 3.2's taxonomy).
enum class CompensationClass {
  /// T • CT ≡ I on all samples (perfect undo; enables sound histories).
  identity,
  /// T • CT produces a state *equivalent but not equal* under the supplied
  /// equivalence predicate (e.g. same cash value, new serial numbers).
  state_equivalent,
  /// CT fails on at least one sample reachable after T (e.g. overdraft).
  may_fail,
  /// T • CT yields a state that is not even application-equivalent to the
  /// initial one: the operation cannot be compensated (Sec. 3.2's final
  /// category; such a step must not be rolled back after commit).
  not_compensatable,
};

/// Classify CT relative to T. `equiv` decides application-level
/// equivalence; `fails` reports whether CT is inapplicable in a state.
[[nodiscard]] CompensationClass classify(
    const Operation& t, const Operation& ct, std::span<const State> samples,
    const std::function<bool(const State&, const State&)>& equiv,
    const std::function<bool(const State&)>& ct_applicable);

}  // namespace mar::compensation
