#include "compensation/history.h"

namespace mar::compensation {

History History::then(const History& other) const {
  History out(*this);
  out.ops_.insert(out.ops_.end(), other.ops_.begin(), other.ops_.end());
  return out;
}

History History::reversed() const {
  History out;
  out.ops_.assign(ops_.rbegin(), ops_.rend());
  return out;
}

State History::apply(State s) const {
  for (const auto& op : ops_) s = op(s);
  return s;
}

std::string History::to_string() const {
  std::string s = "<";
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (i > 0) s += ", ";
    s += ops_[i].name;
  }
  s += ">";
  return s;
}

bool equivalent(const History& x, const History& y,
                std::span<const State> samples) {
  for (const auto& s : samples) {
    if (x.apply(s) != y.apply(s)) return false;
  }
  return true;
}

bool commute(const Operation& f, const Operation& g,
             std::span<const State> samples) {
  for (const auto& s : samples) {
    if (g(f(s)) != f(g(s))) return false;
  }
  return true;
}

bool commute(const History& x, const History& y,
             std::span<const State> samples) {
  return equivalent(x.then(y), y.then(x), samples);
}

bool sound(const History& executed, const History& dep_only,
           const State& initial) {
  return executed.apply(initial) == dep_only.apply(initial);
}

bool compensation_commutes_with_dependents(const History& ct,
                                           const History& dep,
                                           std::span<const State> samples) {
  for (const auto& c : ct.ops()) {
    for (const auto& d : dep.ops()) {
      if (!commute(c, d, samples)) return false;
    }
  }
  return true;
}

CompensationClass classify(
    const Operation& t, const Operation& ct, std::span<const State> samples,
    const std::function<bool(const State&, const State&)>& equiv,
    const std::function<bool(const State&)>& ct_applicable) {
  bool all_identity = true;
  for (const auto& s : samples) {
    const State after_t = t(s);
    if (!ct_applicable(after_t)) return CompensationClass::may_fail;
    const State round_trip = ct(after_t);
    if (round_trip == s) continue;
    all_identity = false;
    if (!equiv(round_trip, s)) return CompensationClass::not_compensatable;
  }
  return all_identity ? CompensationClass::identity
                      : CompensationClass::state_equivalent;
}

}  // namespace mar::compensation
