// Experiment A4 — node multiprogramming throughput.
//
// The exactly-once step protocol isolates concurrent steps through
// transactions and resource locks; the slotted node scheduler
// (PlatformConfig::node_concurrency) exploits that to run several queue
// records per node at once. This experiment measures what multiprogramming
// buys and what contention costs:
//
//   contention-free  a fleet of F agents, each executing S lock-free
//                    "work" steps (pure service time) on one node:
//                    agents/sec should scale with the slot count until
//                    slots outnumber agents;
//   contended        the same fleet where every step locks the node's one
//                    directory resource: concurrent slots surface lock
//                    conflicts that abort the losers into backoff/retry,
//                    capping the scaling (the honest cost curve).
//
// All worlds are independent and deterministic per seed, so the whole
// sweep — plus a seed-replicated reproducibility check — runs through the
// expt/ parallel multi-world driver on OS threads.
#include <algorithm>
#include <chrono>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "expt/parallel_worlds.h"

using namespace mar;
using agent::AgentOutcome;
using agent::Itinerary;
using harness::TestWorld;

namespace {

constexpr int kSteps = 8;

struct FleetResult {
  bool ok = false;
  int fleet = 0;
  std::uint32_t concurrency = 1;
  bool contended = false;
  sim::TimeUs makespan_us = 0;
  double mean_us = 0;
  sim::TimeUs p95_us = 0;
  double agents_per_sec = 0;
  std::uint64_t lock_conflicts = 0;
  /// Per-step commit latency percentiles (step.latency_us histogram).
  double step_p50_us = 0;
  double step_p95_us = 0;
  double step_p99_us = 0;
  std::string metrics_json;  ///< uniform per-cell metrics block
};

FleetResult run_fleet(int fleet, std::uint32_t concurrency, bool contended,
                      std::uint64_t seed, bool tracing = true) {
  agent::PlatformConfig cfg;
  cfg.node_concurrency = concurrency;
  cfg.span_tracing = tracing;
  // A4 measures the slotted scheduler against the CLASSIC envelope —
  // exact serialized makespans, and instance-lock conflicts as the
  // contention signal — so the newer defaults (per-key locking, group
  // commit) are pinned off; A6/A7 sweep those knobs deliberately.
  cfg.lock_granularity = resource::LockGranularity::instance;
  cfg.group_commit_window = 1;
  TestWorld w(cfg, /*node_count=*/1, seed);
  harness::register_workload(w.platform);
  w.publish(1, "info", serial::Value("x"));

  std::vector<AgentId> ids;
  ids.reserve(static_cast<std::size_t>(fleet));
  for (int a = 0; a < fleet; ++a) {
    auto ag = std::make_unique<harness::WorkloadAgent>();
    Itinerary tour;
    for (int s = 0; s < kSteps; ++s) {
      tour.step(contended ? "collect" : "work", TestWorld::n(1));
    }
    Itinerary main_it;
    main_it.sub(std::move(tour));
    ag->itinerary() = std::move(main_it);
    auto r = w.platform.launch(std::move(ag));
    MAR_CHECK(r.is_ok());
    ids.push_back(r.value());
  }

  FleetResult res;
  res.fleet = fleet;
  res.concurrency = concurrency;
  res.contended = contended;
  if (!w.platform.run_until_all_finished(ids)) return res;

  std::vector<sim::TimeUs> done_at;
  bool all_ok = true;
  for (const auto id : ids) {
    const auto& out = w.platform.outcome(id);
    all_ok = all_ok && out.state == AgentOutcome::State::done;
    if (out.state != AgentOutcome::State::done) continue;
    done_at.push_back(out.finished_at);
    auto fin = w.platform.decode(out.final_agent);
    all_ok = all_ok &&
             fin->data().weak("visits").as_int() == kSteps;  // exactly once
  }
  if (!all_ok || done_at.empty()) return res;

  std::sort(done_at.begin(), done_at.end());
  res.ok = true;
  res.makespan_us = done_at.back();
  double sum = 0;
  for (const auto t : done_at) sum += static_cast<double>(t);
  res.mean_us = sum / static_cast<double>(done_at.size());
  const auto p95_idx =
      (done_at.size() * 95 + 99) / 100;  // ceil(0.95 n), 1-based
  res.p95_us = done_at[p95_idx - 1];
  res.agents_per_sec = static_cast<double>(fleet) * 1e6 /
                       static_cast<double>(res.makespan_us);
  res.lock_conflicts = w.platform.lock_conflict_aborts();
  const auto snap = w.platform.metrics_snapshot();
  if (const auto it = snap.histograms.find("step.latency_us");
      it != snap.histograms.end()) {
    res.step_p50_us = it->second.percentile(0.50);
    res.step_p95_us = it->second.percentile(0.95);
    res.step_p99_us = it->second.percentile(0.99);
  }
  res.metrics_json = snap.to_json();
  return res;
}

/// Wall-clock milliseconds of one contention-free run (best of `reps`).
double time_fleet_once_ms(bool tracing) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = run_fleet(/*fleet=*/256, /*concurrency=*/4,
                           /*contended=*/false, /*seed=*/7, tracing);
  const auto t1 = std::chrono::steady_clock::now();
  MAR_CHECK(r.ok);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Best-of-`reps` wall clock for tracing off and on, the runs
/// ALTERNATED (off, on, off, on, ...) so allocator/cache warm-up and
/// machine-state drift hit both sides equally, after one untimed
/// warm-up run.
std::pair<double, double> time_fleet_ms(int reps) {
  time_fleet_once_ms(/*tracing=*/true);  // warm-up, untimed
  double best_off = 0;
  double best_on = 0;
  for (int i = 0; i < reps; ++i) {
    const double off = time_fleet_once_ms(/*tracing=*/false);
    const double on = time_fleet_once_ms(/*tracing=*/true);
    if (best_off == 0 || off < best_off) best_off = off;
    if (best_on == 0 || on < best_on) best_on = on;
  }
  return {best_off, best_on};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::BenchReport report("a4_throughput");

  std::cout << "=== A4: node multiprogramming throughput "
               "(slotted scheduler) ===\n"
            << "(fleet of agents x " << kSteps
            << " steps on one node; node_concurrency slots; contention-free "
               "work steps vs lock-contended collect steps)\n\n";

  const std::vector<int> fleets = {1, 4, 8, 16, 64};
  const std::vector<std::uint32_t> concs = {1, 2, 4, 8};

  // Assemble every world of the sweep, then run them all in parallel:
  // each job builds its own deterministic world, so results are
  // independent of thread scheduling.
  struct Job {
    int fleet;
    std::uint32_t conc;
    bool contended;
  };
  std::vector<Job> jobs;
  for (const int f : fleets) {
    for (const auto c : concs) jobs.push_back({f, c, false});
  }
  for (const auto c : concs) jobs.push_back({8, c, true});

  const auto results = expt::run_worlds(
      jobs.size(),
      [&jobs](std::size_t i) {
        const Job& j = jobs[i];
        return run_fleet(j.fleet, j.conc, j.contended, /*seed=*/7);
      });

  bool shape_ok = true;
  auto result_of = [&](int fleet, std::uint32_t conc,
                       bool contended) -> const FleetResult& {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].fleet == fleet && jobs[i].conc == conc &&
          jobs[i].contended == contended) {
        return results[i];
      }
    }
    MAR_CHECK_MSG(false, "missing sweep cell");
    return results[0];
  };

  std::cout << "contention-free fleet:\n"
            << "fleet  conc  agents/s  mean[ms]  p95[ms]  makespan[ms]\n"
            << "-----------------------------------------------------\n";
  for (const int f : fleets) {
    double prev_aps = 0;
    for (const auto c : concs) {
      const auto& r = result_of(f, c, false);
      shape_ok = shape_ok && r.ok;
      std::cout << std::setw(5) << f << "  " << std::setw(4) << c << "  "
                << std::setw(8) << std::fixed << std::setprecision(1)
                << r.agents_per_sec << "  " << std::setw(8)
                << std::setprecision(2) << r.mean_us / 1000.0 << "  "
                << std::setw(7) << r.p95_us / 1000.0 << "  " << std::setw(12)
                << r.makespan_us / 1000.0 << "\n";
      // Monotone scaling: more slots never hurt, and strictly help while
      // slots are scarcer than agents.
      shape_ok = shape_ok && r.agents_per_sec >= prev_aps;
      if (c > 1 && static_cast<int>(c) <= f) {
        shape_ok = shape_ok && r.agents_per_sec > prev_aps;
      }
      prev_aps = r.agents_per_sec;
      report.row()
          .set("phase", "sweep")
          .set("contended", false)
          .set("fleet", f)
          .set("node_concurrency", static_cast<int>(c))
          .set("steps", kSteps)
          .set("agents_per_sec", r.agents_per_sec)
          .set("mean_completion_us", r.mean_us)
          .set("p95_completion_us", r.p95_us)
          .set("makespan_us", r.makespan_us)
          .set("lock_conflict_aborts", r.lock_conflicts)
          .set("step_p50_us", r.step_p50_us)
          .set("step_p95_us", r.step_p95_us)
          .set("step_p99_us", r.step_p99_us)
          .set_json("metrics", r.metrics_json)
          .set("ok", r.ok);
    }
  }

  std::cout << "\ncontended fleet (shared directory lock):\n"
            << "fleet  conc  agents/s  conflicts  makespan[ms]\n"
            << "----------------------------------------------\n";
  for (const auto c : concs) {
    const auto& r = result_of(8, c, true);
    shape_ok = shape_ok && r.ok;
    std::cout << std::setw(5) << 8 << "  " << std::setw(4) << c << "  "
              << std::setw(8) << std::fixed << std::setprecision(1)
              << r.agents_per_sec << "  " << std::setw(9) << r.lock_conflicts
              << "  " << std::setw(12) << std::setprecision(2)
              << r.makespan_us / 1000.0 << "\n";
    report.row()
        .set("phase", "sweep")
        .set("contended", true)
        .set("fleet", 8)
        .set("node_concurrency", static_cast<int>(c))
        .set("steps", kSteps)
        .set("agents_per_sec", r.agents_per_sec)
        .set("mean_completion_us", r.mean_us)
        .set("p95_completion_us", r.p95_us)
        .set("makespan_us", r.makespan_us)
        .set("lock_conflict_aborts", r.lock_conflicts)
        .set("step_p50_us", r.step_p50_us)
        .set("step_p95_us", r.step_p95_us)
        .set("step_p99_us", r.step_p99_us)
        .set_json("metrics", r.metrics_json)
        .set("ok", r.ok);
  }
  // Serial execution cannot conflict; multiprogramming must surface the
  // contention (that is the point of the lock-aware scheduler), and the
  // lock-serialized fleet cannot beat the contention-free one.
  shape_ok = shape_ok && result_of(8, 1, true).lock_conflicts == 0;
  shape_ok = shape_ok && result_of(8, 4, true).lock_conflicts > 0;
  shape_ok = shape_ok && result_of(8, 4, true).agents_per_sec <=
                             result_of(8, 4, false).agents_per_sec;

  // Reproducibility: 8 seed-replicated worlds, run through the parallel
  // driver twice with different thread counts — per-seed metrics must be
  // identical regardless of thread scheduling. What this pins down is
  // cross-thread determinism (same job -> same metrics no matter how the
  // pool schedules it); the contended fleet at least exercises the seeded
  // RNG through its retry backoffs, though the makespan itself is
  // service-time-bound and thus the same for every seed.
  const auto seeds = expt::replicate_seeds(42, 8);
  auto replica_job = [&seeds](std::size_t i) {
    return run_fleet(/*fleet=*/16, /*concurrency=*/4, /*contended=*/true,
                     seeds[i]);
  };
  const auto run_a = expt::run_worlds(seeds.size(), replica_job);
  const auto run_b = expt::run_worlds(seeds.size(), replica_job, 3);
  std::cout << "\nseed-replicated worlds (fleet 16, conc 4, contended):\n";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const bool same = run_a[i].ok && run_b[i].ok &&
                      run_a[i].makespan_us == run_b[i].makespan_us &&
                      run_a[i].mean_us == run_b[i].mean_us &&
                      run_a[i].lock_conflicts == run_b[i].lock_conflicts;
    shape_ok = shape_ok && same;
    std::cout << "  seed[" << i << "] makespan " << std::fixed
              << std::setprecision(2) << run_a[i].makespan_us / 1000.0
              << " ms  reproducible: " << (same ? "yes" : "NO") << "\n";
    report.row()
        .set("phase", "replicas")
        .set("seed_index", static_cast<int>(i))
        .set("seed", seeds[i])
        .set("makespan_us", run_a[i].makespan_us)
        .set("reproducible", same);
  }

  // Observability overhead: agents_per_sec is a virtual-time metric and
  // therefore tracing-invariant by construction; the honest cost of span
  // tracing + histograms is wall-clock, measured here as best-of-N runs
  // of the same deterministic world with tracing on vs off. Reported,
  // not shape-gated: wall-clock varies between machines, and the ≤3%
  // target is judged from the printed number.
  const int overhead_reps = 5;
  const auto [off_ms, on_ms] = time_fleet_ms(overhead_reps);
  const double overhead_pct = off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0;
  std::cout << "\ntracing overhead (fleet 256, conc 4, wall-clock best of "
            << overhead_reps << "):\n"
            << "  tracing off: " << std::fixed << std::setprecision(2)
            << off_ms << " ms   tracing on: " << on_ms
            << " ms   overhead: " << std::setprecision(1) << overhead_pct
            << "%\n";
  report.row()
      .set("phase", "overhead")
      .set("tracing_off_ms", off_ms)
      .set("tracing_on_ms", on_ms)
      .set("tracing_overhead_pct", overhead_pct);

  std::cout << (shape_ok ? "\nshape check: OK\n" : "\nshape check: FAILED\n");
  report.set_ok(shape_ok);
  if (!json_path.empty() && !report.write_file(json_path)) return 2;
  return shape_ok ? 0 : 1;
}
