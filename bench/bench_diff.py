#!/usr/bin/env python3
"""Compare a fresh BENCH_results.json against a committed baseline.

Usage: bench/bench_diff.py BASELINE FRESH
       bench/bench_diff.py --self-test

Prints per-metric deltas for every bench row shared by both files and
fails (exit 1) when the fresh run is unhealthy:
  * any bench report carries "ok": false, or
  * any individual row carries "ok": false, or
  * a bench present in the baseline is missing from the fresh run, or
  * a deterministic health metric regresses: abort rates
    (abort_rate, lock_conflict_aborts) or sync amortization
    (syncs_per_step, sync_batches) growing beyond the tolerance. These
    are simulation-virtual-time metrics — identical on every machine for
    a given build — so a regression is a code change, not noise.

Other numeric drift never fails the diff: several benches measure
wall-clock time, which legitimately varies between machines and runs.
The deltas are printed so a human (or a perf-trajectory tool) can judge
them.
"""
import json
import sys


def flatten_rows(report):
    rows = report.get("rows", [])
    return rows if isinstance(rows, list) else []


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


# Integer fields that identify a row rather than measure something (sweep
# parameters). Everything non-numeric (mode strings, phase tags, bools)
# is identity too.
ID_FIELDS = {
    "age", "fleet", "steps", "measured_steps", "node_concurrency",
    "param_bytes", "seed", "seed_index", "oldest_age",
    "group_commit_window", "ship_convoy_window", "measured_hops", "hops",
    "mtbc_s",
}

# Deterministic health metrics: an *increase* beyond the tolerance fails
# the diff (lower is better for all of them). Relative slack plus a small
# absolute floor so near-zero baselines don't trip on +1.
GATED_FIELDS = {
    "abort_rate": (0.25, 0.05),
    "lock_conflict_aborts": (0.25, 4),
    "syncs_per_step": (0.10, 0.02),
    "sync_batches": (0.10, 4),
    # A7 delta shipping: migration bytes per agent-hop and participant
    # 2PC syncs per hop are pure virtual-time metrics — growth means the
    # channel cache or the convoy/participant coalescing regressed.
    "bytes_per_hop": (0.10, 64),
    "syncs_per_hop": (0.10, 0.05),
    # A7 pipelined commit: coordinator decision syncs per agent-hop. The
    # decision queue amortizes these well below 1; growth means the
    # pipelined flush (or the PREPARE piggyback feeding it) regressed.
    "coordinator_syncs_per_hop": (0.10, 0.02),
    # A8 crash recovery: bytes replayed to rebuild the record read path
    # is pure virtual-state — growth means segment retirement or the
    # checkpoint low-water mark regressed. recovery_ms is wall-clock of
    # the recovery scan; gated only loosely (machines differ) so an
    # order-of-magnitude blowup still fails.
    "recovery_replayed_bytes": (0.10, 64),
    "recovery_ms": (1.00, 50),
    # Observability latency percentiles (A4 step commit, A7 agent hop):
    # log-bucketed histograms over simulation virtual time — identical
    # per build — so tail growth beyond tolerance is a scheduling or
    # commit-path regression, not noise.
    "step_p95_us": (0.15, 50),
    "step_p99_us": (0.15, 50),
    "hop_p95_us": (0.15, 100),
    "hop_p99_us": (0.15, 100),
}


def gated_regression(field, old, new):
    """Failure message when a health metric regressed, else None."""
    if field not in GATED_FIELDS:
        return None
    rel, abs_slack = GATED_FIELDS[field]
    if new <= old + max(abs(old) * rel, abs_slack):
        return None
    return f"{field} regressed {old} -> {new}"


def row_key(row):
    """Identity of a sweep row: its parameters, not its measurements."""
    parts = []
    for k in sorted(row):
        v = row[k]
        # Structured measurement blocks (the per-cell metrics snapshot)
        # are data, never identity — a changed counter must not unmatch
        # the row it belongs to.
        if isinstance(v, (dict, list)):
            continue
        if k in ID_FIELDS or not is_number(v):
            parts.append(f"{k}={v}")
    return ", ".join(parts)


def diff_rows(bench, baseline_rows, fresh_rows):
    # Rows are matched by identity key (sweep parameters), so a reduced
    # preset diffs cleanly against a full-preset baseline: shared cells
    # are compared, missing cells are noted, never compared cross-cell.
    lines = []
    failures = []
    baseline_by_key = {}
    for row in baseline_rows:
        if isinstance(row, dict):
            baseline_by_key.setdefault(row_key(row), []).append(row)
    matched = 0
    for new in fresh_rows:
        if not isinstance(new, dict):
            continue
        key = row_key(new)
        candidates = baseline_by_key.get(key)
        if not candidates:
            lines.append(f"  [{key}]: new row (no baseline cell)")
            continue
        old = candidates.pop(0)
        matched += 1
        for field in old:
            if field not in new:
                # A gated health metric silently vanishing from the fresh
                # report would otherwise un-gate itself: fail loudly.
                if field in GATED_FIELDS and is_number(old[field]):
                    failures.append(
                        f"{bench}: [{key}] gated metric `{field}` missing "
                        "from the fresh run"
                    )
                continue
            if not (is_number(old[field]) and is_number(new[field])):
                if field in GATED_FIELDS and is_number(old[field]):
                    failures.append(
                        f"{bench}: [{key}] gated metric `{field}` is no "
                        f"longer numeric ({new[field]!r}) in the fresh run"
                    )
                continue
            a, b = old[field], new[field]
            if a == b or field in ID_FIELDS:
                continue
            pct = f" ({(b - a) / a * 100.0:+.1f}%)" if a else ""
            lines.append(f"  [{key}].{field}: {a} -> {b}{pct}")
            regressed = gated_regression(field, a, b)
            if regressed:
                failures.append(f"{bench}: [{key}] {regressed}")
    skipped = sum(len(v) for v in baseline_by_key.values())
    if skipped:
        lines.append(
            f"  {skipped} baseline cell(s) not in this run "
            "(reduced preset), skipped"
        )
    return lines, failures


def health_failures(name, report):
    failures = []
    if report.get("ok") is False:
        failures.append(f"{name}: report ok=false")
    for i, row in enumerate(flatten_rows(report)):
        if isinstance(row, dict) and row.get("ok") is False:
            failures.append(f"{name}: row[{i}] ok=false")
    return failures


def compare(baseline, fresh):
    """All failure messages for `fresh` vs `baseline` (prints the deltas)."""
    failures = []
    for name in baseline:
        if name not in fresh:
            # micro_codec is allowed to be absent (optional dependency).
            if "micro_codec" in name:
                print(f"{name}: absent from fresh run (optional), skipping")
                continue
            failures.append(f"{name}: present in baseline, missing from fresh run")

    for name, report in fresh.items():
        if not isinstance(report, dict):
            continue
        failures.extend(health_failures(name, report))
        if name not in baseline or not isinstance(baseline[name], dict):
            print(f"{name}: new bench (no baseline)")
            continue
        lines, gated = diff_rows(
            name, flatten_rows(baseline[name]), flatten_rows(report)
        )
        failures.extend(gated)
        if lines:
            print(f"{name}:")
            print("\n".join(lines))
        else:
            print(f"{name}: no metric changes")
    return failures


def self_test():
    """Verify the gate fires on a seeded regression and on a vanished
    gated metric, and that the structured metrics block is measurement,
    not row identity."""

    def bench(rows):
        return {"bench": "a7_shipping", "ok": True, "rows": rows}

    base_row = {
        "mode": "delta", "age": 8, "hop_p95_us": 1000, "bytes_per_hop": 500,
        "metrics": {"scalars": {"ship.delta_ships": 30}},
    }
    baseline = {"a7_shipping": bench([base_row])}

    ok = True

    def expect(label, fresh_rows, want_failure):
        nonlocal ok
        failures = compare(baseline, {"a7_shipping": bench(fresh_rows)})
        fired = bool(failures)
        good = fired == want_failure
        print(f"self-test: {label}: "
              f"{'fires' if fired else 'clean'} "
              f"({'ok' if good else 'UNEXPECTED'})")
        ok &= good

    # Identical run (metrics block drifting is fine): clean.
    expect("clean run", [dict(base_row,
                              metrics={"scalars": {"ship.delta_ships": 31}})],
           want_failure=False)
    # Seeded p95 regression beyond 15% + 100us slack: gate fires.
    expect("seeded hop_p95_us regression",
           [dict(base_row, hop_p95_us=2000)], want_failure=True)
    # Gated metric silently vanishing: gate fires loudly.
    vanished = dict(base_row)
    del vanished["hop_p95_us"]
    expect("vanished gated metric", [vanished], want_failure=True)
    # Within-tolerance drift: clean.
    expect("tolerated drift", [dict(base_row, hop_p95_us=1050)],
           want_failure=False)

    print(f"self-test: {'OK' if ok else 'FAILED'}")
    return 0 if ok else 2


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        baseline = json.load(f)
    with open(argv[2], encoding="utf-8") as f:
        fresh = json.load(f)

    failures = compare(baseline, fresh)
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("\nbench_diff: healthy")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
