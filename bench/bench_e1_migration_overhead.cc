// Experiment E1 — cost of carrying the rollback log (Sec. 4.2).
//
// "The amount of data which has to be transferred to migrate the agent
// increases" because the log is attached to the agent. This bench sweeps
// the number of logged steps and the per-entry parameter size, reporting
// the serialized agent size, the log share of it, and the resulting
// per-hop migration time on two link speeds.
//
// Expected shape: agent size grows linearly with logged steps × entry
// size; migration time follows size/bandwidth once the log dominates the
// fixed agent state.
#include <iomanip>
#include <iostream>

#include "common.h"

using namespace mar;

namespace {

struct Row {
  int steps;
  std::int64_t param_bytes;
  std::size_t agent_bytes;
  std::size_t log_bytes;
  sim::TimeUs hop_10mbit;
  sim::TimeUs hop_1mbit;
};

Row measure(int steps, std::int64_t param_bytes) {
  agent::PlatformConfig config;
  config.discard_log_on_top_level = false;  // the point: the log stays
  harness::TestWorld w(config, steps + 1, /*seed=*/3);
  harness::register_workload(w.platform);

  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  for (int i = 1; i <= steps; ++i) {
    sub.step("touch_split", harness::TestWorld::n(i));
  }
  sub.step("noop", harness::TestWorld::n(steps + 1));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sub));
  agent->itinerary() = std::move(main_itinerary);
  agent->set_config("param_bytes", param_bytes);

  auto id = w.platform.launch(std::move(agent));
  w.platform.run_until_finished(id.value());
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);

  Row row;
  row.steps = steps;
  row.param_bytes = param_bytes;
  row.agent_bytes = agent::encode_agent(*fin).size();
  row.log_bytes = fin->log().byte_size();
  net::LinkParams lan{500, 1.25};     // 10 Mbit/s
  net::LinkParams wan{5'000, 0.125};  // 1 Mbit/s
  row.hop_10mbit =
      lan.latency_us + static_cast<sim::TimeUs>(
                           static_cast<double>(row.agent_bytes) /
                           lan.bandwidth_bytes_per_us);
  row.hop_1mbit =
      wan.latency_us + static_cast<sim::TimeUs>(
                           static_cast<double>(row.agent_bytes) /
                           wan.bandwidth_bytes_per_us);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::BenchReport report("e1_migration_overhead");
  std::cout << "=== E1: migration overhead of the attached rollback log ===\n"
            << "(agent size and per-hop transfer time vs. logged steps)\n\n";
  std::cout << "steps  param_B  agent_B  log_B  log%   hop@10Mbit[us]  "
               "hop@1Mbit[us]\n";
  std::cout << "-----------------------------------------------------------"
               "--------\n";
  bool monotone = true;
  std::size_t prev = 0;
  for (const std::int64_t param : {16, 128, 1024}) {
    for (const int steps : {1, 2, 4, 8, 16, 32}) {
      const auto r = measure(steps, param);
      std::cout << std::setw(5) << r.steps << "  " << std::setw(7)
                << r.param_bytes << "  " << std::setw(7) << r.agent_bytes
                << "  " << std::setw(5) << r.log_bytes << "  " << std::setw(4)
                << (100 * r.log_bytes / r.agent_bytes) << "%  "
                << std::setw(14) << r.hop_10mbit << "  " << std::setw(13)
                << r.hop_1mbit << "\n";
      report.row()
          .set("steps", r.steps)
          .set("param_bytes", r.param_bytes)
          .set("agent_bytes", std::uint64_t{r.agent_bytes})
          .set("log_bytes", std::uint64_t{r.log_bytes})
          .set("hop_10mbit_us", r.hop_10mbit)
          .set("hop_1mbit_us", r.hop_1mbit);
      if (r.agent_bytes < prev) monotone = false;
      prev = r.agent_bytes;
    }
    prev = 0;
    std::cout << "\n";
  }
  std::cout << "check: agent size grows monotonically with logged steps -> "
            << (monotone ? "OK" : "MISMATCH") << "\n";
  report.set_ok(monotone);
  if (!json_path.empty() && !report.write_file(json_path)) return 2;
  return monotone ? 0 : 1;
}
