// Experiment E8 — forward-path overhead of the rollback mechanism.
//
// What does an agent pay during NORMAL (rollback-free) execution for the
// ability to roll back later? Four configurations over a 16-step tour:
//
//   exactly-once   no compensation logging, no savepoints (ref [11] alone)
//   +op-logging    every step logs its compensating operations
//   +sp/state      plus a full-image savepoint after every step
//   +sp/transition same, with transition logging
//
// Reported: end-to-end time, wire bytes (the log travels with the agent),
// and stable-storage bytes written.
//
// Expected shape: op-logging adds the operation entries to every
// migration; per-step savepoints dominate once strong state is sizeable;
// transition logging recovers most of the savepoint cost when little
// changes per step.
#include <iomanip>
#include <iostream>

#include "common.h"

using namespace mar;

namespace {

struct Row {
  sim::TimeUs total_us = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t stable_bytes = 0;
  bool ok = false;
};

Row measure(bool log_ops, bool per_step_sps, agent::LoggingMode mode) {
  agent::PlatformConfig config;
  config.logging = mode;
  constexpr int kSteps = 16;
  harness::TestWorld w(config, /*node_count=*/4, /*seed=*/23);
  harness::register_workload(w.platform);

  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  for (int i = 0; i < kSteps; ++i) {
    sub.step(log_ops ? "touch_split" : "touch_plain",
             harness::TestWorld::n(1 + i % 4));
    sub.step("mutate_strong", harness::TestWorld::n(1 + i % 4));
  }
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sub));
  agent->itinerary() = std::move(main_itinerary);
  agent->set_config("param_bytes", 64);
  agent->set_config("strong_entries", 16);
  agent->set_config("mutate_count", 1);
  agent->set_config("strong_bytes", 512);
  if (per_step_sps) agent->set_config("sp_every_step", 1);

  auto id = w.platform.launch(std::move(agent));
  w.platform.run_until_finished(id.value());
  Row row;
  row.ok = w.platform.outcome(id.value()).state ==
           agent::AgentOutcome::State::done;
  row.total_us = w.platform.outcome(id.value()).finished_at;
  row.wire_bytes = w.net.stats().bytes_sent;
  for (const auto node : w.net.node_ids()) {
    row.stable_bytes += w.platform.node(node).storage().stats().bytes_written;
  }
  return row;
}

}  // namespace

int main() {
  std::cout << "=== E8: forward-path overhead of rollback support ===\n"
            << "(16-step tour over 4 nodes, 16x512 B strong state, 1 entry "
               "mutated/step)\n\n";
  std::cout << "configuration    total[ms]  wire[KB]  stable[KB]\n";
  std::cout << "------------------------------------------------\n";
  const Row base = measure(false, false, agent::LoggingMode::state);
  const Row ops = measure(true, false, agent::LoggingMode::state);
  const Row sp_state = measure(true, true, agent::LoggingMode::state);
  const Row sp_trans = measure(true, true, agent::LoggingMode::transition);
  const auto print = [](const char* name, const Row& r) {
    std::cout << std::left << std::setw(15) << name << std::right
              << std::setw(10) << std::fixed << std::setprecision(2)
              << r.total_us / 1000.0 << "  " << std::setw(8)
              << r.wire_bytes / 1024 << "  " << std::setw(10)
              << r.stable_bytes / 1024 << "\n";
  };
  print("exactly-once", base);
  print("+op-logging", ops);
  print("+sp/state", sp_state);
  print("+sp/transition", sp_trans);

  const bool shape_ok =
      base.ok && ops.ok && sp_state.ok && sp_trans.ok &&
      base.wire_bytes < ops.wire_bytes &&
      ops.wire_bytes < sp_state.wire_bytes &&
      sp_trans.wire_bytes < sp_state.wire_bytes;
  std::cout << "\ncheck: exactly-once < +op-logging < +sp/state on the "
               "wire; transition logging cheaper than state -> "
            << (shape_ok ? "OK" : "MISMATCH") << "\n";
  return shape_ok ? 0 : 1;
}
