// Shared benchmark scaffolding: standard rollback scenarios and metric
// extraction used by the experiment binaries (see DESIGN.md §9).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "agent/platform.h"
#include "harness/agents.h"
#include "harness/world.h"

namespace mar::bench {

/// One parameterized rollback run: an agent executes `steps` steps, one
/// per node, each logging compensating operations; the final step requests
/// a rollback of the whole sub-itinerary; the agent then re-runs and
/// completes.
struct RollbackScenario {
  int steps = 6;
  /// Fraction of steps logging a mixed compensation entry (the rest log a
  /// resource + an agent compensation entry).
  double mixed_fraction = 0.0;
  /// Size of the undo-parameter blob each step logs.
  std::int64_t param_bytes = 32;
  /// Bytes appended to the strongly reversible state per step (0 = none).
  std::int64_t strong_bytes = 0;
  agent::PlatformConfig config;
  std::uint64_t seed = 7;

  /// Transient-fault injection (experiment E6).
  bool inject_faults = false;
  double mean_time_between_crashes_us = 2e6;
  double mean_downtime_us = 200'000;
  sim::TimeUs fault_horizon_us = 120'000'000;
};

/// One flat JSON object with insertion-ordered fields. Values are rendered
/// at insertion time, so a record is just the assembled text plus commas
/// and braces.
class JsonRecord {
 public:
  JsonRecord& set(std::string_view key, std::uint64_t v);
  JsonRecord& set(std::string_view key, std::int64_t v);
  JsonRecord& set(std::string_view key, int v);
  JsonRecord& set(std::string_view key, double v);
  JsonRecord& set(std::string_view key, bool v);
  JsonRecord& set(std::string_view key, std::string_view v);
  /// String literals would otherwise convert to the bool overload.
  JsonRecord& set(std::string_view key, const char* v) {
    return set(key, std::string_view(v));
  }
  /// Embed an already-rendered JSON value (object or array) verbatim —
  /// used for the uniform per-cell metrics block (MetricsSnapshot::to_json).
  JsonRecord& set_json(std::string_view key, std::string rendered) {
    return raw(key, std::move(rendered));
  }

  [[nodiscard]] std::string to_json() const;

 private:
  JsonRecord& raw(std::string_view key, std::string rendered);

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// A bench run's machine-readable output: the bench name, one record per
/// measured configuration, and the shape-check verdict the binary's exit
/// code also reports. Serialized form:
///   {"bench": "<name>", "ok": true, "rows": [{...}, ...]}
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Append and return a new row; chain .set() calls on the result.
  JsonRecord& row();
  void set_ok(bool ok) { ok_ = ok; }

  [[nodiscard]] std::string to_json() const;
  /// Write the report to `path`; prints to stderr and returns false on
  /// I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::string name_;
  bool ok_ = true;
  std::vector<JsonRecord> rows_;
};

/// Escape `s` for embedding inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// The shared bench CLI convention: `--json <path>` or `--json=<path>`
/// requests a machine-readable report next to the human-readable table.
/// Returns the path, or "" when the flag is absent.
std::string json_path_from_args(int argc, char** argv);

struct Metrics {
  bool ok = false;
  sim::TimeUs total_us = 0;          ///< launch to completion
  sim::TimeUs forward_us = 0;        ///< launch to rollback initiation
  sim::TimeUs rollback_us = 0;       ///< rollback initiation to restore
  std::uint64_t rollback_wire_bytes = 0;
  std::uint64_t total_wire_bytes = 0;
  std::uint64_t rollback_transfers = 0;
  std::uint64_t mixed_ships = 0;  ///< adaptive-strategy shipments (A2)
  std::uint64_t comp_commits = 0;
  std::uint64_t stable_bytes = 0;    ///< stable-storage writes, all nodes
  std::uint64_t crashes = 0;
  std::size_t final_log_bytes = 0;

  /// Append every metric as a field of `out` (flat, snake_case keys);
  /// returns `out` for chaining.
  JsonRecord& write_fields(JsonRecord& out) const;
  /// Serialize as a standalone JSON object.
  [[nodiscard]] std::string to_json() const;
};

/// Execute the scenario; the run is deterministic in `scenario.seed`.
Metrics run_rollback_scenario(const RollbackScenario& scenario);

/// Render a value with thousands separators (table output).
std::string fmt(std::uint64_t v);

}  // namespace mar::bench
