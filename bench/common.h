// Shared benchmark scaffolding: standard rollback scenarios and metric
// extraction used by the experiment binaries (see DESIGN.md Sec. 3).
#pragma once

#include <cstdint>
#include <string>

#include "agent/platform.h"
#include "harness/agents.h"
#include "harness/world.h"

namespace mar::bench {

/// One parameterized rollback run: an agent executes `steps` steps, one
/// per node, each logging compensating operations; the final step requests
/// a rollback of the whole sub-itinerary; the agent then re-runs and
/// completes.
struct RollbackScenario {
  int steps = 6;
  /// Fraction of steps logging a mixed compensation entry (the rest log a
  /// resource + an agent compensation entry).
  double mixed_fraction = 0.0;
  /// Size of the undo-parameter blob each step logs.
  std::int64_t param_bytes = 32;
  /// Bytes appended to the strongly reversible state per step (0 = none).
  std::int64_t strong_bytes = 0;
  agent::PlatformConfig config;
  std::uint64_t seed = 7;

  /// Transient-fault injection (experiment E6).
  bool inject_faults = false;
  double mean_time_between_crashes_us = 2e6;
  double mean_downtime_us = 200'000;
  sim::TimeUs fault_horizon_us = 120'000'000;
};

struct Metrics {
  bool ok = false;
  sim::TimeUs total_us = 0;          ///< launch to completion
  sim::TimeUs forward_us = 0;        ///< launch to rollback initiation
  sim::TimeUs rollback_us = 0;       ///< rollback initiation to restore
  std::uint64_t rollback_wire_bytes = 0;
  std::uint64_t total_wire_bytes = 0;
  std::uint64_t rollback_transfers = 0;
  std::uint64_t mixed_ships = 0;  ///< adaptive-strategy shipments (A2)
  std::uint64_t comp_commits = 0;
  std::uint64_t stable_bytes = 0;    ///< stable-storage writes, all nodes
  std::uint64_t crashes = 0;
  std::size_t final_log_bytes = 0;
};

/// Execute the scenario; the run is deterministic in `scenario.seed`.
Metrics run_rollback_scenario(const RollbackScenario& scenario);

/// Render a value with thousands separators (table output).
std::string fmt(std::uint64_t v);

}  // namespace mar::bench
