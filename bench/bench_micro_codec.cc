// Microbenchmarks (google-benchmark): the serialization substrate.
//
// Agent capture/re-instantiation and Value diffing sit on the critical
// path of every step commit and savepoint; these measure their raw
// wall-clock cost on this machine (the simulation itself uses virtual
// time, so this is the one place real time matters).
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "common.h"
#include "harness/agents.h"
#include "serial/serializable.h"
#include "serial/value.h"

namespace {

using namespace mar;

harness::WorkloadAgent make_agent(std::int64_t blobs, std::int64_t blob_size) {
  harness::WorkloadAgent agent;
  for (std::int64_t i = 0; i < blobs; ++i) {
    agent.data().strong("results").push_back(serial::Value(serial::Bytes(
        static_cast<std::size_t>(blob_size), std::uint8_t{0x7F})));
  }
  return agent;
}

void BM_EncodeAgent(benchmark::State& state) {
  const auto agent = make_agent(state.range(0), 256);
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto encoded = agent::encode_agent(agent);
    bytes = encoded.size();
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}
BENCHMARK(BM_EncodeAgent)->Arg(4)->Arg(64)->Arg(1024);

void BM_DecodeAgent(benchmark::State& state) {
  const auto agent = make_agent(state.range(0), 256);
  const auto bytes = agent::encode_agent(agent);
  agent::AgentTypeRegistry registry;
  registry.register_type<harness::WorkloadAgent>("workload");
  for (auto _ : state) {
    auto decoded = agent::decode_agent(registry, bytes);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          state.iterations());
}
BENCHMARK(BM_DecodeAgent)->Arg(4)->Arg(64)->Arg(1024);

// The size-hint encode path: computing the exact wire size arithmetically
// and pre-sizing the buffer turns a large-map encode into one allocation.
serial::Value make_large_map(std::int64_t keys) {
  serial::Value v = serial::Value::empty_map();
  for (std::int64_t i = 0; i < keys; ++i) {
    v.set("key-" + std::to_string(i), std::string(48, 'v'));
  }
  return v;
}

serial::Value make_deep_nesting(std::int64_t depth) {
  serial::Value v("leaf");
  for (std::int64_t i = 0; i < depth; ++i) {
    serial::Value wrap = serial::Value::empty_map();
    wrap.set("child", std::move(v));
    wrap.set("tag", i);
    v = std::move(wrap);
  }
  return v;
}

void BM_EncodeLargeMapDefault(benchmark::State& state) {
  const auto v = make_large_map(state.range(0));
  for (auto _ : state) {
    serial::Encoder enc;
    v.serialize(enc);
    benchmark::DoNotOptimize(enc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(v.encoded_size()) *
                          state.iterations());
}
BENCHMARK(BM_EncodeLargeMapDefault)->Arg(256)->Arg(4096)->Arg(32768);

void BM_EncodeLargeMapPresized(benchmark::State& state) {
  const auto v = make_large_map(state.range(0));
  for (auto _ : state) {
    serial::Encoder enc(v.encoded_size());
    v.serialize(enc);
    benchmark::DoNotOptimize(enc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(v.encoded_size()) *
                          state.iterations());
}
BENCHMARK(BM_EncodeLargeMapPresized)->Arg(256)->Arg(4096)->Arg(32768);

void BM_EncodeDeepNestingPresized(benchmark::State& state) {
  const auto v = make_deep_nesting(state.range(0));
  for (auto _ : state) {
    serial::Encoder enc(v.encoded_size());
    v.serialize(enc);
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_EncodeDeepNestingPresized)->Arg(64)->Arg(512)->Arg(4096);

void BM_ValueEncodedSize(benchmark::State& state) {
  const auto v = make_large_map(state.range(0));
  for (auto _ : state) {
    auto n = v.encoded_size();
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_ValueEncodedSize)->Arg(256)->Arg(4096);

void BM_ValueDiffSparse(benchmark::State& state) {
  serial::Value a = serial::Value::empty_map();
  for (int i = 0; i < state.range(0); ++i) {
    a.set("k" + std::to_string(i), std::string(64, 'x'));
  }
  serial::Value b = a;
  b.set("k0", std::string(64, 'y'));
  for (auto _ : state) {
    auto patch = serial::diff(a, b);
    benchmark::DoNotOptimize(patch);
  }
}
BENCHMARK(BM_ValueDiffSparse)->Arg(16)->Arg(256)->Arg(4096);

void BM_PatchApply(benchmark::State& state) {
  serial::Value a = serial::Value::empty_map();
  for (int i = 0; i < state.range(0); ++i) {
    a.set("k" + std::to_string(i), std::string(64, 'x'));
  }
  serial::Value b = a;
  b.set("k1", std::string(64, 'z'));
  const auto patch = serial::diff(a, b);
  for (auto _ : state) {
    auto restored = serial::apply(patch, a);
    benchmark::DoNotOptimize(restored);
  }
}
BENCHMARK(BM_PatchApply)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so this binary honors the repo-wide
// `--json <path>` convention (bench/run_all.sh treats every binary
// uniformly) by translating it into google-benchmark's reporter flags.
int main(int argc, char** argv) {
  const std::string json_path = mar::bench::json_path_from_args(argc, argv);
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      ++i;  // skip the path value
    } else if (!arg.starts_with("--json=")) {
      args.emplace_back(arg);
    }
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargv;
  cargv.push_back(argv[0]);
  for (auto& arg : args) cargv.push_back(arg.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
