// Experiment E4 — log size: itinerary integration (Sec. 4.4.2).
//
// Compares the rollback-log bytes an agent carries per migration under
// four savepoint policies:
//   per-step     an ad-hoc savepoint after every step (no GC, no discard)
//   itin         automatic sub-itinerary savepoints, no GC, no discard
//   itin+gc      + savepoint entries GC'd when a sub-itinerary completes
//   itin+gc+disc + the whole log discarded at top-level sub completions
//
// Workload: M top-level sub-itineraries of S steps each; every step logs
// compensating operations and appends to the strongly reversible state, so
// savepoint images grow as the agent works.
//
// Expected shape: per-step grows fastest (one image per step); itinerary
// savepoints grow with per-step op entries plus one image per sub; GC
// trims completed subs' images; discard resets the log at every top-level
// boundary, bounding the carried size by one sub-itinerary's worth.
#include <iomanip>
#include <iostream>
#include <regex>

#include "common.h"

using namespace mar;

namespace {

struct Row {
  std::uint64_t avg_migration_bytes = 0;
  std::uint64_t max_migration_bytes = 0;
  std::uint64_t final_log_bytes = 0;
  bool ok = false;
};

Row measure(bool per_step_sps, bool itinerary_sps, bool gc, bool discard,
            int subs, int steps_per_sub, std::int64_t strong_bytes) {
  agent::PlatformConfig config;
  config.itinerary_savepoints = itinerary_sps;
  config.gc_savepoints = gc;
  config.discard_log_on_top_level = discard;
  const int nodes = 4;
  harness::TestWorld w(config, nodes, /*seed=*/11);
  harness::register_workload(w.platform);

  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary main_itinerary;
  for (int m = 0; m < subs; ++m) {
    agent::Itinerary sub;
    for (int s = 0; s < steps_per_sub; ++s) {
      sub.step("touch_split",
               harness::TestWorld::n(1 + (m * steps_per_sub + s) % nodes));
      sub.step("grow_strong",
               harness::TestWorld::n(1 + (m * steps_per_sub + s) % nodes));
    }
    main_itinerary.sub(std::move(sub));
  }
  agent->itinerary() = std::move(main_itinerary);
  agent->set_config("param_bytes", 32);
  agent->set_config("strong_bytes", strong_bytes);
  if (per_step_sps) agent->set_config("sp_every_step", 1);

  auto id = w.platform.launch(std::move(agent));
  w.platform.run_until_finished(id.value());

  Row row;
  row.ok = w.platform.outcome(id.value()).state ==
           agent::AgentOutcome::State::done;
  // Migration payload sizes are recorded in the MIGRATE trace details.
  static const std::regex size_re(R"(\((\d+) bytes\))");
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  for (const auto& e : w.trace.of_kind(TraceKind::migrate)) {
    std::smatch match;
    if (std::regex_search(e.detail, match, size_re)) {
      const std::uint64_t bytes = std::stoull(match[1]);
      sum += bytes;
      ++count;
      row.max_migration_bytes = std::max(row.max_migration_bytes, bytes);
    }
  }
  row.avg_migration_bytes = count > 0 ? sum / count : 0;
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  row.final_log_bytes = fin->log().byte_size();
  return row;
}

}  // namespace

int main() {
  constexpr int kSubs = 4;
  constexpr int kSteps = 4;
  std::cout << "=== E4: rollback-log size vs savepoint policy ===\n"
            << "(" << kSubs << " top-level sub-itineraries x " << kSteps
            << " steps, strong state grows per step)\n\n";
  std::cout << "strongB  policy         avg-mig[B]  max-mig[B]  final-log[B]\n";
  std::cout << "-----------------------------------------------------------\n";
  bool shape_ok = true;
  for (const std::int64_t strong : {64, 512, 4096}) {
    Row per_step = measure(true, false, false, false, kSubs, kSteps, strong);
    Row itin = measure(false, true, false, false, kSubs, kSteps, strong);
    Row itin_gc = measure(false, true, true, false, kSubs, kSteps, strong);
    Row full = measure(false, true, true, true, kSubs, kSteps, strong);
    const auto print = [&](const char* name, const Row& r) {
      std::cout << std::setw(6) << strong << "  " << std::left
                << std::setw(13) << name << std::right << std::setw(10)
                << r.avg_migration_bytes << "  " << std::setw(10)
                << r.max_migration_bytes << "  " << std::setw(11)
                << r.final_log_bytes << "\n";
      shape_ok = shape_ok && r.ok;
    };
    print("per-step", per_step);
    print("itin", itin);
    print("itin+gc", itin_gc);
    print("itin+gc+disc", full);
    std::cout << "\n";
    shape_ok = shape_ok &&
               per_step.max_migration_bytes > itin.max_migration_bytes &&
               itin.max_migration_bytes >= itin_gc.max_migration_bytes &&
               itin_gc.max_migration_bytes > full.max_migration_bytes &&
               full.final_log_bytes <= 1;  // an empty log serializes to one byte
  }
  std::cout << "check: per-step > itin >= itin+gc > itin+gc+discard; "
               "discard empties the final log -> "
            << (shape_ok ? "OK" : "MISMATCH") << "\n";
  return shape_ok ? 0 : 1;
}
