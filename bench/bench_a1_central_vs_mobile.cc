// Ablation A1 — mobile agent vs ConTract-style central execution (Sec. 5).
//
// The paper positions its mechanism against the ConTract model, whose
// scripts are not mobile: a central manager reaches every resource by RPC.
// This ablation runs the SAME logical workload both ways over the same
// substrate — K interactions with each of 6 nodes' directories — and
// sweeps the interactions-per-node count.
//
// Expected shape (the mobile-agent thesis, and ref [16]'s model): the
// central manager pays a round trip per interaction, the agent pays one
// transfer per node; with few interactions per node RPC is competitive,
// with many the agent wins, and the gap widens with per-interaction
// payload size.
#include <iomanip>
#include <iostream>

#include "common.h"
#include "contract/contract.h"

using namespace mar;

namespace {

struct Run {
  sim::TimeUs total_us = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t messages = 0;
  bool ok = false;
};

constexpr int kNodes = 6;

Run run_central(int per_node, std::int64_t payload) {
  harness::TestWorld w(agent::PlatformConfig{}, kNodes, /*seed=*/3);
  harness::register_workload(w.platform);
  storage::StableStorage stable;
  contract::ContractManager manager(NodeId(100), w.sim, w.net, stable,
                                    w.platform.compensations());
  w.net.add_node(NodeId(100),
                 [&manager](const net::Message& m) { manager.on_message(m); });

  std::vector<contract::ScriptStep> script;
  for (int n = 1; n <= kNodes; ++n) {
    for (int i = 0; i < per_node; ++i) {
      contract::ScriptStep s;
      s.node = harness::TestWorld::n(n);
      s.resource = "dir";
      s.op = "publish";
      serial::Value p = serial::Value::empty_map();
      p.set("key", "k" + std::to_string(n) + "-" + std::to_string(i));
      p.set("value", serial::Value(serial::Bytes(
                         static_cast<std::size_t>(payload), std::uint8_t{1})));
      s.params = std::move(p);
      script.push_back(std::move(s));
    }
  }
  Run run;
  bool done = false;
  manager.run(std::move(script), [&](Status s) {
    done = true;
    run.ok = s.is_ok();
  });
  w.sim.run_while_pending([&] { return done; });
  run.total_us = w.sim.now();
  run.wire_bytes = w.net.stats().bytes_sent;
  run.messages = w.net.stats().messages_sent;
  return run;
}

Run run_mobile(int per_node, std::int64_t payload) {
  harness::TestWorld w(agent::PlatformConfig{}, kNodes, /*seed=*/3);
  harness::register_workload(w.platform);
  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  // One step per node; each step performs `per_node` local publishes.
  for (int n = 1; n <= kNodes; ++n) {
    for (int i = 0; i < per_node; ++i) {
      sub.step("touch_plain", harness::TestWorld::n(n));
    }
  }
  agent::Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  agent->set_config("param_bytes", payload);
  auto id = w.platform.launch(std::move(agent));
  Run run;
  if (!id.is_ok()) return run;
  run.ok = w.platform.run_until_finished(id.value()) &&
           w.platform.outcome(id.value()).state ==
               agent::AgentOutcome::State::done;
  run.total_us = w.platform.outcome(id.value()).finished_at;
  run.wire_bytes = w.net.stats().bytes_sent;
  run.messages = w.net.stats().messages_sent;
  return run;
}

}  // namespace

int main() {
  std::cout << "=== A1: central (ConTract-style) vs mobile-agent execution "
               "===\n"
            << "(6 nodes, K publishes of `payload` bytes per node)\n\n";
  std::cout << "payload  K/node  central[ms]  mobile[ms]  central-msgs  "
               "mobile-msgs  winner\n";
  std::cout << "------------------------------------------------------------"
               "--------\n";
  bool shape_ok = true;
  for (const std::int64_t payload : {64, 1024}) {
    double first_ratio = 0;
    double last_ratio = 0;
    for (const int k : {1, 4, 16}) {
      const auto central = run_central(k, payload);
      const auto mobile = run_mobile(k, payload);
      shape_ok = shape_ok && central.ok && mobile.ok;
      const double ratio = static_cast<double>(central.total_us) /
                           static_cast<double>(mobile.total_us);
      if (k == 1) first_ratio = ratio;
      last_ratio = ratio;
      std::cout << std::setw(7) << payload << "  " << std::setw(6) << k
                << "  " << std::setw(11) << std::fixed
                << std::setprecision(2) << central.total_us / 1000.0 << "  "
                << std::setw(10) << mobile.total_us / 1000.0 << "  "
                << std::setw(12) << central.messages << "  " << std::setw(11)
                << mobile.messages << "  "
                << (central.total_us < mobile.total_us ? "central"
                                                       : "mobile")
                << "\n";
    }
    // The agent's relative advantage must grow with interactions per node.
    shape_ok = shape_ok && last_ratio > first_ratio;
    std::cout << "\n";
  }
  std::cout << "check: central/mobile time ratio grows with interactions "
               "per node (mobility amortizes) -> "
            << (shape_ok ? "OK" : "MISMATCH") << "\n";
  return shape_ok ? 0 : 1;
}
