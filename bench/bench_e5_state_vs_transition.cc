// Experiment E5 — state vs transition logging of savepoints (Sec. 4.2).
//
// Strongly reversible objects can be savepointed as full images (state
// logging) or as deltas between adjacent savepoints (transition logging).
// The agent maintains a register file of `entries` strong blobs and
// mutates `k` of them per step, establishing a savepoint after every step;
// at the end it rolls back several steps so the restore path (image copy
// vs delta-chain replay) is exercised and verified.
//
// Expected shape: transition logging shrinks savepoint bytes roughly by
// the mutated fraction k/entries; at k == entries the two modes converge
// (deltas degrade to full content). Restores agree exactly in both modes.
#include <iomanip>
#include <iostream>

#include "common.h"

using namespace mar;

namespace {

struct Row {
  std::uint64_t savepoint_bytes = 0;  ///< SP entries in the final log
  std::uint64_t stable_bytes = 0;
  bool rollback_ok = false;
};

Row measure(agent::LoggingMode mode, std::int64_t entries,
            std::int64_t mutate) {
  agent::PlatformConfig config;
  config.logging = mode;
  config.discard_log_on_top_level = false;  // keep SPs for measurement
  constexpr int kSteps = 8;
  harness::TestWorld w(config, /*node_count=*/3, /*seed=*/17);
  harness::register_workload(w.platform);

  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  for (int i = 0; i < kSteps; ++i) {
    sub.step("mutate_strong", harness::TestWorld::n(1 + i % 3));
  }
  sub.step("noop", harness::TestWorld::n(3));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sub));
  agent->itinerary() = std::move(main_itinerary);
  // Roll back 3 steps: target the ad-hoc savepoint established after step
  // 5 (id 6: the launch sub-itinerary savepoint is id 1, then one per
  // step). Re-execution then shifts the visit counter, so the trigger
  // cannot refire.
  agent->set_trigger("noop", kSteps + 1, "explicit", 6);
  agent->set_config("sp_every_step", 1);
  agent->set_config("strong_entries", entries);
  agent->set_config("mutate_count", mutate);
  agent->set_config("strong_bytes", 256);

  auto id = w.platform.launch(std::move(agent));
  w.platform.run_until_finished(id.value());

  Row row;
  row.rollback_ok = w.platform.outcome(id.value()).state ==
                        agent::AgentOutcome::State::done &&
                    w.trace.count(TraceKind::restore) == 1;
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  for (const auto& e : fin->log().entries()) {
    if (e.is_savepoint()) row.savepoint_bytes += e.byte_size();
  }
  for (const auto node : w.net.node_ids()) {
    row.stable_bytes += w.platform.node(node).storage().stats().bytes_written;
  }
  return row;
}

}  // namespace

int main() {
  std::cout << "=== E5: state vs transition logging of savepoints ===\n"
            << "(8 steps, savepoint per step, 32 strong blobs x 256 B, "
               "k mutated per step, 3-step rollback at the end)\n\n";
  std::cout << "k/32  mode        savepoint-bytes  stable-bytes  restore\n";
  std::cout << "------------------------------------------------------\n";
  bool shape_ok = true;
  for (const std::int64_t mutate : {1, 4, 16, 32}) {
    const auto state = measure(agent::LoggingMode::state, 32, mutate);
    const auto transition = measure(agent::LoggingMode::transition, 32,
                                    mutate);
    const auto print = [&](const char* name, const Row& r) {
      std::cout << std::setw(4) << mutate << "  " << std::left
                << std::setw(10) << name << std::right << std::setw(15)
                << r.savepoint_bytes << "  " << std::setw(12)
                << r.stable_bytes << "  "
                << (r.rollback_ok ? "OK" : "FAIL") << "\n";
      shape_ok = shape_ok && r.rollback_ok;
    };
    print("state", state);
    print("transition", transition);
    std::cout << "\n";
    if (mutate == 1) {
      shape_ok = shape_ok &&
                 transition.savepoint_bytes * 4 < state.savepoint_bytes;
    }
    shape_ok = shape_ok &&
               transition.savepoint_bytes <= state.savepoint_bytes * 11 / 10;
  }
  std::cout << "check: transition << state at small mutation fractions, "
               "converging at full mutation; restores verified -> "
            << (shape_ok ? "OK" : "MISMATCH") << "\n";
  return shape_ok ? 0 : 1;
}
