// Experiment A5 — steady-state durability cost of long-lived agents.
//
// The paper's transition logging makes savepoints O(delta) (Sec. 4.2,
// 4.4); the platform's incremental commit applies the same idea to the
// step-commit path: when an agent's next step runs on the same node, only
// the step's delta (appended log entries + dirty data slots) is appended
// to its stable record instead of rewriting the full image.
//
// This bench ages agents to 8/32/128 prior logged steps, then measures
//   * bytes written to stable storage per committed step, and
//   * wall-clock steps/sec of the whole run (the simulation uses virtual
//     time; serialization and storage work are the real-time cost),
// for the full-image path (incremental_commit=false) vs delta commits,
// across fleet sizes. Expected shape: full-image bytes/step grow linearly
// with age; incremental bytes/step stay flat (within 10% from 8 to 128)
// and steps/sec win at least 2x at age 128.
//
// The workload is `spend_logged`: one weak-slot mutation plus one padded
// compensation entry per step, no resource access — so the only state
// that grows with age is the rollback log itself.
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "common.h"

using namespace mar;
using agent::AgentOutcome;
using agent::Itinerary;
using harness::TestWorld;

namespace {

constexpr std::int64_t kParamBytes = 128;

struct RunResult {
  bool ok = false;
  std::uint64_t stable_bytes = 0;
  double wall_sec = 0;
};

/// A fleet of `fleet` agents, each running `steps` spend_logged steps on
/// one node. Deterministic in everything except wall time.
RunResult run_fleet(int fleet, int steps, bool incremental) {
  agent::PlatformConfig cfg;
  cfg.incremental_commit = incremental;
  // Measure the steady-state append cost: push the periodic full-image
  // compaction (an orthogonal, amortized policy knob — default every 32
  // deltas) out of the measured window so bytes/step reflects the delta
  // path itself.
  cfg.compaction_interval_steps = 4096;
  cfg.discard_log_on_top_level = false;  // the aged log is the point
  TestWorld w(cfg, /*node_count=*/1, /*seed=*/5);
  harness::register_workload(w.platform);

  std::vector<AgentId> ids;
  ids.reserve(static_cast<std::size_t>(fleet));
  for (int a = 0; a < fleet; ++a) {
    auto ag = std::make_unique<harness::WorkloadAgent>();
    Itinerary tour;
    for (int s = 0; s < steps; ++s) {
      tour.step("spend_logged", TestWorld::n(1));
    }
    Itinerary main_it;
    main_it.sub(std::move(tour));
    ag->itinerary() = std::move(main_it);
    ag->set_config("param_bytes", kParamBytes);
    auto r = w.platform.launch(std::move(ag));
    MAR_CHECK(r.is_ok());
    ids.push_back(r.value());
  }

  const auto t0 = std::chrono::steady_clock::now();
  const bool finished = w.platform.run_until_all_finished(ids);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult res;
  res.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  res.stable_bytes = w.platform.node(TestWorld::n(1)).storage().stats()
                         .bytes_written;
  res.ok = finished;
  for (const auto id : ids) {
    const auto& out = w.platform.outcome(id);
    res.ok = res.ok && out.state == AgentOutcome::State::done;
    if (!res.ok) break;
    auto fin = w.platform.decode(out.final_agent);
    res.ok = res.ok && fin->data().weak("visits").as_int() == steps;
  }
  return res;
}

struct Cell {
  bool ok = false;
  int age = 0;
  int fleet = 0;
  bool incremental = false;
  double bytes_per_step = 0;
  double steps_per_sec = 0;
  double wall_ms = 0;
};

/// Bytes/step in the steady state: the marginal stable-storage cost of
/// the `measured` steps that follow `age` prior steps (two runs, diffed —
/// both deterministic).
Cell measure(int age, int fleet, int measured, bool incremental) {
  const RunResult aged = run_fleet(fleet, age, incremental);
  const RunResult total = run_fleet(fleet, age + measured, incremental);
  Cell c;
  c.ok = aged.ok && total.ok && total.stable_bytes > aged.stable_bytes;
  c.age = age;
  c.fleet = fleet;
  c.incremental = incremental;
  c.bytes_per_step =
      static_cast<double>(total.stable_bytes - aged.stable_bytes) /
      (static_cast<double>(fleet) * measured);
  c.steps_per_sec = static_cast<double>(fleet) * (age + measured) /
                    (total.wall_sec > 0 ? total.wall_sec : 1e-9);
  c.wall_ms = total.wall_sec * 1e3;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::BenchReport report("a5_steady_state");

  // Reduced sweep for CI (wall-clock checks are relaxed there: CI boxes
  // run the suite under contention).
  const bool quick = std::getenv("MAR_BENCH_QUICK") != nullptr;
  const std::vector<int> ages = quick ? std::vector<int>{8, 32}
                                      : std::vector<int>{8, 32, 128};
  const std::vector<int> fleets = quick ? std::vector<int>{1}
                                        : std::vector<int>{1, 8};
  const int measured = quick ? 16 : 32;
  // Wall-clock gating is reserved for the full preset (baseline
  // generation on a quiet machine): a contended CI runner can stall any
  // timed run, so the quick preset reports the speedup without failing
  // on it. The deterministic bytes/step shape checks always gate.
  const bool gate_on_wall_clock = !quick;
  const double required_speedup = 2.0;

  std::cout << "=== A5: steady-state durability (delta vs full-image "
               "commits) ===\n"
            << "(bytes written to stable storage per step and wall-clock "
               "steps/sec\n vs agent age = prior logged steps; "
            << measured << " measured steps; param " << kParamBytes
            << " B)\n\n";
  std::cout << "mode  age  fleet  bytes/step  steps/sec  wall[ms]\n";
  std::cout << "-------------------------------------------------\n";

  bool shape_ok = true;
  std::vector<Cell> cells;
  for (const bool incremental : {false, true}) {
    for (const int fleet : fleets) {
      for (const int age : ages) {
        const Cell c = measure(age, fleet, measured, incremental);
        cells.push_back(c);
        shape_ok = shape_ok && c.ok;
        std::cout << (incremental ? "incr" : "full") << "  " << std::setw(3)
                  << age << "  " << std::setw(5) << fleet << "  "
                  << std::setw(10) << std::fixed << std::setprecision(1)
                  << c.bytes_per_step << "  " << std::setw(9)
                  << std::setprecision(0) << c.steps_per_sec << "  "
                  << std::setw(8) << std::setprecision(2) << c.wall_ms
                  << "\n";
        report.row()
            .set("mode", incremental ? "incremental" : "full")
            .set("age", age)
            .set("fleet", fleet)
            .set("measured_steps", measured)
            .set("bytes_per_step", c.bytes_per_step)
            .set("steps_per_sec", c.steps_per_sec)
            .set("wall_ms", c.wall_ms)
            .set("ok", c.ok);
      }
    }
  }

  auto cell_of = [&cells](int age, int fleet, bool incr) -> const Cell& {
    for (const auto& c : cells) {
      if (c.age == age && c.fleet == fleet && c.incremental == incr) {
        return c;
      }
    }
    MAR_CHECK_MSG(false, "missing sweep cell");
    return cells.front();
  };

  // Shape checks. Full-image bytes/step must grow with age (that is the
  // problem); incremental bytes/step must stay flat within 10% from the
  // youngest to the oldest age; and at the oldest age the incremental
  // path must deliver the wall-clock win.
  const int oldest = ages.back();
  std::cout << "\n";
  for (const int fleet : fleets) {
    const auto& full_young = cell_of(ages.front(), fleet, false);
    const auto& full_old = cell_of(oldest, fleet, false);
    const auto& incr_young = cell_of(ages.front(), fleet, true);
    const auto& incr_old = cell_of(oldest, fleet, true);
    const bool grows = full_old.bytes_per_step > 1.5 * full_young.bytes_per_step;
    const bool flat =
        incr_old.bytes_per_step <= 1.10 * incr_young.bytes_per_step;
    const double speedup = incr_old.steps_per_sec / full_old.steps_per_sec;
    const bool fast = !gate_on_wall_clock || speedup >= required_speedup;
    std::cout << "fleet " << fleet << ": full grows "
              << std::setprecision(2)
              << full_old.bytes_per_step / full_young.bytes_per_step
              << "x, incr flat "
              << incr_old.bytes_per_step / incr_young.bytes_per_step
              << "x, speedup@" << oldest << " " << speedup << "x -> "
              << ((grows && flat && fast) ? "OK" : "MISMATCH") << "\n";
    shape_ok = shape_ok && grows && flat && fast;
    report.row()
        .set("phase", "check")
        .set("fleet", fleet)
        .set("oldest_age", oldest)
        .set("full_growth", full_old.bytes_per_step / full_young.bytes_per_step)
        .set("incr_flatness",
             incr_old.bytes_per_step / incr_young.bytes_per_step)
        .set("speedup", speedup)
        .set("required_speedup", gate_on_wall_clock ? required_speedup : 0.0);
  }

  std::cout << (shape_ok ? "\nshape check: OK\n" : "\nshape check: FAILED\n");
  report.set_ok(shape_ok);
  if (!json_path.empty() && !report.write_file(json_path)) return 2;
  return shape_ok ? 0 : 1;
}
