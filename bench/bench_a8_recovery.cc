// Experiment A8 — crash-recovery cost: replayed bytes and recovery time.
//
// The exactly-once protocol keeps every agent in stable storage between
// steps, so a node restart must rebuild the record read path before it
// can re-offer queued work. Classic (unsegmented) storage replays the
// ENTIRE record area — work that grows without bound with agent age
// between full-image compactions. The segmented record log
// (src/storage/segment_log.h) bounds it: recovery replays only the
// CRC32-framed log since the last completed fuzzy checkpoint.
//
// This bench ages a fleet of spend_logged agents to ~8/32/128 committed
// steps, then crashes and immediately recovers their node, measuring
//   * recovery_replayed_bytes — bytes the recovery scan replayed, and
//   * recovery_ms             — wall-clock of the crash->up transition,
// for classic mode (the unbounded full-replay envelope) vs the segmented
// log with checkpoints armed. Expected shape: classic replayed bytes grow
// >= 1.5x from the youngest to the oldest age; segmented+checkpoint
// replayed bytes stay bounded (<= 1.3x); and after recovery every agent
// still completes with exactly-once intact (visits == steps).
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.h"

using namespace mar;
using agent::AgentOutcome;
using agent::Itinerary;
using harness::TestWorld;

namespace {

constexpr std::int64_t kParamBytes = 128;

struct RunResult {
  bool ok = false;
  std::uint64_t replayed_bytes = 0;
  std::uint64_t replayed_segments = 0;
  std::uint64_t checkpoints = 0;
  double recovery_ms = 0;
};

/// Age `fleet` agents to ~`age` committed steps each on one node, crash
/// that node, time the recovery, then run the fleet to completion and
/// verify exactly-once. Deterministic in everything except wall time.
RunResult age_then_recover(int fleet, int age, bool segmented) {
  agent::PlatformConfig cfg;
  cfg.incremental_commit = true;
  // The aging sweep measures recovery vs age, so push the orthogonal
  // compaction policy out of the window — compaction is exactly the
  // mitigation whose absence the classic envelope exposes.
  cfg.compaction_interval_steps = 4096;
  cfg.discard_log_on_top_level = false;
  cfg.segmented_log = segmented;
  cfg.segment_bytes = 4096;
  // Checkpoints are the point of the segmented cell: a fuzzy snapshot
  // roughly every 4 KiB of record-log writes bounds replay independent
  // of age. Classic mode has no checkpoint machinery to arm.
  cfg.checkpoint_interval_bytes = segmented ? 4096 : 0;
  TestWorld w(cfg, /*node_count=*/1, /*seed=*/5);
  harness::register_workload(w.platform);

  std::vector<AgentId> ids;
  ids.reserve(static_cast<std::size_t>(fleet));
  for (int a = 0; a < fleet; ++a) {
    auto ag = std::make_unique<harness::WorkloadAgent>();
    Itinerary tour;
    for (int s = 0; s < age + 4; ++s) {
      tour.step("spend_logged", TestWorld::n(1));
    }
    Itinerary main_it;
    main_it.sub(std::move(tour));
    ag->itinerary() = std::move(main_it);
    ag->set_config("param_bytes", kParamBytes);
    auto r = w.platform.launch(std::move(ag));
    MAR_CHECK(r.is_ok());
    ids.push_back(r.value());
  }

  // Age the fleet: each locally-committed incremental step appends one
  // delta, so record_appends ~ committed steps across the fleet.
  auto& storage = w.platform.node(TestWorld::n(1)).storage();
  const auto target =
      static_cast<std::uint64_t>(fleet) * static_cast<std::uint64_t>(age);
  const bool aged = w.sim.run_while_pending(
      [&] { return storage.stats().record_appends.load() >= target; });

  // Crash and immediately recover: the timed window is the recovery scan
  // (checkpoint load + log replay in segmented mode, the full-area
  // envelope in classic mode) plus the tx-layer recovery pass.
  auto& rt = w.platform.node(TestWorld::n(1));
  const auto t0 = std::chrono::steady_clock::now();
  rt.on_node_state(false);
  rt.on_node_state(true);
  const auto t1 = std::chrono::steady_clock::now();

  RunResult res;
  res.recovery_ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;
  res.replayed_bytes = storage.stats().recovery_replayed_bytes.load();
  res.replayed_segments = storage.stats().recovery_segments.load();
  res.checkpoints = storage.stats().checkpoints_completed.load();

  // Exactly-once must survive the crash: every agent completes with one
  // visit per itinerary step.
  res.ok = aged && w.platform.run_until_all_finished(ids);
  for (const auto id : ids) {
    if (!res.ok) break;
    const auto& out = w.platform.outcome(id);
    res.ok = out.state == AgentOutcome::State::done;
    if (!res.ok) break;
    auto fin = w.platform.decode(out.final_agent);
    res.ok = fin->data().weak("visits").as_int() == age + 4;
  }
  return res;
}

struct Cell {
  RunResult r;
  int age = 0;
  int fleet = 0;
  bool segmented = false;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::BenchReport report("a8_recovery");

  const bool quick = std::getenv("MAR_BENCH_QUICK") != nullptr;
  const std::vector<int> ages = quick ? std::vector<int>{8, 32}
                                      : std::vector<int>{8, 32, 128};
  const std::vector<int> fleets = quick ? std::vector<int>{4}
                                        : std::vector<int>{4, 16};
  // Wall-clock gating only in the full preset (baselines come from a
  // quiet machine; CI runners are contended). Byte shapes always gate.
  const bool gate_on_wall_clock = !quick;

  std::cout << "=== A8: crash-recovery cost (segmented log + checkpoints "
               "vs full replay) ===\n"
            << "(record-log bytes replayed and wall-clock of one node "
               "recovery\n vs fleet size x agent age; param "
            << kParamBytes << " B)\n\n";
  std::cout
      << "mode       age  fleet  replayed[B]  segs  ckpts  recovery[ms]\n";
  std::cout
      << "------------------------------------------------------------\n";

  bool shape_ok = true;
  std::vector<Cell> cells;
  for (const bool segmented : {false, true}) {
    for (const int fleet : fleets) {
      for (const int age : ages) {
        Cell c;
        c.r = age_then_recover(fleet, age, segmented);
        c.age = age;
        c.fleet = fleet;
        c.segmented = segmented;
        cells.push_back(c);
        shape_ok = shape_ok && c.r.ok;
        std::cout << (segmented ? "segmented " : "classic   ")
                  << std::setw(3) << age << "  " << std::setw(5) << fleet
                  << "  " << std::setw(11) << c.r.replayed_bytes << "  "
                  << std::setw(4) << c.r.replayed_segments << "  "
                  << std::setw(5) << c.r.checkpoints << "  " << std::setw(12)
                  << std::fixed << std::setprecision(3) << c.r.recovery_ms
                  << "\n";
        report.row()
            .set("mode", segmented ? "segmented" : "classic")
            .set("age", age)
            .set("fleet", fleet)
            .set("recovery_replayed_bytes", c.r.replayed_bytes)
            .set("recovery_segments", c.r.replayed_segments)
            .set("checkpoints_completed", c.r.checkpoints)
            .set("recovery_ms", c.r.recovery_ms)
            .set("ok", c.r.ok);
      }
    }
  }

  auto cell_of = [&cells](int age, int fleet, bool segmented) -> const Cell& {
    for (const auto& c : cells) {
      if (c.age == age && c.fleet == fleet && c.segmented == segmented) {
        return c;
      }
    }
    MAR_CHECK_MSG(false, "missing sweep cell");
    return cells.front();
  };

  // Shape checks: classic replay grows with age (the unbounded envelope),
  // segmented+checkpoint replay stays bounded, and is strictly cheaper
  // than classic at the oldest age.
  const int oldest = ages.back();
  std::cout << "\n";
  for (const int fleet : fleets) {
    const auto& classic_young = cell_of(ages.front(), fleet, false);
    const auto& classic_old = cell_of(oldest, fleet, false);
    const auto& seg_young = cell_of(ages.front(), fleet, true);
    const auto& seg_old = cell_of(oldest, fleet, true);
    const double classic_growth =
        static_cast<double>(classic_old.r.replayed_bytes) /
        static_cast<double>(classic_young.r.replayed_bytes);
    const double seg_growth =
        static_cast<double>(seg_old.r.replayed_bytes) /
        static_cast<double>(seg_young.r.replayed_bytes);
    const bool grows = classic_growth >= 1.5;
    const bool bounded = seg_growth <= 1.3;
    const bool cheaper =
        seg_old.r.replayed_bytes < classic_old.r.replayed_bytes;
    const bool checkpointed = seg_old.r.checkpoints > 0;
    // Wall-clock: recovery time has an O(live state) floor no storage
    // scheme removes — re-offering a resident agent decodes its image,
    // and this sweep deliberately lets state grow by deferring
    // compaction — so recovery_ms is NOT flat in age here. The wall
    // assertion is comparative instead: segmented recovery (which
    // actually parses and CRC-checks frames) must stay within a small
    // constant factor of the classic envelope (which merely walks the
    // area) at the oldest age, while the deterministic replayed-bytes
    // curves above carry the boundedness claim. Generous factor +
    // absolute floor absorb timer noise.
    const double wall_budget =
        std::max(1.0, 4.0 * classic_old.r.recovery_ms);
    const bool wall_flat =
        !gate_on_wall_clock || seg_old.r.recovery_ms <= wall_budget;
    std::cout << "fleet " << fleet << ": classic grows "
              << std::setprecision(2) << classic_growth
              << "x, segmented " << seg_growth << "x (ckpts "
              << seg_old.r.checkpoints << "), old-age replay "
              << seg_old.r.replayed_bytes << " vs "
              << classic_old.r.replayed_bytes << " B -> "
              << ((grows && bounded && cheaper && checkpointed && wall_flat)
                      ? "OK"
                      : "MISMATCH")
              << "\n";
    shape_ok = shape_ok && grows && bounded && cheaper && checkpointed &&
               wall_flat;
    report.row()
        .set("phase", "check")
        .set("fleet", fleet)
        .set("oldest_age", oldest)
        .set("classic_growth", classic_growth)
        .set("segmented_growth", seg_growth)
        .set("segmented_old_replayed_bytes", seg_old.r.replayed_bytes)
        .set("classic_old_replayed_bytes", classic_old.r.replayed_bytes)
        .set("wall_gated", gate_on_wall_clock);
  }

  std::cout << (shape_ok ? "\nshape check: OK\n" : "\nshape check: FAILED\n");
  report.set_ok(shape_ok);
  if (!json_path.empty() && !report.write_file(json_path)) return 2;
  return shape_ok ? 0 : 1;
}
