// Experiment E2 — basic (Fig. 4) vs optimized (Fig. 5) rollback.
//
// The optimization's claim (Sec. 4.4.1): when steps have no mixed
// compensation entries, the agent need not travel; only the resource
// compensation entries cross the wire, reducing network load and rollback
// latency. This bench rolls back an 8-step execution while sweeping the
// fraction of steps that logged a mixed entry, for both algorithms, and
// reports a full-restart baseline (give up the partial rollback and re-run
// the whole sub-itinerary) for scale.
//
// Expected shape: at mixed=0 the optimized algorithm does 0 agent
// transfers and wins by a wide margin (it ships operation entries, not the
// agent); the gap narrows as the mixed fraction grows and closes at
// mixed=1, where both algorithms must walk the agent back hop by hop.
#include <iomanip>
#include <iostream>

#include "common.h"

using namespace mar;

int main() {
  std::cout << "=== E2: rollback cost, basic vs optimized ===\n"
            << "(8 steps on 8 nodes, rollback of the whole sub-itinerary; "
               "64-byte undo params)\n\n";
  std::cout << "mixed%   strategy   rollback[ms]  wire[KB]  agent-transfers  "
               "forward-rerun[ms]\n";
  std::cout << "---------------------------------------------------------"
               "----------------\n";

  bool shape_ok = true;
  for (const double mixed : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    bench::Metrics results[2];
    int i = 0;
    for (const auto strategy : {agent::RollbackStrategy::basic,
                                agent::RollbackStrategy::optimized}) {
      bench::RollbackScenario s;
      s.steps = 8;
      s.mixed_fraction = mixed;
      s.param_bytes = 64;
      s.config.strategy = strategy;
      const auto m = bench::run_rollback_scenario(s);
      results[i++] = m;
      std::cout << std::setw(5) << static_cast<int>(mixed * 100) << "%   "
                << (strategy == agent::RollbackStrategy::basic ? "basic    "
                                                               : "optimized")
                << "  " << std::setw(10) << std::fixed
                << std::setprecision(2) << m.rollback_us / 1000.0 << "  "
                << std::setw(8) << m.rollback_wire_bytes / 1024 << "  "
                << std::setw(15) << m.rollback_transfers << "  "
                << std::setw(15) << m.forward_us / 1000.0 << "\n";
      if (!m.ok) shape_ok = false;
    }
    // Shape checks per the paper's claims.
    if (mixed == 0.0) {
      shape_ok = shape_ok && results[1].rollback_transfers == 0 &&
                 results[0].rollback_transfers >= 7 &&
                 results[1].rollback_wire_bytes <
                     results[0].rollback_wire_bytes &&
                 results[1].rollback_us < results[0].rollback_us;
    }
    if (mixed == 1.0) {
      // Both must walk the agent back: costs converge.
      shape_ok = shape_ok &&
                 results[1].rollback_transfers ==
                     results[0].rollback_transfers;
    }
  }
  std::cout << "\ncheck: optimized wins at mixed=0 (0 transfers, less wire, "
               "lower latency),\n       converges with basic at mixed=1 -> "
            << (shape_ok ? "OK" : "MISMATCH") << "\n";
  return shape_ok ? 0 : 1;
}
