// Experiment E6 — rollback liveness under transient faults (Sec. 4.3).
//
// The mechanism's guarantee: "the algorithm ensures that all steps which
// have to be rolled back are eventually rolled back" assuming non-lasting
// node/network crashes and reliable transfer. This bench runs the standard
// 8-step rollback scenario while every node independently crash/recovers
// as a Poisson process, sweeping the crash rate, and reports completion
// times. The run FAILS if any configuration blocks.
//
// Two storage modes per crash rate:
//   * classic   — segmented_log off: the unsegmented record area, pinned
//                 as the full-replay envelope (bit-exact seed behavior);
//   * segmented — the CRC32-framed segment log with fuzzy checkpoints
//                 armed, recovering through the same crash schedule.
// The virtual-time outcome (completion, compensation counts) must be
// identical between the modes; only the storage metering differs.
//
// Expected shape: completion time degrades smoothly as crashes become more
// frequent; correctness (completion + exact compensation) never degrades.
#include <iomanip>
#include <iostream>

#include "common.h"

using namespace mar;

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::BenchReport report("e6_fault_recovery");
  std::cout << "=== E6: rollback completion under transient crashes ===\n"
            << "(8 steps + full-sub rollback; Poisson crash/recover per "
               "node, 200 ms mean downtime)\n\n";
  std::cout << "mode       MTBC[s]  crashes  forward[ms]  rollback[ms]  "
               "total[ms]  comp-CTs  done\n";
  std::cout << "--------------------------------------------------------"
               "--------------------\n";
  bool all_ok = true;
  for (const bool segmented : {false, true}) {
    for (const double mtbc_s : {0.0, 10.0, 3.0, 1.0, 0.5}) {
      // Average over seeds for the noisy settings.
      double total_ms = 0;
      double rollback_ms = 0;
      double forward_ms = 0;
      std::uint64_t crashes = 0;
      std::uint64_t comp = 0;
      bool ok = true;
      constexpr int kSeeds = 3;
      for (int seed = 0; seed < kSeeds; ++seed) {
        bench::RollbackScenario s;
        s.steps = 8;
        s.mixed_fraction = 0.5;
        s.seed = 100 + static_cast<std::uint64_t>(seed);
        s.inject_faults = mtbc_s > 0;
        s.mean_time_between_crashes_us = mtbc_s * 1e6;
        s.mean_downtime_us = 200'000;
        s.config.segmented_log = segmented;
        if (segmented) s.config.checkpoint_interval_bytes = 4096;
        const auto m = bench::run_rollback_scenario(s);
        m.write_fields(report.row()
                           .set("mode", segmented ? "segmented" : "classic")
                           .set("mtbc_s", mtbc_s)
                           .set("seed", s.seed));
        ok = ok && m.ok;
        total_ms += m.total_us / 1000.0 / kSeeds;
        rollback_ms += m.rollback_us / 1000.0 / kSeeds;
        forward_ms += m.forward_us / 1000.0 / kSeeds;
        crashes += m.crashes;
        comp += m.comp_commits;
      }
      std::cout << (segmented ? "segmented  " : "classic    ")
                << std::setw(7) << std::fixed << std::setprecision(1)
                << mtbc_s << "  " << std::setw(7) << crashes << "  "
                << std::setw(11) << std::setprecision(1) << forward_ms
                << "  " << std::setw(12) << rollback_ms << "  "
                << std::setw(9) << total_ms << "  " << std::setw(8) << comp
                << "  " << (ok ? "yes" : "NO") << "\n";
      all_ok = all_ok && ok;
    }
  }
  std::cout << "\ncheck: every configuration completes (eventual rollback "
               "under transient faults, both storage modes) -> "
            << (all_ok ? "OK" : "MISMATCH") << "\n";
  report.set_ok(all_ok);
  if (!json_path.empty() && !report.write_file(json_path)) return 2;
  return all_ok ? 0 : 1;
}
