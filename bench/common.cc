#include "common.h"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "util/check.h"

namespace mar::bench {

// --------------------------------------------------------------------------
// JSON output
// --------------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

JsonRecord& JsonRecord::raw(std::string_view key, std::string rendered) {
  fields_.emplace_back(std::string(key), std::move(rendered));
  return *this;
}

JsonRecord& JsonRecord::set(std::string_view key, std::uint64_t v) {
  return raw(key, std::to_string(v));
}
JsonRecord& JsonRecord::set(std::string_view key, std::int64_t v) {
  return raw(key, std::to_string(v));
}
JsonRecord& JsonRecord::set(std::string_view key, int v) {
  return raw(key, std::to_string(v));
}
JsonRecord& JsonRecord::set(std::string_view key, double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  MAR_CHECK(ec == std::errc{});
  return raw(key, std::string(buf, end));
}
JsonRecord& JsonRecord::set(std::string_view key, bool v) {
  return raw(key, v ? "true" : "false");
}
JsonRecord& JsonRecord::set(std::string_view key, std::string_view v) {
  return raw(key, '"' + json_escape(v) + '"');
}

std::string JsonRecord::to_json() const {
  std::string out = "{";
  for (const auto& [key, rendered] : fields_) {
    if (out.size() > 1) out += ", ";
    out += '"' + json_escape(key) + "\": " + rendered;
  }
  return out + "}";
}

JsonRecord& BenchReport::row() { return rows_.emplace_back(); }

std::string BenchReport::to_json() const {
  std::string out = "{\"bench\": \"" + json_escape(name_) + "\", \"ok\": ";
  out += ok_ ? "true" : "false";
  out += ", \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "\n  " + rows_[i].to_json();
  }
  return out + "\n]}\n";
}

bool BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  out << to_json();
  out.flush();  // surface buffered-write errors (ENOSPC) before the check
  if (!out) {
    std::cerr << "failed to write JSON report to " << path << "\n";
    return false;
  }
  return true;
}

std::string json_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json" || arg == "--json=") {
      if (arg == "--json" && i + 1 < argc) return argv[i + 1];
      std::cerr << "error: --json requires a path\n";
      std::exit(2);
    }
    if (arg.starts_with("--json=")) return std::string(arg.substr(7));
  }
  return "";
}

JsonRecord& Metrics::write_fields(JsonRecord& out) const {
  out.set("ok", ok)
      .set("total_us", total_us)
      .set("forward_us", forward_us)
      .set("rollback_us", rollback_us)
      .set("rollback_wire_bytes", rollback_wire_bytes)
      .set("total_wire_bytes", total_wire_bytes)
      .set("rollback_transfers", rollback_transfers)
      .set("mixed_ships", mixed_ships)
      .set("comp_commits", comp_commits)
      .set("stable_bytes", stable_bytes)
      .set("crashes", crashes)
      .set("final_log_bytes", final_log_bytes);
  return out;
}

std::string Metrics::to_json() const {
  JsonRecord rec;
  return write_fields(rec).to_json();
}

Metrics run_rollback_scenario(const RollbackScenario& s) {
  harness::TestWorld w(s.config, /*node_count=*/s.steps + 1, s.seed);
  harness::register_workload(w.platform);

  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  // Deterministically interleave mixed and split steps at the requested
  // fraction (error-diffusion so e.g. 0.5 alternates).
  double acc = 0.0;
  for (int i = 0; i < s.steps; ++i) {
    acc += s.mixed_fraction;
    const bool mixed = acc >= 1.0 - 1e-9;
    if (mixed) acc -= 1.0;
    sub.step(mixed ? "touch_mixed" : "touch_split",
             harness::TestWorld::n(i + 1));
    if (s.strong_bytes > 0) {
      sub.step("grow_strong", harness::TestWorld::n(i + 1));
    }
  }
  sub.step("noop", harness::TestWorld::n(s.steps + 1));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sub));
  agent->itinerary() = std::move(main_itinerary);

  const std::int64_t visits_per_step = s.strong_bytes > 0 ? 2 : 1;
  agent->set_trigger("noop", s.steps * visits_per_step + 1, "sub", 0);
  agent->set_config("param_bytes", s.param_bytes);
  agent->set_config("strong_bytes", s.strong_bytes);

  if (s.inject_faults) {
    Rng rng(s.seed * 7919 + 13);
    net::FaultInjector::CrashPlan plan;
    plan.mean_time_between_crashes_us = s.mean_time_between_crashes_us;
    plan.mean_downtime_us = s.mean_downtime_us;
    plan.horizon_us = s.fault_horizon_us;
    w.faults.random_crashes(w.net.node_ids(), rng, plan);
  }

  auto id = w.platform.launch(std::move(agent));
  MAR_CHECK(id.is_ok());

  Metrics m;
  // Phase 1: run until the rollback is initiated.
  const bool initiated = w.sim.run_while_pending(
      [&] { return w.trace.count(TraceKind::rollback_begin) > 0; });
  if (!initiated) return m;
  m.forward_us = w.sim.now();
  const auto wire_at_rollback = w.net.stats().bytes_sent;
  const auto transfers_at_rollback = w.platform.rollback_transfers();

  // Phase 2: run until the target savepoint is restored.
  const bool rolled_back = w.sim.run_while_pending(
      [&] { return w.trace.count(TraceKind::rollback_done) > 0; });
  if (!rolled_back) return m;
  m.rollback_us = w.sim.now() - m.forward_us;
  m.rollback_wire_bytes = w.net.stats().bytes_sent - wire_at_rollback;
  m.rollback_transfers =
      w.platform.rollback_transfers() - transfers_at_rollback;
  m.mixed_ships = w.platform.mixed_ships();

  // Phase 3: run to completion (re-execution after the rollback).
  if (!w.platform.run_until_finished(id.value())) return m;
  const auto& outcome = w.platform.outcome(id.value());
  m.ok = outcome.state == agent::AgentOutcome::State::done;
  m.total_us = outcome.finished_at;
  m.total_wire_bytes = w.net.stats().bytes_sent;
  m.comp_commits = w.trace.count(TraceKind::comp_commit);
  m.crashes = w.faults.crashes_injected();
  for (const auto node : w.net.node_ids()) {
    m.stable_bytes += w.platform.node(node).storage().stats().bytes_written;
  }
  auto fin = w.platform.decode(outcome.final_agent);
  m.final_log_bytes = fin->log().byte_size();
  return m;
}

std::string fmt(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace mar::bench
