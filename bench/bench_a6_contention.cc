// Experiment A6 — contended-fleet fast path: per-key locking + group
// commit.
//
// PR 2's slotted scheduler scales independent fleets, but under instance
// locking any two agents touching the same resource instance serialize on
// its exclusive lock and burn slots on lock_conflict abort/restart. The
// paper's ACID envelope (Sec. 2) requires isolation per *datum*: with
// PlatformConfig::lock_granularity = per_key, step transactions conflict
// only when their declared key-sets overlap — so a fleet hammering ONE
// bank scales with node_concurrency as long as its account draws spread.
//
// The workload: F agents x S `bank_hot` steps on one node, each step a
// deposit into an account drawn from K accounts — uniformly, or Zipf(s)
// (hot-key skew). Swept over draw skew x node_concurrency {1,2,4,8} x
// lock granularity, reporting
//   * steps/sec (virtual-time throughput: committed steps / makespan),
//   * abort rate (lock_conflict aborts per committed step), and
//   * syncs/step (metered stable-storage sync batches per committed step).
// A second sweep raises group_commit_window at the most contended cell:
// commits of a window share one metered sync, so syncs/step drops below 1.
//
// Correctness is asserted, not assumed: every agent's steps run exactly
// once and the committed account balances must sum to exactly the number
// of committed deposits — any lost or doubled per-key overlay write-back
// would break the invariant.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "common.h"
#include "expt/parallel_worlds.h"

using namespace mar;
using agent::AgentOutcome;
using agent::Itinerary;
using harness::TestWorld;

namespace {

constexpr int kAccounts = 64;
constexpr double kZipfS = 1.2;

struct Cell {
  bool ok = false;
  bool zipf = false;
  bool per_key = false;
  std::uint32_t conc = 1;
  std::uint32_t window = 1;
  int fleet = 0;
  int steps = 0;
  sim::TimeUs makespan_us = 0;
  double steps_per_sec = 0;
  double abort_rate = 0;
  double syncs_per_step = 0;
  std::uint64_t lock_conflicts = 0;
  std::uint64_t sync_batches = 0;
};

/// Per-step account draws for one agent: uniform or Zipf(kZipfS) over
/// kAccounts, deterministic in (seed, agent index).
std::vector<std::int64_t> draw_accounts(bool zipf, int steps, Rng& rng) {
  std::vector<std::int64_t> draws;
  draws.reserve(static_cast<std::size_t>(steps));
  if (!zipf) {
    for (int s = 0; s < steps; ++s) {
      draws.push_back(static_cast<std::int64_t>(rng.next_below(kAccounts)));
    }
    return draws;
  }
  // Zipf via inverse CDF over the rank distribution 1/r^s.
  std::vector<double> cdf(kAccounts);
  double sum = 0;
  for (int r = 0; r < kAccounts; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), kZipfS);
    cdf[static_cast<std::size_t>(r)] = sum;
  }
  for (int s = 0; s < steps; ++s) {
    const double u = rng.next_double() * sum;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    draws.push_back(static_cast<std::int64_t>(
        std::min<std::ptrdiff_t>(it - cdf.begin(), kAccounts - 1)));
  }
  return draws;
}

Cell run_cell(bool zipf, std::uint32_t conc, bool per_key,
              std::uint32_t window, int fleet, int steps,
              std::uint64_t seed) {
  agent::PlatformConfig cfg;
  cfg.node_concurrency = conc;
  cfg.lock_granularity = per_key ? resource::LockGranularity::per_key
                                 : resource::LockGranularity::instance;
  cfg.group_commit_window = window;
  TestWorld w(cfg, /*node_count=*/1, seed);
  harness::register_workload(w.platform);
  for (int a = 0; a < kAccounts; ++a) {
    w.open_account(1, "a" + std::to_string(a), 0);
  }

  Rng draws_rng(seed * 7919 + (zipf ? 1 : 0));
  std::vector<AgentId> ids;
  ids.reserve(static_cast<std::size_t>(fleet));
  for (int a = 0; a < fleet; ++a) {
    auto ag = std::make_unique<harness::WorkloadAgent>();
    Itinerary tour;
    for (int s = 0; s < steps; ++s) tour.step("bank_hot", TestWorld::n(1));
    Itinerary main_it;
    main_it.sub(std::move(tour));
    ag->itinerary() = std::move(main_it);
    serial::Value accounts = serial::Value::empty_list();
    for (const auto d : draw_accounts(zipf, steps, draws_rng)) {
      accounts.push_back(d);
    }
    ag->set_config_value("hot_accounts", std::move(accounts));
    auto r = w.platform.launch(std::move(ag));
    MAR_CHECK(r.is_ok());
    ids.push_back(r.value());
  }

  Cell c;
  c.zipf = zipf;
  c.per_key = per_key;
  c.conc = conc;
  c.window = window;
  c.fleet = fleet;
  c.steps = steps;
  if (!w.platform.run_until_all_finished(ids)) return c;

  bool all_ok = true;
  for (const auto id : ids) {
    const auto& out = w.platform.outcome(id);
    all_ok = all_ok && out.state == AgentOutcome::State::done;
    if (out.state != AgentOutcome::State::done) continue;
    c.makespan_us = std::max(c.makespan_us, out.finished_at);
    auto fin = w.platform.decode(out.final_agent);
    all_ok = all_ok &&
             fin->data().weak("visits").as_int() == steps;  // exactly once
  }
  // The committed balances must account for every deposit exactly once,
  // whatever the interleaving — the per-key overlays' acid test.
  std::int64_t total_balance = 0;
  const auto& bank = w.committed(1, "bank");
  for (const auto& [acct, entry] : bank.at("accounts").as_map()) {
    (void)acct;
    total_balance += entry.at("balance").as_int();
  }
  const auto committed_steps = static_cast<std::uint64_t>(fleet) *
                               static_cast<std::uint64_t>(steps);
  all_ok = all_ok &&
           total_balance == static_cast<std::int64_t>(committed_steps);

  c.ok = all_ok && c.makespan_us > 0;
  c.lock_conflicts = w.platform.lock_conflict_aborts();
  c.sync_batches =
      w.platform.node(TestWorld::n(1)).storage().stats().sync_batches;
  c.steps_per_sec = static_cast<double>(committed_steps) * 1e6 /
                    static_cast<double>(c.makespan_us);
  c.abort_rate = static_cast<double>(c.lock_conflicts) /
                 static_cast<double>(committed_steps);
  c.syncs_per_step = static_cast<double>(c.sync_batches) /
                     static_cast<double>(committed_steps);
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::BenchReport report("a6_contention");

  // The reduced preset trims the sweep dimensions but keeps the cell
  // parameters (fleet, steps) identical to the full preset, so CI's quick
  // rows land on the SAME baseline cells and the abort-rate / syncs-per-
  // step regression gates in bench_diff.py actually compare.
  const bool quick = std::getenv("MAR_BENCH_QUICK") != nullptr;
  const int fleet = 16;
  const int steps = 16;
  const std::vector<std::uint32_t> concs =
      quick ? std::vector<std::uint32_t>{1, 8}
            : std::vector<std::uint32_t>{1, 2, 4, 8};
  const std::vector<std::uint32_t> windows =
      quick ? std::vector<std::uint32_t>{4}
            : std::vector<std::uint32_t>{2, 4, 8};

  std::cout << "=== A6: contended fleet (per-key locking + group commit) "
               "===\n"
            << "(" << fleet << " agents x " << steps
            << " bank deposits on ONE bank of " << kAccounts
            << " accounts; draws uniform vs zipf(" << kZipfS
            << "); instance vs per-key locks)\n\n";

  struct Job {
    bool zipf;
    std::uint32_t conc;
    bool per_key;
    std::uint32_t window;
  };
  std::vector<Job> jobs;
  for (const bool zipf : {false, true}) {
    for (const auto conc : concs) {
      for (const bool per_key : {false, true}) {
        jobs.push_back({zipf, conc, per_key, 1});
      }
    }
  }
  // Group-commit sweep at the most multiprogrammed per-key cell.
  for (const auto win : windows) jobs.push_back({true, 8, true, win});

  const auto results = expt::run_worlds(
      jobs.size(),
      [&jobs, fleet, steps](std::size_t i) {
        const Job& j = jobs[i];
        return run_cell(j.zipf, j.conc, j.per_key, j.window, fleet, steps,
                        /*seed=*/11);
      });

  auto cell_of = [&](bool zipf, std::uint32_t conc, bool per_key,
                     std::uint32_t window) -> const Cell& {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].zipf == zipf && jobs[i].conc == conc &&
          jobs[i].per_key == per_key && jobs[i].window == window) {
        return results[i];
      }
    }
    MAR_CHECK_MSG(false, "missing sweep cell");
    return results[0];
  };

  bool shape_ok = true;
  std::cout << "skew     locks     conc  steps/s  abort/step  syncs/step  "
               "makespan[ms]\n"
            << "----------------------------------------------------------"
               "----------\n";
  for (const auto& c : results) {
    if (c.window != 1) continue;
    shape_ok = shape_ok && c.ok;
    std::cout << std::left << std::setw(8) << (c.zipf ? "zipf" : "uniform")
              << " " << std::setw(9) << (c.per_key ? "per-key" : "instance")
              << std::right << " " << std::setw(4) << c.conc << "  "
              << std::setw(7) << std::fixed << std::setprecision(0)
              << c.steps_per_sec << "  " << std::setw(10)
              << std::setprecision(3) << c.abort_rate << "  " << std::setw(10)
              << c.syncs_per_step << "  " << std::setw(12)
              << std::setprecision(2) << c.makespan_us / 1000.0 << "\n";
  }
  for (const auto& c : results) {
    report.row()
        .set("phase", c.window == 1 ? "sweep" : "group_commit")
        .set("skew", c.zipf ? "zipf" : "uniform")
        .set("granularity", c.per_key ? "per_key" : "instance")
        .set("node_concurrency", static_cast<int>(c.conc))
        .set("group_commit_window", static_cast<int>(c.window))
        .set("fleet", c.fleet)
        .set("steps", c.steps)
        .set("steps_per_sec", c.steps_per_sec)
        .set("abort_rate", c.abort_rate)
        .set("syncs_per_step", c.syncs_per_step)
        .set("makespan_us", c.makespan_us)
        .set("lock_conflict_aborts", c.lock_conflicts)
        .set("sync_batches", c.sync_batches)
        .set("ok", c.ok);
  }

  std::cout << "\ngroup commit (zipf, per-key, conc 8):\n"
            << "window  steps/s  syncs/step\n"
            << "---------------------------\n";
  {
    const auto& base = cell_of(true, 8, true, 1);
    std::cout << std::setw(6) << 1 << "  " << std::setw(7) << std::fixed
              << std::setprecision(0) << base.steps_per_sec << "  "
              << std::setw(10) << std::setprecision(3) << base.syncs_per_step
              << "\n";
    for (const auto win : windows) {
      const auto& c = cell_of(true, 8, true, win);
      shape_ok = shape_ok && c.ok;
      std::cout << std::setw(6) << win << "  " << std::setw(7)
                << std::setprecision(0) << c.steps_per_sec << "  "
                << std::setw(10) << std::setprecision(3) << c.syncs_per_step
                << "\n";
      // The whole point: commits of a window share one metered sync.
      shape_ok = shape_ok && c.syncs_per_step < 1.0;
    }
  }

  // Headline checks. Hot-key skew at full multiprogramming: per-key
  // locking must at least double throughput over instance locking while
  // aborting strictly less; and with more slots per-key must beat itself
  // at conc 1 (the scaling instance locking cannot deliver).
  const auto& inst_hot = cell_of(true, 8, false, 1);
  const auto& key_hot = cell_of(true, 8, true, 1);
  const double speedup = key_hot.steps_per_sec / inst_hot.steps_per_sec;
  const bool hot_fast = speedup >= 2.0;
  const bool hot_fewer_aborts = key_hot.abort_rate < inst_hot.abort_rate;
  const bool scales = key_hot.steps_per_sec >
                      cell_of(true, 1, true, 1).steps_per_sec;
  std::cout << "\nzipf@conc8: per-key " << std::setprecision(2) << speedup
            << "x instance (abort/step " << std::setprecision(3)
            << inst_hot.abort_rate << " -> " << key_hot.abort_rate << ") -> "
            << ((hot_fast && hot_fewer_aborts && scales) ? "OK" : "MISMATCH")
            << "\n";
  shape_ok = shape_ok && hot_fast && hot_fewer_aborts && scales;
  report.row()
      .set("phase", "check")
      .set("skew", "zipf")
      .set("node_concurrency", 8)
      .set("per_key_speedup", speedup)
      .set("instance_abort_rate", inst_hot.abort_rate)
      .set("per_key_abort_rate", key_hot.abort_rate)
      .set("required_speedup", 2.0);

  std::cout << (shape_ok ? "\nshape check: OK\n" : "\nshape check: FAILED\n");
  report.set_ok(shape_ok);
  if (!json_path.empty() && !report.write_file(json_path)) return 2;
  return shape_ok ? 0 : 1;
}
