// Experiment E3 — ACE ∥ RCE concurrency inside one compensation
// transaction (Sec. 4.4.1).
//
// In the optimized algorithm the resource compensation entries execute on
// the resource node CONCURRENTLY with the agent compensation entries on
// the agent's node. With per-operation service time S, a step with R RCEs
// and A ACEs compensates in ~max(A*S, R*S + round-trip) instead of the
// basic algorithm's (A+R)*S (plus the agent's travel).
//
// Expected shape: the optimized/basic latency ratio approaches
// max(A,R)/(A+R) as S grows (service time dominates the round trip);
// savings are largest for balanced A==R.
#include <iomanip>
#include <iostream>

#include "common.h"

using namespace mar;

namespace {

sim::TimeUs rollback_time(agent::RollbackStrategy strategy,
                          std::int64_t rces, std::int64_t aces,
                          sim::TimeUs service) {
  agent::PlatformConfig config;
  config.strategy = strategy;
  config.comp_op_service_us = service;
  harness::TestWorld w(config, /*node_count=*/4, /*seed=*/5);
  harness::register_workload(w.platform);

  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  for (int n = 1; n <= 3; ++n) {
    sub.step("touch_split", harness::TestWorld::n(n));
  }
  sub.step("noop", harness::TestWorld::n(4));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sub));
  agent->itinerary() = std::move(main_itinerary);
  agent->set_trigger("noop", 4, "sub", 0);
  agent->set_config("rce_per_step", rces);
  agent->set_config("ace_per_step", aces);

  auto id = w.platform.launch(std::move(agent));
  const bool initiated = w.sim.run_while_pending(
      [&] { return w.trace.count(TraceKind::rollback_begin) > 0; });
  if (!initiated) return 0;
  const auto start = w.sim.now();
  const bool done = w.sim.run_while_pending(
      [&] { return w.trace.count(TraceKind::rollback_done) > 0; });
  if (!done) return 0;
  return w.sim.now() - start;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::BenchReport report("e3_concurrency");
  std::cout << "=== E3: concurrent execution of ACE and RCE lists ===\n"
            << "(3 compensated steps; rollback latency vs per-op service "
               "time)\n\n";
  std::cout << "RCEs  ACEs  service[us]  basic[ms]  optimized[ms]  speedup\n";
  std::cout << "-------------------------------------------------------\n";
  bool shape_ok = true;
  for (const auto& [rces, aces] :
       {std::pair<std::int64_t, std::int64_t>{4, 4},
        {8, 2},
        {2, 8},
        {8, 8}}) {
    for (const sim::TimeUs service : {200u, 2'000u, 20'000u}) {
      const auto basic = rollback_time(agent::RollbackStrategy::basic, rces,
                                       aces, service);
      const auto opt = rollback_time(agent::RollbackStrategy::optimized,
                                     rces, aces, service);
      const double speedup =
          opt > 0 ? static_cast<double>(basic) / static_cast<double>(opt)
                  : 0.0;
      std::cout << std::setw(4) << rces << "  " << std::setw(4) << aces
                << "  " << std::setw(11) << service << "  " << std::setw(9)
                << std::fixed << std::setprecision(2) << basic / 1000.0
                << "  " << std::setw(13) << opt / 1000.0 << "  "
                << std::setw(6) << std::setprecision(2) << speedup << "x\n";
      report.row()
          .set("rces", rces)
          .set("aces", aces)
          .set("service_us", static_cast<std::uint64_t>(service))
          .set("basic_us", basic)
          .set("optimized_us", opt)
          .set("speedup", speedup);
      if (basic == 0 || opt == 0) shape_ok = false;
      // With large service times the overlap must show: optimized strictly
      // faster than basic for balanced lists.
      if (service == 20'000u) shape_ok = shape_ok && opt < basic;
    }
  }
  std::cout << "\ncheck: optimized < basic at service-dominated settings -> "
            << (shape_ok ? "OK" : "MISMATCH") << "\n";
  report.set_ok(shape_ok);
  if (!json_path.empty() && !report.write_file(json_path)) return 2;
  return shape_ok ? 0 : 1;
}
