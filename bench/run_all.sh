#!/usr/bin/env bash
# Run the JSON-emitting bench binaries and consolidate their reports into
# one machine-readable file (the perf-trajectory input).
#
# Usage: bench/run_all.sh [BUILD_DIR] [OUT_FILE]
#   BUILD_DIR  CMake build directory holding bin/ (default: build)
#   OUT_FILE   consolidated report path (default: BENCH_results.json)
#
# Exit status is non-zero if any bench fails its shape check or the
# consolidated file is malformed.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_FILE="${2:-BENCH_results.json}"
BIN_DIR="$BUILD_DIR/bin"

if [[ ! -d "$BIN_DIR" ]]; then
  echo "error: $BIN_DIR not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# Every binary here accepts `--json <path>`. bench_micro_codec measures
# real wall-clock time (google-benchmark) and may be absent when the
# library isn't installed; it is skipped gracefully.
BENCHES=(
  bench_e1_migration_overhead
  bench_e3_concurrency
  bench_e6_fault_recovery
  bench_a4_throughput
  bench_a5_steady_state
  bench_a6_contention
  bench_a7_shipping
  bench_a8_recovery
  bench_micro_codec
)

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# A failing bench (shape check, crash) must not silently vanish from the
# report: it contributes an {"ok": false} entry and fails the whole run.
ran=()
failed=()
for bench in "${BENCHES[@]}"; do
  bin="$BIN_DIR/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "--- $bench: not built, skipping" >&2
    continue
  fi
  echo "--- $bench"
  rc=0
  t0=$(date +%s%N)
  "$bin" --json "$tmpdir/$bench.json" || rc=$?
  t1=$(date +%s%N)
  wall=$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", (b - a) / 1e9}')
  if [[ $rc -ne 0 ]]; then
    echo "--- $bench: FAILED (exit $rc)" >&2
    failed+=("$bench")
  fi
  # A binary that died before writing its report — or mid-write, leaving
  # a truncated file — must still contribute an {"ok": false} row instead
  # of poisoning (or silently vanishing from) the consolidated report.
  valid=1
  if [[ ! -s "$tmpdir/$bench.json" ]]; then
    valid=0
  elif command -v python3 >/dev/null 2>&1 \
      && ! python3 -m json.tool "$tmpdir/$bench.json" >/dev/null 2>&1; then
    echo "--- $bench: malformed JSON report, replacing with ok:false" >&2
    if [[ $rc -eq 0 ]]; then failed+=("$bench"); fi
    valid=0
  fi
  if [[ $valid -eq 0 ]]; then
    printf '{"bench": "%s", "ok": false, "wall_seconds": %s, "rows": []}\n' \
      "${bench#bench_}" "$wall" > "$tmpdir/$bench.json"
  elif command -v python3 >/dev/null 2>&1; then
    # Record the real elapsed time of the bench run so pipeline-depth
    # changes show up as wall-clock wins, not just virtual-time counters.
    # Report-level field: never row-diffed by bench_diff.py, so machine
    # variance can't fail a gate.
    python3 - "$tmpdir/$bench.json" "$wall" <<'PY'
import json
import sys

path, wall = sys.argv[1], float(sys.argv[2])
with open(path, encoding="utf-8") as f:
    report = json.load(f)
report["wall_seconds"] = wall
with open(path, "w", encoding="utf-8") as f:
    json.dump(report, f, indent=1)
PY
  fi
  ran+=("$bench")
done

if [[ ${#ran[@]} -eq 0 ]]; then
  echo "error: no bench binaries found in $BIN_DIR" >&2
  exit 1
fi

{
  printf '{'
  sep=''
  for bench in "${ran[@]}"; do
    printf '%s\n"%s": ' "$sep" "$bench"
    cat "$tmpdir/$bench.json"
    sep=','
  done
  printf '\n}\n'
} > "$OUT_FILE"

if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$OUT_FILE" >/dev/null
  echo "validated: $OUT_FILE is well-formed JSON"
fi
echo "wrote $OUT_FILE (${#ran[@]} benches)"

if [[ ${#failed[@]} -gt 0 ]]; then
  echo "error: ${#failed[@]} bench(es) failed: ${failed[*]}" >&2
  exit 1
fi
