// Experiment A3 — multi-agent fan-out (Sec. 6 future work).
//
// "An enhanced agent execution model supporting exactly-once executions
// comprising more than one agent": this ablation quantifies what the
// mechanism buys. A data-gathering job over N nodes is executed
//
//   sequential  one agent tours all N nodes (the Sec. 2 baseline);
//   fan-out/k   a master spawns k children, each touring N/k nodes, and
//               joins their mailbox results (spawn and delivery both
//               commit transactionally, so the whole composite run keeps
//               the exactly-once guarantee).
//
// Expected shape: the sequential tour grows linearly in N; fan-out
// divides the touring latency by ~k at the cost of the spawn/join
// overhead (two extra steps + k result deliveries), so the crossover sits
// at small N and the speedup approaches k for large N.
#include <iomanip>
#include <iostream>
#include <memory>

#include "common.h"

using namespace mar;
using agent::AgentOutcome;
using agent::Itinerary;
using agent::StepContext;
using harness::TestWorld;

namespace {

serial::Value kv(
    std::initializer_list<std::pair<std::string, serial::Value>> pairs) {
  serial::Value v = serial::Value::empty_map();
  for (auto& [k, val] : pairs) v.set(k, val);
  return v;
}

class GatherAgent final : public agent::Agent {
 public:
  GatherAgent() {
    data().declare_strong("notes", serial::Value::empty_list());
    data().declare_weak("result", std::int64_t{0});
  }
  std::string type_name() const override { return "gather"; }
  void run_step(const std::string& step, StepContext& ctx) override {
    if (step != "gather") return;
    auto r = ctx.invoke("dir", "lookup", kv({{"key", "info"}}));
    if (r.is_ok()) {
      data().weak("result") = data().weak("result").as_int() + 1;
    }
  }
};

class FanoutMaster final : public agent::Agent {
 public:
  FanoutMaster() {
    data().declare_strong("notes", serial::Value::empty_list());
    data().declare_weak("cfg", serial::Value::empty_map());
    data().declare_weak("sum", std::int64_t{0});
  }
  std::string type_name() const override { return "fanout-master"; }

  void configure(int nodes, int children) {
    data().weak("cfg") = kv({{"nodes", std::int64_t{nodes}},
                             {"children", std::int64_t{children}}});
  }

  void run_step(const std::string& step, StepContext& ctx) override {
    const auto nodes = data().weak("cfg").at("nodes").as_int();
    const auto children = data().weak("cfg").at("children").as_int();
    if (step == "spawn") {
      for (std::int64_t c = 0; c < children; ++c) {
        auto child = std::make_unique<GatherAgent>();
        Itinerary tour;
        for (std::int64_t n = c; n < nodes; n += children) {
          tour.step("gather", TestWorld::n(2 + static_cast<int>(n)));
        }
        Itinerary main;
        main.sub(std::move(tour));
        child->itinerary() = std::move(main);
        ctx.spawn_child(std::move(child), ctx.node(),
                        "part-" + std::to_string(c));
      }
      return;
    }
    if (step == "join") {
      for (std::int64_t c = 0; c < children; ++c) {
        auto r = ctx.join_child("part-" + std::to_string(c));
        if (!r.is_ok()) return;
        const auto& record = r.value().at("value");
        if (record.at("ok").as_bool()) {
          data().weak("sum") =
              data().weak("sum").as_int() + record.at("result").as_int();
        }
      }
    }
  }
};

struct RunResult {
  bool ok = false;
  sim::TimeUs total_us = 0;
  std::uint64_t wire_bytes = 0;
};

RunResult run(int nodes, int children) {
  agent::PlatformConfig cfg;
  TestWorld w(cfg, nodes + 1, 7);
  harness::register_workload(w.platform);
  w.platform.agent_types().register_type<GatherAgent>("gather");
  w.platform.agent_types().register_type<FanoutMaster>("fanout-master");
  for (int n = 2; n <= nodes + 1; ++n) {
    w.publish(n, "info", serial::Value("x"));
  }

  AgentId id;
  if (children == 0) {
    // Sequential baseline: one agent tours every node itself.
    auto agent = std::make_unique<GatherAgent>();
    Itinerary tour;
    for (int n = 0; n < nodes; ++n) tour.step("gather", TestWorld::n(2 + n));
    Itinerary main;
    main.sub(std::move(tour));
    agent->itinerary() = std::move(main);
    auto r = w.platform.launch(std::move(agent));
    MAR_CHECK(r.is_ok());
    id = r.value();
  } else {
    auto master = std::make_unique<FanoutMaster>();
    master->configure(nodes, children);
    Itinerary plan;
    plan.step("spawn", TestWorld::n(1)).step("join", TestWorld::n(1));
    Itinerary main;
    main.sub(std::move(plan));
    master->itinerary() = std::move(main);
    auto r = w.platform.launch(std::move(master));
    MAR_CHECK(r.is_ok());
    id = r.value();
  }

  RunResult result;
  if (!w.platform.run_until_finished(id)) return result;
  const auto& out = w.platform.outcome(id);
  result.ok = out.state == AgentOutcome::State::done;
  if (children > 0 && result.ok) {
    auto fin = w.platform.decode(out.final_agent);
    result.ok = fin->data().weak("sum").as_int() == nodes;
  }
  result.total_us = out.finished_at;
  result.wire_bytes = w.net.stats().bytes_sent;
  return result;
}

}  // namespace

int main() {
  std::cout << "=== A3: multi-agent fan-out vs sequential tour (Sec. 6) ==="
            << "\n(gather one directory entry per node; fan-out spawns k "
               "children and joins their mailbox results)\n\n";
  std::cout << "nodes  sequential[ms]  fanout/2[ms]  fanout/4[ms]  "
               "speedup/4  wire/4[KB]\n";
  std::cout << "--------------------------------------------------------"
               "-----------\n";

  bool shape_ok = true;
  double prev_speedup = 0;
  for (const int nodes : {4, 8, 16, 32}) {
    const auto seq = run(nodes, 0);
    const auto f2 = run(nodes, 2);
    const auto f4 = run(nodes, 4);
    shape_ok = shape_ok && seq.ok && f2.ok && f4.ok;
    const double speedup =
        static_cast<double>(seq.total_us) / static_cast<double>(f4.total_us);
    std::cout << std::setw(5) << nodes << "  " << std::setw(13) << std::fixed
              << std::setprecision(2) << seq.total_us / 1000.0 << "  "
              << std::setw(12) << f2.total_us / 1000.0 << "  "
              << std::setw(12) << f4.total_us / 1000.0 << "  "
              << std::setw(9) << std::setprecision(2) << speedup << "  "
              << std::setw(9) << f4.wire_bytes / 1024 << "\n";
    // The fan-out advantage must grow with the tour length.
    shape_ok = shape_ok && speedup > prev_speedup;
    prev_speedup = speedup;
    if (nodes >= 16) {
      shape_ok = shape_ok && f4.total_us < seq.total_us &&
                 f4.total_us < f2.total_us;
    }
  }

  std::cout << (shape_ok ? "\nshape check: OK\n" : "\nshape check: FAILED\n");
  return shape_ok ? 0 : 1;
}
