// Experiment E7 — RPC vs agent migration (Sec. 4.4.1 "further
// optimizations", model of ref [16]).
//
// Sweeps the number of interactions and the agent size, reporting the
// analytic model's costs/decision and the crossover interaction count, and
// validates the model against the network substrate by actually running
// the message exchanges through the simulator (request/reply ping-pong vs
// a single agent-sized transfer each way).
//
// Expected shape (as in Straßer & Schwehm): RPC wins for few interactions;
// migration wins once interactions amortize shipping the agent; the
// crossover moves right as the agent (incl. rollback log) grows.
#include <iomanip>
#include <iostream>

#include "net/network.h"
#include "perfmodel/perfmodel.h"
#include "sim/simulator.h"
#include "util/trace.h"

using namespace mar;

namespace {

/// Simulated actual: run the exchanges over the reliable network.
struct Actuals {
  sim::TimeUs rpc_us;
  sim::TimeUs migration_us;
};

Actuals simulate(const perfmodel::NetworkParams& np,
                 const perfmodel::TaskParams& task) {
  Actuals out{};
  for (int variant = 0; variant < 2; ++variant) {
    sim::Simulator sim;
    TraceSink trace;
    net::Network net(sim, trace);
    net::LinkParams lp;
    lp.latency_us = static_cast<sim::TimeUs>(np.latency_us);
    lp.bandwidth_bytes_per_us = np.bytes_per_us;
    net.set_default_link(lp);

    const NodeId client(1);
    const NodeId server(2);
    sim::TimeUs finished = 0;
    std::int64_t remaining = task.interactions;

    std::function<void()> send_request;
    net.add_node(client, [&](const net::Message&) {
      // Reply received.
      if (--remaining > 0) {
        send_request();
      } else {
        finished = sim.now();
      }
    });
    net.add_node(server, [&](const net::Message& m) {
      if (m.type == "req") {
        sim.schedule_after(
            static_cast<sim::TimeUs>(task.server_time_us), [&net, &task] {
              net.send(net::Message{
                  NodeId(2), NodeId(1), "rep",
                  serial::Bytes(static_cast<std::size_t>(task.reply_bytes) -
                                net::Message::kHeaderBytes - 3)});
            });
      } else {  // the agent arrived: local interactions, then return trip
        sim.schedule_after(
            static_cast<sim::TimeUs>(static_cast<double>(task.interactions) *
                                     task.server_time_us),
            [&net, &task] {
              const auto back_bytes = static_cast<std::size_t>(
                  task.agent_bytes + task.selectivity * task.result_bytes);
              net.send(net::Message{
                  NodeId(2), NodeId(1), "agent_back",
                  serial::Bytes(back_bytes - net::Message::kHeaderBytes -
                                10)});
            });
      }
    });

    if (variant == 0) {
      send_request = [&net, &task] {
        net.send(net::Message{
            NodeId(1), NodeId(2), "req",
            serial::Bytes(static_cast<std::size_t>(task.request_bytes) -
                          net::Message::kHeaderBytes - 3)});
      };
      send_request();
      sim.run_while_pending([&] { return finished != 0; });
      out.rpc_us = finished;
    } else {
      remaining = 1;  // one "agent_back" message ends the run
      net.send(net::Message{
          NodeId(1), NodeId(2), "agent_go",
          serial::Bytes(static_cast<std::size_t>(task.agent_bytes) -
                        net::Message::kHeaderBytes - 8)});
      sim.run_while_pending([&] { return finished != 0; });
      out.migration_us = finished;
    }
  }
  return out;
}

}  // namespace

int main() {
  perfmodel::NetworkParams np;  // 10 Mbit/s LAN, 500 us latency
  std::cout << "=== E7: RPC vs agent migration (performance model of ref "
               "[16]) ===\n"
            << "(500 us latency, 10 Mbit/s, 128 B requests, 1 KiB replies, "
               "selectivity 0.1)\n\n";
  std::cout << "agent[B]  n     model-rpc[ms]  model-mig[ms]  sim-rpc[ms]  "
               "sim-mig[ms]  decision  crossover-n\n";
  std::cout << "-------------------------------------------------------"
               "---------------------------------\n";
  bool shape_ok = true;
  for (const double agent_bytes : {2'048.0, 16'384.0, 131'072.0}) {
    double prev_crossover = 0;
    (void)prev_crossover;
    for (const std::int64_t n : {1, 2, 5, 10, 50}) {
      perfmodel::TaskParams task;
      task.interactions = n;
      task.agent_bytes = agent_bytes;
      task.result_bytes = static_cast<double>(n) * 1024.0;
      task.selectivity = 0.1;
      const double rpc = perfmodel::rpc_time_us(np, task);
      const double mig = perfmodel::migration_time_us(np, task);
      const auto choice = perfmodel::choose(np, task);
      const double crossover = perfmodel::crossover_interactions(np, task);
      const auto actual = simulate(np, task);
      std::cout << std::setw(8) << static_cast<std::int64_t>(agent_bytes)
                << "  " << std::setw(4) << n << "  " << std::setw(13)
                << std::fixed << std::setprecision(2) << rpc / 1000.0 << "  "
                << std::setw(13) << mig / 1000.0 << "  " << std::setw(11)
                << actual.rpc_us / 1000.0 << "  " << std::setw(11)
                << actual.migration_us / 1000.0 << "  " << std::setw(8)
                << (choice == perfmodel::Strategy::migrate ? "migrate"
                                                           : "rpc")
                << "  " << std::setw(11) << std::setprecision(1) << crossover
                << "\n";
      // Model and simulation must agree within 25% (headers/acks differ).
      const double rpc_err = std::abs(actual.rpc_us - rpc) / rpc;
      const double mig_err = std::abs(actual.migration_us - mig) / mig;
      shape_ok = shape_ok && rpc_err < 0.25 && mig_err < 0.25;
    }
    std::cout << "\n";
  }
  // Structural claims: small agent + many interactions => migrate;
  // large agent + one interaction => rpc.
  {
    perfmodel::TaskParams few;
    few.interactions = 1;
    few.agent_bytes = 131'072;
    perfmodel::TaskParams many;
    many.interactions = 50;
    many.agent_bytes = 2'048;
    shape_ok = shape_ok &&
               perfmodel::choose(np, few) == perfmodel::Strategy::rpc &&
               perfmodel::choose(np, many) == perfmodel::Strategy::migrate;
  }
  std::cout << "check: model matches simulated actuals (<25% error); RPC "
               "wins few/large, migration wins many/small -> "
            << (shape_ok ? "OK" : "MISMATCH") << "\n";
  return shape_ok ? 0 : 1;
}
