// Experiment A2 — the adaptive mixed-compensation strategy (Sec. 4.4.1
// "Further optimizations").
//
// The paper: "if the access to resources within the mixed compensation
// entries ... may be performed using RPC ... a performance model similar
// to that introduced in [16] can be used to determine if the agent or the
// resource compensation objects should be transferred to the node where
// the resources reside or if RPC should be used."
//
// This ablation rolls back an execution whose steps ALL logged mixed
// compensation entries — the worst case for the Fig. 5 optimization,
// which must then walk the agent back hop by hop — while sweeping the
// agent's weight (strongly reversible state carried in savepoints and in
// the migrating agent). The adaptive strategy prices each hop: a heavy
// agent stays put and its compensation objects + weak-state snapshot are
// shipped instead.
//
// Expected shape: for a light agent all three strategies are comparable
// (adaptive chooses migration, matching optimized); as the agent grows,
// basic/optimized rollback cost grows linearly with the agent size while
// adaptive flattens (shipment size is independent of the agent weight),
// so the adaptive/optimized gap widens monotonically.
#include <iomanip>
#include <iostream>

#include "common.h"

using namespace mar;

int main() {
  std::cout << "=== A2: adaptive mixed-compensation strategy ===\n"
            << "(6 steps on 6 nodes, every step logs a mixed entry, "
               "rollback of the whole sub-itinerary)\n\n";
  std::cout << "strong[KB]  strategy   rollback[ms]  wire[KB]  transfers  "
               "ships\n";
  std::cout << "-----------------------------------------------------------"
               "---\n";

  bool shape_ok = true;
  sim::TimeUs prev_gap = 0;
  bool first_row = true;
  for (const std::int64_t strong_kb : {0, 2, 8, 32}) {
    bench::Metrics by_strategy[3];
    int i = 0;
    for (const auto strategy : {agent::RollbackStrategy::basic,
                                agent::RollbackStrategy::optimized,
                                agent::RollbackStrategy::adaptive}) {
      bench::RollbackScenario s;
      s.steps = 6;
      s.mixed_fraction = 1.0;
      s.param_bytes = 32;
      s.strong_bytes = strong_kb * 1024 / 6;  // spread over the steps
      s.config.strategy = strategy;
      const auto m = bench::run_rollback_scenario(s);
      by_strategy[i++] = m;
      const char* name = strategy == agent::RollbackStrategy::basic
                             ? "basic    "
                             : strategy == agent::RollbackStrategy::optimized
                                   ? "optimized"
                                   : "adaptive ";
      std::cout << std::setw(9) << strong_kb << "   " << name << "  "
                << std::setw(10) << std::fixed << std::setprecision(2)
                << m.rollback_us / 1000.0 << "  " << std::setw(8)
                << m.rollback_wire_bytes / 1024 << "  " << std::setw(9)
                << m.rollback_transfers << "  " << std::setw(5)
                << m.mixed_ships << "\n";
      if (!m.ok) shape_ok = false;
    }
    const auto& opt = by_strategy[1];
    const auto& ada = by_strategy[2];
    // Adaptive must never lose to the optimized baseline.
    shape_ok = shape_ok && ada.rollback_us <= opt.rollback_us;
    if (strong_kb == 0) {
      // Light agent: migration is the right call; no shipments.
      shape_ok = shape_ok && ada.mixed_ships == 0;
    }
    if (strong_kb >= 8) {
      // Heavy agent: every mixed hop becomes a shipment, the agent stays.
      shape_ok = shape_ok && ada.mixed_ships == 6 &&
                 ada.rollback_transfers == 0 &&
                 ada.rollback_wire_bytes < opt.rollback_wire_bytes;
    }
    // The adaptive/optimized gap widens as the agent grows.
    const auto gap = opt.rollback_us - ada.rollback_us;
    if (!first_row) shape_ok = shape_ok && gap >= prev_gap;
    prev_gap = gap;
    first_row = false;
    std::cout << "\n";
  }

  std::cout << (shape_ok ? "shape check: OK\n"
                         : "shape check: FAILED\n");
  return shape_ok ? 0 : 1;
}
