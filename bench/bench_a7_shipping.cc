// Experiment A7 — delta-shipping migrations (src/ship/).
//
// PR 3 made local step commits O(delta); every migration still shipped a
// full agent image, so long-lived (aged) agents paid their whole rollback
// log on every hop. The ShipmentManager's transfer channels ship a base
// image once per (src, dst) pair and only deltas afterwards, with convoy
// batching coalescing the participant-side 2PC syncs of transfers that
// head to the same destination.
//
// This bench sweeps itinerary locality (pair ping-pong vs a 6-node ring)
// x agent age (prior logged steps) x shipping mode, measuring the
// MARGINAL migration cost per agent-hop (two runs, diffed — both
// deterministic), so the one-time channel establishment cost is excluded:
//   * migration bytes/agent-hop (ship.convoy wire bytes),
//   * hops/sec in simulation virtual time (the network-model win);
// plus a convoy-window sweep (participant syncs/agent-hop) and a
// fault-injected bit-identity check of delta vs full-image final state.
//
// Expected shape: full-image bytes/hop grow with age (the log rides every
// hop); delta bytes/hop stay flat (within 1.15x from age 8 to 128) on the
// locality-heavy pair itinerary; convoy window 4 cuts participant
// syncs/hop by at least 2x; and the delta-shipped final agent state is
// bit-identical to the full-image run under injected crashes.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common.h"

using namespace mar;
using agent::AgentOutcome;
using agent::Itinerary;
using agent::PlatformConfig;
using harness::TestWorld;

namespace {

constexpr std::int64_t kParamBytes = 64;

/// `age` warm-up steps on N1 (no migrations), then `hops` migrating
/// steps: node_count == 2 ping-pongs N1<->N2 (locality-heavy: every
/// channel is revisited every 2 hops); larger counts walk a ring.
Itinerary course(int age, int hops, int node_count) {
  Itinerary sub;
  for (int s = 0; s < age; ++s) sub.step("spend_logged", TestWorld::n(1));
  for (int h = 0; h < hops; ++h) {
    const int node = node_count == 2 ? (h % 2 == 0 ? 2 : 1)
                                     : (h % node_count) + 1;
    sub.step("spend_logged", TestWorld::n(node));
  }
  Itinerary main_it;
  main_it.sub(std::move(sub));
  return main_it;
}

struct RunResult {
  bool ok = false;
  std::uint64_t convoy_bytes = 0;
  std::uint64_t participant_syncs = 0;
  std::uint64_t coordinator_syncs = 0;
  std::uint64_t pipeline_depth_max = 0;
  std::uint64_t prepare_bytes = 0;  ///< tx.prepare wire bytes (0 = piggybacked)
  std::uint64_t delta_ships = 0;
  sim::TimeUs sim_us = 0;
  serial::Bytes final_agent;  ///< single-agent runs only
  /// Hop latency percentiles (hop.latency_us histogram, virtual time).
  double hop_p50_us = 0;
  double hop_p95_us = 0;
  double hop_p99_us = 0;
  std::string metrics_json;  ///< uniform per-cell metrics block
};

RunResult run_course(bool delta, int node_count, int age, int hops,
                     int fleet, std::uint32_t convoy_window,
                     std::uint64_t crash_seed = 0, int concurrency = 0,
                     std::uint32_t group_window = 0) {
  PlatformConfig cfg;
  // Crash flight recorder: when the environment asks for a sample dump,
  // the fault-injected cells append their per-node flight records there
  // (CI uploads the file as an artifact).
  if (const char* flight = std::getenv("MAR_FLIGHT_DUMP");
      flight != nullptr && crash_seed != 0) {
    cfg.flight_dump_path = flight;
  }
  cfg.ship_delta = delta;
  cfg.ship_convoy_window = convoy_window;
  // The window sweep contrasts the whole coalescing stack: convoy
  // batching AND the participant/local group commit it feeds. The
  // pipeline cell overrides the coupling to hold the commit window at
  // its default while convoys ride wider.
  cfg.group_commit_window = group_window != 0 ? group_window : convoy_window;
  cfg.node_concurrency = concurrency != 0 ? concurrency
                                          : (fleet > 1 ? 4 : 1);
  cfg.discard_log_on_top_level = false;  // the aged log is the point
  TestWorld w(cfg, node_count, /*seed=*/13);
  harness::register_workload(w.platform);
  if (crash_seed != 0) {
    Rng rng(crash_seed);
    for (int k = 0; k < 4; ++k) {
      const NodeId node = TestWorld::n(1 + static_cast<int>(
                                               rng.next_below(
                                                   static_cast<std::uint64_t>(
                                                       node_count))));
      w.faults.crash_at(node, 5'000 + rng.next_below(200'000),
                        1'000 + rng.next_below(10'000));
    }
  }
  std::vector<AgentId> ids;
  for (int a = 0; a < fleet; ++a) {
    auto ag = std::make_unique<harness::WorkloadAgent>();
    ag->itinerary() = course(age, hops, node_count);
    ag->set_config("param_bytes", kParamBytes);
    auto r = w.platform.launch(std::move(ag));
    MAR_CHECK(r.is_ok());
    ids.push_back(r.value());
  }
  RunResult res;
  res.ok = w.platform.run_until_all_finished(ids);
  res.sim_us = w.sim.now();
  for (const auto id : ids) {
    const auto& out = w.platform.outcome(id);
    res.ok = res.ok && out.state == AgentOutcome::State::done;
    if (!res.ok) return res;
    auto fin = w.platform.decode(out.final_agent);
    res.ok = res.ok &&
             fin->data().weak("visits").as_int() == age + hops;
    if (fleet == 1) res.final_agent = out.final_agent;
  }
  const auto& by_type = w.net.stats().bytes_by_type;
  if (auto it = by_type.find("ship.convoy"); it != by_type.end()) {
    res.convoy_bytes = it->second;
  }
  if (auto it = by_type.find(tx::msg::prepare); it != by_type.end()) {
    res.prepare_bytes = it->second;
  }
  for (int n = 1; n <= node_count; ++n) {
    auto& node = w.platform.node(TestWorld::n(n));
    res.participant_syncs += node.txm().participant_syncs();
    res.coordinator_syncs += node.txm().stats().coordinator_syncs;
    res.pipeline_depth_max = std::max<std::uint64_t>(
        res.pipeline_depth_max, node.txm().stats().pipeline_depth_max);
    res.delta_ships += node.shipments().stats().delta_ships;
  }
  const auto snap = w.platform.metrics_snapshot();
  if (const auto it = snap.histograms.find("hop.latency_us");
      it != snap.histograms.end()) {
    res.hop_p50_us = it->second.percentile(0.50);
    res.hop_p95_us = it->second.percentile(0.95);
    res.hop_p99_us = it->second.percentile(0.99);
  }
  res.metrics_json = snap.to_json();
  return res;
}

/// Write the complete span timeline of one representative multi-node run
/// (3-node ring, 2 agents) to `path` — the trace_timeline.py input that
/// CI stitches and the committed self-check fixture is generated from.
bool dump_span_timeline(const char* path) {
  PlatformConfig cfg;
  cfg.node_concurrency = 2;
  TestWorld w(cfg, /*node_count=*/3, /*seed=*/13);
  harness::register_workload(w.platform);
  std::vector<AgentId> ids;
  for (int a = 0; a < 2; ++a) {
    auto ag = std::make_unique<harness::WorkloadAgent>();
    ag->itinerary() = course(/*age=*/2, /*hops=*/12, /*node_count=*/3);
    ag->set_config("param_bytes", kParamBytes);
    auto r = w.platform.launch(std::move(ag));
    MAR_CHECK(r.is_ok());
    ids.push_back(r.value());
  }
  if (!w.platform.run_until_all_finished(ids)) return false;
  // The last agent's outcome lands before the coordinator-side commit
  // callbacks of the penultimate hops have fired; drain those events so
  // every hop span in the dump is closed.
  w.sim.run_until(w.sim.now() + 1'000'000);
  std::ofstream os(path);
  if (!os) {
    std::cerr << "cannot write span dump: " << path << "\n";
    return false;
  }
  w.platform.spans().dump(os);
  return true;
}

struct Cell {
  bool ok = false;
  double bytes_per_hop = 0;
  double hops_per_sec = 0;
  std::uint64_t delta_ships = 0;
  double hop_p50_us = 0;
  double hop_p95_us = 0;
  double hop_p99_us = 0;
  std::string metrics_json;
};

/// Marginal per-hop cost: the convoy bytes / virtual time of the hops
/// BEYOND a shorter run, so one-time channel establishment (the first
/// base image per pair) is excluded from the steady-state figure.
Cell measure(bool delta, int node_count, int age, int warm_hops,
             int measured_hops) {
  const auto warm = run_course(delta, node_count, age, warm_hops, 1, 1);
  const auto total =
      run_course(delta, node_count, age, warm_hops + measured_hops, 1, 1);
  Cell c;
  c.ok = warm.ok && total.ok && total.convoy_bytes > warm.convoy_bytes &&
         total.sim_us > warm.sim_us;
  c.bytes_per_hop =
      static_cast<double>(total.convoy_bytes - warm.convoy_bytes) /
      measured_hops;
  c.hops_per_sec = static_cast<double>(measured_hops) /
                   (static_cast<double>(total.sim_us - warm.sim_us) * 1e-6);
  c.delta_ships = total.delta_ships;
  c.hop_p50_us = total.hop_p50_us;
  c.hop_p95_us = total.hop_p95_us;
  c.hop_p99_us = total.hop_p99_us;
  c.metrics_json = total.metrics_json;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::json_path_from_args(argc, argv);
  bench::BenchReport report("a7_shipping");

  const bool quick = std::getenv("MAR_BENCH_QUICK") != nullptr;
  const std::vector<int> ages = quick ? std::vector<int>{8, 32}
                                      : std::vector<int>{8, 32, 128};
  const std::vector<std::pair<const char*, int>> localities =
      quick ? std::vector<std::pair<const char*, int>>{{"pair", 2}}
            : std::vector<std::pair<const char*, int>>{{"pair", 2},
                                                       {"ring6", 6}};
  // Cell identity (hops per cell) is preset-stable: the quick preset
  // only shrinks the SWEEP, so CI's reduced run still diffs its cells
  // against the committed full-preset baseline (like A6).
  const int warm_hops = 8;
  const int measured_hops = 32;

  std::cout << "=== A7: delta-shipping migrations (base+delta channels vs "
               "full images) ===\n"
            << "(marginal migration bytes/agent-hop and virtual-time "
               "hops/sec vs agent age;\n " << measured_hops
            << " measured hops after " << warm_hops
            << " warm hops; param " << kParamBytes << " B)\n\n";
  std::cout << "mode   locality  age  bytes/hop  hops/sec\n";
  std::cout << "------------------------------------------\n";

  bool shape_ok = true;
  struct Row {
    const char* locality;
    int age;
    bool delta;
    Cell cell;
  };
  std::vector<Row> rows;
  for (const bool delta : {false, true}) {
    for (const auto& [name, nodes] : localities) {
      for (const int age : ages) {
        const Cell c = measure(delta, nodes, age, warm_hops, measured_hops);
        rows.push_back(Row{name, age, delta, c});
        shape_ok = shape_ok && c.ok;
        std::cout << (delta ? "delta" : "full ") << "  " << std::setw(8)
                  << name << "  " << std::setw(3) << age << "  "
                  << std::setw(9) << std::fixed << std::setprecision(1)
                  << c.bytes_per_hop << "  " << std::setw(8)
                  << std::setprecision(1) << c.hops_per_sec << "\n";
        report.row()
            .set("mode", delta ? "delta" : "full")
            .set("locality", name)
            .set("age", age)
            .set("measured_hops", measured_hops)
            .set("bytes_per_hop", c.bytes_per_hop)
            .set("hops_per_sec", c.hops_per_sec)
            .set("delta_ships", c.delta_ships)
            .set("hop_p50_us", c.hop_p50_us)
            .set("hop_p95_us", c.hop_p95_us)
            .set("hop_p99_us", c.hop_p99_us)
            .set_json("metrics", c.metrics_json)
            .set("ok", c.ok);
      }
    }
  }

  auto cell_of = [&rows](const char* locality, int age, bool delta) {
    for (const auto& r : rows) {
      if (std::string(r.locality) == locality && r.age == age &&
          r.delta == delta) {
        return r.cell;
      }
    }
    MAR_CHECK_MSG(false, "missing sweep cell");
    return rows.front().cell;
  };

  // Shape: on the locality-heavy pair itinerary, full-image bytes/hop
  // grow with age (the log rides every hop) while delta bytes/hop stay
  // flat within 1.15x — and the smaller transfers win virtual-time
  // throughput at the oldest age.
  const int oldest = ages.back();
  const auto full_young = cell_of("pair", ages.front(), false);
  const auto full_old = cell_of("pair", oldest, false);
  const auto delta_young = cell_of("pair", ages.front(), true);
  const auto delta_old = cell_of("pair", oldest, true);
  const bool grows =
      full_old.bytes_per_hop > 1.5 * full_young.bytes_per_hop;
  const bool flat =
      delta_old.bytes_per_hop <= 1.15 * delta_young.bytes_per_hop;
  const bool faster = delta_old.hops_per_sec > full_old.hops_per_sec;
  const bool deltas_used = delta_old.delta_ships > 0;
  std::cout << "\npair: full grows " << std::setprecision(2)
            << full_old.bytes_per_hop / full_young.bytes_per_hop
            << "x, delta flat "
            << delta_old.bytes_per_hop / delta_young.bytes_per_hop
            << "x, hops/sec@" << oldest << " "
            << delta_old.hops_per_sec / full_old.hops_per_sec << "x -> "
            << ((grows && flat && faster && deltas_used) ? "OK"
                                                         : "MISMATCH")
            << "\n";
  shape_ok = shape_ok && grows && flat && faster && deltas_used;
  report.row()
      .set("phase", "check")
      .set("oldest_age", oldest)
      .set("full_growth", full_old.bytes_per_hop / full_young.bytes_per_hop)
      .set("delta_flatness",
           delta_old.bytes_per_hop / delta_young.bytes_per_hop)
      .set("speedup", delta_old.hops_per_sec / full_old.hops_per_sec);

  // Convoy-window sweep: a fleet migrating towards the same destinations
  // within the window shares convoy messages and participant-side 2PC
  // syncs. Gate: window 4 cuts participant syncs/hop by >= 2x.
  const int fleet = 8;
  const int fleet_age = 4;
  const int fleet_hops = 16;  // preset-stable cell identity (see above)
  std::cout << "\nwindow  fleet  syncs/hop\n";
  std::cout << "------------------------\n";
  double syncs_w1 = 0;
  double syncs_w4 = 0;
  for (const std::uint32_t window : {1u, 4u}) {
    const auto run = run_course(/*delta=*/true, 2, fleet_age, fleet_hops,
                                fleet, window);
    shape_ok = shape_ok && run.ok;
    const double syncs_per_hop =
        static_cast<double>(run.participant_syncs) /
        (static_cast<double>(fleet) * fleet_hops);
    (window == 1 ? syncs_w1 : syncs_w4) = syncs_per_hop;
    std::cout << std::setw(6) << window << "  " << std::setw(5) << fleet
              << "  " << std::setw(9) << std::setprecision(2)
              << syncs_per_hop << "\n";
    report.row()
        .set("phase", "convoy")
        .set("ship_convoy_window", static_cast<int>(window))
        .set("fleet", fleet)
        .set("hops", fleet_hops)
        .set("syncs_per_hop", syncs_per_hop)
        .set("ok", run.ok);
  }
  const bool coalesced = syncs_w4 * 2 <= syncs_w1;
  std::cout << "window 4 vs 1: " << std::setprecision(2)
            << (syncs_w1 / (syncs_w4 > 0 ? syncs_w4 : 1e-9)) << "x fewer -> "
            << (coalesced ? "OK" : "MISMATCH") << "\n";
  shape_ok = shape_ok && coalesced;
  report.row()
      .set("phase", "convoy_check")
      .set("sync_reduction", syncs_w1 / (syncs_w4 > 0 ? syncs_w4 : 1e-9));

  // Pipelined-commit cell: a wide fleet ping-pongs with the coordinator
  // decision queue live (group window 4), PREPAREs piggybacked on the
  // convoy frames and a high slot count, so hops overlap deeply. Gates:
  //   * coordinator decision syncs/hop < 0.25 (one batched flush covers
  //     many same-instant votes);
  //   * zero tx.prepare wire bytes — a convoy costs ONE round trip, the
  //     transfer doubles as the prepare;
  //   * pipeline_depth_max > 32 — the node really keeps that many
  //     transactions in flight at once.
  const int pipe_fleet = 48;
  const int pipe_hops = 16;
  const std::uint32_t pipe_group_window = 4;
  const std::uint32_t pipe_convoy_window = 16;
  const int pipe_concurrency = 64;
  const auto pipe = run_course(/*delta=*/true, 2, /*age=*/0, pipe_hops,
                               pipe_fleet, pipe_convoy_window,
                               /*crash_seed=*/0, pipe_concurrency,
                               pipe_group_window);
  const double total_pipe_hops =
      static_cast<double>(pipe_fleet) * pipe_hops;
  const double coord_syncs_per_hop =
      static_cast<double>(pipe.coordinator_syncs) / total_pipe_hops;
  const double pipe_hops_per_sec =
      total_pipe_hops / (static_cast<double>(pipe.sim_us) * 1e-6);
  const bool pipe_syncs_ok = coord_syncs_per_hop < 0.25;
  const bool one_round_trip = pipe.prepare_bytes == 0;
  const bool deep = pipe.pipeline_depth_max > 32;
  std::cout << "\npipelined commit (fleet " << pipe_fleet << ", window "
            << pipe_group_window << ", convoy " << pipe_convoy_window
            << "): coord syncs/hop " << std::setprecision(3)
            << coord_syncs_per_hop << " (<0.25 "
            << (pipe_syncs_ok ? "OK" : "MISMATCH") << "), prepare bytes "
            << pipe.prepare_bytes << " (one round trip "
            << (one_round_trip ? "OK" : "MISMATCH") << "), depth max "
            << pipe.pipeline_depth_max << " (>32 "
            << (deep ? "OK" : "MISMATCH") << ")\n";
  const bool pipeline_ok =
      pipe.ok && pipe_syncs_ok && one_round_trip && deep;
  shape_ok = shape_ok && pipeline_ok;
  report.row()
      .set("phase", "pipeline")
      .set("group_commit_window", static_cast<int>(pipe_group_window))
      .set("ship_convoy_window", static_cast<int>(pipe_convoy_window))
      .set("node_concurrency", pipe_concurrency)
      .set("fleet", pipe_fleet)
      .set("hops", pipe_hops)
      .set("coordinator_syncs_per_hop", coord_syncs_per_hop)
      .set("pipeline_depth_max", pipe.pipeline_depth_max)
      .set("prepare_bytes", pipe.prepare_bytes)
      .set("hops_per_sec", pipe_hops_per_sec)
      .set("ok", pipeline_ok);

  // Fault-injected bit-identity: under an identical crash schedule the
  // delta-shipped run's final agent state must equal the full-image
  // run's, byte for byte.
  bool identical = true;
  for (const std::uint64_t seed : {19u, 23u}) {
    const auto d = run_course(true, 2, 8, 16, 1, 2, seed);
    const auto f = run_course(false, 2, 8, 16, 1, 2, seed);
    const bool same =
        d.ok && f.ok && d.final_agent == f.final_agent;
    identical = identical && same;
    report.row()
        .set("phase", "faults")
        .set("seed", static_cast<std::uint64_t>(seed))
        .set("bit_identical", same)
        .set("ok", same);
  }
  std::cout << "fault-injected bit-identity: "
            << (identical ? "OK" : "MISMATCH") << "\n";
  shape_ok = shape_ok && identical;

  // Span-timeline dump for trace_timeline.py (CI artifact / fixture
  // regeneration); opt-in via environment so normal runs stay lean.
  if (const char* span_dump = std::getenv("MAR_SPAN_DUMP")) {
    const bool dumped = dump_span_timeline(span_dump);
    std::cout << "span timeline dump -> " << span_dump << ": "
              << (dumped ? "OK" : "FAILED") << "\n";
    shape_ok = shape_ok && dumped;
  }

  std::cout << (shape_ok ? "\nshape check: OK\n" : "\nshape check: FAILED\n");
  report.set_ok(shape_ok);
  if (!json_path.empty() && !report.write_file(json_path)) return 2;
  return shape_ok ? 0 : 1;
}
