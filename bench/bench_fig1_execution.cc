// Figure 1 reproduction: the execution model of the exactly-once protocol.
//
// An agent executes steps i..i+3, one per node. For every step the trace
// shows the step transaction T_i on node N_i and the stable agent state
// A_{i+1} moving to the next node's input queue at commit — the structure
// of the paper's Fig. 1, here as an executable, checked timeline.
#include <iostream>

#include "common.h"

using namespace mar;

int main() {
  agent::PlatformConfig config;
  config.discard_log_on_top_level = false;  // keep A_i sizes comparable
  harness::TestWorld w(config, /*node_count=*/4, /*seed=*/1);
  harness::register_workload(w.platform);
  for (int n = 1; n <= 4; ++n) {
    w.publish(n, "info", serial::Value("resource state R" + std::to_string(n)));
  }

  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  for (int n = 1; n <= 4; ++n) sub.step("collect", harness::TestWorld::n(n));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sub));
  agent->itinerary() = std::move(main_itinerary);

  auto id = w.platform.launch(std::move(agent));
  w.platform.run_until_finished(id.value());

  std::cout << "=== Fig. 1: execution of an agent (steps i .. i+3) ===\n\n";
  w.trace.print(std::cout);

  std::cout << "\n--- step timeline ---\n";
  std::cout << "step  node  T_begin[us]  T_commit[us]  A_i+1 -> next queue\n";
  const auto begins = w.trace.of_kind(TraceKind::step_begin);
  const auto commits = w.trace.of_kind(TraceKind::step_commit);
  const auto migrates = w.trace.of_kind(TraceKind::migrate);
  for (std::size_t i = 0; i < begins.size(); ++i) {
    std::cout << "T_" << i << "   N" << begins[i].node << "    "
              << begins[i].time_us << "          "
              << (i < commits.size() ? std::to_string(commits[i].time_us)
                                     : "-")
              << "          "
              << (i < migrates.size() ? migrates[i].detail : "(final state)")
              << "\n";
  }
  const bool ok =
      w.platform.outcome(id.value()).state == agent::AgentOutcome::State::done &&
      begins.size() == 4 && migrates.size() == 3;
  std::cout << "\ncheck: 4 step transactions, 3 stable-queue transfers -> "
            << (ok ? "OK" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
