// Figure 2 reproduction: the rollback log entry stream.
//
// Runs an agent whose steps write savepoint, begin-of-step, operation and
// end-of-step entries; prints the resulting log in the paper's
// "... SP_k BOS_n OE_n,1 ... OE_n,p EOS_n BOS_n+1 ..." layout together
// with per-entry wire sizes (the cost the agent carries while migrating).
#include <iomanip>
#include <iostream>

#include "common.h"

using namespace mar;

int main() {
  agent::PlatformConfig config;
  config.discard_log_on_top_level = false;  // keep the log for inspection
  harness::TestWorld w(config, /*node_count=*/3, /*seed=*/1);
  harness::register_workload(w.platform);

  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  sub.step("savepoint", harness::TestWorld::n(1));   // SP_k
  sub.step("touch_split", harness::TestWorld::n(2)); // BOS OE OE EOS
  sub.step("touch_mixed", harness::TestWorld::n(3)); // BOS OE EOS(mixed)
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sub));
  agent->itinerary() = std::move(main_itinerary);
  agent->set_config("param_bytes", 48);

  auto id = w.platform.launch(std::move(agent));
  w.platform.run_until_finished(id.value());
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  const auto& log = fin->log();

  std::cout << "=== Fig. 2: example rollback log ===\n\n";
  std::cout << log.to_string() << "\n\n";
  std::cout << "entry                       bytes\n";
  std::cout << "---------------------------------\n";
  std::size_t total = 0;
  for (const auto& e : log.entries()) {
    std::cout << std::left << std::setw(28) << e.to_string() << std::right
              << std::setw(5) << e.byte_size() << "\n";
    total += e.byte_size();
  }
  std::cout << "---------------------------------\n";
  std::cout << std::left << std::setw(28) << "total (carried by agent)"
            << std::right << std::setw(5) << log.byte_size() << "\n";

  // Structural check against Fig. 2: savepoint entries precede the BOS of
  // the following step; OEs sit between BOS and EOS.
  bool ok = w.platform.outcome(id.value()).state ==
            agent::AgentOutcome::State::done;
  ok = ok && total <= log.byte_size();
  int bos = 0;
  int eos = 0;
  for (const auto& e : log.entries()) {
    if (e.kind() == rollback::EntryKind::begin_of_step) ++bos;
    if (e.kind() == rollback::EntryKind::end_of_step) ++eos;
  }
  ok = ok && bos == 3 && eos == 3;
  std::cout << "\ncheck: 3 BOS/EOS pairs, sizes consistent -> "
            << (ok ? "OK" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
