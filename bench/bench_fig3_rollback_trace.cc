// Figure 3 / Figure 4 reproduction: partial rollback with the basic
// mechanism.
//
// Steps i..i+2 commit on N1..N3; the rollback is initiated during step
// i+3 on N4 and targets the savepoint before step i. The trace must show
// the agent moving BACK along its path (N3, N2, N1), one compensation
// transaction per node, with compensating operations in reverse order,
// and the strongly reversible objects restored only at the end.
#include <iostream>

#include "common.h"

using namespace mar;

int main() {
  agent::PlatformConfig config;
  config.strategy = agent::RollbackStrategy::basic;
  harness::TestWorld w(config, /*node_count=*/4, /*seed=*/1);
  harness::register_workload(w.platform);

  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  for (int n = 1; n <= 3; ++n) {
    sub.step("touch_split", harness::TestWorld::n(n));
  }
  sub.step("noop", harness::TestWorld::n(4));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sub));
  agent->itinerary() = std::move(main_itinerary);
  agent->set_trigger("noop", 4, "sub", 0);

  auto id = w.platform.launch(std::move(agent));
  w.platform.run_until_finished(id.value());

  std::cout << "=== Fig. 3: partial rollback with the basic mechanism ===\n\n";
  w.trace.print(std::cout);

  // Checks: compensation transactions visited N3, N2, N1 in that order;
  // restore happened exactly once, strictly after all compensations.
  const auto comps = w.trace.of_kind(TraceKind::comp_begin);
  std::vector<std::uint32_t> comp_nodes;
  for (const auto& e : comps) comp_nodes.push_back(e.node);
  const auto restores = w.trace.of_kind(TraceKind::restore);
  bool ok = w.platform.outcome(id.value()).state ==
            agent::AgentOutcome::State::done;
  ok = ok && comp_nodes.size() >= 3;
  if (ok) {
    // First three compensation transactions: reverse path N3 N2 N1.
    ok = comp_nodes[0] == 3 && comp_nodes[1] == 2 && comp_nodes[2] == 1;
  }
  ok = ok && restores.size() == 1;
  if (ok) {
    for (const auto& c : comps) ok = ok && c.time_us <= restores[0].time_us;
  }
  std::cout << "\ncheck: CTs ran on N3,N2,N1 (reverse path), single restore "
               "at the end -> "
            << (ok ? "OK" : "MISMATCH") << "\n";
  return ok ? 0 : 1;
}
