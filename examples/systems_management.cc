// Systems-management agent: the information-gathering workload.
//
// The agent sweeps a fleet of nodes, reading inventory data from each
// node's directory service into a *strongly reversible* result vector.
// Pure reads need no compensating operations at all, so with the optimized
// rollback algorithm (Sec. 4.4.1) a rollback of the whole sweep requires
// ZERO agent transfers: the strongly reversible results are restored from
// the savepoint image wherever the agent happens to be.
//
// The scenario: mid-sweep the agent discovers the fleet config generation
// changed under it (an inconsistent snapshot), rolls the sweep back and
// re-collects against the new generation.
#include <iostream>
#include <memory>

#include "agent/agent.h"
#include "agent/node_runtime.h"
#include "agent/platform.h"
#include "agent/step_context.h"
#include "net/network.h"
#include "resource/directory.h"
#include "sim/simulator.h"
#include "util/trace.h"

using namespace mar;

namespace {

serial::Value kv(
    std::initializer_list<std::pair<std::string, serial::Value>> pairs) {
  serial::Value v = serial::Value::empty_map();
  for (auto& [k, val] : pairs) v.set(k, val);
  return v;
}

class InventoryAgent final : public agent::Agent {
 public:
  InventoryAgent() {
    data().declare_strong("inventory", serial::Value::empty_list());
    data().declare_strong("generation", std::int64_t{-1});
  }

  std::string type_name() const override { return "inventory"; }

  void run_step(const std::string& step, agent::StepContext& ctx) override {
    if (step != "scan") return;
    auto gen = ctx.invoke("dir", "lookup", kv({{"key", "config.gen"}}));
    auto host = ctx.invoke("dir", "lookup", kv({{"key", "host.info"}}));
    if (!gen.is_ok() || !host.is_ok()) return;
    const auto generation = gen.value().at("value").as_int();

    auto& seen_gen = data().strong("generation");
    if (seen_gen.as_int() < 0) {
      seen_gen = generation;
    } else if (seen_gen.as_int() != generation) {
      // Inconsistent snapshot: config changed mid-sweep. Restart the
      // sweep — restoring the strongly reversible inventory needs no
      // compensating operations (nothing was written anywhere).
      std::cout << "[agent] N" << ctx.node().value() << ": generation "
                << generation << " != snapshot " << seen_gen.as_int()
                << " — rolling the sweep back\n";
      ctx.request_rollback_sub_itinerary();
      return;
    }
    data().strong("inventory")
        .push_back(kv({{"node", static_cast<std::int64_t>(ctx.node().value())},
                       {"info", host.value().at("value")},
                       {"gen", generation}}));
  }
};

}  // namespace

int main() {
  sim::Simulator sim;
  TraceSink trace;
  net::Network net(sim, trace);
  agent::PlatformConfig config;
  config.strategy = agent::RollbackStrategy::optimized;
  agent::Platform platform(sim, net, trace, config);

  constexpr int kFleet = 8;
  for (std::uint32_t i = 1; i <= kFleet; ++i) {
    auto& node = platform.add_node(NodeId(i));
    node.resources().add_resource("dir",
                                  std::make_unique<resource::Directory>());
    auto& rm = node.resources();
    auto state = rm.committed_state("dir");
    state.as_map().at("entries").set("config.gen", std::int64_t{1});
    state.as_map().at("entries").set(
        "host.info", kv({{"cpus", std::int64_t{4 + i % 3}},
                         {"ram_gb", std::int64_t{64}}}));
    rm.poke_state("dir", std::move(state));
  }

  // A config push lands on every node while the agent is mid-sweep: nodes
  // the agent has not visited yet will report generation 2.
  sim.schedule_at(8'000, [&] {
    for (std::uint32_t i = 1; i <= kFleet; ++i) {
      auto& rm = platform.node(NodeId(i)).resources();
      auto state = rm.committed_state("dir");
      state.as_map().at("entries").set("config.gen", std::int64_t{2});
      rm.poke_state("dir", std::move(state));
    }
    std::cout << "[world] config generation bumped to 2 on all nodes\n";
  });

  platform.agent_types().register_type<InventoryAgent>("inventory");

  auto agent = std::make_unique<InventoryAgent>();
  agent::Itinerary sweep;
  for (std::uint32_t i = 1; i <= kFleet; ++i) sweep.step("scan", NodeId(i));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sweep));
  agent->itinerary() = std::move(main_itinerary);

  auto id = platform.launch(std::move(agent));
  if (!id.is_ok()) {
    std::cerr << "launch failed: " << id.status() << "\n";
    return 1;
  }
  platform.run_until_finished(id.value());

  const auto& outcome = platform.outcome(id.value());
  auto fin = platform.decode(outcome.final_agent);
  const auto& inv = fin->data().strong("inventory").as_list();
  std::cout << "\n--- result ---\n"
            << "inventory entries: " << inv.size() << " (all generation "
            << fin->data().strong("generation").as_int() << ")\n"
            << "sweep rollbacks: " << trace.count(TraceKind::rollback_done)
            << "\n"
            << "agent transfers during rollback: "
            << platform.rollback_transfers()
            << " (optimized algorithm, read-only steps)\n";
  for (const auto& e : inv) {
    std::cout << "  N" << e.at("node").as_int() << " gen "
              << e.at("gen").as_int() << " cpus "
              << e.at("info").at("cpus").as_int() << "\n";
  }
  return outcome.state == agent::AgentOutcome::State::done ? 0 : 1;
}
