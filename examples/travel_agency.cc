// Travel agency: a trip-booking saga with a non-vital leg (Sec. 5).
//
// An agent books a trip in three legs, each a top-level or nested
// sub-itinerary of its hierarchical itinerary (Sec. 4.4.2):
//
//   flight    book a seat (vital — without it there is no trip),
//   hotel     book a room (vital),
//   excursion an ALTERNATIVES entry (ref [14]): preferred option a guided
//             boat tour, fallback option a museum visit; the whole leg is
//             NON-vital (vital=false) — nice to have, not trip-critical.
//
// The boat tour is sold out, permanently — retrying cannot help, so the
// step declares itself failed with fail_step(). The platform rolls the
// failed option back to its entry savepoint (the guide reservation is
// compensated, minus the agency's cancellation fee) and enters the next
// option: the museum gets booked instead. Had the museum failed too, the
// exhausted alternatives would have propagated to the non-vital leg and
// the trip would simply have continued without an excursion.
//
// This is the paper's "non vital sub-sagas can be realized in our model by
// using flexible itineraries" (Sec. 5) plus ref [14]'s alternative
// entries, built on the partial-rollback mechanism of Sec. 4.
#include <iostream>
#include <memory>

#include "agent/agent.h"
#include "agent/node_runtime.h"
#include "agent/platform.h"
#include "agent/step_context.h"
#include "net/network.h"
#include "resource/shop.h"
#include "sim/simulator.h"
#include "util/trace.h"

using namespace mar;

namespace {

serial::Value kv(
    std::initializer_list<std::pair<std::string, serial::Value>> pairs) {
  serial::Value v = serial::Value::empty_map();
  for (auto& [k, val] : pairs) v.set(k, val);
  return v;
}

class TravelAgent final : public agent::Agent {
 public:
  TravelAgent() {
    data().declare_strong("itinerary_notes", serial::Value::empty_list());
    data().declare_weak("cash", std::int64_t{2000});
    data().declare_weak("bookings", serial::Value::empty_list());
  }

  std::string type_name() const override { return "traveller"; }

  void run_step(const std::string& step, agent::StepContext& ctx) override {
    if (step == "report") {
      report();
      return;
    }
    // Every other step books one item from the local vendor.
    book(ctx, step);
  }

 private:
  void book(agent::StepContext& ctx, const std::string& item) {
    auto stock = ctx.invoke("vendor", "stock", kv({{"item", item}}));
    if (!stock.is_ok() || stock.value().at("qty").as_int() == 0) {
      // Sold out for the season: no amount of retrying will help. The
      // platform decides what that means — abandon the innermost
      // non-vital sub-itinerary, or fail the agent if all are vital.
      std::cout << "[agent] N" << ctx.node().value() << ": " << item
                << " permanently unavailable\n";
      ctx.fail_step(Status(Errc::rejected, item + " is sold out"));
      return;
    }
    const auto price = stock.value().at("price").as_int();
    auto r = ctx.invoke("vendor", "buy",
                        kv({{"item", item},
                            {"qty", std::int64_t{1}},
                            {"payment", data().weak("cash")},
                            {"now", static_cast<std::int64_t>(
                                        ctx.now_us())}}));
    if (!r.is_ok()) {
      std::cout << "[agent] buy " << item << " failed: " << r.status()
                << "\n";
      return;
    }
    data().weak("cash") = data().weak("cash").as_int() - price;
    data().weak("bookings").push_back(
        kv({{"item", item},
            {"order", r.value().at("order")},
            {"price", price},
            {"node", static_cast<std::int64_t>(ctx.node().value())}}));
    data().strong("itinerary_notes")
        .push_back(serial::Value(item + "@" +
                                 std::to_string(ctx.node().value())));
    std::cout << "[agent] N" << ctx.node().value() << ": booked " << item
              << " for " << price << "\n";
    // Cancelling needs the vendor (resource) and the wallet/booking list
    // (weak agent state): a mixed compensation entry.
    ctx.log_mixed_compensation(
        "vendor", "undo.book",
        kv({{"order", r.value().at("order")}, {"item", item}}));
  }

  void report() {
    std::cout << "[agent] trip booked:";
    for (const auto& b : data().weak("bookings").as_list()) {
      std::cout << " " << b.at("item").as_string() << "(N"
                << b.at("node").as_int() << ")";
    }
    std::cout << ", cash left " << data().weak("cash").as_int() << "\n";
  }
};

}  // namespace

int main() {
  sim::Simulator sim;
  TraceSink trace;
  net::Network net(sim, trace);
  agent::PlatformConfig cfg;
  cfg.strategy = agent::RollbackStrategy::adaptive;
  agent::Platform platform(sim, net, trace, cfg);

  struct Vendor {
    std::uint32_t node;
    const char* item;
    std::int64_t qty;
    std::int64_t price;
    std::int64_t cancel_fee;
  };
  // The boat tour on N4 is sold out (qty 0) — the permanent failure.
  for (const auto& v : std::initializer_list<Vendor>{
           {1, "flight", 10, 800, 50},
           {2, "hotel", 4, 450, 20},
           {3, "guide", 2, 150, 15},
           {4, "boat_tour", 0, 300, 0},
           {6, "museum", 9, 120, 5},
           {5, "", 0, 0, 0}}) {  // N5 only hosts the report step
    auto& node = platform.add_node(NodeId(v.node));
    node.resources().add_resource("vendor",
                                  std::make_unique<resource::Shop>());
    if (v.price > 0) {
      auto& rm = node.resources();
      auto state = rm.committed_state("vendor");
      state.as_map().at("items").set(
          v.item, kv({{"qty", v.qty}, {"price", v.price}}));
      state.set("cancel_fee", v.cancel_fee);
      rm.poke_state("vendor", std::move(state));
    }
  }

  platform.agent_types().register_type<TravelAgent>("traveller");
  platform.compensations().register_op(
      "undo.book", [](rollback::CompensationContext& ctx) {
        auto r = ctx.invoke(
            "vendor", "cancel",
            kv({{"order", ctx.params().at("order")},
                {"now", static_cast<std::int64_t>(ctx.now_us())}}));
        if (!r.is_ok()) return r.status();
        auto& cash = ctx.weak("cash");
        cash = cash.as_int() + r.value().at("refund").as_int();
        auto& bookings = ctx.weak("bookings").as_list();
        const auto& item = ctx.params().at("item").as_string();
        std::erase_if(bookings, [&](const serial::Value& b) {
          return b.at("item").as_string() == item;
        });
        std::cout << "[comp] cancelled " << item << ", refund "
                  << r.value().at("refund").as_int() << "\n";
        return Status::ok();
      });

  auto agent = std::make_unique<TravelAgent>();
  agent::Itinerary flight;
  flight.step("flight", NodeId(1));
  agent::Itinerary hotel;
  hotel.step("hotel", NodeId(2));
  agent::Itinerary boat_option;
  boat_option.step("guide", NodeId(3)).step("boat_tour", NodeId(4));
  agent::Itinerary museum_option;
  museum_option.step("museum", NodeId(6));
  agent::Itinerary excursion;
  excursion.alt({std::move(boat_option), std::move(museum_option)});
  agent::Itinerary wrap_up;
  wrap_up.step("report", NodeId(5));
  agent::Itinerary trip;
  trip.sub(std::move(flight));
  trip.sub(std::move(hotel));
  trip.sub(std::move(excursion), /*vital=*/false);
  trip.sub(std::move(wrap_up));
  agent->itinerary() = std::move(trip);

  auto id = platform.launch(std::move(agent));
  if (!id.is_ok()) {
    std::cerr << "launch failed: " << id.status() << "\n";
    return 1;
  }
  platform.run_until_finished(id.value());
  sim.run();  // drain trailing commit acknowledgements for the tally below

  const auto& outcome = platform.outcome(id.value());
  auto fin = platform.decode(outcome.final_agent);
  const auto cash = fin->data().weak("cash").as_int();
  std::cout << "\n--- summary ---\n"
            << "agent state: "
            << (outcome.state == agent::AgentOutcome::State::done ? "done"
                                                                  : "failed")
            << "\ncompensation transactions committed: "
            << trace.count(TraceKind::comp_commit)
            << "\ncash: " << cash
            << " (2000 - 800 flight - 450 hotel - 150 guide"
               " + (150-15) refund - 120 museum = 615)\n";
  const bool ok = outcome.state == agent::AgentOutcome::State::done &&
                  cash == 615 &&
                  fin->data().weak("bookings").as_list().size() == 3;
  return ok ? 0 : 1;
}
