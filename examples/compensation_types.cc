// The compensation taxonomy of Sec. 3, executable.
//
// The paper classifies compensating operations by how much of the
// original state they can recover:
//
//   sound histories      the compensation commutes with every dependent
//                        transaction (bank deposits/withdrawals on an
//                        overdraftable account) — dep(T)'s outcome is
//                        untouched by T + CT;
//   broken soundness     one dependent READS the balance to decide — a
//                        single "if I have enough money" breaks
//                        commutation, the paper's own example;
//   state-equivalent     digital cash refunds mint fresh serial numbers:
//                        equal value, different representation (the
//                        reason weakly reversible objects exist, §4.1);
//   failing              compensating a deposit from an account that may
//                        not be overdrawn fails if the money is gone;
//   impossible           deleting bulk data without logging it cannot be
//                        compensated at all — the step is poisoned
//                        (mark_not_compensatable, §3.2).
//
// Each class is demonstrated with the Sec. 3.1 formalism (histories over
// the augmented state, equality sampled over concrete states) and — for
// the last three — with the real resources of the platform.
#include <iostream>

#include "compensation/history.h"
#include "resource/bank.h"
#include "resource/mint.h"
#include "serial/value.h"

using namespace mar;
using compensation::History;
using compensation::Operation;
using compensation::State;

namespace {

State account_state(std::int64_t balance) {
  State s = serial::Value::empty_map();
  s.set("balance", balance);
  return s;
}

Operation deposit(std::int64_t x) {
  return {"deposit(" + std::to_string(x) + ")", [x](const State& s) {
            State out = s;
            out.set("balance", s.at("balance").as_int() + x);
            return out;
          }};
}

Operation withdraw(std::int64_t x) {
  return {"withdraw(" + std::to_string(x) + ")", [x](const State& s) {
            State out = s;
            out.set("balance", s.at("balance").as_int() - x);
            return out;
          }};
}

/// The paper's soundness breaker: a dependent that READS the balance to
/// decide ("if I have enough money, then...").
Operation conditional_spend(std::int64_t need) {
  return {"spend_if_rich(" + std::to_string(need) + ")",
          [need](const State& s) {
            State out = s;
            if (s.at("balance").as_int() >= need) {
              out.set("balance", s.at("balance").as_int() - need);
            }
            return out;
          }};
}

bool demo_sound_history() {
  // T deposits 100; CT withdraws 100; dep(T) deposits 30 and withdraws 50
  // (pure, unconditional transfers on an overdraftable account).
  const History t{deposit(100)};
  const History ct{withdraw(100)};
  const History dep{deposit(30), withdraw(50)};
  const std::vector<State> samples = {account_state(0), account_state(75),
                                      account_state(-20)};

  const bool commutes =
      compensation::compensation_commutes_with_dependents(ct, dep, samples);
  const bool is_sound = compensation::sound(t.then(dep).then(ct), dep,
                                            account_state(40));
  std::cout << "1. sound:            CT commutes with dep(T): "
            << (commutes ? "yes" : "no")
            << "; history sound: " << (is_sound ? "yes" : "no") << "\n";
  return commutes && is_sound;
}

bool demo_broken_soundness() {
  const History t{deposit(100)};
  const History ct{withdraw(100)};
  const History dep{conditional_spend(120)};  // reads the balance
  // 150 exposes the broken commutation: after withdraw(100) the spend no
  // longer fires; before it, it does.
  const std::vector<State> samples = {account_state(0), account_state(50),
                                      account_state(150)};

  const bool commutes =
      compensation::compensation_commutes_with_dependents(ct, dep, samples);
  // From balance 50: with T+CT the spend sees 150 and fires; without, it
  // sees 50 and doesn't — dep(T)'s outcome differs, soundness is broken.
  const bool is_sound = compensation::sound(t.then(dep).then(ct), dep,
                                            account_state(50));
  std::cout << "2. broken soundness: CT commutes with dep(T): "
            << (commutes ? "yes" : "no")
            << "; history sound: " << (is_sound ? "yes" : "no") << "\n";
  return !commutes && !is_sound;
}

bool demo_state_equivalent() {
  // Digital cash (Sec. 3.2): a refund returns the same VALUE with fresh
  // serial numbers — an equivalent, not identical, state.
  resource::Mint mint;
  auto state = mint.initial_state();
  serial::Value issue = serial::Value::empty_map();
  issue.set("currency", std::string("USD"));
  issue.set("value", std::int64_t{20});
  issue.set("count", std::int64_t{2});
  auto coins1 = mint.invoke("issue", issue, state);
  auto coins2 = mint.invoke("issue", issue, state);
  const bool same_value =
      coins1.value().at("coins").as_list().size() ==
      coins2.value().at("coins").as_list().size();
  const bool different_serials =
      !(coins1.value().at("coins") == coins2.value().at("coins"));
  std::cout << "3. state-equivalent: refunds carry equal value: "
            << (same_value ? "yes" : "no") << "; identical serials: "
            << (different_serials ? "no" : "yes") << "\n";
  return same_value && different_serials;
}

bool demo_failing_compensation() {
  // Compensating a deposit withdraws it back — impossible once another
  // transaction drained the non-overdraftable account (Sec. 3.2's 20 USD
  // example).
  resource::Bank bank;
  auto state = bank.initial_state();
  serial::Value acc = serial::Value::empty_map();
  acc.set("balance", std::int64_t{0});
  acc.set("overdraft", false);
  state.as_map().at("accounts").set("acct", std::move(acc));

  auto mk = [](std::int64_t amount) {
    serial::Value p = serial::Value::empty_map();
    p.set("account", std::string("acct"));
    p.set("amount", amount);
    return p;
  };
  (void)bank.invoke("deposit", mk(20), state);   // T
  (void)bank.invoke("withdraw", mk(20), state);  // another tx drains it
  auto ct = bank.invoke("withdraw", mk(20), state);  // CT fails
  std::cout << "4. failing:          compensating withdraw: "
            << ct.status().to_string() << "\n";
  return ct.code() == Errc::rejected;
}

}  // namespace

int main() {
  std::cout << "=== Sec. 3: types of compensation, demonstrated ===\n\n";
  bool ok = true;
  ok = demo_sound_history() && ok;
  ok = demo_broken_soundness() && ok;
  ok = demo_state_equivalent() && ok;
  ok = demo_failing_compensation() && ok;
  std::cout << "5. impossible:       bulk deletion without logging — see "
               "mark_not_compensatable(); a rollback across such a step is "
               "rejected with not_compensatable (tested in "
               "rollback_e2e_test).\n";
  std::cout << "\n" << (ok ? "all classes behave as Sec. 3 describes\n"
                           : "MISMATCH\n");
  return ok ? 0 : 1;
}
