// Itinerary integration demo: Fig. 6 of the paper.
//
// The agent executes the paper's sample hierarchy
//
//   I = [ SI1(s7 s1 s8)  SI2(s2 s3)  SI3( s6  SI4(s5 s4)  SI5(s9 s10) ) ]
//
// and demonstrates the Sec. 4.4.2 machinery:
//   * savepoints are established automatically when sub-itineraries are
//     entered (lightweight when no step ran in between);
//   * during SI4 the agent rolls back the *nested* sub-itinerary SI4 only
//     (aborting s4, compensating s5) — the paper's first scenario;
//   * savepoints of completed sub-itineraries are garbage-collected;
//   * completing a top-level sub-itinerary discards the whole log.
//
// The rollback log is printed after every committed step so the entry
// stream of Fig. 2 can be watched evolving.
#include <iostream>
#include <memory>

#include "agent/agent.h"
#include "agent/node_runtime.h"
#include "agent/platform.h"
#include "agent/step_context.h"
#include "net/network.h"
#include "resource/bank.h"
#include "sim/simulator.h"
#include "util/trace.h"

using namespace mar;

namespace {

class Fig6Agent final : public agent::Agent {
 public:
  Fig6Agent() {
    data().declare_strong("trail", serial::Value::empty_list());
    data().declare_weak("counter", std::int64_t{0});
    // Counted in s5 (committed before s4 runs) and deliberately not
    // compensated: it must survive the rollback of SI4, otherwise s4
    // would request the same rollback forever.
    data().declare_weak("si4_passes", std::int64_t{0});
  }

  std::string type_name() const override { return "fig6"; }

  void run_step(const std::string& step, agent::StepContext& ctx) override {
    data().strong("trail").push_back(step);
    // Every step bumps a weakly reversible counter and logs its undo.
    auto& counter = data().weak("counter");
    counter = counter.as_int() + 1;
    serial::Value p = serial::Value::empty_map();
    p.set("amount", std::int64_t{1});
    ctx.log_agent_compensation("undo.count", p);

    if (step == "s5") {
      auto& passes = data().weak("si4_passes");
      passes = passes.as_int() + 1;
    }
    if (step == "s4" && data().weak("si4_passes").as_int() == 1) {
      // The paper's scenario: during s4, roll back only SI4 (abort the
      // s4 step transaction and compensate s5).
      std::cout << ">>> s4 requests rollback of sub-itinerary SI4\n";
      ctx.request_rollback_sub_itinerary(/*levels_up=*/0);
    }
  }
};

}  // namespace

int main() {
  sim::Simulator sim;
  TraceSink trace;
  net::Network net(sim, trace);
  agent::PlatformConfig config;
  config.logging = agent::LoggingMode::state;
  agent::Platform platform(sim, net, trace, config);
  for (std::uint32_t i = 1; i <= 10; ++i) platform.add_node(NodeId(i));

  platform.agent_types().register_type<Fig6Agent>("fig6");
  platform.compensations().register_op(
      "undo.count", [](rollback::CompensationContext& ctx) {
        auto& counter = ctx.weak("counter");
        counter = counter.as_int() - ctx.params().at("amount").as_int();
        return Status::ok();
      });

  // Fig. 6, with each step s_k on node N_k.
  auto step_node = [](std::uint32_t k) { return NodeId(k); };
  agent::Itinerary si1;
  si1.step("s7", step_node(7)).step("s1", step_node(1)).step("s8",
                                                             step_node(8));
  agent::Itinerary si2;
  si2.step("s2", step_node(2)).step("s3", step_node(3));
  agent::Itinerary si4;
  si4.step("s5", step_node(5)).step("s4", step_node(4));
  agent::Itinerary si5;
  si5.step("s9", step_node(9)).step("s10", step_node(10));
  agent::Itinerary si3;
  si3.step("s6", step_node(6)).sub(std::move(si4)).sub(std::move(si5));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(si1)).sub(std::move(si2)).sub(std::move(si3));

  auto agent = std::make_unique<Fig6Agent>();
  agent->itinerary() = std::move(main_itinerary);
  std::cout << "itinerary: " << agent->itinerary().to_string() << "\n\n";

  auto id = platform.launch(std::move(agent));
  if (!id.is_ok()) {
    std::cerr << "launch failed: " << id.status() << "\n";
    return 1;
  }

  // Print the rollback log after every committed step (Fig. 2 view).
  std::size_t printed = 0;
  while (!platform.finished(id.value()) && sim.step()) {
    const auto& events = trace.events();
    for (; printed < events.size(); ++printed) {
      const auto& e = events[printed];
      if (e.kind == TraceKind::step_commit ||
          e.kind == TraceKind::savepoint ||
          e.kind == TraceKind::sp_gc || e.kind == TraceKind::log_discard ||
          e.kind == TraceKind::rollback_done) {
        std::cout << "[t=" << e.time_us / 1000 << "ms N" << e.node << "] "
                  << to_string(e.kind) << " " << e.detail << "\n";
      }
    }
  }

  const auto& outcome = platform.outcome(id.value());
  auto fin = platform.decode(outcome.final_agent);
  std::cout << "\n--- result ---\n";
  std::cout << "trail:";
  for (const auto& s : fin->data().strong("trail").as_list()) {
    std::cout << " " << s.as_string();
  }
  std::cout << "\ncounter (weak, compensated): "
            << fin->data().weak("counter").as_int() << "\n";
  std::cout << "savepoints GC'd: " << trace.count(TraceKind::sp_gc)
            << ", log discards: " << trace.count(TraceKind::log_discard)
            << ", final log entries: " << fin->log().size() << "\n";
  return outcome.state == agent::AgentOutcome::State::done ? 0 : 1;
}
