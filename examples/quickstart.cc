// Quickstart: a mobile agent that visits three nodes, withdraws money on
// two of them, then decides its strategy was wrong and partially rolls
// back — compensating the committed steps and restarting from the
// savepoint.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "agent/agent.h"
#include "agent/node_runtime.h"
#include "agent/platform.h"
#include "agent/step_context.h"
#include "net/network.h"
#include "resource/bank.h"
#include "sim/simulator.h"
#include "util/trace.h"

using namespace mar;

// An agent keeps ALL of its state in the DataSpace: strongly reversible
// slots are restored from savepoint images by the system; weakly
// reversible slots are fixed up by the compensating operations you log.
class TravelAgent final : public agent::Agent {
 public:
  TravelAgent() {
    data().declare_strong("visited", serial::Value::empty_list());
    data().declare_weak("budget", std::int64_t{0});
    data().declare_weak("tries", std::int64_t{0});
  }

  std::string type_name() const override { return "travel"; }

  void run_step(const std::string& step, agent::StepContext& ctx) override {
    data().strong("visited").push_back(
        static_cast<std::int64_t>(ctx.node().value()));

    if (step == "withdraw") {
      // "tries" counts withdraw executions and is deliberately NOT
      // compensated: it is the agent's experience and survives rollback —
      // without it the agent would request the same rollback forever.
      // (State updated in the step that *requests* the rollback would be
      // lost with that step's abort.)
      data().weak("tries") = data().weak("tries").as_int() + 1;
      serial::Value p = serial::Value::empty_map();
      p.set("account", "travel-fund");
      p.set("amount", std::int64_t{100});
      auto r = ctx.invoke("bank", "withdraw", p);
      if (!r.is_ok()) return;
      data().weak("budget") = data().weak("budget").as_int() + 100;
      // Log how to undo this step if the agent later rolls back:
      //  - put the money back (resource compensation entry), and
      //  - shrink the budget counter (agent compensation entry).
      ctx.log_resource_compensation("bank", "undo.withdraw", p);
      serial::Value ap = serial::Value::empty_map();
      ap.set("amount", std::int64_t{100});
      ctx.log_agent_compensation("undo.budget", ap);
      return;
    }

    if (step == "decide") {
      if (data().weak("tries").as_int() == 2) {
        // First time here: the plan looks wrong — roll back the whole
        // sub-itinerary. The platform aborts this step, compensates the
        // committed withdraws on their nodes, restores "visited" from the
        // savepoint image and restarts the sub-itinerary.
        std::cout << "[agent] strategy failed, requesting rollback\n";
        ctx.request_rollback_sub_itinerary();
      }
      return;
    }
  }
};

int main() {
  sim::Simulator sim;
  TraceSink trace;
  net::Network net(sim, trace);
  agent::Platform platform(sim, net, trace);

  // Three nodes; the banks on N1 and N2 hold the travel fund.
  for (std::uint32_t i = 1; i <= 3; ++i) {
    auto& node = platform.add_node(NodeId(i));
    node.resources().add_resource("bank",
                                  std::make_unique<resource::Bank>());
  }
  for (std::uint32_t i = 1; i <= 2; ++i) {
    auto& rm = platform.node(NodeId(i)).resources();
    auto state = rm.committed_state("bank");
    serial::Value acc = serial::Value::empty_map();
    acc.set("balance", std::int64_t{500});
    acc.set("overdraft", false);
    state.as_map().at("accounts").set("travel-fund", std::move(acc));
    rm.poke_state("bank", std::move(state));
  }

  // Register the agent type and its compensating operations everywhere.
  platform.agent_types().register_type<TravelAgent>("travel");
  platform.compensations().register_op(
      "undo.withdraw", [](rollback::CompensationContext& ctx) {
        serial::Value p = serial::Value::empty_map();
        p.set("account", ctx.params().at("account"));
        p.set("amount", ctx.params().at("amount"));
        return ctx.invoke("bank", "deposit", p).status();
      });
  platform.compensations().register_op(
      "undo.budget", [](rollback::CompensationContext& ctx) {
        auto& budget = ctx.weak("budget");
        budget = budget.as_int() - ctx.params().at("amount").as_int();
        return Status::ok();
      });

  // Itinerary: one sub-itinerary (= unit of rollback) over three nodes.
  auto agent = std::make_unique<TravelAgent>();
  agent::Itinerary sub;
  sub.step("withdraw", NodeId(1))
      .step("withdraw", NodeId(2))
      .step("decide", NodeId(3));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(sub));
  agent->itinerary() = std::move(main_itinerary);

  auto id = platform.launch(std::move(agent));
  if (!id.is_ok()) {
    std::cerr << "launch failed: " << id.status() << "\n";
    return 1;
  }
  platform.run_until_finished(id.value());

  std::cout << "\n--- execution trace ---\n";
  trace.print(std::cout);

  const auto& outcome = platform.outcome(id.value());
  auto final_agent = platform.decode(outcome.final_agent);
  std::cout << "\n--- result ---\n";
  std::cout << "agent state: "
            << (outcome.state == agent::AgentOutcome::State::done ? "done"
                                                                  : "failed")
            << " at node N" << outcome.final_node << " after "
            << outcome.finished_at / 1000 << " ms (simulated)\n";
  std::cout << "budget: " << final_agent->data().weak("budget").as_int()
            << " (withdrawn twice, compensated twice, withdrawn twice)\n";
  std::cout << "bank N1: "
            << resource::Bank::balance_in(
                   platform.node(NodeId(1)).resources().committed_state(
                       "bank"),
                   "travel-fund")
            << ", bank N2: "
            << resource::Bank::balance_in(
                   platform.node(NodeId(2)).resources().committed_state(
                       "bank"),
                   "travel-fund")
            << "\n";
  return 0;
}
