// Parallel search: multi-agent exactly-once execution (Sec. 6).
//
// The paper's future work names "an enhanced agent execution model
// supporting exactly-once executions comprising more than one agent".
// This example is a price search fanned out over a fleet of child agents:
//
//   * a master agent SPAWNS one searcher per region — each spawn commits
//     atomically with the master's step, so a crash can never duplicate
//     or lose a searcher;
//   * each searcher tours its region's shops, collecting quotes into its
//     weakly reversible "result", and the platform delivers that result
//     into the master's mailbox within the searcher's FINAL step
//     transaction (exactly-once delivery);
//   * the master JOINS: its join step parks (abort + restart) until every
//     result has arrived, then buys at the cheapest shop found.
//
// Had the master rolled its spawning step back, the automatically logged
// "sys.cancel_child" compensating entries would cancel the searchers —
// running ones perform a complete rollback of their committed steps,
// finished ones are re-injected as compensating executions.
#include <iostream>
#include <memory>

#include "agent/agent.h"
#include "agent/node_runtime.h"
#include "agent/platform.h"
#include "agent/step_context.h"
#include "net/network.h"
#include "resource/mailbox.h"
#include "resource/shop.h"
#include "sim/simulator.h"
#include "util/trace.h"

using namespace mar;

namespace {

serial::Value kv(
    std::initializer_list<std::pair<std::string, serial::Value>> pairs) {
  serial::Value v = serial::Value::empty_map();
  for (auto& [k, val] : pairs) v.set(k, val);
  return v;
}

/// Visits the shops of one region and reports the best offer it saw.
class SearcherAgent final : public agent::Agent {
 public:
  SearcherAgent() {
    data().declare_strong("visited", serial::Value::empty_list());
    data().declare_weak("result", serial::Value{});  // {node, price}
  }
  std::string type_name() const override { return "searcher"; }

  void run_step(const std::string& step, agent::StepContext& ctx) override {
    if (step != "scan") return;
    auto stock = ctx.invoke("shop", "stock", kv({{"item", "lens"}}));
    if (!stock.is_ok() || stock.value().at("qty").as_int() == 0) return;
    const auto price = stock.value().at("price").as_int();
    auto& best = data().weak("result");
    if (best.is_null() || price < best.at("price").as_int()) {
      best = kv({{"node", static_cast<std::int64_t>(ctx.node().value())},
                 {"price", price}});
    }
    data().strong("visited").push_back(
        static_cast<std::int64_t>(ctx.node().value()));
  }
};

/// Spawns one searcher per region, joins their reports, buys the best.
class MasterAgent final : public agent::Agent {
 public:
  MasterAgent() {
    data().declare_strong("log", serial::Value::empty_list());
    data().declare_weak("regions", serial::Value::empty_list());
    data().declare_weak("best", serial::Value{});
    data().declare_weak("purchase", serial::Value{});
    data().declare_weak("cash", std::int64_t{1000});
  }
  std::string type_name() const override { return "search-master"; }

  void add_region(std::vector<std::uint32_t> shop_nodes) {
    serial::Value region = serial::Value::empty_list();
    for (const auto n : shop_nodes) {
      region.push_back(static_cast<std::int64_t>(n));
    }
    data().weak("regions").push_back(std::move(region));
  }

  void run_step(const std::string& step, agent::StepContext& ctx) override {
    if (step == "spawn") {
      const auto& regions = data().weak("regions").as_list();
      for (std::size_t i = 0; i < regions.size(); ++i) {
        auto searcher = std::make_unique<SearcherAgent>();
        agent::Itinerary tour;
        for (const auto& node : regions[i].as_list()) {
          tour.step("scan",
                    NodeId(static_cast<std::uint32_t>(node.as_int())));
        }
        agent::Itinerary main;
        main.sub(std::move(tour));
        searcher->itinerary() = std::move(main);
        ctx.spawn_child(std::move(searcher), ctx.node(),
                        "region-" + std::to_string(i));
        std::cout << "[master] spawned searcher for region " << i << "\n";
      }
      return;
    }
    if (step == "join") {
      const auto regions = data().weak("regions").as_list().size();
      for (std::size_t i = 0; i < regions; ++i) {
        auto r = ctx.join_child("region-" + std::to_string(i));
        if (!r.is_ok()) return;  // parked until the result arrives
        const auto& record = r.value().at("value");
        if (!record.at("ok").as_bool()) continue;
        const auto& offer = record.at("result");
        if (offer.is_null()) continue;
        std::cout << "[master] region " << i << ": best offer "
                  << offer.at("price").as_int() << " at N"
                  << offer.at("node").as_int() << "\n";
        auto& best = data().weak("best");
        if (best.is_null() ||
            offer.at("price").as_int() < best.at("price").as_int()) {
          best = offer;
        }
      }
      return;
    }
    if (step == "buy") {
      const auto& best = data().weak("best");
      if (best.is_null()) return;
      auto r = ctx.invoke("shop", "buy",
                          kv({{"item", "lens"},
                              {"qty", std::int64_t{1}},
                              {"payment", data().weak("cash")},
                              {"now", static_cast<std::int64_t>(
                                          ctx.now_us())}}));
      if (!r.is_ok()) return;
      const auto cost = r.value().at("cost").as_int();
      data().weak("cash") = data().weak("cash").as_int() - cost;
      data().weak("purchase") = best;
      ctx.log_mixed_compensation("shop", "undo.buy",
                                 kv({{"order", r.value().at("order")}}));
      std::cout << "[master] bought lens at N" << ctx.node().value()
                << " for " << cost << "\n";
    }
  }
};

}  // namespace

int main() {
  sim::Simulator sim;
  TraceSink trace;
  net::Network net(sim, trace);
  agent::Platform platform(sim, net, trace);

  // N1 is the master's home; N2..N7 host shops in two regions.
  struct ShopSetup {
    std::uint32_t node;
    std::int64_t qty;
    std::int64_t price;
  };
  platform.add_node(NodeId(1)).resources().add_resource(
      "mailbox", std::make_unique<resource::Mailbox>());
  for (const auto& s : std::initializer_list<ShopSetup>{
           {2, 5, 420}, {3, 0, 0}, {4, 2, 360},       // region 0
           {5, 1, 390}, {6, 3, 345}, {7, 4, 500}}) {  // region 1
    auto& node = platform.add_node(NodeId(s.node));
    node.resources().add_resource("shop",
                                  std::make_unique<resource::Shop>());
    if (s.price > 0) {
      auto& rm = node.resources();
      auto state = rm.committed_state("shop");
      state.as_map().at("items").set(
          "lens", kv({{"qty", s.qty}, {"price", s.price}}));
      rm.poke_state("shop", std::move(state));
    }
  }

  platform.agent_types().register_type<SearcherAgent>("searcher");
  platform.agent_types().register_type<MasterAgent>("search-master");
  platform.compensations().register_op(
      "undo.buy", [](rollback::CompensationContext& ctx) {
        auto r = ctx.invoke(
            "shop", "cancel",
            kv({{"order", ctx.params().at("order")},
                {"now", static_cast<std::int64_t>(ctx.now_us())}}));
        if (!r.is_ok()) return r.status();
        auto& cash = ctx.weak("cash");
        cash = cash.as_int() + r.value().at("refund").as_int();
        return Status::ok();
      });

  auto master = std::make_unique<MasterAgent>();
  master->add_region({2, 3, 4});
  master->add_region({5, 6, 7});
  agent::Itinerary plan;
  plan.step("spawn", NodeId(1)).step("join", NodeId(1));
  agent::Itinerary buy_leg;
  buy_leg.step("buy", NodeId(6));  // cheapest shop (345) is on N6
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(plan));
  main_itinerary.sub(std::move(buy_leg));
  master->itinerary() = std::move(main_itinerary);

  auto id = platform.launch(std::move(master));
  if (!id.is_ok()) {
    std::cerr << "launch failed: " << id.status() << "\n";
    return 1;
  }
  platform.run_until_finished(id.value());
  sim.run();  // drain terminal bookkeeping of the children

  const auto& outcome = platform.outcome(id.value());
  auto fin = platform.decode(outcome.final_agent);
  const auto& purchase = fin->data().weak("purchase");
  std::cout << "\n--- summary ---\n"
            << "master: "
            << (outcome.state == agent::AgentOutcome::State::done ? "done"
                                                                  : "failed")
            << ", searchers spawned: "
            << platform.children_of(id.value()).size()
            << ", cash left: " << fin->data().weak("cash").as_int() << "\n";
  const bool ok = outcome.state == agent::AgentOutcome::State::done &&
                  !purchase.is_null() &&
                  purchase.at("price").as_int() == 345 &&
                  fin->data().weak("cash").as_int() == 1000 - 345;
  return ok ? 0 : 1;
}
