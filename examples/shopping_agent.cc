// Shopping agent: the paper's e-commerce motivation.
//
// An agent with digital cash tours three shops looking for a "camera". It
// buys at the first shop that has one in stock, keeps comparing prices,
// and if a later shop is cheaper it *partially rolls back* the earlier
// purchase: the shop's cancel policy may charge a fee or hand out a credit
// note instead of cash (Sec. 3.2's time-dependent reimbursement), so the
// agent's wallet after compensation is equivalent — not identical — to its
// earlier state, which is why the wallet is a weakly reversible object.
#include <iostream>
#include <memory>

#include "agent/agent.h"
#include "agent/node_runtime.h"
#include "agent/platform.h"
#include "agent/step_context.h"
#include "net/network.h"
#include "resource/shop.h"
#include "sim/simulator.h"
#include "util/trace.h"

using namespace mar;

namespace {

serial::Value kv(
    std::initializer_list<std::pair<std::string, serial::Value>> pairs) {
  serial::Value v = serial::Value::empty_map();
  for (auto& [k, val] : pairs) v.set(k, val);
  return v;
}

class ShoppingAgent final : public agent::Agent {
 public:
  ShoppingAgent() {
    data().declare_strong("quotes", serial::Value::empty_list());
    data().declare_weak("cash", std::int64_t{1000});
    data().declare_weak("purchase", serial::Value{});  // {order, price, node}
    // Market knowledge deliberately has NO compensating operations: it is
    // the agent's experience and survives a rollback — that is what stops
    // the agent from making the same bad purchase twice.
    data().declare_weak("best_seen", serial::Value{});  // {node, price}
    data().declare_weak("credit_notes", serial::Value::empty_list());
  }

  std::string type_name() const override { return "shopper"; }

  void run_step(const std::string& step, agent::StepContext& ctx) override {
    if (step == "visit_shop") {
      visit(ctx);
    } else if (step == "decide") {
      decide(ctx);
    } else if (step == "report") {
      report();
    }
  }

 private:
  void visit(agent::StepContext& ctx) {
    auto stock = ctx.invoke("shop", "stock", kv({{"item", "camera"}}));
    if (!stock.is_ok()) return;  // shop doesn't carry cameras
    const auto price = stock.value().at("price").as_int();
    const auto qty = stock.value().at("qty").as_int();
    data().strong("quotes").push_back(kv(
        {{"node", static_cast<std::int64_t>(ctx.node().value())},
         {"price", price},
         {"qty", qty}}));
    std::cout << "[agent] N" << ctx.node().value() << ": camera at " << price
              << " (" << qty << " in stock)\n";
    if (qty == 0) return;

    auto& best = data().weak("best_seen");
    if (best.is_null() || price < best.at("price").as_int()) {
      best = kv({{"node", static_cast<std::int64_t>(ctx.node().value())},
                 {"price", price}});
    }
    // Buy here only if this is the best offer seen so far.
    if (data().weak("purchase").is_null() &&
        price <= best.at("price").as_int()) {
      buy(ctx, price);
    }
  }

  void decide(agent::StepContext& ctx) {
    const auto& purchase = data().weak("purchase");
    const auto& best = data().weak("best_seen");
    if (purchase.is_null() || best.is_null()) return;
    const auto paid = purchase.at("price").as_int();
    const auto best_price = best.at("price").as_int();
    if (paid > best_price + 50) {
      // A considerably better offer exists: undo the purchase. The
      // platform aborts this step, compensates everything back to the
      // savepoint (cancelling the order, minus the shop's fee), and the
      // re-run buys at the best shop — guided by the surviving
      // "best_seen" knowledge.
      std::cout << "[agent] paid " << paid << " but best offer is "
                << best_price << ": rolling back the purchase\n";
      ctx.request_rollback_sub_itinerary();
    }
  }

  void buy(agent::StepContext& ctx, std::int64_t price) {
    auto r = ctx.invoke(
        "shop", "buy",
        kv({{"item", "camera"},
            {"qty", std::int64_t{1}},
            {"payment", data().weak("cash")},
            {"now", static_cast<std::int64_t>(ctx.now_us())}}));
    if (!r.is_ok()) {
      std::cout << "[agent] buy failed: " << r.status() << "\n";
      return;
    }
    data().weak("cash") = data().weak("cash").as_int() - price;
    data().weak("purchase") =
        kv({{"order", r.value().at("order")},
            {"price", price},
            {"node", static_cast<std::int64_t>(ctx.node().value())}});
    std::cout << "[agent] bought camera at N" << ctx.node().value() << " for "
              << price << "\n";
    // Cancelling needs the shop (resource) AND the wallet/credit notes
    // (weak agent state): a mixed compensation entry.
    ctx.log_mixed_compensation("shop", "undo.buy",
                               kv({{"order", r.value().at("order")}}));
  }

  void report() {
    const auto& purchase = data().weak("purchase");
    std::cout << "[agent] final: cash=" << data().weak("cash").as_int();
    if (!purchase.is_null()) {
      std::cout << ", camera from N" << purchase.at("node").as_int()
                << " at " << purchase.at("price").as_int();
    }
    const auto& notes = data().weak("credit_notes").as_list();
    if (!notes.empty()) {
      std::cout << ", " << notes.size() << " credit note(s)";
    }
    std::cout << "\n";
  }
};

}  // namespace

int main() {
  sim::Simulator sim;
  TraceSink trace;
  net::Network net(sim, trace);
  agent::Platform platform(sim, net, trace);

  struct ShopSetup {
    std::uint32_t node;
    std::int64_t qty;
    std::int64_t price;
    std::int64_t fee;
  };
  // N2 sells at 400 (cancel fee 25), N3 is sold out, N4 sells at 300.
  for (const auto& s : std::initializer_list<ShopSetup>{
           {1, 0, 0, 0}, {2, 3, 400, 25}, {3, 0, 450, 0}, {4, 5, 300, 10}}) {
    auto& node = platform.add_node(NodeId(s.node));
    node.resources().add_resource("shop",
                                  std::make_unique<resource::Shop>());
    if (s.price > 0) {
      auto& rm = node.resources();
      auto state = rm.committed_state("shop");
      state.as_map().at("items").set(
          "camera", kv({{"qty", s.qty}, {"price", s.price}}));
      state.set("cancel_fee", s.fee);
      rm.poke_state("shop", std::move(state));
    }
  }

  platform.agent_types().register_type<ShoppingAgent>("shopper");
  platform.compensations().register_op(
      "undo.buy", [](rollback::CompensationContext& ctx) {
        auto r = ctx.invoke(
            "shop", "cancel",
            kv({{"order", ctx.params().at("order")},
                {"now", static_cast<std::int64_t>(ctx.now_us())}}));
        if (!r.is_ok()) return r.status();
        // Integrate the (possibly reduced) refund into the agent's data.
        if (r.value().at("mode").as_string() == "cash") {
          auto& cash = ctx.weak("cash");
          cash = cash.as_int() + r.value().at("refund").as_int();
        } else {
          ctx.weak("credit_notes").push_back(r.value().at("refund"));
        }
        ctx.weak("purchase") = serial::Value{};
        return Status::ok();
      });

  auto agent = std::make_unique<ShoppingAgent>();
  agent::Itinerary tour;
  for (std::uint32_t n = 1; n <= 4; ++n) tour.step("visit_shop", NodeId(n));
  tour.step("decide", NodeId(1));
  tour.step("report", NodeId(1));
  agent::Itinerary main_itinerary;
  main_itinerary.sub(std::move(tour));
  agent->itinerary() = std::move(main_itinerary);

  auto id = platform.launch(std::move(agent));
  if (!id.is_ok()) {
    std::cerr << "launch failed: " << id.status() << "\n";
    return 1;
  }
  platform.run_until_finished(id.value());

  const auto& outcome = platform.outcome(id.value());
  auto fin = platform.decode(outcome.final_agent);
  std::cout << "\n--- summary ---\n"
            << "rollback transfers: " << platform.rollback_transfers() << "\n"
            << "compensation transactions committed: "
            << trace.count(TraceKind::comp_commit) << "\n"
            << "cash: " << fin->data().weak("cash").as_int()
            << " (1000 - 400 + (400-25 refund) - 300 = 675)\n";
  return outcome.state == agent::AgentOutcome::State::done ? 0 : 1;
}
