// Unit tests for hierarchical itineraries (Sec. 4.4.2, Fig. 6) and the
// agent data space (Sec. 4.1).
#include <gtest/gtest.h>

#include "agent/data_space.h"
#include "agent/itinerary.h"
#include "serial/serializable.h"

namespace mar::agent {
namespace {

NodeId n(std::uint32_t i) { return NodeId(i); }

/// Fig. 6's itinerary: I contains SI1, SI2, SI3; SI3 contains s6, SI4
/// (s5, s4) and SI5 (s9, s10); SI1 has s7, s1, s8; SI2 has s2, s3.
/// (Order inside subs is the sequence given here.)
Itinerary fig6() {
  Itinerary si1;
  si1.step("s7", n(7)).step("s1", n(1)).step("s8", n(8));
  Itinerary si2;
  si2.step("s2", n(2)).step("s3", n(3));
  Itinerary si4;
  si4.step("s5", n(5)).step("s4", n(4));
  Itinerary si5;
  si5.step("s9", n(9)).step("s10", n(10));
  Itinerary si3;
  si3.step("s6", n(6)).sub(std::move(si4)).sub(std::move(si5));
  Itinerary main;
  main.sub(std::move(si1)).sub(std::move(si2)).sub(std::move(si3));
  return main;
}

TEST(ItineraryTest, ValidateMainAcceptsFig6) {
  EXPECT_TRUE(fig6().validate_main().is_ok());
}

TEST(ItineraryTest, ValidateMainRejectsTopLevelSteps) {
  Itinerary main;
  main.step("s", n(1));
  EXPECT_EQ(main.validate_main().code(), Errc::invalid_itinerary);
}

TEST(ItineraryTest, ValidateMainRejectsEmpty) {
  EXPECT_EQ(Itinerary{}.validate_main().code(), Errc::invalid_itinerary);
  Itinerary main;
  main.sub(Itinerary{});
  EXPECT_EQ(main.validate_main().code(), Errc::invalid_itinerary);
}

TEST(ItineraryTest, DfsTraversalVisitsAllSteps) {
  const auto it = fig6();
  std::vector<std::string> methods;
  auto pos = it.first_step();
  while (pos.has_value()) {
    methods.push_back(it.step_at(*pos).method);
    pos = it.next_step(*pos);
  }
  EXPECT_EQ(methods, (std::vector<std::string>{"s7", "s1", "s8", "s2", "s3",
                                               "s6", "s5", "s4", "s9",
                                               "s10"}));
}

TEST(ItineraryTest, PositionsAddressNestedSteps) {
  const auto it = fig6();
  // SI3 is entry 2 of main; SI4 is entry 1 of SI3; s4 is entry 1 of SI4.
  const Position s4{2, 1, 1};
  EXPECT_TRUE(it.valid_step(s4));
  EXPECT_EQ(it.step_at(s4).method, "s4");
  EXPECT_FALSE(it.valid_step(Position{2, 1}));   // addresses a sub
  EXPECT_FALSE(it.valid_step(Position{9}));      // out of range
  EXPECT_FALSE(it.valid_step(Position{}));
}

TEST(ItineraryTest, ActiveSubsAreProperPrefixes) {
  const Position s4{2, 1, 1};
  const auto subs = Itinerary::active_subs(s4);
  ASSERT_EQ(subs.size(), 2u);
  EXPECT_EQ(subs[0], (Position{2}));     // SI3, depth 1
  EXPECT_EQ(subs[1], (Position{2, 1}));  // SI4, depth 2
}

TEST(ItineraryTest, EnteredAndExitedSubsAcrossMove) {
  // Move from s4 (in SI4) to s9 (in SI5): exits SI4, enters SI5, stays in
  // SI3 — the scenario discussed in Sec. 4.4.2.
  const Position s4{2, 1, 1};
  const Position s9{2, 2, 0};
  const auto exited = Itinerary::exited_subs(s4, s9);
  ASSERT_EQ(exited.size(), 1u);
  EXPECT_EQ(exited[0], (Position{2, 1}));
  const auto entered = Itinerary::entered_subs(s4, s9);
  ASSERT_EQ(entered.size(), 1u);
  EXPECT_EQ(entered[0], (Position{2, 2}));
}

TEST(ItineraryTest, LaunchEntersAllEnclosingSubs) {
  const auto entered = Itinerary::entered_subs(Position{}, Position{2, 1, 0});
  ASSERT_EQ(entered.size(), 2u);
  EXPECT_EQ(entered[0], (Position{2}));
  EXPECT_EQ(entered[1], (Position{2, 1}));
}

TEST(ItineraryTest, FinishExitsAllSubsInnermostFirst) {
  const auto exited = Itinerary::exited_subs(Position{2, 1, 1}, Position{});
  ASSERT_EQ(exited.size(), 2u);
  EXPECT_EQ(exited[0], (Position{2, 1}));
  EXPECT_EQ(exited[1], (Position{2}));
}

TEST(ItineraryTest, TopLevelBoundaryCrossing) {
  // s8 (SI1, pos {0,2}) -> s2 (SI2, pos {1,0}): SI1 exits, SI2 enters.
  const auto exited = Itinerary::exited_subs(Position{0, 2}, Position{1, 0});
  ASSERT_EQ(exited.size(), 1u);
  EXPECT_EQ(exited[0], (Position{0}));
  const auto entered = Itinerary::entered_subs(Position{0, 2}, Position{1, 0});
  ASSERT_EQ(entered.size(), 1u);
  EXPECT_EQ(entered[0], (Position{1}));
}

TEST(ItineraryTest, AlternativeLocations) {
  Itinerary sub;
  sub.step("s", {n(1), n(2), n(3)});
  EXPECT_EQ(sub.entries()[0].step().primary(), n(1));
  EXPECT_EQ(sub.entries()[0].step().locations.size(), 3u);
}

TEST(ItineraryTest, SerializationRoundTrip) {
  const auto it = fig6();
  auto bytes = serial::to_bytes(it);
  auto back = serial::from_bytes<Itinerary>(bytes);
  // Compare traversals.
  auto pa = it.first_step();
  auto pb = back.first_step();
  while (pa.has_value() && pb.has_value()) {
    EXPECT_EQ(it.step_at(*pa).method, back.step_at(*pb).method);
    EXPECT_EQ(it.step_at(*pa).locations, back.step_at(*pb).locations);
    pa = it.next_step(*pa);
    pb = back.next_step(*pb);
  }
  EXPECT_EQ(pa.has_value(), pb.has_value());
}

TEST(ItineraryTest, ToStringRendersHierarchy) {
  Itinerary sub;
  sub.step("a", n(1));
  Itinerary main;
  main.sub(std::move(sub));
  EXPECT_EQ(main.to_string(), "[[a@N1]]");
}

// --------------------------------------------------------------------------
// DataSpace (Sec. 4.1)
// --------------------------------------------------------------------------

TEST(DataSpaceTest, StrongAndWeakSlots) {
  DataSpace d;
  d.declare_strong("results", serial::Value::empty_list());
  d.declare_weak("cash", std::int64_t{100});
  EXPECT_TRUE(d.has_strong("results"));
  EXPECT_TRUE(d.has_weak("cash"));
  EXPECT_FALSE(d.has_strong("cash"));
  d.weak("cash") = std::int64_t{50};
  EXPECT_EQ(d.weak("cash").as_int(), 50);
}

TEST(DataSpaceTest, DeclarationIsIdempotentAndKindChecked) {
  DataSpace d;
  d.declare_strong("s", std::int64_t{1});
  d.declare_strong("s", std::int64_t{999});  // keeps existing value
  EXPECT_EQ(d.strong("s").as_int(), 1);
  EXPECT_THROW(d.declare_weak("s", serial::Value{}), LogicError);
}

TEST(DataSpaceTest, StrongAccessForbiddenDuringCompensation) {
  // Sec. 4.3: "accessing the strongly reversible objects during the
  // execution of the compensating operations is not allowed".
  DataSpace d;
  d.declare_strong("s", std::int64_t{1});
  d.declare_weak("w", std::int64_t{2});
  d.set_mode(DataSpace::Mode::compensating);
  EXPECT_THROW((void)d.strong("s"), LogicError);
  EXPECT_EQ(d.weak("w").as_int(), 2);  // weak access stays legal
  d.set_mode(DataSpace::Mode::normal);
  EXPECT_EQ(d.strong("s").as_int(), 1);
}

TEST(DataSpaceTest, ImageAndRestore) {
  DataSpace d;
  d.declare_strong("a", std::int64_t{1});
  d.declare_strong("b", std::string("x"));
  const auto image = d.strong_image();
  d.strong("a") = std::int64_t{42};
  d.strong("b") = std::string("changed");
  d.restore_strong(image);
  EXPECT_EQ(d.strong("a").as_int(), 1);
  EXPECT_EQ(d.strong("b").as_string(), "x");
}

TEST(DataSpaceTest, SerializationRoundTrip) {
  DataSpace d;
  d.declare_strong("a", std::int64_t{1});
  d.declare_weak("w", std::string("v"));
  auto bytes = serial::to_bytes(d);
  serial::Decoder dec(bytes);
  DataSpace back;
  back.deserialize(dec);
  EXPECT_EQ(back.strong("a").as_int(), 1);
  EXPECT_EQ(back.weak("w").as_string(), "v");
}

TEST(DataSpaceTest, ModeIsRuntimeOnlyNotSerialized) {
  DataSpace d;
  d.declare_strong("a", std::int64_t{1});
  d.set_mode(DataSpace::Mode::compensating);
  auto bytes = serial::to_bytes(d);
  serial::Decoder dec(bytes);
  DataSpace back;
  back.deserialize(dec);
  EXPECT_EQ(back.mode(), DataSpace::Mode::normal);
}

}  // namespace
}  // namespace mar::agent
