// Tests for the ConTract-style centralized baseline (Sec. 5 related work):
// remote resource access by RPC, per-step distributed transactions,
// reverse-order compensation, and equivalence with the mobile-agent
// execution of the same workload.
#include <gtest/gtest.h>

#include "contract/contract.h"
#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using contract::ContractManager;
using contract::ScriptStep;
using harness::TestWorld;
using serial::Value;

Value params(std::initializer_list<std::pair<std::string, Value>> kv) {
  Value v = Value::empty_map();
  for (auto& [k, val] : kv) v.set(k, val);
  return v;
}

struct ContractFixture : ::testing::Test {
  TestWorld w{agent::PlatformConfig{}, /*node_count=*/4, /*seed=*/9};
  storage::StableStorage manager_stable;
  std::unique_ptr<ContractManager> manager;
  static constexpr std::uint32_t kManagerNode = 99;

  void SetUp() override {
    harness::register_workload(w.platform);  // compensation ops
    manager = std::make_unique<ContractManager>(
        NodeId(kManagerNode), w.sim, w.net, manager_stable,
        w.platform.compensations());
    w.net.add_node(NodeId(kManagerNode), [this](const net::Message& m) {
      manager->on_message(m);
    });
  }

  ScriptStep withdraw_step(int node) {
    ScriptStep s;
    s.node = TestWorld::n(node);
    s.resource = "bank";
    s.op = "withdraw";
    s.params = params({{"account", Value("acct")}, {"amount", Value(100)}});
    s.comp_op = "comp.deposit";
    s.comp_params =
        params({{"account", Value("acct")}, {"amount", Value(100)}});
    return s;
  }
};

TEST_F(ContractFixture, ScriptExecutesRemotely) {
  w.open_account(1, "acct", 500);
  w.open_account(2, "acct", 500);
  Status result(Errc::protocol_error, "never called");
  manager->run({withdraw_step(1), withdraw_step(2)},
               [&](Status s) { result = s; });
  w.sim.run();
  EXPECT_TRUE(result.is_ok());
  EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 400);
  EXPECT_EQ(resource::Bank::balance_in(w.committed(2, "bank"), "acct"), 400);
  EXPECT_EQ(manager->stats().steps_committed, 2u);
  EXPECT_TRUE(manager->txm().idle());
}

TEST_F(ContractFixture, RollbackCompensatesInReverseOrder) {
  w.open_account(1, "acct", 500);
  w.open_account(2, "acct", 500);
  bool ran = false;
  manager->run({withdraw_step(1), withdraw_step(2)},
               [&](Status) { ran = true; });
  w.sim.run();
  ASSERT_TRUE(ran);
  bool rolled = false;
  manager->rollback(2, [&](Status s) {
    rolled = s.is_ok();
  });
  w.sim.run();
  EXPECT_TRUE(rolled);
  EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 500);
  EXPECT_EQ(resource::Bank::balance_in(w.committed(2, "bank"), "acct"), 500);
  EXPECT_EQ(manager->stats().steps_compensated, 2u);
  // Forward execution can resume after the partial rollback.
  bool reran = false;
  manager->run({withdraw_step(1)}, [&](Status s) { reran = s.is_ok(); });
  w.sim.run();
  EXPECT_TRUE(reran);
  EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 400);
}

TEST_F(ContractFixture, StepsWithoutCompensationSkipRpc) {
  w.publish(1, "info", Value("x"));
  ScriptStep read;
  read.node = TestWorld::n(1);
  read.resource = "dir";
  read.op = "lookup";
  read.params = params({{"key", Value("info")}});
  bool ran = false;
  manager->run({read}, [&](Status s) { ran = s.is_ok(); });
  w.sim.run();
  ASSERT_TRUE(ran);
  const auto rpcs_before = manager->stats().rpcs;
  bool rolled = false;
  manager->rollback(1, [&](Status s) { rolled = s.is_ok(); });
  w.sim.run();
  EXPECT_TRUE(rolled);
  EXPECT_EQ(manager->stats().rpcs, rpcs_before);  // nothing to compensate
}

TEST_F(ContractFixture, SurvivesResourceNodeCrash) {
  w.open_account(1, "acct", 500);
  w.faults.crash_at(TestWorld::n(1), 1'000, 400'000);
  bool ran = false;
  manager->run({withdraw_step(1)}, [&](Status s) { ran = s.is_ok(); });
  w.sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 400);
}

TEST_F(ContractFixture, FailingOperationRetriesUntilItSucceeds) {
  // Account is underfunded at first; money arrives later.
  w.open_account(1, "acct", 0);
  bool ran = false;
  manager->run({withdraw_step(1)}, [&](Status s) { ran = s.is_ok(); });
  w.sim.schedule_at(300'000, [&] {
    auto state = w.committed(1, "bank");
    state.as_map().at("accounts").as_map().at("acct").set("balance",
                                                          std::int64_t{150});
    w.platform.node(TestWorld::n(1)).resources().poke_state(
        "bank", std::move(state));
  });
  w.sim.run();
  EXPECT_TRUE(ran);
  EXPECT_GE(manager->stats().tx_aborts, 1u);
  EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 50);
}

// The central baseline and the mobile agent must compute the same
// committed resource state for the same logical workload.
TEST_F(ContractFixture, CentralAndMobileAgreeOnFinalState) {
  for (int n = 1; n <= 3; ++n) w.open_account(n, "acct", 1000);
  // Central: withdraw on N1..N3.
  bool ran = false;
  manager->run({withdraw_step(1), withdraw_step(2), withdraw_step(3)},
               [&](Status s) { ran = s.is_ok(); });
  w.sim.run();
  ASSERT_TRUE(ran);

  // Mobile: a second identical pass via an agent.
  auto agent = std::make_unique<harness::WorkloadAgent>();
  agent::Itinerary sub;
  for (int n = 1; n <= 3; ++n) sub.step("withdraw", TestWorld::n(n));
  agent::Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);

  for (int n = 1; n <= 3; ++n) {
    EXPECT_EQ(resource::Bank::balance_in(w.committed(n, "bank"), "acct"), 800)
        << "node " << n;
  }
}

}  // namespace
}  // namespace mar
