// LockAudit: the debug lock-order / wait-for-graph validator.
//
// Three layers of coverage: (1) constructed wait-for graphs — injected 2-
// and 3-transaction cycles must be detected at the closing edge and
// rendered with every participant's held keys; (2) false-positive checks —
// disjoint key sets and order-consistent workloads must stay silent; (3) a
// seed-randomized contended world under the default per_key config with
// the audit armed, asserting the engine's no-wait locking never produces a
// wait-for cycle (the gate ROADMAP item 1's blocking waits must keep
// green).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "harness/agents.h"
#include "harness/world.h"
#include "resource/bank.h"
#include "resource/lock_audit.h"
#include "resource/resource_manager.h"
#include "util/rng.h"

namespace mar {
namespace {

using agent::AgentOutcome;
using agent::Itinerary;
using harness::TestWorld;
using resource::LockAudit;
using resource::LockAuditError;

LockAudit::Config lenient() {
  LockAudit::Config c;
  c.fail_on_cycle = false;
  c.fail_on_inversion = false;
  return c;
}

TEST(LockAuditTest, TwoTxCycleDetectedAtClosingEdge) {
  LockAudit audit(lenient());
  const TxId a(1), b(2);
  audit.on_acquire(a, "bank", "accounts/alice");
  audit.on_acquire(b, "bank", "accounts/bob");

  // a would block on b: no cycle yet.
  EXPECT_FALSE(audit.on_conflict(a, b).has_value());
  // b would block on a: closes b -> a -> b.
  const auto cycle = audit.on_conflict(b, a);
  ASSERT_TRUE(cycle.has_value());
  // Waiter-first, closed back on the waiter: b -> a -> b.
  EXPECT_EQ(cycle->size(), 3u);
  EXPECT_EQ(cycle->front(), b);
  EXPECT_EQ(cycle->back(), b);
  EXPECT_EQ(audit.stats().wfg_cycles, 1u);

  // The rendered cycle names both transactions and their held keys.
  const auto text = audit.describe_cycle(*cycle);
  EXPECT_NE(text.find("wait-for-graph cycle"), std::string::npos);
  EXPECT_NE(text.find("tx 1"), std::string::npos);
  EXPECT_NE(text.find("tx 2"), std::string::npos);
  EXPECT_NE(text.find("bank:accounts/alice"), std::string::npos);
  EXPECT_NE(text.find("bank:accounts/bob"), std::string::npos);
}

TEST(LockAuditTest, ThreeTxCycleDetected) {
  LockAudit audit(lenient());
  const TxId a(1), b(2), c(3);
  audit.on_acquire(a, "bank", "accounts/a");
  audit.on_acquire(b, "shop", "items/x");
  audit.on_acquire(c, "exchange", "rates/EUR/USD");

  EXPECT_FALSE(audit.on_conflict(a, b).has_value());
  EXPECT_FALSE(audit.on_conflict(b, c).has_value());
  const auto cycle = audit.on_conflict(c, a);
  ASSERT_TRUE(cycle.has_value());
  // Waiter-first, closed back on the waiter: c -> a -> b -> c.
  EXPECT_EQ(cycle->size(), 4u);
  EXPECT_EQ((*cycle)[0], c);
  EXPECT_EQ((*cycle)[1], a);
  EXPECT_EQ((*cycle)[2], b);
  EXPECT_EQ((*cycle)[3], c);
  EXPECT_EQ(audit.stats().wfg_cycles, 1u);
}

TEST(LockAuditTest, DefaultConfigHardFailsOnCycle) {
  LockAudit audit;  // default: fail_on_cycle
  const TxId a(7), b(9);
  audit.on_acquire(a, "bank", "accounts/alice");
  audit.on_acquire(b, "bank", "accounts/bob");
  audit.on_conflict(a, b);
  try {
    audit.on_conflict(b, a);
    FAIL() << "cycle did not hard-fail";
  } catch (const LockAuditError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wait-for-graph cycle"), std::string::npos);
    EXPECT_NE(what.find("tx 7"), std::string::npos);
    EXPECT_NE(what.find("tx 9"), std::string::npos);
  }
}

TEST(LockAuditTest, ReleaseBreaksWaitEdgesBothDirections) {
  LockAudit audit(lenient());
  const TxId a(1), b(2);
  audit.on_acquire(a, "bank", "accounts/alice");
  audit.on_acquire(b, "bank", "accounts/bob");
  audit.on_conflict(a, b);
  // a aborts (the engine's no-wait response) — its would-block edge dies
  // with it, so the reverse conflict closes nothing.
  audit.on_release(a);
  EXPECT_FALSE(audit.on_conflict(b, a).has_value());
  EXPECT_EQ(audit.stats().wfg_cycles, 0u);
  EXPECT_TRUE(audit.held(a).empty());
}

TEST(LockAuditTest, DisjointKeySetsRaiseNothing) {
  LockAudit audit(lenient());
  const TxId a(1), b(2);
  // Two transactions over disjoint keys, acquired in "opposite" orders —
  // no shared key, no order edge between the groups, nothing to invert.
  audit.on_acquire(a, "bank", "accounts/a1");
  audit.on_acquire(a, "bank", "accounts/a2");
  audit.on_acquire(b, "shop", "items/x2");
  audit.on_acquire(b, "shop", "items/x1");
  EXPECT_EQ(audit.stats().order_inversions, 0u);
  EXPECT_EQ(audit.stats().wfg_cycles, 0u);
  EXPECT_FALSE(audit.first_inversion().has_value());
}

TEST(LockAuditTest, OrderInversionDetectedAndStrictModeThrows) {
  {
    LockAudit audit(lenient());
    const TxId a(1), b(2);
    // a takes alice then bob; b takes bob then alice: opposite orders on
    // the same pair — the classic deadlock recipe under blocking waits.
    audit.on_acquire(a, "bank", "accounts/alice");
    audit.on_acquire(a, "bank", "accounts/bob");
    audit.on_release(a);
    audit.on_acquire(b, "bank", "accounts/bob");
    const auto witness = audit.on_acquire(b, "bank", "accounts/alice");
    ASSERT_TRUE(witness.has_value());
    EXPECT_NE(witness->find("lock-order inversion"), std::string::npos);
    EXPECT_EQ(audit.stats().order_inversions, 1u);
    ASSERT_TRUE(audit.first_inversion().has_value());
  }
  {
    LockAudit::Config strict;
    strict.fail_on_inversion = true;
    LockAudit audit(strict);
    const TxId a(1), b(2);
    audit.on_acquire(a, "bank", "accounts/alice");
    audit.on_acquire(a, "bank", "accounts/bob");
    audit.on_release(a);
    audit.on_acquire(b, "bank", "accounts/bob");
    EXPECT_THROW(audit.on_acquire(b, "bank", "accounts/alice"),
                 LockAuditError);
  }
}

TEST(LockAuditTest, ConsistentOrderIsNotAnInversion) {
  LockAudit audit(lenient());
  // Many transactions acquiring the same keys in ONE global order.
  for (std::uint64_t t = 1; t <= 8; ++t) {
    const TxId tx(t);
    audit.on_acquire(tx, "bank", "accounts/alice");
    audit.on_acquire(tx, "bank", "accounts/bob");
    audit.on_acquire(tx, "shop", "items/x");
    audit.on_release(tx);
  }
  EXPECT_EQ(audit.stats().order_inversions, 0u);
}

TEST(LockAuditTest, ResetClearsGraphsButKeepsStats) {
  LockAudit audit(lenient());
  const TxId a(1), b(2);
  audit.on_acquire(a, "bank", "accounts/alice");
  audit.on_acquire(b, "bank", "accounts/bob");
  audit.on_conflict(a, b);
  audit.on_conflict(b, a);
  EXPECT_EQ(audit.stats().wfg_cycles, 1u);
  audit.reset();  // crash: lock state is volatile
  EXPECT_TRUE(audit.held(a).empty());
  // Graphs are gone — the same edges close no cycle on a fresh epoch
  // until both are re-reported...
  audit.on_acquire(a, "bank", "accounts/alice");
  audit.on_acquire(b, "bank", "accounts/bob");
  EXPECT_FALSE(audit.on_conflict(a, b).has_value());
  // ...but cumulative stats survived the crash.
  EXPECT_EQ(audit.stats().wfg_cycles, 1u);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

TEST(LockAuditTest, ResourceManagerMirrorsGrantsAndConflicts) {
  storage::StableStorage stable;
  resource::ResourceManager rm(stable);
  rm.set_granularity(resource::LockGranularity::per_key);
  rm.enable_lock_audit(lenient());
  rm.add_resource("bank", std::make_unique<resource::Bank>());
  serial::Value state = rm.committed_state("bank");
  for (const auto* acct : {"a1", "a2"}) {
    serial::Value acc = serial::Value::empty_map();
    acc.set("balance", std::int64_t{100});
    acc.set("overdraft", false);
    state.as_map().at("accounts").set(acct, std::move(acc));
  }
  rm.poke_state("bank", std::move(state));

  auto deposit = [&](TxId tx, const std::string& acct) {
    serial::Value p = serial::Value::empty_map();
    p.set("account", serial::Value(acct));
    p.set("amount", std::int64_t{10});
    return rm.invoke(tx, "bank", "deposit", p);
  };

  const TxId t1(101), t2(102);
  ASSERT_TRUE(deposit(t1, "a1").is_ok());
  ASSERT_TRUE(deposit(t2, "a2").is_ok());
  const auto* audit = rm.lock_audit();
  ASSERT_NE(audit, nullptr);
  EXPECT_EQ(audit->held(t1).count("bank:accounts/a1"), 1u);
  EXPECT_EQ(audit->held(t2).count("bank:accounts/a2"), 1u);

  // t2 collides with t1's account: the would-block edge is recorded.
  const auto before = audit->stats().wait_edges;
  EXPECT_FALSE(deposit(t2, "a1").is_ok());
  EXPECT_EQ(audit->stats().wait_edges, before + 1);

  // Commit/abort release the audit's view of the held sets.
  rm.prepare(t1);
  rm.commit(t1);
  rm.abort(t2);
  EXPECT_TRUE(audit->held(t1).empty());
  EXPECT_TRUE(audit->held(t2).empty());
  EXPECT_EQ(audit->stats().wfg_cycles, 0u);
}

/// Contended randomized fleet under the default per_key config with the
/// audit armed: zipf-skewed bank_hot draws across 4 slots produce real
/// lock conflicts, and the no-wait engine must never close a wait-for
/// cycle — on any seed.
struct AuditRun {
  int done = 0;
  std::uint64_t acquires = 0;
  std::uint64_t wait_edges = 0;
  std::uint64_t cycles = 0;
};

AuditRun run_contended(std::uint64_t seed) {
  constexpr int kFleet = 8;
  constexpr int kSteps = 6;
  constexpr int kAccounts = 4;  // few accounts -> hot keys

  agent::PlatformConfig cfg;  // per_key + group commit: today's defaults
  cfg.node_concurrency = 4;
  cfg.lock_audit = true;  // force on regardless of build type
  TestWorld w(cfg, /*node_count=*/1, seed);
  harness::register_workload(w.platform);
  for (int a = 0; a < kAccounts; ++a) {
    w.open_account(1, "a" + std::to_string(a), 0);
  }

  Rng rng(seed * 7919 + 17);
  std::vector<AgentId> ids;
  for (int a = 0; a < kFleet; ++a) {
    auto ag = std::make_unique<harness::WorkloadAgent>();
    Itinerary tour;
    for (int s = 0; s < kSteps; ++s) tour.step("bank_hot", TestWorld::n(1));
    Itinerary main_it;
    main_it.sub(std::move(tour));
    ag->itinerary() = std::move(main_it);
    // hot_accounts entries are integer indices: bank_hot deposits into
    // "a<idx>". Skewed draws: half the steps hit account 0.
    serial::Value accounts = serial::Value::empty_list();
    for (int s = 0; s < kSteps; ++s) {
      const auto acct = rng.next_bool(0.5)
                            ? std::int64_t{0}
                            : static_cast<std::int64_t>(
                                  rng.next_below(kAccounts));
      accounts.push_back(serial::Value(acct));
    }
    ag->set_config_value("hot_accounts", std::move(accounts));
    auto r = w.platform.launch(std::move(ag));
    EXPECT_TRUE(r.is_ok());
    ids.push_back(r.value());
  }

  AuditRun run;
  EXPECT_TRUE(w.platform.run_until_all_finished(ids));
  for (const auto id : ids) {
    if (w.platform.outcome(id).state == AgentOutcome::State::done) ++run.done;
  }
  const auto* audit = w.platform.node(TestWorld::n(1)).resources().lock_audit();
  EXPECT_NE(audit, nullptr);
  if (audit != nullptr) {
    run.acquires = audit->stats().acquires;
    run.wait_edges = audit->stats().wait_edges;
    run.cycles = audit->stats().wfg_cycles;
  }
  return run;
}

TEST(LockAuditTest, RandomizedContendedRunsReportNoCycles) {
  for (const std::uint64_t seed : {11ull, 23ull, 47ull}) {
    const auto run = run_contended(seed);
    EXPECT_EQ(run.done, 8) << "seed " << seed;
    EXPECT_GT(run.acquires, 0u) << "seed " << seed;
    // The skewed draws must actually contend, or the no-cycle assertion
    // is vacuous.
    EXPECT_GT(run.wait_edges, 0u) << "seed " << seed;
    EXPECT_EQ(run.cycles, 0u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mar
