// End-to-end observability (src/util/metrics.h, src/util/span.h):
// log-bucketed histogram boundaries and quantiles, deterministic
// metrics snapshots across expt::run_worlds thread counts, causal hop
// tracing across a 3-node migration, and the crash flight recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agent/agent.h"
#include "expt/parallel_worlds.h"
#include "harness/agents.h"
#include "harness/world.h"
#include "util/metrics.h"
#include "util/span.h"

namespace mar {
namespace {

using agent::AgentOutcome;
using agent::Itinerary;
using agent::PlatformConfig;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

// --- Histogram bucket boundaries and quantiles -------------------------

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket 0 holds exactly 0; bucket i (i >= 1) holds [2^(i-1), 2^i).
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  h.record(255);
  h.record(256);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 255 + 256);
  EXPECT_EQ(h.bucket(0), 1u);  // {0}
  EXPECT_EQ(h.bucket(1), 1u);  // {1}
  EXPECT_EQ(h.bucket(2), 2u);  // {2, 3}
  EXPECT_EQ(h.bucket(3), 1u);  // {4}
  EXPECT_EQ(h.bucket(8), 1u);  // [128, 256) -> 255
  EXPECT_EQ(h.bucket(9), 1u);  // [256, 512) -> 256
  for (int i : {4, 5, 6, 7, 10, 63}) {
    EXPECT_EQ(h.bucket(i), 0u) << "bucket " << i;
  }
}

TEST(HistogramTest, PercentilesAreMonotoneAndBucketBounded) {
  Histogram h;
  // 90 fast ops at ~100us, 10 slow at ~100ms: p50 must land in the
  // fast bucket, p99 in the slow one, and quantiles must be monotone.
  for (int i = 0; i < 90; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(100'000);
  HistogramSnapshot snap;
  snap.count = h.count();
  snap.sum = h.sum();
  for (int i = 0; i < Histogram::kBuckets; ++i) snap.buckets[i] = h.bucket(i);
  const auto p50 = snap.percentile(0.50);
  const auto p95 = snap.percentile(0.95);
  const auto p99 = snap.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // 100 has bit_width 7 -> bucket [64, 128); 100000 -> [65536, 131072).
  EXPECT_GE(p50, 64u);
  EXPECT_LT(p50, 128u);
  EXPECT_GE(p99, 65'536u);
  EXPECT_LT(p99, 131'072u);
}

TEST(HistogramTest, SnapshotMergeSumsBucketwise) {
  Histogram a;
  Histogram b;
  a.record(5);
  a.record(9);
  b.record(5);
  auto mk = [](const Histogram& h) {
    HistogramSnapshot s;
    s.count = h.count();
    s.sum = h.sum();
    for (int i = 0; i < Histogram::kBuckets; ++i) s.buckets[i] = h.bucket(i);
    return s;
  };
  auto sa = mk(a);
  sa.merge(mk(b));
  EXPECT_EQ(sa.count, 3u);
  EXPECT_EQ(sa.sum, 19u);
  EXPECT_EQ(sa.buckets[3], 2u);  // [4,8): both 5s
  EXPECT_EQ(sa.buckets[4], 1u);  // [8,16): the 9
}

// --- Snapshot determinism across run_worlds thread counts --------------

/// `hops` migrating steps over `node_count` nodes after one warm-up.
Itinerary ring(int hops, int node_count) {
  Itinerary sub;
  sub.step("spend_logged", TestWorld::n(1));
  for (int h = 0; h < hops; ++h) {
    sub.step("spend_logged", TestWorld::n((h % node_count) + 1));
  }
  Itinerary main_it;
  main_it.sub(std::move(sub));
  return main_it;
}

std::string snapshot_json_for_seed(std::uint64_t seed) {
  PlatformConfig cfg;
  cfg.node_concurrency = 2;
  TestWorld w(cfg, /*node_count=*/3, seed);
  register_workload(w.platform);
  std::vector<AgentId> ids;
  for (int a = 0; a < 3; ++a) {
    auto ag = std::make_unique<WorkloadAgent>();
    ag->itinerary() = ring(6, 3);
    ag->set_config("param_bytes", 48);
    auto r = w.platform.launch(std::move(ag));
    EXPECT_TRUE(r.is_ok());
    ids.push_back(r.value());
  }
  EXPECT_TRUE(w.platform.run_until_all_finished(ids));
  // Drain coordinator-side commit callbacks so late histogram records
  // land before the snapshot (the last outcome arrives before the
  // penultimate hop's commit callback fires).
  w.sim.run_until(w.sim.now() + 1'000'000);
  return w.platform.metrics_snapshot().to_json();
}

TEST(MetricsSnapshotTest, DeterministicAcrossWorldThreadCounts) {
  const auto seeds = expt::replicate_seeds(99, 6);
  auto job = [&seeds](std::size_t i) {
    return snapshot_json_for_seed(seeds[i]);
  };
  const auto t1 = expt::run_worlds(seeds.size(), job, 1);
  const auto t3 = expt::run_worlds(seeds.size(), job, 3);
  const auto t8 = expt::run_worlds(seeds.size(), job, 8);
  EXPECT_EQ(t1, t3);
  EXPECT_EQ(t1, t8);
  // The snapshot is non-trivial: the registry names the absorbed stats
  // structs and the latency histograms.
  EXPECT_NE(t1[0].find("\"storage.bytes_written\""), std::string::npos);
  EXPECT_NE(t1[0].find("\"ship.delta_ships\""), std::string::npos);
  EXPECT_NE(t1[0].find("\"tx.coordinator_syncs\""), std::string::npos);
  EXPECT_NE(t1[0].find("\"hop.latency_us\""), std::string::npos);
  EXPECT_NE(t1[0].find("\"step.latency_us\""), std::string::npos);
}

// --- Causal hop tracing across a 3-node migration ----------------------

TEST(TraceTest, HopChainSpansThreeNodesUnderOneTraceId) {
  PlatformConfig cfg;
  TestWorld w(cfg, /*node_count=*/3, /*seed=*/21);
  register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ring(5, 3);  // N1, then N1 N2 N3 N1 N2
  ag->set_config("param_bytes", 48);
  auto r = w.platform.launch(std::move(ag));
  ASSERT_TRUE(r.is_ok());
  const auto id = r.value();
  ASSERT_TRUE(w.platform.run_until_finished(id));
  EXPECT_EQ(w.platform.outcome(id).state, AgentOutcome::State::done);
  w.sim.run_until(w.sim.now() + 1'000'000);  // close the final hop spans

  auto hops = w.platform.spans().of_kind(SpanKind::hop);
  std::erase_if(hops, [&](const Span& s) { return s.trace_id != id.value(); });
  ASSERT_EQ(hops.size(), 6u);  // one hop span per executed step
  std::sort(hops.begin(), hops.end(), [](const Span& a, const Span& b) {
    return a.begin_us < b.begin_us;
  });
  // Exactly one root (the launch hop), every later hop parented to its
  // predecessor's span id — the causal chain crosses node boundaries.
  EXPECT_EQ(hops[0].parent, 0u);
  std::vector<std::uint32_t> visited;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    EXPECT_EQ(hops[i].trace_id, id.value());
    EXPECT_EQ(hops[i].agent, id.value());
    if (i > 0) {
      EXPECT_EQ(hops[i].parent, hops[i - 1].span_id)
          << "hop " << i << " breaks the causal chain";
    }
    visited.push_back(hops[i].node);
  }
  const std::vector<std::uint32_t> want = {1, 1, 2, 3, 1, 2};
  EXPECT_EQ(visited, want);

  // Phase spans tile each hop exactly: queue_wait + lock_wait +
  // step_exec + commit_flush == hop duration (no contention here, so
  // there are no gaps to forgive).
  const auto all = w.platform.spans().spans();
  for (const auto& hop : hops) {
    std::uint64_t covered = 0;
    bool saw_exec = false;
    for (const auto& s : all) {
      if (s.parent != hop.span_id) continue;
      switch (s.kind) {
        case SpanKind::queue_wait:
        case SpanKind::lock_wait:
        case SpanKind::step_exec:
        case SpanKind::commit_flush:
          EXPECT_GE(s.begin_us, hop.begin_us);
          EXPECT_LE(s.end_us, hop.end_us);
          covered += s.end_us - s.begin_us;
          saw_exec = saw_exec || s.kind == SpanKind::step_exec;
          break;
        default:
          break;  // ship detail nests under the *next* hop's parent
      }
    }
    EXPECT_TRUE(saw_exec) << "hop span " << hop.span_id;
    EXPECT_EQ(covered, hop.end_us - hop.begin_us)
        << "hop span " << hop.span_id << " phases do not tile it";
  }

  // Migrations leave wire spans whose note records the payload size.
  const auto wires = w.platform.spans().of_kind(SpanKind::wire);
  EXPECT_GE(wires.size(), 4u);  // one per inter-node move
  for (const auto& s : wires) {
    EXPECT_EQ(s.trace_id, id.value());
    EXPECT_NE(s.note.find("bytes"), std::string::npos);
  }
}

TEST(TraceTest, ContendedFleetEmitsLockWaitSpansOnResumedHops) {
  // Slots contending on one resource abort and retry: the aborted
  // attempt stashes its open hop span and the re-claim must resume the
  // SAME span (not open a second root) and emit a lock_wait child.
  PlatformConfig cfg;
  cfg.node_concurrency = 4;
  cfg.lock_granularity = resource::LockGranularity::instance;
  TestWorld w(cfg, /*node_count=*/1, /*seed=*/3);
  register_workload(w.platform);
  w.publish(1, "info", serial::Value("x"));
  std::vector<AgentId> ids;
  for (int a = 0; a < 8; ++a) {
    auto ag = std::make_unique<WorkloadAgent>();
    Itinerary tour;
    for (int s = 0; s < 6; ++s) tour.step("collect", TestWorld::n(1));
    Itinerary main_it;
    main_it.sub(std::move(tour));
    ag->itinerary() = std::move(main_it);
    auto r = w.platform.launch(std::move(ag));
    ASSERT_TRUE(r.is_ok());
    ids.push_back(r.value());
  }
  ASSERT_TRUE(w.platform.run_until_all_finished(ids));
  w.sim.run_until(w.sim.now() + 1'000'000);
  ASSERT_GT(w.platform.lock_conflict_aborts(), 0u);

  const auto lock_waits = w.platform.spans().of_kind(SpanKind::lock_wait);
  ASSERT_FALSE(lock_waits.empty());
  const auto hops = w.platform.spans().spans();
  for (const auto& lw : lock_waits) {
    // Every lock_wait parents to a hop span of the same trace.
    bool found = false;
    for (const auto& h : hops) {
      if (h.kind != SpanKind::hop || h.span_id != lw.parent) continue;
      EXPECT_EQ(h.trace_id, lw.trace_id);
      found = true;
    }
    EXPECT_TRUE(found) << "lock_wait span " << lw.span_id
                       << " has no hop parent";
  }
  // One hop span per executed step per agent — a resumed claim must not
  // have opened a duplicate root.
  for (const auto id : ids) {
    std::size_t n = 0;
    for (const auto& h : hops) {
      if (h.kind == SpanKind::hop && h.trace_id == id.value()) ++n;
    }
    EXPECT_EQ(n, 6u) << "agent " << id.value();
  }
}

TEST(TraceTest, DisablingTracingRecordsNoSpans) {
  PlatformConfig cfg;
  cfg.span_tracing = false;
  TestWorld w(cfg, /*node_count=*/2, /*seed=*/5);
  register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ring(3, 2);
  auto r = w.platform.launch(std::move(ag));
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(r.value()));
  w.sim.run_until(w.sim.now() + 1'000'000);
  EXPECT_EQ(w.platform.spans().size(), 0u);
}

// --- Crash flight recorder ---------------------------------------------

TEST(FlightRecorderTest, CrashDumpsNodeRingWithHeader) {
  const std::string path =
      testing::TempDir() + "mar_observability_flight.jsonl";
  std::remove(path.c_str());

  PlatformConfig cfg;
  cfg.flight_dump_path = path;
  cfg.discard_log_on_top_level = false;
  TestWorld w(cfg, /*node_count=*/2, /*seed=*/31);
  register_workload(w.platform);
  // Crash node 2 early in the run (it recovers 10ms later); the runtime
  // must append node 2's recent span ring to the dump path.
  w.faults.crash_at(TestWorld::n(2), 2'000, 10'000);
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ring(8, 2);
  ag->set_config("param_bytes", 64);
  auto r = w.platform.launch(std::move(ag));
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(r.value()));
  EXPECT_EQ(w.platform.outcome(r.value()).state, AgentOutcome::State::done);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no flight dump at " << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_FALSE(lines.empty());
  // Header line first: names the event, the node and the reason.
  EXPECT_NE(lines[0].find("\"event\": \"flight_dump\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"node\": 2"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"reason\": \"crash\""), std::string::npos)
      << lines[0];
  // Span lines follow — each a JSONL span with the standard fields.
  bool saw_span = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].find("\"event\"") != std::string::npos) continue;
    EXPECT_NE(lines[i].find("\"span_id\""), std::string::npos) << lines[i];
    EXPECT_NE(lines[i].find("\"kind\""), std::string::npos) << lines[i];
    saw_span = true;
  }
  EXPECT_TRUE(saw_span) << "flight dump has a header but no spans";
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, RingCapacityBoundsRetainedSpans) {
  PlatformConfig cfg;
  cfg.flight_recorder_spans = 16;
  TestWorld w(cfg, /*node_count=*/2, /*seed=*/9);
  register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  ag->itinerary() = ring(10, 2);
  auto r = w.platform.launch(std::move(ag));
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(r.value()));
  w.sim.run_until(w.sim.now() + 1'000'000);
  // 11 hops produce > 16 spans per node overall; the per-node rings
  // must stay bounded at the configured capacity.
  EXPECT_LE(w.platform.spans().size(), 2u * 16u);
  EXPECT_GT(w.platform.spans().size(), 0u);
}

}  // namespace
}  // namespace mar
