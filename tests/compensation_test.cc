// Tests of the Sec. 3 formalism: histories, commutation, soundness, and
// the compensation-type classification — using the paper's own examples.
#include <gtest/gtest.h>

#include "compensation/history.h"
#include "util/rng.h"

namespace mar::compensation {
namespace {

using serial::Value;

// The paper's running example: a bank account in the augmented state.
State account_state(std::int64_t balance) {
  State s = Value::empty_map();
  s.set("balance", balance);
  return s;
}

Operation deposit(std::int64_t x) {
  return Operation{"deposit(" + std::to_string(x) + ")",
                   [x](const State& s) {
                     State out = s;
                     out.set("balance", s.at("balance").as_int() + x);
                     return out;
                   }};
}

Operation withdraw(std::int64_t x) { return deposit(-x); }

/// The paper's "very simple transaction that does not commute": act on the
/// current balance ("if I have enough money, then ...").
Operation conditional_spend(std::int64_t threshold) {
  return Operation{"cond_spend",
                   [threshold](const State& s) {
                     State out = s;
                     if (s.at("balance").as_int() >= threshold) {
                       out.set("balance", s.at("balance").as_int() - threshold);
                       out.set("bought", true);
                     }
                     return out;
                   }};
}

std::vector<State> samples() {
  std::vector<State> out;
  // Includes a balance in [15, 35): the only region where withdraw(20)
  // and conditional_spend(15) actually disagree about the outcome.
  for (std::int64_t b : {-50, 0, 10, 20, 100, 1000}) {
    out.push_back(account_state(b));
  }
  return out;
}

TEST(HistoryTest, AppliesInOrder) {
  History h{deposit(10), withdraw(3)};
  EXPECT_EQ(h.apply(account_state(0)).at("balance").as_int(), 7);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.to_string(), "<deposit(10), deposit(-3)>");
}

TEST(HistoryTest, ThenConcatenates) {
  History a{deposit(1)};
  History b{deposit(2)};
  EXPECT_EQ(a.then(b).apply(account_state(0)).at("balance").as_int(), 3);
}

TEST(HistoryTest, ReversedReversesOrder) {
  History h{deposit(1), deposit(2), deposit(4)};
  const auto r = h.reversed();
  EXPECT_EQ(r.ops()[0].name, "deposit(4)");
  EXPECT_EQ(r.ops()[2].name, "deposit(1)");
}

TEST(CommuteTest, DepositAndWithdrawCommuteOnOverdraftableAccount) {
  // Sec. 3.2: "If the account may be overdrawn, these two operations
  // commute."
  const auto s = samples();
  EXPECT_TRUE(commute(deposit(20), withdraw(5), s));
  EXPECT_TRUE(commute(deposit(20), deposit(7), s));
}

TEST(CommuteTest, ConditionalSpendBreaksCommutation) {
  // The paper's counterexample: a dependent transaction that inspects the
  // balance does not commute with deposit/withdraw.
  const auto s = samples();
  EXPECT_FALSE(commute(deposit(20), conditional_spend(15), s));
}

TEST(SoundnessTest, CommutingCompensationYieldsSoundHistory) {
  // T deposits 20; CT withdraws 20; dep(T) deposits 5 in between. All ops
  // commute, so executing <T, dep, CT> equals executing dep alone.
  const History executed{deposit(20), deposit(5), withdraw(20)};
  const History dep_only{deposit(5)};
  EXPECT_TRUE(sound(executed, dep_only, account_state(100)));
  EXPECT_TRUE(compensation_commutes_with_dependents(
      History{withdraw(20)}, History{deposit(5)}, samples()));
}

TEST(SoundnessTest, NonCommutingDependentBreaksSoundness) {
  // dep(T) spends conditionally on the balance T created; compensating T
  // afterwards cannot produce the dep-only outcome.
  const History executed{deposit(20), conditional_spend(15), withdraw(20)};
  const History dep_only{conditional_spend(15)};
  EXPECT_FALSE(sound(executed, dep_only, account_state(0)));
  EXPECT_FALSE(compensation_commutes_with_dependents(
      History{withdraw(20)}, History{conditional_spend(15)}, samples()));
}

TEST(SoundnessTest, SoundnessImpliesTThenCtIsIdentity) {
  // The paper notes the definition of soundness implies T • CT ≡ I.
  const History t_ct{deposit(20), withdraw(20)};
  const History identity{};
  EXPECT_TRUE(equivalent(t_ct, identity, samples()));
}

// --------------------------------------------------------------------------
// Classification (Sec. 3.2 taxonomy)
// --------------------------------------------------------------------------

TEST(ClassifyTest, PerfectUndoIsIdentity) {
  const auto s = samples();
  const auto cls = classify(
      deposit(20), withdraw(20), s,
      [](const State& a, const State& b) { return a == b; },
      [](const State&) { return true; });
  EXPECT_EQ(cls, CompensationClass::identity);
}

TEST(ClassifyTest, DigitalCashIsStateEquivalent) {
  // Buying with digital cash and compensating returns the same amount in
  // coins with different serial numbers: equivalent, not equal.
  Operation buy{"buy", [](const State& s) {
                  State out = s;
                  out.set("coins", Value::empty_list());
                  out.set("goods", true);
                  return out;
                }};
  Operation comp{"refund", [](const State& s) {
                   State out = s;
                   Value coins = Value::empty_list();
                   coins.push_back(Value("serial-NEW"));
                   out.set("coins", std::move(coins));
                   out.erase("goods");
                   return out;
                 }};
  std::vector<State> states;
  State st = Value::empty_map();
  Value coins = Value::empty_list();
  coins.push_back(Value("serial-OLD"));
  st.set("coins", std::move(coins));
  states.push_back(st);

  const auto cls = classify(
      buy, comp, states,
      [](const State& a, const State& b) {
        // Application-level equivalence: same number of coins, goods gone.
        return a.at("coins").size() == b.at("coins").size() &&
               a.has("goods") == b.has("goods");
      },
      [](const State&) { return true; });
  EXPECT_EQ(cls, CompensationClass::state_equivalent);
}

TEST(ClassifyTest, OverdraftRestrictedWithdrawMayFail) {
  // Sec. 3.2: CT must withdraw 20; if another transaction drained the
  // account, fewer than 20 remain and the compensation fails.
  const auto cls = classify(
      deposit(20), withdraw(20),
      std::vector<State>{account_state(0), account_state(-30)},
      [](const State& a, const State& b) { return a == b; },
      [](const State& s) { return s.at("balance").as_int() >= 20; });
  EXPECT_EQ(cls, CompensationClass::may_fail);
}

TEST(ClassifyTest, LossyOperationIsNotCompensatable) {
  // Deleting data without logging it cannot be undone (Sec. 3.2's final
  // category).
  Operation wipe{"wipe", [](const State& s) {
                   State out = s;
                   out.set("balance", std::int64_t{0});
                   return out;
                 }};
  Operation noop{"noop", [](const State& s) { return s; }};
  const auto cls = classify(
      wipe, noop, samples(),
      [](const State& a, const State& b) { return a == b; },
      [](const State&) { return true; });
  EXPECT_EQ(cls, CompensationClass::not_compensatable);
}

// --------------------------------------------------------------------------
// Property sweep: compensating a random history in reverse order of
// inverse operations is the identity on the augmented state.
// --------------------------------------------------------------------------

class ReverseCompensationProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReverseCompensationProperty, ReverseInversesRestoreState) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    History forward;
    History inverses;  // built in forward order, compensated reversed
    const int n = 1 + static_cast<int>(rng.next_below(8));
    for (int i = 0; i < n; ++i) {
      const auto amount = rng.next_in(1, 50);
      forward.append(deposit(amount));
      inverses.append(withdraw(amount));
    }
    const State initial = account_state(rng.next_in(0, 500));
    const State after = forward.apply(initial);
    const State restored = inverses.reversed().apply(after);
    EXPECT_EQ(restored, initial);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReverseCompensationProperty,
                         ::testing::Values(3, 14, 159, 265));

}  // namespace
}  // namespace mar::compensation
