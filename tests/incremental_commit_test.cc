// Incremental durability: delta savepoint commits, append-only agent
// records, and recovery from base-image + deltas.
//
// Covers the invariants the O(delta) commit path rests on:
//   * a delta applied to the predecessor state reconstructs the agent
//     BIT-IDENTICALLY to a full capture of the live object;
//   * an execution under incremental commits is observably identical to
//     one under full-image commits (outcomes, final images) while writing
//     far fewer bytes to stable storage;
//   * crash recovery re-reads the agent from base + appended deltas and
//     the completed execution matches the full-image path bit for bit;
//   * rollback, migration and compaction fall back to full images
//     correctly.
#include <gtest/gtest.h>

#include <memory>

#include "agent/agent.h"
#include "agent/node_runtime.h"
#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::Agent;
using agent::AgentOutcome;
using agent::Itinerary;
using agent::PlatformConfig;
using harness::TestWorld;
using harness::WorkloadAgent;

// ---------------------------------------------------------------------------
// Unit level: encode_agent_delta / apply_agent_delta / decode_agent_segments
// ---------------------------------------------------------------------------

std::unique_ptr<WorkloadAgent> sample_agent() {
  auto ag = std::make_unique<WorkloadAgent>();
  Itinerary tour;
  for (int i = 0; i < 4; ++i) tour.step("spend_logged", TestWorld::n(1));
  Itinerary main_it;
  main_it.sub(std::move(tour));
  ag->itinerary() = std::move(main_it);
  ag->set_id(AgentId(7));
  ag->set_run_state(Agent::RunState::running);
  ag->set_position(*ag->itinerary().first_step());
  return ag;
}

agent::AgentTypeRegistry workload_registry() {
  agent::AgentTypeRegistry reg;
  reg.register_type<WorkloadAgent>("workload");
  return reg;
}

/// Simulate one committed step's worth of mutation: dirty slots + appended
/// log entries.
void mutate_one_step(Agent& ag, int i) {
  ag.data().weak("visits") = ag.data().weak("visits").as_int() + 1;
  ag.data().weak("cash") = ag.data().weak("cash").as_int() - 1;
  ag.log().push(rollback::BeginOfStepEntry{NodeId(1), "spend_logged"});
  serial::Value params = serial::Value::empty_map();
  params.set("slot", "cash");
  params.set("amount", 1);
  params.set("i", i);
  ag.log().push(rollback::OperationEntry{rollback::OpEntryKind::agent,
                                         "comp.counter_add", std::move(params),
                                         NodeId::invalid(), std::string{}});
  rollback::EndOfStepEntry eos;
  eos.node = NodeId(1);
  ag.log().push(std::move(eos));
}

TEST(AgentDeltaTest, DeltaReconstructsBitIdentically) {
  const auto reg = workload_registry();
  auto live = sample_agent();
  live->mark_commit_baseline();
  const serial::Bytes base = encode_agent(*live);

  // Reconstruct alongside the live mutation, one delta per "step".
  std::vector<serial::Bytes> segments{base};
  for (int i = 0; i < 5; ++i) {
    mutate_one_step(*live, i);
    ASSERT_TRUE(live->delta_ready());
    segments.push_back(encode_agent_delta(*live));
    live->mark_commit_baseline();
    auto rebuilt = decode_agent_segments(reg, segments);
    EXPECT_EQ(encode_agent(*rebuilt), encode_agent(*live))
        << "divergence after delta " << i;
  }
  // The delta chain is small compared to the full image it replaces.
  EXPECT_LT(segments.back().size(), encode_agent(*live).size() / 2);
}

TEST(AgentDeltaTest, PopsAndDiscardForceFullImage) {
  auto live = sample_agent();
  mutate_one_step(*live, 0);
  live->mark_commit_baseline();
  EXPECT_TRUE(live->delta_ready());
  (void)live->log().pop();
  EXPECT_FALSE(live->delta_ready());
  live->mark_commit_baseline();
  EXPECT_TRUE(live->delta_ready());
  live->log().clear();
  EXPECT_FALSE(live->delta_ready());
}

TEST(AgentDeltaTest, WholeMapReplacementTravelsInDelta) {
  const auto reg = workload_registry();
  auto live = sample_agent();
  live->mark_commit_baseline();
  std::vector<serial::Bytes> segments{encode_agent(*live)};
  // restore_strong marks the strong side all-dirty; the delta must carry
  // the full map and still reconstruct exactly.
  serial::Value strong = serial::Value::empty_map();
  strong.set("results", serial::Value::empty_list());
  strong.set("extra", 42);
  live->data().restore_strong(strong);
  mutate_one_step(*live, 1);
  segments.push_back(encode_agent_delta(*live));
  live->mark_commit_baseline();
  auto rebuilt = decode_agent_segments(reg, segments);
  EXPECT_EQ(encode_agent(*rebuilt), encode_agent(*live));
}

// ---------------------------------------------------------------------------
// Platform level: incremental vs full-image executions
// ---------------------------------------------------------------------------

struct RunOutcome {
  serial::Bytes final_agent;
  std::uint64_t stable_bytes = 0;
  bool done = false;
};

RunOutcome run_steady(bool incremental, int steps, bool crash_mid_run,
                      std::uint32_t compaction_interval = 32,
                      double compaction_ratio = 0.0,
                      std::uint64_t* record_resets = nullptr) {
  PlatformConfig cfg;
  cfg.incremental_commit = incremental;
  cfg.compaction_interval_steps = compaction_interval;
  cfg.compaction_ratio = compaction_ratio;
  cfg.discard_log_on_top_level = false;
  TestWorld w(cfg, /*node_count=*/1, /*seed=*/9);
  harness::register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  Itinerary tour;
  for (int s = 0; s < steps; ++s) tour.step("spend_logged", TestWorld::n(1));
  Itinerary main_it;
  main_it.sub(std::move(tour));
  ag->itinerary() = std::move(main_it);
  if (crash_mid_run) {
    // Two crashes while the agent is mid-life (each spend_logged step
    // charges one 200us service unit): recovery must reconstruct the
    // agent from base + appended deltas and keep exactly-once intact.
    w.faults.crash_at(TestWorld::n(1), /*at=*/300, /*downtime=*/5'000);
    w.faults.crash_at(TestWorld::n(1), /*at=*/7'500, /*downtime=*/5'000);
  }
  auto id = w.platform.launch(std::move(ag));
  EXPECT_TRUE(id.is_ok());
  EXPECT_TRUE(w.platform.run_until_finished(id.value()));
  RunOutcome out;
  const auto& o = w.platform.outcome(id.value());
  out.done = o.state == AgentOutcome::State::done;
  out.final_agent = o.final_agent;
  out.stable_bytes =
      w.platform.node(TestWorld::n(1)).storage().stats().bytes_written;
  if (record_resets != nullptr) {
    *record_resets =
        w.platform.node(TestWorld::n(1)).storage().stats().record_resets;
  }
  return out;
}

TEST(IncrementalCommitTest, BytesRatioCompactionBoundsChainByFootprint) {
  // With the interval cap pushed out of reach, the bytes-ratio policy
  // alone must keep compacting: once the delta chain outweighs the base
  // image the record is folded. spend_logged deltas (~param_bytes each)
  // quickly outweigh the young agent's base, so ratio=1.0 compacts many
  // times where ratio=0 never does — with identical execution results.
  std::uint64_t resets_ratio = 0;
  std::uint64_t resets_off = 0;
  const auto with_ratio = run_steady(true, 32, false,
                                     /*compaction_interval=*/4096,
                                     /*compaction_ratio=*/1.0, &resets_ratio);
  const auto without = run_steady(true, 32, false,
                                  /*compaction_interval=*/4096,
                                  /*compaction_ratio=*/0.0, &resets_off);
  const auto full = run_steady(false, 32, false);
  ASSERT_TRUE(with_ratio.done);
  ASSERT_TRUE(without.done);
  ASSERT_TRUE(full.done);
  // Pure durability policy: bit-identical terminal agents.
  EXPECT_EQ(with_ratio.final_agent, without.final_agent);
  EXPECT_EQ(with_ratio.final_agent, full.final_agent);
  // The ratio policy compacts where the interval-only config cannot.
  EXPECT_GT(resets_ratio, resets_off);
  // And it stays amortized: compactions are a fraction of the steps, not
  // one per step.
  EXPECT_LT(resets_ratio, 32u);
}

TEST(IncrementalCommitTest, MatchesFullImageExecutionBitForBit) {
  const auto full = run_steady(false, 24, false);
  const auto incr = run_steady(true, 24, false);
  ASSERT_TRUE(full.done);
  ASSERT_TRUE(incr.done);
  // Same terminal agent, byte for byte — the commit path is a pure
  // durability optimization, invisible to execution semantics.
  EXPECT_EQ(incr.final_agent, full.final_agent);
  // And it writes far less: per-step cost is O(delta), not O(log size).
  EXPECT_LT(incr.stable_bytes, full.stable_bytes / 2);
}

TEST(IncrementalCommitTest, CrashRecoveryFromDeltasMatchesFullImagePath) {
  const auto full = run_steady(false, 24, /*crash=*/true);
  const auto incr = run_steady(true, 24, /*crash=*/true);
  ASSERT_TRUE(full.done);
  ASSERT_TRUE(incr.done);
  EXPECT_EQ(incr.final_agent, full.final_agent);
}

TEST(IncrementalCommitTest, AggressiveCompactionStaysCorrect) {
  // Compact after every delta: exercises the reset/append interleaving.
  const auto full = run_steady(false, 16, false);
  const auto incr = run_steady(true, 16, false, /*compaction_interval=*/1);
  ASSERT_TRUE(full.done);
  ASSERT_TRUE(incr.done);
  EXPECT_EQ(incr.final_agent, full.final_agent);
}

TEST(IncrementalCommitTest, RecordAreaIsEmptyAfterTermination) {
  PlatformConfig cfg;
  cfg.incremental_commit = true;
  cfg.discard_log_on_top_level = false;
  TestWorld w(cfg, /*node_count=*/1, /*seed=*/9);
  harness::register_workload(w.platform);
  auto ag = std::make_unique<WorkloadAgent>();
  Itinerary tour;
  for (int s = 0; s < 8; ++s) tour.step("spend_logged", TestWorld::n(1));
  Itinerary main_it;
  main_it.sub(std::move(tour));
  ag->itinerary() = std::move(main_it);
  auto id = w.platform.launch(std::move(ag));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  auto& storage = w.platform.node(TestWorld::n(1)).storage();
  EXPECT_FALSE(storage.has_record(
      agent::NodeRuntime::agent_image_key(id.value())));
  EXPECT_GT(storage.stats().record_appends, 0u);
}

TEST(IncrementalCommitTest, MigrationAndRollbackAcrossIncrementalCommits) {
  // Local incremental commits, then a migration, then a rollback across
  // the whole history: the full-image fallbacks and the record-area
  // cleanup must compose. Runs in both modes and compares outcomes.
  auto run = [](bool incremental) {
    PlatformConfig cfg;
    cfg.incremental_commit = incremental;
    TestWorld w(cfg, /*node_count=*/2, /*seed=*/13);
    harness::register_workload(w.platform);
    auto ag = std::make_unique<WorkloadAgent>();
    Itinerary tour;
    for (int s = 0; s < 6; ++s) tour.step("spend_logged", TestWorld::n(1));
    tour.step("spend_logged", TestWorld::n(2));  // migrate
    tour.step("noop", TestWorld::n(2));
    Itinerary main_it;
    main_it.sub(std::move(tour));
    ag->itinerary() = std::move(main_it);
    // Roll the current sub-itinerary back when the post-migration noop
    // runs (visit 8), then re-execute to completion.
    ag->set_trigger("noop", 8, "sub");
    auto id = w.platform.launch(std::move(ag));
    EXPECT_TRUE(id.is_ok());
    EXPECT_TRUE(w.platform.run_until_finished(id.value()));
    const auto& o = w.platform.outcome(id.value());
    EXPECT_EQ(o.state, AgentOutcome::State::done);
    EXPECT_FALSE(w.platform.node(TestWorld::n(1)).storage().has_record(
        agent::NodeRuntime::agent_image_key(id.value())));
    return o.final_agent;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace mar
