// Per-key resource locking, key-granular overlays, and the group-commit
// pipeline (PlatformConfig::lock_granularity / group_commit_window).
//
// Covers: disjoint key-sets proceeding concurrently where instance locking
// would conflict; shared read locks; whole-instance fallback; write-back
// correctness at key granularity (including deletes and covering-slot
// folds); per-key prepared-overlay crash recovery; the lock-leak
// regression (aborting mid-transaction with overlapping key-sets must drop
// every lock AND every staged slice, across crash-epoch invalidation); a
// randomized linearizability-style equivalence of per-key vs instance vs
// serial execution; and group commit batching syncs with crash atomicity.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "harness/agents.h"
#include "harness/world.h"
#include "resource/bank.h"
#include "resource/directory.h"
#include "resource/exchange.h"
#include "resource/mailbox.h"
#include "resource/mint.h"
#include "resource/resource_manager.h"
#include "storage/stable_storage.h"
#include "util/rng.h"

namespace mar {
namespace {

using agent::AgentOutcome;
using agent::Itinerary;
using harness::TestWorld;
using harness::WorkloadAgent;
using resource::Bank;
using resource::KeySet;
using resource::LockGranularity;
using resource::ResourceManager;
using serial::Value;

Value params(std::initializer_list<std::pair<std::string, Value>> kv) {
  Value v = Value::empty_map();
  for (auto& [k, val] : kv) v.set(k, val);
  return v;
}

// --------------------------------------------------------------------------
// ResourceManager unit tests (per-key granularity)
// --------------------------------------------------------------------------

/// A keyed toy resource exercising sub-level keys, slot-level (covering)
/// keys, deletes and read-only declarations against one "entries" map.
class KvResource final : public resource::Resource {
 public:
  [[nodiscard]] std::string type_name() const override { return "kv"; }
  [[nodiscard]] Value initial_state() const override {
    Value state = Value::empty_map();
    state.set("entries", Value::empty_map());
    state.set("meta", std::int64_t{0});
    return state;
  }
  [[nodiscard]] KeySet key_set(std::string_view op,
                               const Value& params) const override {
    if (op == "put" || op == "del") {
      return KeySet().write("entries/" + params.at("key").as_string());
    }
    if (op == "get") {
      return KeySet().read("entries/" + params.at("key").as_string());
    }
    if (op == "clear") return KeySet().write("entries");
    if (op == "bump_meta") return KeySet().write("meta");
    return KeySet::whole();
  }
  Result<Value> invoke(std::string_view op, const Value& p,
                       Value& state) override {
    Value& entries = state.as_map().at("entries");
    if (op == "put") {
      entries.set(p.at("key").as_string(), p.at("value"));
      return Value::empty_map();
    }
    if (op == "get") {
      const auto& key = p.at("key").as_string();
      if (!entries.has(key)) return Status(Errc::not_found, "no " + key);
      Value r = Value::empty_map();
      r.set("value", entries.at(key));
      return r;
    }
    if (op == "del") {
      entries.erase(p.at("key").as_string());
      return Value::empty_map();
    }
    if (op == "clear") {
      entries = Value::empty_map();
      return Value::empty_map();
    }
    if (op == "bump_meta") {
      state.set("meta", state.at("meta").as_int() + 1);
      return Value::empty_map();
    }
    return Status(Errc::rejected, "kv: unknown op");
  }
};

struct PerKeyFixture : ::testing::Test {
  storage::StableStorage stable;
  ResourceManager rm{stable};

  void SetUp() override {
    rm.set_granularity(LockGranularity::per_key);
    rm.add_resource("bank", std::make_unique<Bank>());
    rm.add_resource("kv", std::make_unique<KvResource>());
    Value state = rm.committed_state("bank");
    for (const char* a : {"a1", "a2"}) {
      Value acc = Value::empty_map();
      acc.set("balance", std::int64_t{100});
      acc.set("overdraft", false);
      state.as_map().at("accounts").set(a, std::move(acc));
    }
    rm.poke_state("bank", std::move(state));
  }
  Result<Value> deposit(TxId tx, const std::string& acct, std::int64_t amt) {
    return rm.invoke(tx, "bank", "deposit",
                     params({{"account", Value(acct)}, {"amount", Value(amt)}}));
  }
};

TEST_F(PerKeyFixture, DisjointKeysDoNotConflict) {
  const TxId t1(1), t2(2);
  ASSERT_TRUE(deposit(t1, "a1", 10).is_ok());
  // Instance locking would abort this; per-key locking must not.
  ASSERT_TRUE(deposit(t2, "a2", 20).is_ok());
  ASSERT_TRUE(rm.prepare(t1));
  rm.commit(t1);
  ASSERT_TRUE(rm.prepare(t2));
  rm.commit(t2);
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a1"), 110);
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a2"), 120);
  EXPECT_FALSE(rm.locked("bank"));
}

TEST_F(PerKeyFixture, OverlappingKeysConflict) {
  const TxId t1(1), t2(2);
  ASSERT_TRUE(deposit(t1, "a1", 10).is_ok());
  auto r = deposit(t2, "a1", 20);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::lock_conflict);
  // Uncommitted first writer stays invisible.
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a1"), 100);
}

TEST_F(PerKeyFixture, ReadersShareWritersExclude) {
  const TxId t1(1), t2(2), t3(3);
  auto balance = [&](TxId tx) {
    return rm.invoke(tx, "bank", "balance",
                     params({{"account", Value("a1")}}));
  };
  ASSERT_TRUE(balance(t1).is_ok());
  ASSERT_TRUE(balance(t2).is_ok());  // shared read lock
  auto w = deposit(t3, "a1", 5);
  ASSERT_FALSE(w.is_ok());  // writer excluded by readers
  EXPECT_EQ(w.code(), Errc::lock_conflict);
  rm.abort(t1);
  rm.abort(t2);
  ASSERT_TRUE(deposit(t3, "a1", 5).is_ok());  // readers gone
}

/// A resource keeping the default (whole-instance) key_set declaration.
class UndeclaredResource final : public resource::Resource {
 public:
  [[nodiscard]] std::string type_name() const override { return "plain"; }
  [[nodiscard]] Value initial_state() const override {
    Value state = Value::empty_map();
    state.set("cells", Value::empty_map());
    return state;
  }
  Result<Value> invoke(std::string_view op, const Value& p,
                       Value& state) override {
    if (op != "put") return Status(Errc::rejected, "unknown op");
    state.as_map().at("cells").set(p.at("key").as_string(), p.at("value"));
    return Value::empty_map();
  }
};

TEST_F(PerKeyFixture, UndeclaredResourceFallsBackToWholeInstance) {
  rm.add_resource("plain", std::make_unique<UndeclaredResource>());
  const TxId t1(1), t2(2);
  ASSERT_TRUE(rm.invoke(t1, "plain", "put",
                        params({{"key", Value("x")}, {"value", Value(1)}}))
                  .is_ok());
  // No key-set declared: different keys still conflict (whole instance).
  auto r = rm.invoke(t2, "plain", "put",
                     params({{"key", Value("y")}, {"value", Value(2)}}));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::lock_conflict);
}

TEST_F(PerKeyFixture, DirectoryPublishesDisjointKeysConcurrently) {
  rm.add_resource("dir", std::make_unique<resource::Directory>());
  const TxId t1(1), t2(2), t3(3);
  ASSERT_TRUE(rm.invoke(t1, "dir", "publish",
                        params({{"key", Value("x")}, {"value", Value(1)}}))
                  .is_ok());
  // Per-entry keys: a different entry proceeds, the same entry conflicts.
  ASSERT_TRUE(rm.invoke(t2, "dir", "publish",
                        params({{"key", Value("y")}, {"value", Value(2)}}))
                  .is_ok());
  auto same = rm.invoke(t3, "dir", "publish",
                        params({{"key", Value("x")}, {"value", Value(3)}}));
  ASSERT_FALSE(same.is_ok());
  EXPECT_EQ(same.code(), Errc::lock_conflict);
  // list reads the whole entries slot: excluded by any writer.
  auto list = rm.invoke(t3, "dir", "list", params({{"prefix", Value("")}}));
  ASSERT_FALSE(list.is_ok());
  EXPECT_EQ(list.code(), Errc::lock_conflict);
  ASSERT_TRUE(rm.prepare(t1));
  rm.commit(t1);
  ASSERT_TRUE(rm.prepare(t2));
  rm.commit(t2);
  EXPECT_TRUE(
      rm.committed_state("dir").at("entries").has("x"));
  EXPECT_TRUE(
      rm.committed_state("dir").at("entries").has("y"));
  EXPECT_FALSE(rm.locked("dir"));
}

TEST_F(PerKeyFixture, MintRedeemsDisjointCoinsConcurrently) {
  rm.add_resource("mint", std::make_unique<resource::Mint>());
  // Seed two live coins outside any transaction.
  {
    Value state = rm.committed_state("mint");
    for (const char* serial : {"1", "2"}) {
      Value coin = Value::empty_map();
      coin.set("currency", Value("USD"));
      coin.set("value", std::int64_t{20});
      state.as_map().at("live").set(serial, std::move(coin));
    }
    state.set("next_serial", std::int64_t{3});
    rm.poke_state("mint", std::move(state));
  }
  const TxId t1(1), t2(2), t3(3);
  Value coins1 = Value::empty_list();
  coins1.push_back(std::int64_t{1});
  Value coins2 = Value::empty_list();
  coins2.push_back(std::int64_t{2});
  ASSERT_TRUE(
      rm.invoke(t1, "mint", "redeem", params({{"coins", coins1}})).is_ok());
  // Disjoint serials: the second redeem proceeds under per-key locking.
  ASSERT_TRUE(
      rm.invoke(t2, "mint", "redeem", params({{"coins", coins2}})).is_ok());
  // The same serial conflicts (t1 holds live/1 exclusively).
  auto clash =
      rm.invoke(t3, "mint", "redeem", params({{"coins", coins1}}));
  ASSERT_FALSE(clash.is_ok());
  EXPECT_EQ(clash.code(), Errc::lock_conflict);
  // issue declares the whole live slot: excluded while coins are locked.
  auto wide = rm.invoke(t3, "mint", "issue",
                        params({{"currency", Value("USD")},
                                {"value", Value(5)},
                                {"count", Value(1)}}));
  ASSERT_FALSE(wide.is_ok());
  EXPECT_EQ(wide.code(), Errc::lock_conflict);
  ASSERT_TRUE(rm.prepare(t1));
  rm.commit(t1);
  ASSERT_TRUE(rm.prepare(t2));
  rm.commit(t2);
  EXPECT_FALSE(rm.committed_state("mint").at("live").has("1"));
  EXPECT_FALSE(rm.committed_state("mint").at("live").has("2"));
  EXPECT_FALSE(rm.locked("mint"));
}

TEST_F(PerKeyFixture, TransferTouchesBothAccountsAtomically) {
  const TxId t1(1);
  ASSERT_TRUE(rm.invoke(t1, "bank", "transfer",
                        params({{"from", Value("a1")},
                                {"to", Value("a2")},
                                {"amount", Value(30)}}))
                  .is_ok());
  ASSERT_TRUE(rm.prepare(t1));
  rm.commit(t1);
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a1"), 70);
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a2"), 130);
}

TEST_F(PerKeyFixture, RepeatableReadsAndDeletesWriteBack) {
  const TxId tx(1);
  ASSERT_TRUE(rm.invoke(tx, "kv", "put",
                        params({{"key", Value("k")}, {"value", Value(7)}}))
                  .is_ok());
  // The tx sees its own staged write.
  auto got = rm.invoke(tx, "kv", "get", params({{"key", Value("k")}}));
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().at("value").as_int(), 7);
  ASSERT_TRUE(
      rm.invoke(tx, "kv", "del", params({{"key", Value("k")}})).is_ok());
  ASSERT_TRUE(rm.prepare(tx));
  rm.commit(tx);
  // The delete's absent slice must write back as a removal.
  EXPECT_FALSE(rm.committed_state("kv").at("entries").has("k"));
}

TEST_F(PerKeyFixture, CoveringSlotFoldsSubKeySlices) {
  // Seed a committed entry, stage a per-key put, then a whole-slot clear:
  // the wider unit must fold the narrower slice and win at commit.
  Value st = rm.committed_state("kv");
  st.as_map().at("entries").set("old", Value(1));
  rm.poke_state("kv", std::move(st));
  const TxId tx(1);
  ASSERT_TRUE(rm.invoke(tx, "kv", "put",
                        params({{"key", Value("new")}, {"value", Value(2)}}))
                  .is_ok());
  ASSERT_TRUE(rm.invoke(tx, "kv", "clear", params({})).is_ok());
  ASSERT_TRUE(rm.invoke(tx, "kv", "put",
                        params({{"key", Value("post")}, {"value", Value(3)}}))
                  .is_ok());
  ASSERT_TRUE(rm.prepare(tx));
  rm.commit(tx);
  const auto& entries = rm.committed_state("kv").at("entries");
  EXPECT_FALSE(entries.has("old"));
  EXPECT_FALSE(entries.has("new"));
  ASSERT_TRUE(entries.has("post"));
  EXPECT_EQ(entries.at("post").as_int(), 3);
  EXPECT_FALSE(rm.locked("kv"));
}

TEST_F(PerKeyFixture, PreparedPerKeyOverlaySurvivesCrash) {
  const TxId tx(1);
  ASSERT_TRUE(deposit(tx, "a1", 25).is_ok());
  ASSERT_TRUE(rm.prepare(tx));
  rm.on_crash();
  // The prepared write's key lock is re-acquired: a new tx must conflict.
  EXPECT_TRUE(rm.locked_key("bank", "accounts/a1"));
  EXPECT_FALSE(rm.locked_key("bank", "accounts/a2"));
  auto r = deposit(TxId(2), "a1", 1);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::lock_conflict);
  // Commit from the recovered overlay applies the staged value.
  rm.commit(tx);
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a1"), 125);
  EXPECT_FALSE(rm.locked("bank"));
}

TEST_F(PerKeyFixture, AbortMidTxDropsEveryLockAndSlice) {
  // The lock-leak regression: overlapping key-sets, one tx aborts after a
  // partially failed invoke — no lock and no staged slice may survive,
  // including across crash-epoch invalidation.
  const TxId t1(1), t2(2);
  ASSERT_TRUE(deposit(t1, "a1", 10).is_ok());
  // t2 takes a2, then fails acquiring a1 (held by t1): all-or-nothing
  // acquisition must leave t2 with no partial grant from this invoke.
  ASSERT_TRUE(deposit(t2, "a2", 5).is_ok());
  auto r = rm.invoke(t2, "bank", "transfer",
                     params({{"from", Value("a2")},
                             {"to", Value("a1")},
                             {"amount", Value(1)}}));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::lock_conflict);

  // A failed operation (insufficient funds) must not stage its partial
  // mutation either.
  auto fail = rm.invoke(t2, "bank", "withdraw",
                        params({{"account", Value("a2")},
                                {"amount", Value(100'000)}}));
  ASSERT_FALSE(fail.is_ok());
  EXPECT_EQ(fail.code(), Errc::rejected);

  rm.abort(t2);
  EXPECT_FALSE(rm.locked_key("bank", "accounts/a2"));
  EXPECT_FALSE(rm.has_tx(TxId(2)));
  EXPECT_TRUE(rm.locked_key("bank", "accounts/a1"));  // t1 unaffected

  // Re-running t2's deposit must now succeed and commit only its own key.
  ASSERT_TRUE(deposit(TxId(3), "a2", 5).is_ok());
  ASSERT_TRUE(rm.prepare(TxId(3)));
  rm.commit(TxId(3));
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a2"), 105);

  // Crash-epoch invalidation: t1 never prepared, so every lock and slice
  // evaporates; no key may stay locked.
  rm.on_crash();
  EXPECT_FALSE(rm.locked("bank"));
  EXPECT_FALSE(rm.locked_key("bank", "accounts/a1"));
  EXPECT_FALSE(rm.has_tx(t1));
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a1"), 100);
}

TEST_F(PerKeyFixture, SubSlashKeysStayDistinct) {
  // Exchange pairs embed '/' in the sub part; only the first '/' splits.
  rm.add_resource("exchange", std::make_unique<resource::Exchange>());
  const TxId t1(1), t2(2);
  ASSERT_TRUE(rm.invoke(t1, "exchange", "set_rate",
                        params({{"from", Value("USD")},
                                {"to", Value("EUR")},
                                {"rate_ppm", Value(900'000)}}))
                  .is_ok());
  // A different pair is a different key — no conflict.
  ASSERT_TRUE(rm.invoke(t2, "exchange", "set_rate",
                        params({{"from", Value("GBP")},
                                {"to", Value("JPY")},
                                {"rate_ppm", Value(500'000)}}))
                  .is_ok());
  // The same pair conflicts (inverse rate overlaps too).
  auto r = rm.invoke(t2, "exchange", "set_rate",
                     params({{"from", Value("EUR")},
                             {"to", Value("USD")},
                             {"rate_ppm", Value(1'100'000)}}));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::lock_conflict);
}

// --------------------------------------------------------------------------
// Platform level: contended fleets, linearizability-style equivalence
// --------------------------------------------------------------------------

struct FleetSpec {
  LockGranularity granularity = LockGranularity::per_key;
  std::uint32_t concurrency = 4;
  std::uint32_t group_window = 1;
  int agents = 6;
  int steps = 6;
  std::uint64_t seed = 21;
  bool disjoint = true;  ///< agent i only touches account i
};

struct FleetResult {
  bool all_done = false;
  serial::Value bank_state;
  std::uint64_t lock_conflicts = 0;
  std::uint64_t sync_batches = 0;
  std::uint64_t committed_steps = 0;
  bool quiescent_unlocked = false;
};

FleetResult run_bank_fleet(const FleetSpec& spec) {
  agent::PlatformConfig cfg;
  cfg.node_concurrency = spec.concurrency;
  cfg.lock_granularity = spec.granularity;
  cfg.group_commit_window = spec.group_window;
  TestWorld w(cfg, /*node_count=*/1, spec.seed);
  harness::register_workload(w.platform);
  for (int a = 0; a < spec.agents; ++a) {
    w.open_account(1, "a" + std::to_string(a), 1'000);
  }

  // Randomized schedules: per-agent step counts, account draws and
  // amounts all come from the seeded generator, so every granularity
  // config replays the identical workload.
  Rng rng(spec.seed * 31 + 7);
  std::vector<AgentId> ids;
  std::vector<int> step_counts;
  for (int a = 0; a < spec.agents; ++a) {
    const int steps = spec.steps + static_cast<int>(rng.next_below(4));
    step_counts.push_back(steps);
    auto ag = std::make_unique<WorkloadAgent>();
    Itinerary tour;
    for (int s = 0; s < steps; ++s) tour.step("bank_hot", TestWorld::n(1));
    Itinerary main_it;
    main_it.sub(std::move(tour));
    ag->itinerary() = std::move(main_it);
    Value accounts = Value::empty_list();
    Value amounts = Value::empty_list();
    for (int s = 0; s < steps; ++s) {
      accounts.push_back(
          spec.disjoint
              ? std::int64_t{a}
              : static_cast<std::int64_t>(rng.next_below(
                    static_cast<std::uint64_t>(spec.agents))));
      amounts.push_back(static_cast<std::int64_t>(1 + rng.next_below(50)));
    }
    ag->set_config_value("hot_accounts", std::move(accounts));
    ag->set_config_value("hot_amounts", std::move(amounts));
    auto r = w.platform.launch(std::move(ag));
    EXPECT_TRUE(r.is_ok());
    ids.push_back(r.value());
  }

  FleetResult res;
  if (!w.platform.run_until_all_finished(ids)) return res;
  res.all_done = true;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& out = w.platform.outcome(ids[i]);
    res.all_done = res.all_done && out.state == AgentOutcome::State::done;
    if (out.state != AgentOutcome::State::done) continue;
    auto fin = w.platform.decode(out.final_agent);
    EXPECT_EQ(fin->data().weak("visits").as_int(), step_counts[i])
        << "agent " << ids[i].value() << " lost exactly-once";
    res.committed_steps += static_cast<std::uint64_t>(step_counts[i]);
  }
  res.bank_state = w.committed(1, "bank");
  res.lock_conflicts = w.platform.lock_conflict_aborts();
  res.sync_batches =
      w.platform.node(TestWorld::n(1)).storage().stats().sync_batches;
  res.quiescent_unlocked =
      !w.platform.node(TestWorld::n(1)).resources().locked("bank");
  return res;
}

TEST(KeyLockFleetTest, DisjointKeysMatchInstanceAndSerialExecution) {
  // The linearizability-style check: N agents hammering disjoint keys of
  // ONE bank, with randomized step counts and amounts, must commit the
  // exact same state under per-key concurrency, instance concurrency and
  // fully serial execution — across several seeds.
  for (const std::uint64_t seed : {21ull, 77ull, 123ull}) {
    FleetSpec per_key{LockGranularity::per_key, 8, 1, 6, 6, seed, true};
    FleetSpec instance{LockGranularity::instance, 8, 1, 6, 6, seed, true};
    FleetSpec serial{LockGranularity::instance, 1, 1, 6, 6, seed, true};
    const auto a = run_bank_fleet(per_key);
    const auto b = run_bank_fleet(instance);
    const auto c = run_bank_fleet(serial);
    ASSERT_TRUE(a.all_done && b.all_done && c.all_done) << "seed " << seed;
    EXPECT_EQ(a.bank_state, b.bank_state) << "seed " << seed;
    EXPECT_EQ(b.bank_state, c.bank_state) << "seed " << seed;
    // Disjoint keys: per-key locking never conflicts; instance locking
    // pays for the false sharing.
    EXPECT_EQ(a.lock_conflicts, 0u) << "seed " << seed;
    EXPECT_GT(b.lock_conflicts, 0u) << "seed " << seed;
    EXPECT_TRUE(a.quiescent_unlocked);
  }
}

TEST(KeyLockFleetTest, OverlappingKeysStayExactlyOnceUnderContention) {
  // Random overlapping draws: conflicts happen, the abort/restart path
  // runs, and the committed sums still account for every deposit exactly
  // once in every configuration.
  FleetSpec per_key{LockGranularity::per_key, 8, 1, 6, 6, 99, false};
  FleetSpec serial{LockGranularity::instance, 1, 1, 6, 6, 99, false};
  const auto a = run_bank_fleet(per_key);
  const auto c = run_bank_fleet(serial);
  ASSERT_TRUE(a.all_done && c.all_done);
  // Deposits commute: any interleaving must commit identical balances.
  EXPECT_EQ(a.bank_state, c.bank_state);
  EXPECT_TRUE(a.quiescent_unlocked);
}

// --------------------------------------------------------------------------
// Group commit
// --------------------------------------------------------------------------

TEST(GroupCommitTest, WindowBatchesSyncsWithoutChangingResults) {
  FleetSpec base{LockGranularity::per_key, 4, 1, 4, 4, 5, true};
  FleetSpec grouped = base;
  grouped.group_window = 4;
  const auto a = run_bank_fleet(base);
  const auto b = run_bank_fleet(grouped);
  ASSERT_TRUE(a.all_done && b.all_done);
  EXPECT_EQ(a.bank_state, b.bank_state);
  // window=1: every committed step transaction pays its own sync.
  EXPECT_EQ(a.sync_batches, a.committed_steps);
  // window=4: commits share batches — strictly fewer syncs than steps.
  EXPECT_LT(b.sync_batches, b.committed_steps);
  EXPECT_GT(b.sync_batches, 0u);
}

TEST(GroupCommitTest, CrashBeforeFlushPresumedAbortsAndRestarts) {
  // A commit parked in the group-commit queue is decided but not yet
  // applied; a crash before the flush must leave the record queued and
  // the step re-executes exactly once after recovery.
  agent::PlatformConfig cfg;
  cfg.node_concurrency = 1;
  cfg.lock_granularity = resource::LockGranularity::per_key;
  cfg.group_commit_window = 8;            // never fills with one agent
  cfg.group_commit_flush_us = 50'000;     // flush far in the future
  TestWorld w(cfg, /*node_count=*/1, /*seed=*/3);
  harness::register_workload(w.platform);
  w.open_account(1, "a0", 0);
  auto ag = std::make_unique<WorkloadAgent>();
  Itinerary tour;
  for (int s = 0; s < 3; ++s) tour.step("bank_hot", TestWorld::n(1));
  Itinerary main_it;
  main_it.sub(std::move(tour));
  ag->itinerary() = std::move(main_it);
  Value accounts = Value::empty_list();
  for (int s = 0; s < 3; ++s) accounts.push_back(std::int64_t{0});
  ag->set_config_value("hot_accounts", std::move(accounts));
  // First step's commit enters the queue at t=200us (one service unit);
  // crash at t=300us, well before the 50ms flush.
  w.faults.crash_at(TestWorld::n(1), /*at=*/300, /*downtime=*/5'000);
  auto id = w.platform.launch(std::move(ag));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  const auto& out = w.platform.outcome(id.value());
  ASSERT_EQ(out.state, AgentOutcome::State::done);
  auto fin = w.platform.decode(out.final_agent);
  EXPECT_EQ(fin->data().weak("visits").as_int(), 3);  // exactly once
  EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "a0"), 3);
  EXPECT_GE(w.trace.count(TraceKind::crash), 1u);
}

}  // namespace
}  // namespace mar
