// Unit tests for the transactional resource layer and the five built-in
// resources (bank, shop, exchange, mint, directory).
#include <gtest/gtest.h>

#include "resource/bank.h"
#include "resource/directory.h"
#include "resource/exchange.h"
#include "resource/mint.h"
#include "resource/resource_manager.h"
#include "resource/shop.h"
#include "storage/stable_storage.h"

namespace mar::resource {
namespace {

Value params(std::initializer_list<std::pair<std::string, Value>> kv) {
  Value v = Value::empty_map();
  for (auto& [k, val] : kv) v.set(k, val);
  return v;
}

// --------------------------------------------------------------------------
// ResourceManager: overlays, locks, participant behaviour
// --------------------------------------------------------------------------

struct RmFixture : ::testing::Test {
  storage::StableStorage stable;
  ResourceManager rm{stable};

  void SetUp() override {
    rm.add_resource("bank", std::make_unique<Bank>());
  }
  Result<Value> open(TxId tx, const std::string& acct) {
    return rm.invoke(tx, "bank", "open", params({{"account", Value(acct)}}));
  }
  Result<Value> deposit(TxId tx, const std::string& acct, std::int64_t amt) {
    return rm.invoke(tx, "bank", "deposit",
                     params({{"account", Value(acct)}, {"amount", Value(amt)}}));
  }
};

TEST_F(RmFixture, UncommittedChangesAreInvisible) {
  const TxId tx(1);
  ASSERT_TRUE(open(tx, "a").is_ok());
  ASSERT_TRUE(deposit(tx, "a", 10).is_ok());
  // Committed state unchanged until commit.
  EXPECT_TRUE(rm.committed_state("bank").at("accounts").as_map().empty());
  ASSERT_TRUE(rm.prepare(tx));
  rm.commit(tx);
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a"), 10);
}

TEST_F(RmFixture, AbortDiscardsOverlay) {
  const TxId tx(1);
  ASSERT_TRUE(open(tx, "a").is_ok());
  rm.abort(tx);
  EXPECT_TRUE(rm.committed_state("bank").at("accounts").as_map().empty());
  EXPECT_FALSE(rm.locked("bank"));
}

TEST_F(RmFixture, LockConflictSurfacesAsError) {
  const TxId t1(1);
  const TxId t2(2);
  ASSERT_TRUE(open(t1, "a").is_ok());
  auto r = open(t2, "b");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::lock_conflict);
  rm.commit(t1);  // without prepare: overlay applied? commit needs staged tx
}

TEST_F(RmFixture, LockReleasedAfterCommit) {
  const TxId t1(1);
  ASSERT_TRUE(open(t1, "a").is_ok());
  ASSERT_TRUE(rm.prepare(t1));
  rm.commit(t1);
  const TxId t2(2);
  EXPECT_TRUE(open(t2, "b").is_ok());
}

TEST_F(RmFixture, FailedOperationLeavesNoPartialMutation) {
  const TxId tx(1);
  ASSERT_TRUE(open(tx, "a").is_ok());
  // transfer = withdraw + deposit; insufficient funds fails the withdraw
  // half-way: the overlay must be unchanged by the failed op.
  auto r = rm.invoke(tx, "bank", "transfer",
                     params({{"from", Value("a")},
                             {"to", Value("a")},
                             {"amount", Value(100)}}));
  EXPECT_EQ(r.code(), Errc::rejected);
  ASSERT_TRUE(deposit(tx, "a", 5).is_ok());
  ASSERT_TRUE(rm.prepare(tx));
  rm.commit(tx);
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a"), 5);
}

TEST_F(RmFixture, PreparedOverlaySurvivesCrash) {
  const TxId tx(1);
  ASSERT_TRUE(open(tx, "a").is_ok());
  ASSERT_TRUE(deposit(tx, "a", 42).is_ok());
  ASSERT_TRUE(rm.prepare(tx));
  rm.on_crash();
  EXPECT_TRUE(rm.has_tx(tx));
  EXPECT_TRUE(rm.locked("bank"));  // prepared writes stay isolated
  rm.commit(tx);
  EXPECT_EQ(Bank::balance_in(rm.committed_state("bank"), "a"), 42);
}

TEST_F(RmFixture, VolatileOverlayLostOnCrash) {
  const TxId tx(1);
  ASSERT_TRUE(open(tx, "a").is_ok());
  rm.on_crash();
  EXPECT_FALSE(rm.has_tx(tx));
  EXPECT_FALSE(rm.locked("bank"));
}

TEST_F(RmFixture, UnknownResourceIsNotFound) {
  EXPECT_EQ(rm.invoke(TxId(1), "nope", "op", Value::empty_map()).code(),
            Errc::not_found);
}

// --------------------------------------------------------------------------
// Bank
// --------------------------------------------------------------------------

struct BankFixture : ::testing::Test {
  Bank bank;
  Value state = bank.initial_state();

  Result<Value> run(std::string_view op, Value p) {
    return bank.invoke(op, p, state);
  }
};

TEST_F(BankFixture, DepositWithdrawBalance) {
  ASSERT_TRUE(run("open", params({{"account", Value("a")}})).is_ok());
  EXPECT_EQ(run("deposit", params({{"account", Value("a")},
                                   {"amount", Value(70)}}))
                .value()
                .at("balance")
                .as_int(),
            70);
  EXPECT_EQ(run("withdraw", params({{"account", Value("a")},
                                    {"amount", Value(30)}}))
                .value()
                .at("balance")
                .as_int(),
            40);
  EXPECT_EQ(run("balance", params({{"account", Value("a")}}))
                .value()
                .at("balance")
                .as_int(),
            40);
}

TEST_F(BankFixture, OverdraftPolicyEnforced) {
  ASSERT_TRUE(run("open", params({{"account", Value("strict")}})).is_ok());
  ASSERT_TRUE(run("open", params({{"account", Value("loose")},
                                  {"overdraft", Value(true)}}))
                  .is_ok());
  // Sec. 3.2: the failing compensation case.
  EXPECT_EQ(run("withdraw", params({{"account", Value("strict")},
                                    {"amount", Value(1)}}))
                .code(),
            Errc::rejected);
  EXPECT_TRUE(run("withdraw", params({{"account", Value("loose")},
                                      {"amount", Value(1)}}))
                  .is_ok());
}

TEST_F(BankFixture, RejectsBadInput) {
  EXPECT_EQ(run("deposit", params({{"account", Value("ghost")},
                                   {"amount", Value(1)}}))
                .code(),
            Errc::not_found);
  ASSERT_TRUE(run("open", params({{"account", Value("a")}})).is_ok());
  EXPECT_EQ(run("open", params({{"account", Value("a")}})).code(),
            Errc::rejected);
  EXPECT_EQ(run("deposit", params({{"account", Value("a")},
                                   {"amount", Value(-5)}}))
                .code(),
            Errc::rejected);
  EXPECT_EQ(run("nonsense", Value::empty_map()).code(), Errc::rejected);
}

TEST_F(BankFixture, TransferMovesMoneyAtomically) {
  ASSERT_TRUE(run("open", params({{"account", Value("a")}})).is_ok());
  ASSERT_TRUE(run("open", params({{"account", Value("b")}})).is_ok());
  ASSERT_TRUE(run("deposit", params({{"account", Value("a")},
                                     {"amount", Value(100)}}))
                  .is_ok());
  ASSERT_TRUE(run("transfer", params({{"from", Value("a")},
                                      {"to", Value("b")},
                                      {"amount", Value(60)}}))
                  .is_ok());
  EXPECT_EQ(Bank::balance_in(state, "a"), 40);
  EXPECT_EQ(Bank::balance_in(state, "b"), 60);
}

// --------------------------------------------------------------------------
// Shop
// --------------------------------------------------------------------------

struct ShopFixture : ::testing::Test {
  Shop shop;
  Value state = shop.initial_state();
  Result<Value> run(std::string_view op, Value p) {
    return shop.invoke(op, p, state);
  }
  void restock(std::int64_t qty, std::int64_t price) {
    ASSERT_TRUE(run("restock", params({{"item", Value("widget")},
                                       {"qty", Value(qty)},
                                       {"price", Value(price)}}))
                    .is_ok());
  }
};

TEST_F(ShopFixture, BuyDecrementsStockAndGivesChange) {
  restock(10, 25);
  auto r = run("buy", params({{"item", Value("widget")},
                              {"qty", Value(2)},
                              {"payment", Value(100)},
                              {"now", Value(0)}}));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().at("cost").as_int(), 50);
  EXPECT_EQ(r.value().at("change").as_int(), 50);
  EXPECT_EQ(run("stock", params({{"item", Value("widget")}}))
                .value()
                .at("qty")
                .as_int(),
            8);
}

TEST_F(ShopFixture, OutOfStockRejected) {
  restock(1, 10);
  EXPECT_EQ(run("buy", params({{"item", Value("widget")},
                               {"qty", Value(2)},
                               {"payment", Value(100)},
                               {"now", Value(0)}}))
                .code(),
            Errc::rejected);
  EXPECT_EQ(run("buy", params({{"item", Value("gadget")},
                               {"qty", Value(1)},
                               {"payment", Value(100)},
                               {"now", Value(0)}}))
                .code(),
            Errc::not_found);
}

TEST_F(ShopFixture, CancelWithinWindowRefundsCashMinusFee) {
  restock(5, 100);
  ASSERT_TRUE(run("set_policy", params({{"cancel_fee", Value(10)},
                                        {"cash_window", Value(1000)}}))
                  .is_ok());
  auto buy = run("buy", params({{"item", Value("widget")},
                                {"qty", Value(1)},
                                {"payment", Value(100)},
                                {"now", Value(0)}}));
  ASSERT_TRUE(buy.is_ok());
  auto cancel = run("cancel", params({{"order", buy.value().at("order")},
                                      {"now", Value(500)}}));
  ASSERT_TRUE(cancel.is_ok());
  EXPECT_EQ(cancel.value().at("mode").as_string(), "cash");
  EXPECT_EQ(cancel.value().at("refund").as_int(), 90);
  EXPECT_EQ(cancel.value().at("fee").as_int(), 10);
  // Goods returned to stock.
  EXPECT_EQ(run("stock", params({{"item", Value("widget")}}))
                .value()
                .at("qty")
                .as_int(),
            5);
}

TEST_F(ShopFixture, CancelAfterWindowGivesCreditNote) {
  // Sec. 3.2's time-dependent reimbursement policy.
  restock(5, 100);
  ASSERT_TRUE(run("set_policy", params({{"cancel_fee", Value(10)},
                                        {"cash_window", Value(1000)}}))
                  .is_ok());
  auto buy = run("buy", params({{"item", Value("widget")},
                                {"qty", Value(1)},
                                {"payment", Value(100)},
                                {"now", Value(0)}}));
  auto cancel = run("cancel", params({{"order", buy.value().at("order")},
                                      {"now", Value(5000)}}));
  ASSERT_TRUE(cancel.is_ok());
  EXPECT_EQ(cancel.value().at("mode").as_string(), "credit");
  EXPECT_EQ(cancel.value().at("refund").as_int(), 100);
}

TEST_F(ShopFixture, CancelUnknownOrderFails) {
  EXPECT_EQ(run("cancel", params({{"order", Value(77)}, {"now", Value(0)}}))
                .code(),
            Errc::not_found);
}

// --------------------------------------------------------------------------
// Exchange
// --------------------------------------------------------------------------

struct ExchangeFixture : ::testing::Test {
  Exchange ex;
  Value state = ex.initial_state();
  Result<Value> run(std::string_view op, Value p) {
    return ex.invoke(op, p, state);
  }
};

TEST_F(ExchangeFixture, ConvertUsesRate) {
  ASSERT_TRUE(run("set_rate", params({{"from", Value("USD")},
                                      {"to", Value("EUR")},
                                      {"rate_ppm", Value(900'000)}}))
                  .is_ok());
  auto r = run("convert", params({{"from", Value("USD")},
                                  {"to", Value("EUR")},
                                  {"amount", Value(200)}}));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().at("out").as_int(), 180);
}

TEST_F(ExchangeFixture, InverseRateInstalledAutomatically) {
  ASSERT_TRUE(run("set_rate", params({{"from", Value("USD")},
                                      {"to", Value("EUR")},
                                      {"rate_ppm", Value(900'000)}}))
                  .is_ok());
  auto r = run("rate", params({{"from", Value("EUR")}, {"to", Value("USD")}}));
  ASSERT_TRUE(r.is_ok());
  EXPECT_NEAR(static_cast<double>(r.value().at("rate_ppm").as_int()),
              1'111'111.0, 2.0);
}

TEST_F(ExchangeFixture, UnknownPairFails) {
  EXPECT_EQ(run("convert", params({{"from", Value("USD")},
                                   {"to", Value("JPY")},
                                   {"amount", Value(1)}}))
                .code(),
            Errc::not_found);
}

// --------------------------------------------------------------------------
// Mint
// --------------------------------------------------------------------------

struct MintFixture : ::testing::Test {
  Mint mint;
  Value state = mint.initial_state();
  Result<Value> run(std::string_view op, Value p) {
    return mint.invoke(op, p, state);
  }
};

TEST_F(MintFixture, IssueAndRedeemRoundTrip) {
  auto issued = run("issue", params({{"currency", Value("USD")},
                                     {"value", Value(20)},
                                     {"count", Value(3)}}));
  ASSERT_TRUE(issued.is_ok());
  const Value& coins = issued.value().at("coins");
  EXPECT_EQ(coins.as_list().size(), 3u);
  EXPECT_EQ(Mint::wallet_total(coins), 60);
  auto redeemed =
      run("redeem", params({{"coins", Mint::wallet_serials(coins)}}));
  ASSERT_TRUE(redeemed.is_ok());
  EXPECT_EQ(redeemed.value().at("total").as_int(), 60);
  EXPECT_EQ(redeemed.value().at("currency").as_string(), "USD");
}

TEST_F(MintFixture, DoubleSpendRejectedAtomically) {
  auto issued = run("issue", params({{"currency", Value("USD")},
                                     {"value", Value(10)},
                                     {"count", Value(2)}}));
  const Value& coins = issued.value().at("coins");
  ASSERT_TRUE(
      run("redeem", params({{"coins", Mint::wallet_serials(coins)}})).is_ok());
  // Second redemption of the same serials must fail entirely.
  EXPECT_EQ(
      run("redeem", params({{"coins", Mint::wallet_serials(coins)}})).code(),
      Errc::rejected);
}

TEST_F(MintFixture, FreshSerialsForEveryIssue) {
  auto a = run("issue", params({{"currency", Value("USD")},
                                {"value", Value(10)},
                                {"count", Value(2)}}));
  auto b = run("issue", params({{"currency", Value("USD")},
                                {"value", Value(10)},
                                {"count", Value(2)}}));
  std::set<std::int64_t> serials;
  for (const auto& c : a.value().at("coins").as_list()) {
    serials.insert(c.at("serial").as_int());
  }
  for (const auto& c : b.value().at("coins").as_list()) {
    serials.insert(c.at("serial").as_int());
  }
  EXPECT_EQ(serials.size(), 4u);
}

TEST_F(MintFixture, VerifyReportsLiveness) {
  auto issued = run("issue", params({{"currency", Value("USD")},
                                     {"value", Value(10)},
                                     {"count", Value(1)}}));
  const auto serial =
      issued.value().at("coins").as_list()[0].at("serial").as_int();
  EXPECT_TRUE(run("verify", params({{"serial", Value(serial)}}))
                  .value()
                  .at("valid")
                  .as_bool());
  ASSERT_TRUE(run("redeem", params({{"coins",
                                     Mint::wallet_serials(
                                         issued.value().at("coins"))}}))
                  .is_ok());
  EXPECT_FALSE(run("verify", params({{"serial", Value(serial)}}))
                   .value()
                   .at("valid")
                   .as_bool());
}

TEST_F(MintFixture, MixedCurrencyRedeemRejected) {
  auto usd = run("issue", params({{"currency", Value("USD")},
                                  {"value", Value(10)},
                                  {"count", Value(1)}}));
  auto eur = run("issue", params({{"currency", Value("EUR")},
                                  {"value", Value(10)},
                                  {"count", Value(1)}}));
  Value serials = Value::empty_list();
  serials.push_back(
      usd.value().at("coins").as_list()[0].at("serial").as_int());
  serials.push_back(
      eur.value().at("coins").as_list()[0].at("serial").as_int());
  EXPECT_EQ(run("redeem", params({{"coins", serials}})).code(),
            Errc::rejected);
}

// --------------------------------------------------------------------------
// Directory
// --------------------------------------------------------------------------

TEST(DirectoryTest, PublishLookupListRemove) {
  Directory dir;
  Value state = dir.initial_state();
  auto run = [&](std::string_view op, Value p) {
    return dir.invoke(op, p, state);
  };
  ASSERT_TRUE(
      run("publish", params({{"key", Value("sys.cpu")}, {"value", Value(8)}}))
          .is_ok());
  ASSERT_TRUE(run("publish", params({{"key", Value("sys.mem")},
                                     {"value", Value(64)}}))
                  .is_ok());
  ASSERT_TRUE(run("publish", params({{"key", Value("app.x")},
                                     {"value", Value("y")}}))
                  .is_ok());
  EXPECT_EQ(run("lookup", params({{"key", Value("sys.cpu")}}))
                .value()
                .at("value")
                .as_int(),
            8);
  EXPECT_EQ(run("list", params({{"prefix", Value("sys.")}}))
                .value()
                .at("keys")
                .size(),
            2u);
  ASSERT_TRUE(run("remove", params({{"key", Value("sys.cpu")}})).is_ok());
  EXPECT_EQ(run("lookup", params({{"key", Value("sys.cpu")}})).code(),
            Errc::not_found);
}

}  // namespace
}  // namespace mar::resource
