// Unit tests for utility primitives: ids, results, rng, trace.
#include <gtest/gtest.h>

#include <set>

#include "util/check.h"
#include "util/ids.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/trace.h"

namespace mar {
namespace {

TEST(IdsTest, StrongTypingAndComparison) {
  const NodeId a(1);
  const NodeId b(2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, NodeId(1));
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(NodeId::invalid().valid());
  EXPECT_FALSE(NodeId{}.valid());
}

TEST(IdsTest, Hashable) {
  std::set<TxId> s;
  s.insert(TxId(1));
  s.insert(TxId(2));
  s.insert(TxId(1));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(std::hash<TxId>{}(TxId(5)), std::hash<std::uint64_t>{}(5));
}

TEST(CheckTest, ThrowsWithContext) {
  try {
    MAR_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const LogicError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom 42"), std::string::npos);
  }
}

TEST(StatusTest, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.code(), Errc::ok);

  Status err(Errc::lock_conflict, "r1 busy");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.code(), Errc::lock_conflict);
  EXPECT_EQ(err.to_string(), "lock_conflict: r1 busy");
  EXPECT_TRUE(err == Errc::lock_conflict);
}

TEST(ResultTest, ValueAndError) {
  Result<int> r(5);
  EXPECT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(r.value_or(9), 5);

  Result<int> e(Errc::not_found, "gone");
  EXPECT_FALSE(e.is_ok());
  EXPECT_EQ(e.code(), Errc::not_found);
  EXPECT_EQ(e.value_or(9), 9);
  EXPECT_THROW((void)e.value(), LogicError);
}

TEST(ResultTest, OkStatusCannotCarryNoValue) {
  EXPECT_THROW((Result<int>(Status::ok())), LogicError);
}

Status fails() { return Status(Errc::rejected, "no"); }
Status propagates() {
  MAR_RETURN_IF_ERROR(fails());
  return Status::ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(propagates().code(), Errc::rejected);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialHasRoughlyRightMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(TraceTest, RecordsAndCounts) {
  TraceSink sink;
  sink.emit(10, TraceKind::step_begin, 1, "a");
  sink.emit(20, TraceKind::step_commit, 1, "b");
  sink.emit(30, TraceKind::step_begin, 2, "c");
  EXPECT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.count(TraceKind::step_begin), 2u);
  EXPECT_EQ(sink.of_kind(TraceKind::step_commit).size(), 1u);
  EXPECT_EQ(sink.of_kind(TraceKind::step_commit)[0].detail, "b");
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(TraceTest, EventsKeepChronologicalOrder) {
  TraceSink sink;
  sink.emit(5, TraceKind::msg, 0, "first");
  sink.emit(5, TraceKind::msg, 0, "second");
  EXPECT_EQ(sink.events()[0].detail, "first");
  EXPECT_EQ(sink.events()[1].detail, "second");
}

}  // namespace
}  // namespace mar
