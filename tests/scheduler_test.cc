// Slotted node scheduler (node_concurrency) and the expt/ parallel
// multi-world driver.
//
// The exactly-once step protocol isolates concurrent queue records through
// transactions and resource locks; these tests pin down what the slotted
// scheduler layers on top: interleaved progress of several agents on one
// node, lock-conflict abort/retry between slots, crash-epoch invalidation
// of in-flight slots with a restartable queue, and determinism of
// seed-replicated worlds run on OS threads.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "expt/parallel_worlds.h"
#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::AgentOutcome;
using agent::Itinerary;
using harness::TestWorld;
using harness::WorkloadAgent;

std::unique_ptr<WorkloadAgent> fleet_agent(const std::string& step,
                                           int steps) {
  auto ag = std::make_unique<WorkloadAgent>();
  Itinerary tour;
  for (int s = 0; s < steps; ++s) tour.step(step, TestWorld::n(1));
  Itinerary main_it;
  main_it.sub(std::move(tour));
  ag->itinerary() = std::move(main_it);
  return ag;
}

struct FleetRun {
  bool all_done = false;
  sim::TimeUs makespan_us = 0;
  std::uint64_t lock_conflicts = 0;
  std::uint64_t step_aborts = 0;
  bool interleaved = false;  ///< some step of agent 2 began before agent 1
                             ///< finished (and vice versa)
};

FleetRun run_fleet(std::uint32_t concurrency, const std::string& step,
                   int agents, int steps, std::uint64_t seed = 7) {
  agent::PlatformConfig cfg;
  cfg.node_concurrency = concurrency;
  // These tests pin the classic execution envelope — exact serialized
  // makespans and instance-lock conflicts — so the newer defaults
  // (per-key locking, group-commit batching) are switched off here; they
  // have their own suites (keylock_test, ship_test).
  cfg.lock_granularity = resource::LockGranularity::instance;
  cfg.group_commit_window = 1;
  TestWorld w(cfg, /*node_count=*/1, seed);
  harness::register_workload(w.platform);
  w.publish(1, "info", serial::Value("x"));

  std::vector<AgentId> ids;
  for (int a = 0; a < agents; ++a) {
    auto r = w.platform.launch(fleet_agent(step, steps));
    EXPECT_TRUE(r.is_ok());
    ids.push_back(r.value());
  }

  FleetRun run;
  if (!w.platform.run_until_all_finished(ids)) return run;
  run.all_done = true;
  for (const auto id : ids) {
    const auto& out = w.platform.outcome(id);
    run.all_done = run.all_done && out.state == AgentOutcome::State::done;
    run.makespan_us = std::max(run.makespan_us, out.finished_at);
    if (out.state == AgentOutcome::State::done) {
      auto fin = w.platform.decode(out.final_agent);
      EXPECT_EQ(fin->data().weak("visits").as_int(), steps)
          << "agent " << id.value() << " ran a step more or less than once";
    }
  }
  run.lock_conflicts = w.platform.lock_conflict_aborts();
  run.step_aborts = w.trace.count(TraceKind::step_abort);

  // Interleaving evidence: between two step_begin events of one agent,
  // another agent's step_begin appears.
  if (ids.size() >= 2) {
    const auto begins = w.trace.of_kind(TraceKind::step_begin);
    auto agent_of = [](const TraceEvent& e) {
      return e.detail.substr(e.detail.rfind(' ') + 1);
    };
    for (std::size_t i = 0; i + 2 < begins.size() && !run.interleaved; ++i) {
      run.interleaved = agent_of(begins[i]) != agent_of(begins[i + 1]) &&
                        agent_of(begins[i]) == agent_of(begins[i + 2]);
    }
  }
  return run;
}

TEST(SchedulerTest, SingleSlotSerializesLikeTheClassicRuntime) {
  const auto run = run_fleet(1, "work", 2, 6);
  ASSERT_TRUE(run.all_done);
  EXPECT_EQ(run.lock_conflicts, 0u);
  EXPECT_EQ(run.step_aborts, 0u);
  // One slot, FIFO queue: 2 agents x 6 steps x 200us service, serialized.
  EXPECT_EQ(run.makespan_us, 2u * 6u * 200u);
}

TEST(SchedulerTest, TwoAgentsInterleaveOnOneNode) {
  const auto serial = run_fleet(1, "work", 2, 6);
  const auto slotted = run_fleet(2, "work", 2, 6);
  ASSERT_TRUE(serial.all_done);
  ASSERT_TRUE(slotted.all_done);
  EXPECT_TRUE(slotted.interleaved);
  // Two slots overlap the two agents' service times fully.
  EXPECT_LT(slotted.makespan_us, serial.makespan_us);
  EXPECT_EQ(slotted.makespan_us, 6u * 200u);
  EXPECT_EQ(slotted.lock_conflicts, 0u);
}

TEST(SchedulerTest, ExtraSlotsBeyondFleetDoNotChangeAnything) {
  const auto two = run_fleet(2, "work", 2, 6);
  const auto eight = run_fleet(8, "work", 2, 6);
  ASSERT_TRUE(two.all_done);
  ASSERT_TRUE(eight.all_done);
  EXPECT_EQ(two.makespan_us, eight.makespan_us);
}

TEST(SchedulerTest, LockConflictAbortsAndRetries) {
  // Every "collect" step locks the node's one directory instance, so two
  // slots must conflict; the loser aborts, backs off, retries, and both
  // agents still complete with every step executed exactly once.
  const auto run = run_fleet(2, "collect", 2, 4);
  ASSERT_TRUE(run.all_done);
  EXPECT_GT(run.lock_conflicts, 0u);
  EXPECT_GT(run.step_aborts, 0u);

  // Serial execution of the same fleet never conflicts.
  const auto serial = run_fleet(1, "collect", 2, 4);
  ASSERT_TRUE(serial.all_done);
  EXPECT_EQ(serial.lock_conflicts, 0u);
}

TEST(SchedulerTest, CrashDuringInFlightSlotsLeavesQueueRestartable) {
  // Two agents mid-flight in two slots when the node crashes: the epoch
  // bump invalidates both slots, their records stay queued, and recovery
  // re-runs them — no step lost, none duplicated.
  agent::PlatformConfig cfg;
  cfg.node_concurrency = 2;
  TestWorld w(cfg, /*node_count=*/1, 7);
  harness::register_workload(w.platform);
  w.open_account(1, "acct", 10'000);

  std::vector<AgentId> ids;
  for (int a = 0; a < 2; ++a) {
    auto r = w.platform.launch(fleet_agent("withdraw", 3));
    ASSERT_TRUE(r.is_ok());
    ids.push_back(r.value());
  }
  // Both slots are busy from t=0 (one executing, one conflicting/backing
  // off); crash in the middle of the first service interval and again
  // later to also hit a retry window.
  w.faults.crash_at(TestWorld::n(1), /*at=*/100, /*downtime=*/10'000);
  w.faults.crash_at(TestWorld::n(1), /*at=*/60'000, /*downtime=*/10'000);

  ASSERT_TRUE(w.platform.run_until_all_finished(ids));
  std::int64_t total_cash = 0;
  for (const auto id : ids) {
    const auto& out = w.platform.outcome(id);
    ASSERT_EQ(out.state, AgentOutcome::State::done);
    auto fin = w.platform.decode(out.final_agent);
    EXPECT_EQ(fin->data().weak("visits").as_int(), 3);
    EXPECT_EQ(fin->data().weak("cash").as_int(), 300);
    total_cash += fin->data().weak("cash").as_int();
  }
  // Exactly-once despite crash + conflicts: the committed balance matches
  // the cash the agents carried away, to the cent.
  const auto& bank = w.committed(1, "bank");
  EXPECT_EQ(bank.at("accounts").at("acct").at("balance").as_int(),
            10'000 - total_cash);
  EXPECT_GE(w.trace.count(TraceKind::crash), 1u);
}

TEST(SchedulerTest, ConcurrencyOneReproducesSeedShapes) {
  // node_concurrency = 1 must be indistinguishable from the classic
  // one-record-at-a-time runtime: same seed -> same timings.
  const auto a = run_fleet(1, "collect", 3, 4, /*seed=*/11);
  const auto b = run_fleet(1, "collect", 3, 4, /*seed=*/11);
  ASSERT_TRUE(a.all_done);
  ASSERT_TRUE(b.all_done);
  EXPECT_EQ(a.makespan_us, b.makespan_us);
  EXPECT_EQ(a.step_aborts, b.step_aborts);
}

TEST(ParallelWorldsTest, ReplicateSeedsAreDistinct) {
  const auto seeds = expt::replicate_seeds(7, 64);
  ASSERT_EQ(seeds.size(), 64u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]);
    }
  }
}

TEST(ParallelWorldsTest, SeedReplicatedWorldsAreReproducibleAcrossThreads) {
  // >= 8 worlds, each a full slotted-fleet simulation, run via the
  // parallel driver with different thread counts and sequentially: the
  // per-seed metrics must be bit-identical regardless of scheduling.
  const auto seeds = expt::replicate_seeds(42, 8);
  auto job = [&seeds](std::size_t i) {
    const auto run = run_fleet(4, "collect", 4, 3, seeds[i]);
    EXPECT_TRUE(run.all_done);
    return std::pair<sim::TimeUs, std::uint64_t>(run.makespan_us,
                                                 run.step_aborts);
  };
  const auto parallel_a = expt::run_worlds(seeds.size(), job, 8);
  const auto parallel_b = expt::run_worlds(seeds.size(), job, 3);
  const auto sequential = expt::run_worlds(seeds.size(), job, 1);
  EXPECT_EQ(parallel_a, sequential);
  EXPECT_EQ(parallel_b, sequential);
}

}  // namespace
}  // namespace mar
