// Robustness of the wire formats and the mailbox resource.
//
// The platform trusts nothing it reads back from a queue or the network:
// every decode is bounds-checked and raises DecodeError on malformed
// input. These tests fuzz the codecs with truncations and byte flips —
// any outcome other than "decodes cleanly" or "throws DecodeError" (e.g.
// a crash, hang, or unchecked exception type) fails the suite.
#include <gtest/gtest.h>

#include "harness/agents.h"
#include "harness/world.h"
#include "resource/mailbox.h"

namespace mar {
namespace {

using agent::Itinerary;
using harness::TestWorld;
using harness::WorkloadAgent;

serial::Bytes encoded_sample_agent() {
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary sub;
  sub.step("touch_split", TestWorld::n(1))
      .step_if("noop", TestWorld::n(2),
               agent::Condition{"touches", agent::Condition::Op::ge,
                                serial::Value(1)});
  Itinerary fallback;
  fallback.step("collect", TestWorld::n(3));
  Itinerary alt_sub;
  alt_sub.alt({std::move(sub), std::move(fallback)});
  Itinerary main;
  main.sub(std::move(alt_sub));
  agent->itinerary() = std::move(main);
  agent->set_trigger("noop", 2, "sub", 0);
  agent->data().weak("cash") = std::int64_t{123};
  agent->log().push(rollback::BeginOfStepEntry{TestWorld::n(1), "s"});
  rollback::OperationEntry op;
  op.kind = rollback::OpEntryKind::mixed;
  op.comp_op = "comp.x";
  op.params = serial::Value("p");
  op.resource_node = TestWorld::n(1);
  op.resource = "dir";
  agent->log().push(op);
  rollback::EndOfStepEntry eos;
  eos.node = TestWorld::n(1);
  eos.has_mixed = true;
  agent->log().push(eos);
  return agent::encode_agent(*agent);
}

agent::AgentTypeRegistry registry_with_workload() {
  agent::AgentTypeRegistry reg;
  reg.register_type<WorkloadAgent>("workload");
  return reg;
}

TEST(FuzzDecode, SampleAgentRoundTrips) {
  const auto bytes = encoded_sample_agent();
  const auto reg = registry_with_workload();
  auto agent = agent::decode_agent(reg, bytes);
  EXPECT_EQ(agent->data().weak("cash").as_int(), 123);
  EXPECT_EQ(agent->log().size(), 3u);
  EXPECT_EQ(agent::encode_agent(*agent), bytes);  // canonical encoding
}

TEST(FuzzDecode, EveryTruncationThrowsOrDecodes) {
  const auto bytes = encoded_sample_agent();
  const auto reg = registry_with_workload();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    serial::Bytes cut(bytes.begin(),
                      bytes.begin() + static_cast<long>(len));
    EXPECT_THROW((void)agent::decode_agent(reg, cut), serial::DecodeError)
        << "truncation at " << len;
  }
}

TEST(FuzzDecode, RandomByteFlipsNeverCrash) {
  const auto bytes = encoded_sample_agent();
  const auto reg = registry_with_workload();
  Rng rng(0xf1e5);
  int decoded = 0;
  int rejected = 0;
  for (int round = 0; round < 2000; ++round) {
    serial::Bytes mutated = bytes;
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      const auto at = rng.next_below(mutated.size());
      mutated[at] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    try {
      auto agent = agent::decode_agent(reg, mutated);
      ++decoded;  // the flip hit a benign spot
    } catch (const serial::DecodeError&) {
      ++rejected;
    } catch (const std::bad_alloc&) {
      // A flipped length prefix may demand absurd allocations; the codec
      // bounds-checks against the remaining buffer, so this must not
      // happen.
      FAIL() << "unbounded allocation on flipped input";
    }
  }
  EXPECT_EQ(decoded + rejected, 2000);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzDecode, QueueRecordTruncationsThrow) {
  storage::QueueRecord rec;
  rec.record_id = 42;
  rec.agent = AgentId(7);
  rec.kind = storage::RecordKind::compensate;
  rec.rollback_target = SavepointId(3);
  rec.completion = storage::QueueRecord::Completion::next_alt;
  rec.payload = serial::Bytes{1, 2, 3, 4};
  const auto bytes = serial::to_bytes(rec);
  const auto back = serial::from_bytes<storage::QueueRecord>(bytes);
  EXPECT_EQ(back.record_id, 42u);
  EXPECT_EQ(back.completion, storage::QueueRecord::Completion::next_alt);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    serial::Bytes cut(bytes.begin(),
                      bytes.begin() + static_cast<long>(len));
    EXPECT_THROW((void)serial::from_bytes<storage::QueueRecord>(cut),
                 serial::DecodeError);
  }
}

TEST(FuzzDecode, RollbackLogTruncationsThrow) {
  const auto bytes = encoded_sample_agent();
  const auto reg = registry_with_workload();
  auto agent = agent::decode_agent(reg, bytes);
  const auto log_bytes = serial::to_bytes(agent->log());
  for (std::size_t len = 0; len < log_bytes.size(); ++len) {
    serial::Bytes cut(log_bytes.begin(),
                      log_bytes.begin() + static_cast<long>(len));
    EXPECT_THROW((void)serial::from_bytes<rollback::RollbackLog>(cut),
                 serial::DecodeError);
  }
}

// ---------------------------------------------------------------------------
// Mailbox resource
// ---------------------------------------------------------------------------

serial::Value params(
    std::initializer_list<std::pair<std::string, serial::Value>> kv) {
  serial::Value v = serial::Value::empty_map();
  for (auto& [k, val] : kv) v.set(k, val);
  return v;
}

TEST(MailboxTest, PutPeekTakeLifecycle) {
  resource::Mailbox box;
  auto state = box.initial_state();

  auto missing = box.invoke("peek", params({{"key", "a"}}), state);
  EXPECT_EQ(missing.code(), Errc::not_found);

  ASSERT_TRUE(box.invoke("put", params({{"key", "a"}, {"value", 41}}), state)
                  .is_ok());
  auto peeked = box.invoke("peek", params({{"key", "a"}}), state);
  ASSERT_TRUE(peeked.is_ok());
  EXPECT_EQ(peeked.value().at("value").as_int(), 41);

  // Peek does not consume; take does.
  auto taken = box.invoke("take", params({{"key", "a"}}), state);
  ASSERT_TRUE(taken.is_ok());
  EXPECT_EQ(taken.value().at("value").as_int(), 41);
  EXPECT_EQ(box.invoke("take", params({{"key", "a"}}), state).code(),
            Errc::not_found);
}

TEST(MailboxTest, PutOverwritesAndExistsReports) {
  resource::Mailbox box;
  auto state = box.initial_state();
  ASSERT_TRUE(box.invoke("put", params({{"key", "k"}, {"value", 1}}), state)
                  .is_ok());
  ASSERT_TRUE(box.invoke("put", params({{"key", "k"}, {"value", 2}}), state)
                  .is_ok());
  auto v = box.invoke("take", params({{"key", "k"}}), state);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value().at("value").as_int(), 2);
  auto exists = box.invoke("exists", params({{"key", "k"}}), state);
  ASSERT_TRUE(exists.is_ok());
  EXPECT_FALSE(exists.value().at("present").as_bool());
}

TEST(MailboxTest, UnknownOpIsRejected) {
  resource::Mailbox box;
  auto state = box.initial_state();
  EXPECT_EQ(box.invoke("drop_all", params({}), state).code(),
            Errc::rejected);
}

TEST(MailboxTest, TakeIsUndoneByTransactionAbort) {
  // Through the transactional ResourceManager: an aborted take leaves the
  // message in place (this is what makes a parked join retry sound).
  TestWorld w(agent::PlatformConfig{}, 1);
  auto& rm = w.platform.node(TestWorld::n(1)).resources();
  auto& txm = w.platform.node(TestWorld::n(1)).txm();

  serial::Value state = rm.committed_state("mailbox");
  state.as_map().at("slots").set("msg", serial::Value(7));
  rm.poke_state("mailbox", std::move(state));

  const TxId tx = txm.begin();
  auto taken = rm.invoke(tx, "mailbox", "take", params({{"key", "msg"}}));
  ASSERT_TRUE(taken.is_ok());
  txm.abort_tx(tx);

  const TxId tx2 = txm.begin();
  auto again = rm.invoke(tx2, "mailbox", "take", params({{"key", "msg"}}));
  ASSERT_TRUE(again.is_ok());
  EXPECT_EQ(again.value().at("value").as_int(), 7);
  txm.abort_tx(tx2);
}

}  // namespace
}  // namespace mar
