// Unit tests for the serialization framework: codec primitives, Value, and
// the ValuePatch diff/apply/compose calculus used by transition logging.
#include <gtest/gtest.h>

#include "serial/decoder.h"
#include "serial/encoder.h"
#include "serial/serializable.h"
#include "serial/value.h"
#include "util/rng.h"

namespace mar::serial {
namespace {

TEST(EncoderTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.write_u8(0xab);
  enc.write_u16(0xbeef);
  enc.write_u32(0xdeadbeef);
  enc.write_u64(0x0123456789abcdefULL);
  enc.write_bool(true);
  enc.write_bool(false);
  enc.write_double(3.25);

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.read_u8(), 0xab);
  EXPECT_EQ(dec.read_u16(), 0xbeef);
  EXPECT_EQ(dec.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.read_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.read_bool());
  EXPECT_FALSE(dec.read_bool());
  EXPECT_EQ(dec.read_double(), 3.25);
  dec.expect_end();
}

TEST(EncoderTest, ReserveHintMakesEncodeSingleAllocation) {
  Value v = Value::empty_map();
  for (int i = 0; i < 64; ++i) {
    v.set("key-" + std::to_string(i), std::string(100, 'x'));
  }
  Encoder enc(v.encoded_size());
  const auto* before = enc.buffer().data();
  const auto cap = enc.buffer().capacity();
  v.serialize(enc);
  EXPECT_EQ(enc.size(), v.encoded_size());
  EXPECT_EQ(enc.buffer().capacity(), cap);      // never grew
  EXPECT_EQ(enc.buffer().data(), before);       // never reallocated
}

TEST(EncoderTest, ReserveGrowsGeometrically) {
  Encoder enc;
  enc.reserve(100);
  const auto cap1 = enc.buffer().capacity();
  EXPECT_GE(cap1, 100u);
  enc.reserve(cap1 + 1);  // slightly over: geometric, not exact, growth
  EXPECT_GE(enc.buffer().capacity(), cap1 + cap1 / 2);
}

TEST(DecoderTest, ReadStringViewIsZeroCopyAndMatches) {
  Encoder enc;
  enc.write_string("type.name");
  enc.write_u32(7);
  Decoder dec(enc.buffer());
  const auto view = dec.read_string_view();
  EXPECT_EQ(view, "type.name");
  // The view aliases the encoder's buffer, not a copy.
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(view.data()),
            enc.buffer().data());
  EXPECT_LT(reinterpret_cast<const std::uint8_t*>(view.data()),
            enc.buffer().data() + enc.buffer().size());
  EXPECT_EQ(dec.read_u32(), 7u);
  dec.expect_end();
}

TEST(EncoderTest, VarintBoundaries) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xffffffffull,
        0xffffffffffffffffull}) {
    Encoder enc;
    enc.write_varint(v);
    Decoder dec(enc.buffer());
    EXPECT_EQ(dec.read_varint(), v);
    dec.expect_end();
  }
}

TEST(EncoderTest, VarintIsCompactForSmallValues) {
  Encoder enc;
  enc.write_varint(5);
  EXPECT_EQ(enc.size(), 1u);
  enc.clear();
  enc.write_varint(300);
  EXPECT_EQ(enc.size(), 2u);
}

TEST(EncoderTest, ZigzagSignedRoundTrip) {
  for (std::int64_t v :
       std::initializer_list<std::int64_t>{0, 1, -1, 63, -64, 1'000'000,
                                           -1'000'000, INT64_MAX, INT64_MIN}) {
    Encoder enc;
    enc.write_i64(v);
    Decoder dec(enc.buffer());
    EXPECT_EQ(dec.read_i64(), v) << v;
    dec.expect_end();
  }
}

TEST(EncoderTest, StringAndBytes) {
  Encoder enc;
  enc.write_string("hello");
  enc.write_string("");
  Bytes blob = {1, 2, 3, 255};
  enc.write_bytes(blob);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.read_string(), "hello");
  EXPECT_EQ(dec.read_string(), "");
  EXPECT_EQ(dec.read_bytes(), blob);
  dec.expect_end();
}

TEST(DecoderTest, OutOfBoundsThrows) {
  Encoder enc;
  enc.write_u16(7);
  Decoder dec(enc.buffer());
  (void)dec.read_u8();
  (void)dec.read_u8();
  EXPECT_THROW((void)dec.read_u8(), DecodeError);
}

TEST(DecoderTest, TruncatedStringThrows) {
  Encoder enc;
  enc.write_varint(100);  // claims 100 bytes follow
  enc.write_u8('x');
  Decoder dec(enc.buffer());
  EXPECT_THROW((void)dec.read_string(), DecodeError);
}

TEST(DecoderTest, ExpectEndDetectsTrailingBytes) {
  Encoder enc;
  enc.write_u32(1);
  Decoder dec(enc.buffer());
  (void)dec.read_u16();
  EXPECT_THROW(dec.expect_end(), DecodeError);
}

TEST(DecoderTest, OverlongVarintThrows) {
  Bytes overlong(11, 0x80);
  Decoder dec(overlong);
  EXPECT_THROW((void)dec.read_varint(), DecodeError);
}

TEST(DecoderTest, CountWithinRemainingBufferPasses) {
  Encoder enc;
  enc.write_varint(3);
  for (std::uint8_t b : {1, 2, 3}) enc.write_u8(b);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.read_count(), 3u);
}

TEST(DecoderTest, CountExceedingRemainingBufferThrows) {
  // Every element costs at least one byte on the wire, so a count larger
  // than the remaining payload is malformed regardless of element type.
  Encoder enc;
  enc.write_varint(4);  // claims 4 elements...
  enc.write_u8(0);      // ...but only 1 byte follows
  Decoder dec(enc.buffer());
  EXPECT_THROW((void)dec.read_count(), DecodeError);
}

TEST(DecoderTest, HugeCountThrowsBeforeAllocation) {
  // A corrupted length prefix decoding to ~2^64 must be rejected inside
  // read_count; callers resize containers directly from the returned
  // count, so letting it escape would trigger a gigantic allocation.
  Encoder enc;
  enc.write_varint(UINT64_MAX);
  Decoder dec(enc.buffer());
  EXPECT_THROW((void)dec.read_count(), DecodeError);
}

TEST(DecoderTest, CorruptedValueListCountIsRejectedStructurally) {
  // End-to-end: inflate the element count inside an encoded Value list and
  // check the decode fails with DecodeError instead of over-allocating.
  Value list = Value::empty_list();
  list.push_back(1);
  auto bytes = to_bytes(list);
  // Wire layout: [kind tag u8][count varint]...; a 1-element list encodes
  // the count in one byte, so bump it past the remaining payload.
  bytes[1] = 0x7f;
  EXPECT_THROW((void)from_bytes<Value>(bytes), DecodeError);
}

// --------------------------------------------------------------------------
// Value
// --------------------------------------------------------------------------

Value sample_value() {
  Value v = Value::empty_map();
  v.set("b", true);
  v.set("i", std::int64_t{-42});
  v.set("d", 2.5);
  v.set("s", "text");
  v.set("bytes", Bytes{9, 8, 7});
  Value list = Value::empty_list();
  list.push_back(1);
  list.push_back("two");
  Value nested = Value::empty_map();
  nested.set("x", 1);
  list.push_back(nested);
  v.set("list", std::move(list));
  return v;
}

TEST(ValueTest, KindsAndAccessors) {
  const Value v = sample_value();
  EXPECT_TRUE(v.is_map());
  EXPECT_TRUE(v.at("b").as_bool());
  EXPECT_EQ(v.at("i").as_int(), -42);
  EXPECT_EQ(v.at("d").as_real(), 2.5);
  EXPECT_EQ(v.at("s").as_string(), "text");
  EXPECT_EQ(v.at("bytes").as_bytes().size(), 3u);
  EXPECT_EQ(v.at("list").size(), 3u);
  EXPECT_EQ(v.get_or("missing", Value(7)).as_int(), 7);
  EXPECT_FALSE(v.has("missing"));
}

TEST(ValueTest, AccessorKindMismatchChecks) {
  const Value v(std::int64_t{1});
  EXPECT_THROW((void)v.as_string(), LogicError);
  EXPECT_THROW((void)v.as_map(), LogicError);
}

TEST(ValueTest, SerializationRoundTrip) {
  const Value v = sample_value();
  auto bytes = to_bytes(v);
  auto back = from_bytes<Value>(bytes);
  EXPECT_EQ(v, back);
  EXPECT_EQ(v.encoded_size(), bytes.size());
}

TEST(ValueTest, NullAndEmptyRoundTrip) {
  for (const Value& v : {Value{}, Value::empty_list(), Value::empty_map()}) {
    EXPECT_EQ(from_bytes<Value>(to_bytes(v)), v);
  }
}

TEST(ValueTest, OrderingIsTotal) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_NE(Value(1), Value("1"));
  EXPECT_EQ(Value("a"), Value("a"));
}

TEST(ValueTest, SetOnNullPromotesToMap) {
  Value v;
  v.set("k", 1);
  EXPECT_TRUE(v.is_map());
  EXPECT_EQ(v.at("k").as_int(), 1);
}

TEST(ValueTest, PushBackOnNullPromotesToList) {
  Value v;
  v.push_back("x");
  EXPECT_TRUE(v.is_list());
  EXPECT_EQ(v.size(), 1u);
}

TEST(ValueTest, ToStringIsReadable) {
  Value v = Value::empty_map();
  v.set("n", 3);
  EXPECT_EQ(v.to_string(), "{\"n\":3}");
}

// --------------------------------------------------------------------------
// ValuePatch: diff / apply / compose
// --------------------------------------------------------------------------

TEST(PatchTest, DiffIdenticalIsNone) {
  const Value v = sample_value();
  EXPECT_TRUE(diff(v, v).is_none());
}

TEST(PatchTest, DiffApplyRestoresTarget) {
  Value from = sample_value();
  Value to = sample_value();
  to.set("i", std::int64_t{100});
  to.erase("s");
  to.set("new_key", "fresh");
  const auto patch = diff(from, to);
  EXPECT_EQ(apply(patch, from), to);
}

TEST(PatchTest, MapDiffIsSparse) {
  // Changing one key of a large map must not encode the whole map.
  Value big = Value::empty_map();
  for (int i = 0; i < 200; ++i) {
    big.set("key" + std::to_string(i), std::string(50, 'x'));
  }
  Value changed = big;
  changed.set("key7", "different");
  const auto patch = diff(big, changed);
  EXPECT_LT(patch.encoded_size(), big.encoded_size() / 10);
}

TEST(PatchTest, NestedMapDiffRecurses) {
  Value from = Value::empty_map();
  Value inner = Value::empty_map();
  inner.set("a", 1);
  inner.set("b", 2);
  from.set("inner", inner);
  Value to = from;
  to.as_map().at("inner").set("b", 3);
  const auto patch = diff(from, to);
  EXPECT_EQ(apply(patch, from), to);
  // Only the changed key is carried.
  EXPECT_EQ(patch.entries().size(), 1u);
  EXPECT_EQ(patch.entries().at("inner").entries().size(), 1u);
}

TEST(PatchTest, WholeValueReplacementForNonMaps) {
  const auto patch = diff(Value(1), Value("two"));
  EXPECT_EQ(patch.kind(), ValuePatch::Kind::set);
  EXPECT_EQ(apply(patch, Value(1)), Value("two"));
}

TEST(PatchTest, SerializationRoundTrip) {
  Value from = sample_value();
  Value to = sample_value();
  to.set("i", std::int64_t{7});
  to.erase("b");
  const auto patch = diff(from, to);
  auto back = from_bytes<ValuePatch>(to_bytes(patch));
  EXPECT_EQ(back, patch);
  EXPECT_EQ(apply(back, from), to);
}

Value random_value(Rng& rng, int depth) {
  switch (rng.next_below(depth > 0 ? 6 : 4)) {
    case 0: return Value{};
    case 1: return Value(rng.next_bool());
    case 2: return Value(rng.next_in(-1000, 1000));
    case 3: return Value("s" + std::to_string(rng.next_below(10)));
    case 4: {
      Value list = Value::empty_list();
      const auto n = rng.next_below(4);
      for (std::uint64_t i = 0; i < n; ++i) {
        list.push_back(random_value(rng, depth - 1));
      }
      return list;
    }
    default: {
      Value map = Value::empty_map();
      const auto n = rng.next_below(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        map.set("k" + std::to_string(rng.next_below(6)),
                random_value(rng, depth - 1));
      }
      return map;
    }
  }
}

class PatchPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PatchPropertyTest, DiffThenApplyIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Value a = random_value(rng, 3);
    const Value b = random_value(rng, 3);
    EXPECT_EQ(apply(diff(a, b), a), b)
        << "a=" << a.to_string() << " b=" << b.to_string();
  }
}

TEST_P(PatchPropertyTest, ComposeMatchesSequentialApplication) {
  // apply(compose(p, q), S) == apply(q, apply(p, S)) — the property that
  // makes savepoint GC under transition logging correct (Sec. 4.4.2).
  Rng rng(GetParam() * 7919 + 1);
  for (int i = 0; i < 200; ++i) {
    const Value a = random_value(rng, 3);
    const Value b = random_value(rng, 3);
    const Value c = random_value(rng, 3);
    const auto p = diff(a, b);
    const auto q = diff(b, c);
    EXPECT_EQ(apply(compose(p, q), a), c)
        << "a=" << a.to_string() << " b=" << b.to_string()
        << " c=" << c.to_string();
  }
}

TEST_P(PatchPropertyTest, SerializationRoundTripRandom) {
  Rng rng(GetParam() * 104729 + 3);
  for (int i = 0; i < 100; ++i) {
    const Value v = random_value(rng, 4);
    EXPECT_EQ(from_bytes<Value>(to_bytes(v)), v);
  }
}

TEST_P(PatchPropertyTest, ComposeOfIndependentPatches) {
  // The full Sec. 4.4.2 GC-merge property over arbitrary random trees:
  // apply(compose(d1, d2), a) == apply(d2, apply(d1, a)) must hold for
  // INDEPENDENT patches and an unrelated base — not only for diff chains
  // that share their intermediate state. compose() is total (a map patch
  // after remove/non-map starts from an empty map), so no case is exempt.
  Rng rng(GetParam() * 15485863 + 11);
  for (int i = 0; i < 200; ++i) {
    const Value a = random_value(rng, 3);
    const auto d1 = diff(random_value(rng, 3), random_value(rng, 3));
    const auto d2 = diff(random_value(rng, 3), random_value(rng, 3));
    EXPECT_EQ(apply(compose(d1, d2), a), apply(d2, apply(d1, a)))
        << "a=" << a.to_string() << " d1=" << d1.to_string()
        << " d2=" << d2.to_string();
  }
}

TEST_P(PatchPropertyTest, EncodedSizeMatchesWireSize) {
  // encoded_size() is computed arithmetically (the pre-sizing hot path);
  // it must agree with the actual encoder output on every shape.
  Rng rng(GetParam() * 6700417 + 29);
  for (int i = 0; i < 100; ++i) {
    const Value v = random_value(rng, 4);
    EXPECT_EQ(v.encoded_size(), to_bytes(v).size()) << v.to_string();
    const auto patch = diff(random_value(rng, 3), random_value(rng, 3));
    EXPECT_EQ(patch.encoded_size(), to_bytes(patch).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatchPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// --------------------------------------------------------------------------
// TypeRegistry
// --------------------------------------------------------------------------

struct Base : Serializable {
  int x = 0;
  void serialize(Encoder& enc) const override { enc.write_u32(x); }
  void deserialize(Decoder& dec) override {
    x = static_cast<int>(dec.read_u32());
  }
};
struct DerivedA : Base {};
struct DerivedB : Base {};

TEST(TypeRegistryTest, CreatesRegisteredTypes) {
  TypeRegistry<Base> reg;
  reg.register_type<DerivedA>("a");
  reg.register_type<DerivedB>("b");
  EXPECT_TRUE(reg.contains("a"));
  EXPECT_FALSE(reg.contains("c"));
  auto obj = reg.create("a");
  EXPECT_NE(dynamic_cast<DerivedA*>(obj.get()), nullptr);
}

TEST(TypeRegistryTest, DuplicateRegistrationChecks) {
  TypeRegistry<Base> reg;
  reg.register_type<DerivedA>("a");
  EXPECT_THROW(reg.register_type<DerivedB>("a"), LogicError);
}

TEST(TypeRegistryTest, UnknownTypeChecks) {
  TypeRegistry<Base> reg;
  EXPECT_THROW((void)reg.create("nope"), LogicError);
}

}  // namespace
}  // namespace mar::serial
