// Deep end-to-end rollback scenarios: strategy equivalence, logging-mode
// equivalence, nested itineraries (Fig. 6), failing compensations,
// sequential rollbacks and multi-agent isolation.
#include <gtest/gtest.h>

#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::Itinerary;
using agent::LoggingMode;
using agent::PlatformConfig;
using agent::RollbackStrategy;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

Itinerary single_sub(std::vector<std::pair<std::string, int>> steps) {
  Itinerary sub;
  for (auto& [method, node] : steps) sub.step(method, TestWorld::n(node));
  Itinerary main;
  main.sub(std::move(sub));
  return main;
}

/// Run the standard mixed workload and capture the full augmented state:
/// every node's committed resource states plus the agent's data space.
struct WorldState {
  std::map<int, serial::Value> bank;
  std::map<int, serial::Value> dir;
  serial::Value strong;
  serial::Value weak_cash;
  serial::Value weak_touches;
  bool done = false;

  friend bool operator==(const WorldState&, const WorldState&) = default;
};

WorldState run_workload(PlatformConfig cfg, double mixed_fraction,
                        std::uint64_t seed) {
  constexpr int kSteps = 6;
  TestWorld w(cfg, kSteps + 1, seed);
  register_workload(w.platform);

  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary sub;
  double acc = 0;
  for (int i = 0; i < kSteps; ++i) {
    acc += mixed_fraction;
    const bool mixed = acc >= 1.0 - 1e-9;
    if (mixed) acc -= 1.0;
    sub.step(mixed ? "touch_mixed" : "touch_split", TestWorld::n(i + 1));
  }
  sub.step("noop", TestWorld::n(kSteps + 1));
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  agent->set_trigger("noop", kSteps + 1, "sub", 0);
  auto id = w.platform.launch(std::move(agent));
  EXPECT_TRUE(id.is_ok());
  EXPECT_TRUE(w.platform.run_until_finished(id.value()));

  WorldState state;
  state.done = w.platform.outcome(id.value()).state ==
               agent::AgentOutcome::State::done;
  for (int n = 1; n <= kSteps + 1; ++n) {
    state.bank[n] = w.committed(n, "bank");
    state.dir[n] = w.committed(n, "dir");
  }
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  state.strong = fin->data().strong_image();
  state.weak_cash = fin->data().weak("cash");
  state.weak_touches = fin->data().weak("touches");
  return state;
}

// The optimized algorithm is a pure performance optimization: for any
// workload mix it must produce exactly the augmented state the basic
// algorithm produces.
class StrategyEquivalence
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(StrategyEquivalence, OptimizedMatchesBasic) {
  const auto [mixed, seed] = GetParam();
  PlatformConfig basic_cfg;
  basic_cfg.strategy = RollbackStrategy::basic;
  PlatformConfig opt_cfg;
  opt_cfg.strategy = RollbackStrategy::optimized;
  const auto a = run_workload(basic_cfg, mixed, seed);
  const auto b = run_workload(opt_cfg, mixed, seed);
  EXPECT_TRUE(a.done);
  EXPECT_TRUE(b.done);
  EXPECT_EQ(a, b) << "mixed=" << mixed << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, StrategyEquivalence,
    ::testing::Combine(::testing::Values(0.0, 0.34, 0.5, 1.0),
                       ::testing::Values(1u, 42u, 1234u)));

// Transition logging must restore exactly what state logging restores.
class LoggingEquivalence : public ::testing::TestWithParam<double> {};

TEST_P(LoggingEquivalence, TransitionMatchesState) {
  PlatformConfig state_cfg;
  state_cfg.logging = LoggingMode::state;
  PlatformConfig trans_cfg;
  trans_cfg.logging = LoggingMode::transition;
  const auto a = run_workload(state_cfg, GetParam(), 7);
  const auto b = run_workload(trans_cfg, GetParam(), 7);
  EXPECT_TRUE(a.done);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Mixes, LoggingEquivalence,
                         ::testing::Values(0.0, 0.5, 1.0));

// ---------------------------------------------------------------------------
// Nested itineraries (the paper's Fig. 6 scenarios)
// ---------------------------------------------------------------------------

std::unique_ptr<WorkloadAgent> fig6_agent() {
  // SI3 = ( s6, SI4(s5, s4), SI5(s9, s10) ) — numbers map to nodes.
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary si4;
  si4.step("touch_split", TestWorld::n(1)).step("noop", TestWorld::n(2));
  Itinerary si5;
  si5.step("touch_split", TestWorld::n(3)).step("noop", TestWorld::n(4));
  Itinerary si3;
  si3.step("touch_split", TestWorld::n(4)).sub(std::move(si4)).sub(
      std::move(si5));
  Itinerary main;
  main.sub(std::move(si3));
  agent->itinerary() = std::move(main);
  return agent;
}

TEST(NestedItineraryTest, RollbackOfNestedSubOnly) {
  // Sec. 4.4.2: "it can either roll back only sub-itinerary SI4 (by
  // aborting step transaction s4 and compensating s5)..."
  TestWorld w;
  register_workload(w.platform);
  auto agent = fig6_agent();
  // Trigger in s4 (the noop at N2, visit 3); rollback current sub (SI4).
  agent->set_trigger("noop", 3, "sub", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  auto* wl = dynamic_cast<WorkloadAgent*>(fin.get());
  // s6 (visit 1) was NOT compensated: only SI4's s5 was. touches:
  // s6 +1, s5 +1, comp -1, re-run s5 +1, s9 +1 = 3.
  EXPECT_EQ(wl->data().weak("touches").as_int(), 3);
  // visits: s6, s5 committed (2), s4 aborted, re-run s5 s4 (4), SI5 (6).
  EXPECT_EQ(wl->visits(), 6);
}

TEST(NestedItineraryTest, RollbackOfEnclosingSub) {
  // "...or it can also roll back the enclosing sub-itinerary SI3 (by
  // additionally compensating s6)."
  TestWorld w;
  register_workload(w.platform);
  auto agent = fig6_agent();
  agent->set_trigger("noop", 3, "sub", 1);  // one level out: SI3
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  auto* wl = dynamic_cast<WorkloadAgent*>(fin.get());
  // Both s6 AND s5 compensated; everything re-ran.
  // touches: +2 (s6,s5), -2 (comp), re-run +2, s9 +1 = 3.
  EXPECT_EQ(wl->data().weak("touches").as_int(), 3);
  // visits: 2 committed, abort, re-run s6 s5 s4 s9 s10 = 2 + 5 = 7.
  EXPECT_EQ(wl->visits(), 7);
}

TEST(NestedItineraryTest, LightweightSavepointWrittenForImmediateNesting) {
  // "agent begins with SI3 and immediately continues with SI4": only one
  // data-carrying savepoint is necessary; the nested one is lightweight.
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary si4;
  si4.step("touch_split", TestWorld::n(1)).step("noop", TestWorld::n(2));
  Itinerary si3;
  si3.sub(std::move(si4)).step("noop", TestWorld::n(3));
  Itinerary main;
  main.sub(std::move(si3));
  agent->itinerary() = std::move(main);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  const auto sps = w.trace.of_kind(TraceKind::savepoint);
  ASSERT_EQ(sps.size(), 2u);  // SI3 and SI4, written at launch
  EXPECT_EQ(sps[1].detail.find("lightweight") != std::string::npos, true);
  EXPECT_EQ(sps[0].detail.find("lightweight"), std::string::npos);
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
}

TEST(NestedItineraryTest, RollbackAcrossCompletedNestedSub) {
  // SI4 completes (its savepoint is GC'd); the agent then rolls back the
  // enclosing SI3 from inside SI5 — the compensation must cross SI4's
  // operation entries even though SI4's savepoint entry is gone.
  TestWorld w;
  register_workload(w.platform);
  auto agent = fig6_agent();
  // Trigger inside SI5's noop (N4): visits: s6=1, s5=2, s4=3, s9=4, s10=5.
  agent->set_trigger("noop", 5, "sub", 0);
  // levels 0 from inside SI5 = SI5... we want SI3: SI5 is current (depth
  // 2), SI3 is depth 1 → levels_up=1.
  agent->set_trigger("noop", 5, "sub", 1);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done)
      << w.platform.outcome(id.value()).status;
  EXPECT_GE(w.trace.count(TraceKind::sp_gc), 1u);
  EXPECT_EQ(w.trace.count(TraceKind::restore), 1u);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  auto* wl = dynamic_cast<WorkloadAgent*>(fin.get());
  // First pass: s6 +1, s5 +1, s9 +1 = 3; compensation -3; re-run +3 = 3.
  EXPECT_EQ(wl->data().weak("touches").as_int(), 3);
}

// ---------------------------------------------------------------------------
// Failing compensation (Sec. 3.2)
// ---------------------------------------------------------------------------

TEST(FailingCompensationTest, PermanentlyFailingCompensationFailsAgent) {
  // An agent deposits into an account; before the rollback compensates
  // (withdraws), the money is drained and the account allows no
  // overdraft: the compensating operation can never succeed.
  PlatformConfig cfg;
  cfg.max_compensation_attempts = 5;
  TestWorld w(cfg);
  register_workload(w.platform);
  w.open_account(1, "acct", 0, /*overdraft=*/false);

  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() = single_sub({{"deposit", 1}, {"noop", 2}});
  agent->data().weak("cash") = std::int64_t{100};
  agent->set_trigger("noop", 2, "sub", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());

  // Drain the account as soon as the deposit committed, before the
  // rollback's compensating withdraw can run.
  w.sim.run_while_pending([&] {
    return resource::Bank::balance_in(w.committed(1, "bank"), "acct") == 50;
  });
  auto state = w.committed(1, "bank");
  state.as_map().at("accounts").as_map().at("acct").set("balance",
                                                        std::int64_t{0});
  w.platform.node(TestWorld::n(1)).resources().poke_state("bank",
                                                          std::move(state));

  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  const auto& out = w.platform.outcome(id.value());
  EXPECT_EQ(out.state, agent::AgentOutcome::State::failed);
  EXPECT_EQ(out.status.code(), Errc::compensation_failed);
}

TEST(FailingCompensationTest, TransientCompensationFailureRetries) {
  // Same setup, but the money returns before the retry limit: the
  // compensation must eventually succeed (Sec. 4.3's retry loop).
  PlatformConfig cfg;
  cfg.max_compensation_attempts = 0;  // retry forever
  TestWorld w(cfg);
  register_workload(w.platform);
  w.open_account(1, "acct", 0, /*overdraft=*/false);

  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() = single_sub({{"deposit", 1}, {"noop", 2}});
  agent->data().weak("cash") = std::int64_t{100};
  agent->set_trigger("noop", 2, "sub", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());

  w.sim.run_while_pending([&] {
    return resource::Bank::balance_in(w.committed(1, "bank"), "acct") == 50;
  });
  // Drain, then re-fund later: the compensation fails a few times first.
  auto state = w.committed(1, "bank");
  state.as_map().at("accounts").as_map().at("acct").set("balance",
                                                        std::int64_t{0});
  w.platform.node(TestWorld::n(1)).resources().poke_state("bank",
                                                          std::move(state));
  w.sim.schedule_after(500'000, [&] {
    auto s2 = w.committed(1, "bank");
    s2.as_map().at("accounts").as_map().at("acct").set("balance",
                                                       std::int64_t{60});
    w.platform.node(TestWorld::n(1)).resources().poke_state("bank",
                                                            std::move(s2));
  });

  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  EXPECT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  EXPECT_GE(w.trace.count(TraceKind::comp_abort), 1u);
}

// ---------------------------------------------------------------------------
// Misc end-to-end behaviours
// ---------------------------------------------------------------------------

TEST(RollbackE2eTest, TwoSequentialRollbacksInOneRun) {
  TestWorld w;
  register_workload(w.platform);
  for (int n = 1; n <= 3; ++n) w.open_account(n, "acct", 1000);

  auto agent = std::make_unique<WorkloadAgent>();
  agent->itinerary() = single_sub(
      {{"withdraw", 1}, {"withdraw", 2}, {"noop", 3}, {"noop", 3}});
  // First rollback at visit 3 (first noop), second at visit 7 (the same
  // noop on the re-run: 3 committed + abort + re-run 1,2 → visits 6,
  // noop → 7).
  agent->set_trigger("noop", 3, "sub", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  // Swap the trigger mid-flight is impossible (the agent is serialized),
  // so encode the second trigger up front: at==3 only fires once; use a
  // second agent run instead to assert repeatability.
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state,
            agent::AgentOutcome::State::done);
  EXPECT_EQ(w.trace.count(TraceKind::rollback_done), 1u);

  // Second agent, triggering at its own visit 3: state composes.
  auto agent2 = std::make_unique<WorkloadAgent>();
  agent2->itinerary() = single_sub(
      {{"withdraw", 1}, {"withdraw", 2}, {"noop", 3}, {"noop", 3}});
  agent2->set_trigger("noop", 3, "sub", 0);
  auto id2 = w.platform.launch(std::move(agent2));
  ASSERT_TRUE(id2.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id2.value()));
  ASSERT_EQ(w.platform.outcome(id2.value()).state,
            agent::AgentOutcome::State::done);
  EXPECT_EQ(w.trace.count(TraceKind::rollback_done), 2u);
  EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 800);
  EXPECT_EQ(resource::Bank::balance_in(w.committed(2, "bank"), "acct"), 800);
}

TEST(RollbackE2eTest, ConcurrentAgentsStayIsolated) {
  // Two agents tour the same banks; locking serializes their step
  // transactions, aborted steps restart, and both terminate with
  // exactly-once effects.
  TestWorld w;
  register_workload(w.platform);
  for (int n = 1; n <= 4; ++n) w.open_account(n, "acct", 1000);

  std::vector<AgentId> ids;
  for (int a = 0; a < 2; ++a) {
    auto agent = std::make_unique<WorkloadAgent>();
    agent->itinerary() = single_sub(
        {{"withdraw", 1}, {"withdraw", 2}, {"withdraw", 3}, {"withdraw", 4}});
    auto id = w.platform.launch(std::move(agent));
    ASSERT_TRUE(id.is_ok());
    ids.push_back(id.value());
  }
  for (const auto id : ids) {
    ASSERT_TRUE(w.platform.run_until_finished(id));
    ASSERT_EQ(w.platform.outcome(id).state, agent::AgentOutcome::State::done);
  }
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(resource::Bank::balance_in(w.committed(n, "bank"), "acct"), 800)
        << "node " << n;
  }
}

TEST(RollbackE2eTest, RollbackBeyondDiscardedLogFails) {
  // After a top-level sub-itinerary completes, its rollback information is
  // discarded; a later rollback targeting a savepoint from that era must
  // fail cleanly (the paper: an abort of the agent is only possible
  // during the FIRST sub-itinerary).
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary first;
  first.step("savepoint", TestWorld::n(1));
  Itinerary second;
  second.step("noop", TestWorld::n(2));
  Itinerary main;
  main.sub(std::move(first)).sub(std::move(second));
  agent->itinerary() = std::move(main);
  // In the second sub-itinerary, target the ad-hoc savepoint taken in the
  // first — its log entries were discarded at the boundary.
  agent->set_trigger("noop", 2, "last_sp", 0);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  const auto& out = w.platform.outcome(id.value());
  EXPECT_EQ(out.state, agent::AgentOutcome::State::failed);
  EXPECT_EQ(out.status.code(), Errc::not_found);
}

TEST(RollbackE2eTest, StepRestartAfterLockConflictPreservesExactlyOnce) {
  // Agent B's step hits agent A's lock, aborts and restarts; the restart
  // must not double-apply B's resource operations.
  PlatformConfig cfg;
  cfg.resource_op_service_us = 50'000;  // widen the conflict window
  TestWorld w(cfg);
  register_workload(w.platform);
  w.open_account(1, "acct", 1000);

  auto a = std::make_unique<WorkloadAgent>();
  a->itinerary() = single_sub({{"withdraw", 1}, {"noop", 2}});
  auto b = std::make_unique<WorkloadAgent>();
  b->itinerary() = single_sub({{"withdraw", 1}, {"noop", 2}});
  auto ida = w.platform.launch(std::move(a));
  auto idb = w.platform.launch(std::move(b));
  ASSERT_TRUE(ida.is_ok());
  ASSERT_TRUE(idb.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(ida.value()));
  ASSERT_TRUE(w.platform.run_until_finished(idb.value()));
  EXPECT_EQ(resource::Bank::balance_in(w.committed(1, "bank"), "acct"), 800);
}

}  // namespace
}  // namespace mar
