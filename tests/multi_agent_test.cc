// Multi-agent executions — the paper's Sec. 6 future work: "an enhanced
// agent execution model supporting exactly-once executions comprising
// more than one agent".
//
// Mechanisms under test:
//   * spawn_child(): the child's launch commits atomically with the
//     spawning step (exactly-once spawn, even under crashes);
//   * result delivery: the child's result lands in a mailbox within its
//     final step transaction (exactly-once delivery); join_child() parks
//     the parent's step until it arrives;
//   * cascading rollback: compensating a spawning step cancels the child
//     — a running child performs a complete rollback of its own
//     committed steps and terminates `cancelled`; a finished child is
//     re-injected as a compensating execution; a child whose log was
//     discarded can no longer be compensated (Sec. 3.2 failing
//     compensation).
#include <gtest/gtest.h>

#include "harness/agents.h"
#include "harness/world.h"

namespace mar {
namespace {

using agent::AgentOutcome;
using agent::Itinerary;
using agent::PlatformConfig;
using agent::StepContext;
using harness::TestWorld;
using harness::WorkloadAgent;
using harness::register_workload;

serial::Value kv(
    std::initializer_list<std::pair<std::string, serial::Value>> pairs) {
  serial::Value v = serial::Value::empty_map();
  for (auto& [k, val] : pairs) v.set(k, val);
  return v;
}

/// Child: touches the directory on each visited node (publishing
/// "probe-<n>") and returns the number of touches as its result.
class ProbeAgent final : public agent::Agent {
 public:
  ProbeAgent() {
    data().declare_strong("notes", serial::Value::empty_list());
    data().declare_weak("result", std::int64_t{0});
  }
  std::string type_name() const override { return "probe"; }
  void run_step(const std::string& step, StepContext& ctx) override {
    if (step != "probe") return;
    auto& count = data().weak("result");
    const std::string key =
        "probe-" + std::to_string(id().value()) + "-" +
        std::to_string(count.as_int());
    auto r = ctx.invoke("dir", "publish", kv({{"key", key}, {"value", 1}}));
    if (!r.is_ok()) return;  // lock conflict: the platform restarts us
    count = count.as_int() + 1;
    ctx.log_resource_compensation("dir", "comp.remove_entry",
                                  kv({{"key", key}}));
    ctx.log_agent_compensation(
        "comp.counter_sub",
        kv({{"slot", serial::Value("result")}, {"amount", 1}}));
  }
};

/// Parent: spawns `fanout` probe children in one step, joins their
/// results in later steps, and optionally rolls the spawning step back.
class MasterAgent final : public agent::Agent {
 public:
  MasterAgent() {
    data().declare_strong("gathered", serial::Value::empty_list());
    data().declare_weak("sum", std::int64_t{0});
    data().declare_weak("cfg", serial::Value::empty_map());
  }
  std::string type_name() const override { return "master"; }

  void configure(std::int64_t fanout, std::int64_t probe_nodes,
                 bool rollback_after_join) {
    auto& cfg = data().weak("cfg");
    cfg.set("fanout", fanout);
    cfg.set("probe_nodes", probe_nodes);
    cfg.set("rollback", rollback_after_join);
  }

  void run_step(const std::string& step, StepContext& ctx) override {
    const auto& cfg = data().weak("cfg");
    if (step == "spawn") {
      for (std::int64_t i = 0; i < cfg.at("fanout").as_int(); ++i) {
        auto child = std::make_unique<ProbeAgent>();
        Itinerary probes;
        for (std::int64_t n = 0; n < cfg.at("probe_nodes").as_int(); ++n) {
          probes.step("probe", TestWorld::n(2 + static_cast<int>(
                                                    (i + n) % 3)));
        }
        Itinerary main;
        main.sub(std::move(probes));
        child->itinerary() = std::move(main);
        ctx.spawn_child(std::move(child), ctx.node(),
                        "probe-result-" + std::to_string(i));
      }
      return;
    }
    if (step == "join") {
      // Join every child; any not-yet-delivered result parks the step.
      for (std::int64_t i = 0; i < cfg.at("fanout").as_int(); ++i) {
        auto r = ctx.join_child("probe-result-" + std::to_string(i));
        if (!r.is_ok()) return;  // retry_step already requested
        const auto& record = r.value().at("value");
        if (record.at("ok").as_bool()) {
          data().weak("sum") =
              data().weak("sum").as_int() + record.at("result").as_int();
        }
      }
      return;
    }
    if (step == "decide") {
      if (cfg.at("rollback").as_bool() && rollbacks_completed() == 0) {
        ctx.request_rollback_sub_itinerary();
      }
    }
  }
};

void register_agents(agent::Platform& platform) {
  register_workload(platform);  // comp.remove_entry, comp.counter_sub, ...
  platform.agent_types().register_type<ProbeAgent>("probe");
  platform.agent_types().register_type<MasterAgent>("master");
}

std::unique_ptr<MasterAgent> master(int fanout, int probe_nodes,
                                    bool rollback) {
  auto agent = std::make_unique<MasterAgent>();
  agent->configure(fanout, probe_nodes, rollback);
  Itinerary sub;
  sub.step("spawn", TestWorld::n(1));
  sub.step("join", TestWorld::n(1));
  sub.step("decide", TestWorld::n(1));
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  return agent;
}

int probe_keys(TestWorld& w, int nodes) {
  int found = 0;
  for (int n = 1; n <= nodes; ++n) {
    for (const auto& [key, value] :
         w.committed(n, "dir").at("entries").as_map()) {
      if (key.rfind("probe-", 0) == 0) ++found;
    }
  }
  return found;
}

TEST(MultiAgentTest, SpawnJoinCollectsEveryChildResult) {
  TestWorld w(PlatformConfig{}, 5);
  register_agents(w.platform);
  auto id = w.platform.launch(master(3, 2, false));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  // 3 children × 2 probes each.
  EXPECT_EQ(fin->data().weak("sum").as_int(), 6);
  EXPECT_EQ(probe_keys(w, 5), 6);
  EXPECT_EQ(w.platform.children_of(id.value()).size(), 3u);
  // Every child finished.
  for (const auto child : w.platform.children_of(id.value())) {
    EXPECT_EQ(w.platform.outcome(child).state, AgentOutcome::State::done);
  }
}

TEST(MultiAgentTest, SpawnIsExactlyOnceUnderCrashStorm) {
  TestWorld w(PlatformConfig{}, 5, 23);
  register_agents(w.platform);
  Rng frng(0x5eed);
  net::FaultInjector::CrashPlan plan;
  plan.mean_time_between_crashes_us = 600'000;
  plan.mean_downtime_us = 100'000;
  plan.horizon_us = 60'000'000;
  w.faults.random_crashes(w.net.node_ids(), frng, plan);

  auto id = w.platform.launch(master(3, 2, false));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  // Exactly-once spawn + exactly-once probes + exactly-once delivery:
  // the counts must be exact despite the crash storm.
  EXPECT_EQ(fin->data().weak("sum").as_int(), 6);
  EXPECT_EQ(probe_keys(w, 5), 6);
}

TEST(MultiAgentTest, ParentRollbackCompensatesFinishedChildren) {
  // The parent joins all results, then rolls back its spawning step. The
  // children are already done, so the spawn compensation re-injects them
  // as compensating executions: every probe key disappears again.
  TestWorld w(PlatformConfig{}, 5);
  register_agents(w.platform);
  auto id = w.platform.launch(master(2, 2, true));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  // Drive the children's compensating executions to completion too.
  w.sim.run();
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  EXPECT_EQ(probe_keys(w, 5), 4);  // re-run after rollback re-probes
  int cancelled = 0;
  for (const auto child : w.platform.children_of(id.value())) {
    if (w.platform.outcome(child).state == AgentOutcome::State::cancelled) {
      ++cancelled;
    }
  }
  // The first generation (2 children) was compensated; the re-run spawned
  // a second generation that completed normally.
  EXPECT_EQ(cancelled, 2);
  EXPECT_EQ(w.platform.children_of(id.value()).size(), 4u);
}

TEST(MultiAgentTest, CancelRequestRollsBackARunningAgent) {
  // Directly exercise the cancellation machinery: let a workload agent
  // commit a few compensable steps, then request cancellation.
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary sub;
  sub.step("touch_split", TestWorld::n(1))
      .step("touch_split", TestWorld::n(2))
      .step("touch_split", TestWorld::n(3))
      .step("noop", TestWorld::n(4));
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  // Cancel while the agent is mid-itinerary (the pipelined commit path
  // finishes the course faster, so the request lands well before the
  // final step rather than near the old 8 ms mark).
  w.sim.schedule_at(5'000, [&] { w.platform.request_cancel(id.value()); });
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  EXPECT_EQ(w.platform.outcome(id.value()).state,
            AgentOutcome::State::cancelled);
  // Everything it committed was compensated.
  for (int n = 1; n <= 4; ++n) {
    for (const auto& [key, value] :
         w.committed(n, "dir").at("entries").as_map()) {
      EXPECT_TRUE(key.rfind("touch-", 0) != 0) << key;
    }
  }
}

TEST(MultiAgentTest, CancelIsVoidAfterLogDiscard) {
  // Sec. 4.4.2: "an abort of the agent by performing a complete rollback
  // is possible only during the execution of the first sub-itinerary of
  // the main itinerary". After the first top-level sub completes (log
  // discard), a cancellation request is void and the agent completes.
  TestWorld w;
  register_workload(w.platform);
  auto agent = std::make_unique<WorkloadAgent>();
  Itinerary first;
  first.step("touch_split", TestWorld::n(1));
  Itinerary second;
  second.step("touch_split", TestWorld::n(2))
      .step("touch_split", TestWorld::n(3));
  Itinerary main;
  main.sub(std::move(first));
  main.sub(std::move(second));
  agent->itinerary() = std::move(main);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  // Request the cancel after the first top-level sub committed (its
  // completion discards the log).
  w.sim.schedule_at(8'000, [&] { w.platform.request_cancel(id.value()); });
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  EXPECT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(fin->data().weak("touches").as_int(), 3);
}

TEST(MultiAgentTest, ChildFailureDeliversErrorToTheMailbox) {
  // A child that fails permanently still unblocks the parent's join: the
  // failure record is delivered within its cleanup transaction.
  TestWorld w(PlatformConfig{}, 5);
  register_agents(w.platform);

  class FailingChildMaster final : public agent::Agent {
   public:
    FailingChildMaster() {
      data().declare_strong("notes", serial::Value::empty_list());
      data().declare_weak("child_ok", true);
      data().declare_weak("child_error", std::string{});
    }
    std::string type_name() const override { return "failmaster"; }
    void run_step(const std::string& step, StepContext& ctx) override {
      if (step == "spawn") {
        auto child = std::make_unique<WorkloadAgent>();
        Itinerary sub;
        // All-vital itinerary whose step fails permanently.
        sub.step("noop", TestWorld::n(3));
        sub.step("noop", TestWorld::n(4));
        Itinerary main;
        main.sub(std::move(sub));
        child->itinerary() = std::move(main);
        child->set_trigger("noop", 1, "fail", 0);
        ctx.spawn_child(std::move(child), ctx.node(), "failing-child");
        return;
      }
      if (step == "join") {
        auto r = ctx.join_child("failing-child");
        if (!r.is_ok()) return;
        const auto& record = r.value().at("value");
        data().weak("child_ok") = record.at("ok").as_bool();
        data().weak("child_error") = record.at("error");
      }
    }
  };
  w.platform.agent_types().register_type<FailingChildMaster>("failmaster");

  auto agent = std::make_unique<FailingChildMaster>();
  Itinerary sub;
  sub.step("spawn", TestWorld::n(1)).step("join", TestWorld::n(1));
  Itinerary main;
  main.sub(std::move(sub));
  agent->itinerary() = std::move(main);
  auto id = w.platform.launch(std::move(agent));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  w.sim.run();  // drain the child's terminal bookkeeping
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_FALSE(fin->data().weak("child_ok").as_bool());
  EXPECT_NE(fin->data().weak("child_error").as_string().find("forbidden"),
            std::string::npos);
  // The child itself is recorded as failed.
  const auto kids = w.platform.children_of(id.value());
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(w.platform.outcome(kids[0]).state, AgentOutcome::State::failed);
}

TEST(MultiAgentTest, RemoteResultDeliveryIsTransactional) {
  // The child's last step runs far from the mailbox node: delivery goes
  // through the transactional RPC path and must still be exactly-once
  // under a mailbox-node crash.
  TestWorld w(PlatformConfig{}, 5, 31);
  register_agents(w.platform);
  w.faults.crash_at(TestWorld::n(1), 15'000, 300'000);
  auto id = w.platform.launch(master(2, 3, false));
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(w.platform.run_until_finished(id.value()));
  ASSERT_EQ(w.platform.outcome(id.value()).state, AgentOutcome::State::done);
  auto fin = w.platform.decode(w.platform.outcome(id.value()).final_agent);
  EXPECT_EQ(fin->data().weak("sum").as_int(), 6);
}

}  // namespace
}  // namespace mar
