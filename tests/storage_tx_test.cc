// Unit tests for stable storage, queue staging, and the distributed
// transaction manager (1PC fast path, 2PC, presumed abort, recovery).
#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "storage/stable_storage.h"
#include "tx/queue_manager.h"
#include "tx/tx_manager.h"
#include "util/trace.h"

namespace mar {
namespace {

using storage::QueueRecord;
using storage::RecordKind;
using storage::StableStorage;

QueueRecord record(std::uint64_t id, std::uint64_t agent = 1) {
  QueueRecord r;
  r.record_id = id;
  r.agent = AgentId(agent);
  r.kind = RecordKind::execute;
  r.payload = {1, 2, 3};
  return r;
}

TEST(StableStorageTest, KvBasics) {
  StableStorage s;
  EXPECT_FALSE(s.get("k").has_value());
  s.put("k", {1, 2});
  ASSERT_TRUE(s.get("k").has_value());
  EXPECT_EQ(s.get("k")->size(), 2u);
  EXPECT_TRUE(s.contains("k"));
  EXPECT_TRUE(s.erase("k"));
  EXPECT_FALSE(s.erase("k"));
}

TEST(StableStorageTest, PrefixScan) {
  StableStorage s;
  s.put("a:1", {});
  s.put("a:2", {});
  s.put("b:1", {});
  EXPECT_EQ(s.keys_with_prefix("a:").size(), 2u);
  EXPECT_EQ(s.keys_with_prefix("b:").size(), 1u);
  EXPECT_TRUE(s.keys_with_prefix("c:").empty());
}

TEST(StableStorageTest, QueueFifoAndRemove) {
  StableStorage s;
  s.enqueue(record(1));
  s.enqueue(record(2));
  ASSERT_NE(s.front(), nullptr);
  EXPECT_EQ(s.front()->record_id, 1u);
  EXPECT_TRUE(s.remove(1));
  EXPECT_EQ(s.front()->record_id, 2u);
  EXPECT_FALSE(s.remove(1));
}

TEST(StableStorageTest, DuplicateEnqueueIgnoredEvenAfterRemoval) {
  // Exactly-once: a duplicate commit of the same transfer must not
  // resurrect a consumed record.
  StableStorage s;
  s.enqueue(record(7));
  EXPECT_TRUE(s.remove(7));
  s.enqueue(record(7));
  EXPECT_TRUE(s.queue_empty());
}

TEST(StableStorageTest, MetersBytesWritten) {
  StableStorage s;
  const auto before = s.stats().bytes_written;
  s.put("key", serial::Bytes(100));
  s.enqueue(record(1));
  EXPECT_GT(s.stats().bytes_written, before + 100);
  EXPECT_EQ(s.stats().kv_writes, 1u);
  EXPECT_EQ(s.stats().queue_ops, 1u);
}

TEST(QueueRecordTest, SerializationRoundTrip) {
  QueueRecord r;
  r.record_id = 42;
  r.agent = AgentId(9);
  r.kind = RecordKind::compensate;
  r.rollback_target = SavepointId(3);
  r.payload = {9, 9, 9};
  serial::Encoder enc;
  r.serialize(enc);
  serial::Decoder dec(enc.buffer());
  QueueRecord back;
  back.deserialize(dec);
  EXPECT_EQ(back.record_id, 42u);
  EXPECT_EQ(back.agent, AgentId(9));
  EXPECT_EQ(back.kind, RecordKind::compensate);
  EXPECT_EQ(back.rollback_target, SavepointId(3));
  EXPECT_EQ(back.payload, serial::Bytes({9, 9, 9}));
}

// --------------------------------------------------------------------------
// QueueManager as a participant
// --------------------------------------------------------------------------

TEST(StableStorageTest, RecordAreaBasics) {
  StableStorage s;
  EXPECT_FALSE(s.has_record("agent:1"));
  EXPECT_EQ(s.record_segment_count("agent:1"), 0u);
  s.record_reset("agent:1", {1, 2, 3});
  s.record_append("agent:1", {4});
  s.record_append("agent:1", {5, 6});
  ASSERT_TRUE(s.has_record("agent:1"));
  const auto* segs = s.record_segments("agent:1");
  ASSERT_NE(segs, nullptr);
  ASSERT_EQ(segs->size(), 3u);
  EXPECT_EQ((*segs)[0], (serial::Bytes{1, 2, 3}));
  EXPECT_EQ((*segs)[2], (serial::Bytes{5, 6}));
  // Compaction: reset folds the chain back to one base segment.
  s.record_reset("agent:1", {9});
  EXPECT_EQ(s.record_segment_count("agent:1"), 1u);
  EXPECT_TRUE(s.record_erase("agent:1"));
  EXPECT_FALSE(s.record_erase("agent:1"));
  EXPECT_EQ(s.record_segments("agent:1"), nullptr);
}

TEST(StableStorageTest, RecordAreaMetersAppendsNotRewrites) {
  StableStorage s;
  s.record_reset("k", serial::Bytes(1000, 0xAA));
  const auto after_base = s.stats().bytes_written;
  s.record_append("k", serial::Bytes(10, 0xBB));
  // The append is metered at delta size, not record size.
  EXPECT_EQ(s.stats().bytes_written, after_base + 10);
  EXPECT_EQ(s.stats().record_resets, 1u);
  EXPECT_EQ(s.stats().record_appends, 1u);
}

TEST(StableStorageTest, ForEachWithPrefixVisitsInOrder) {
  StableStorage s;
  s.put("a:2", {2});
  s.put("a:1", {1});
  s.put("b:1", {3});
  std::vector<std::string> seen;
  s.for_each_with_prefix("a:", [&seen](const std::string& key,
                                       const serial::Bytes& bytes) {
    seen.push_back(key + "=" + std::to_string(bytes[0]));
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "a:1=1");
  EXPECT_EQ(seen[1], "a:2=2");
}

TEST(QueueManagerTest, FifoOfferWhileNothingAborts) {
  StableStorage s;
  tx::QueueManager qm(s);
  s.enqueue(record(1, 1));
  s.enqueue(record(2, 2));
  std::unordered_set<AgentId> busy;
  // Classic behaviour: first unclaimed, non-busy record in queue order.
  ASSERT_NE(qm.next_eligible(busy), nullptr);
  EXPECT_EQ(qm.next_eligible(busy)->record_id, 1u);
  ASSERT_TRUE(qm.claim(1));
  EXPECT_EQ(qm.next_eligible(busy)->record_id, 2u);
  busy.insert(AgentId(2));
  EXPECT_EQ(qm.next_eligible(busy), nullptr);
}

TEST(QueueManagerTest, AgedAdmissionUnpinsAbortedHeadWithoutStarvingIt) {
  // A repeatedly conflict-aborted record must not pin the queue head:
  // records behind it are admitted first, and every bypass ages the
  // passed-over record back towards admission (bounded bypassing).
  StableStorage s;
  tx::QueueManager qm(s);
  s.enqueue(record(1, 1));
  s.enqueue(record(2, 2));
  s.enqueue(record(3, 3));
  std::unordered_set<AgentId> busy;

  // Record 1 is claimed and aborted twice (released while still queued).
  ASSERT_EQ(qm.next_eligible(busy)->record_id, 1u);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(qm.claim(1));
    qm.release(1);
  }
  // The aged score now admits the fresher records ahead of the head...
  EXPECT_EQ(qm.next_eligible(busy)->record_id, 2u);
  ASSERT_TRUE(qm.claim(2));
  EXPECT_EQ(qm.next_eligible(busy)->record_id, 3u);
  ASSERT_TRUE(qm.claim(3));
  // ...and with everything else claimed, the aborted head is re-offered.
  EXPECT_EQ(qm.next_eligible(busy)->record_id, 1u);
  qm.release(2);
  qm.release(3);
  // Each bypass aged record 1 (2 releases − 2 bypasses = 0), while 2 and
  // 3 were each released once: the aged head is back in front — bounded
  // bypassing, no starvation.
  EXPECT_EQ(qm.next_eligible(busy)->record_id, 1u);

  // Terminal release (after the record was consumed) must not count.
  const TxId tx(100);
  qm.stage_remove(tx, 1);
  EXPECT_TRUE(qm.prepare(tx));
  qm.commit(tx);
  qm.release(1);  // release_slot on the commit path: record already gone
  EXPECT_EQ(qm.next_eligible(busy)->record_id, 2u);
}

TEST(QueueManagerTest, CommitAppliesStagedOps) {
  StableStorage s;
  tx::QueueManager qm(s);
  s.enqueue(record(1));
  const TxId tx(100);
  qm.stage_remove(tx, 1);
  qm.stage_enqueue(tx, record(2));
  EXPECT_TRUE(qm.has_tx(tx));
  // Nothing applied until commit.
  EXPECT_EQ(s.front()->record_id, 1u);
  EXPECT_TRUE(qm.prepare(tx));
  qm.commit(tx);
  ASSERT_NE(s.front(), nullptr);
  EXPECT_EQ(s.front()->record_id, 2u);
  EXPECT_FALSE(qm.has_tx(tx));
}

TEST(QueueManagerTest, AbortDiscardsStagedOps) {
  StableStorage s;
  tx::QueueManager qm(s);
  s.enqueue(record(1));
  const TxId tx(100);
  qm.stage_remove(tx, 1);
  qm.abort(tx);
  EXPECT_EQ(s.front()->record_id, 1u);
}

TEST(QueueManagerTest, PreparedStateSurvivesCrash) {
  StableStorage s;
  tx::QueueManager qm(s);
  const TxId prepared_tx(1);
  const TxId volatile_tx(2);
  qm.stage_enqueue(prepared_tx, record(10));
  qm.stage_enqueue(volatile_tx, record(20));
  EXPECT_TRUE(qm.prepare(prepared_tx));
  qm.on_crash();  // volatile staging evaporates, prepared reloads
  EXPECT_TRUE(qm.has_tx(prepared_tx));
  EXPECT_FALSE(qm.has_tx(volatile_tx));
  qm.commit(prepared_tx);
  ASSERT_NE(s.front(), nullptr);
  EXPECT_EQ(s.front()->record_id, 10u);
}

TEST(QueueManagerTest, RecordOpsGroupCommitWithQueueOps) {
  StableStorage s;
  tx::QueueManager qm(s);
  s.enqueue(record(1));
  const TxId tx(100);
  qm.stage_remove(tx, 1);
  qm.stage_enqueue(tx, record(2));
  qm.stage_record_reset(tx, "agentimg:1", {1, 2});
  qm.stage_record_append(tx, "agentimg:1", {3});
  // Nothing visible before commit.
  EXPECT_FALSE(s.has_record("agentimg:1"));
  EXPECT_TRUE(qm.prepare(tx));
  qm.commit(tx);
  ASSERT_EQ(s.record_segment_count("agentimg:1"), 2u);
  EXPECT_EQ((*s.record_segments("agentimg:1"))[1], (serial::Bytes{3}));
  EXPECT_EQ(s.front()->record_id, 2u);
}

TEST(QueueManagerTest, AbortDiscardsRecordOps) {
  StableStorage s;
  tx::QueueManager qm(s);
  s.record_reset("agentimg:1", {1});
  const TxId tx(100);
  qm.stage_record_append(tx, "agentimg:1", {2});
  qm.stage_record_erase(tx, "agentimg:1");
  qm.abort(tx);
  EXPECT_EQ(s.record_segment_count("agentimg:1"), 1u);
}

TEST(QueueManagerTest, PreparedRecordOpsSurviveCrash) {
  StableStorage s;
  tx::QueueManager qm(s);
  const TxId tx(7);
  qm.stage_record_reset(tx, "agentimg:9", {1, 2, 3});
  qm.stage_record_append(tx, "agentimg:9", {4});
  EXPECT_TRUE(qm.prepare(tx));
  qm.on_crash();  // reloads the prepared staging, record ops included
  EXPECT_TRUE(qm.has_tx(tx));
  qm.commit(tx);
  ASSERT_EQ(s.record_segment_count("agentimg:9"), 2u);
  EXPECT_EQ((*s.record_segments("agentimg:9"))[0], (serial::Bytes{1, 2, 3}));
}

TEST(QueueManagerTest, CommitIsIdempotent) {
  StableStorage s;
  tx::QueueManager qm(s);
  const TxId tx(1);
  qm.stage_enqueue(tx, record(10));
  EXPECT_TRUE(qm.prepare(tx));
  qm.commit(tx);
  qm.commit(tx);  // duplicate decision delivery
  EXPECT_EQ(s.queue().size(), 1u);
}

// --------------------------------------------------------------------------
// TxManager: 2PC
// --------------------------------------------------------------------------

struct TxWorld {
  sim::Simulator sim;
  TraceSink trace;
  net::Network net{sim, trace};
  struct Node {
    StableStorage storage;
    std::unique_ptr<tx::QueueManager> qm;
    std::unique_ptr<tx::TxManager> txm;
  };
  std::map<NodeId, Node> nodes;

  explicit TxWorld(int n) {
    for (int i = 1; i <= n; ++i) {
      const NodeId id(static_cast<std::uint32_t>(i));
      auto& node = nodes[id];
      node.qm = std::make_unique<tx::QueueManager>(node.storage);
      node.txm = std::make_unique<tx::TxManager>(id, sim, net, node.storage);
      node.txm->register_participant(*node.qm);
      net.add_node(id, [this, id](const net::Message& m) {
        nodes.at(id).txm->on_message(m);
      });
      net.subscribe_node_state([this, id](NodeId n2, bool up) {
        if (n2 != id) return;
        if (up) {
          nodes.at(id).txm->on_recover();
        } else {
          nodes.at(id).txm->on_crash();
        }
      });
    }
  }
  Node& n(int i) { return nodes.at(NodeId(static_cast<std::uint32_t>(i))); }
};

TEST(TxManagerTest, TxIdEncodesCoordinator) {
  const TxId tx = tx::make_tx_id(NodeId(7), 123);
  EXPECT_EQ(tx::coordinator_of(tx), NodeId(7));
}

TEST(TxManagerTest, LocalOnlyCommit) {
  TxWorld w(1);
  auto& n1 = w.n(1);
  const TxId tx = n1.txm->begin();
  n1.qm->stage_enqueue(tx, record(1));
  bool committed = false;
  n1.txm->commit_async(tx, [&](bool ok) { committed = ok; });
  w.sim.run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(n1.storage.queue().size(), 1u);
  EXPECT_TRUE(n1.txm->idle());
}

TEST(TxManagerTest, DistributedCommitAppliesOnBothNodes) {
  TxWorld w(2);
  auto& n1 = w.n(1);
  auto& n2 = w.n(2);
  const TxId tx = n1.txm->begin();
  n1.qm->stage_remove(tx, 99);  // no-op remove, still stages
  n2.qm->stage_enqueue(tx, record(5));
  n2.txm->note_remote_staged(tx);
  n1.txm->enlist_remote(tx, NodeId(2));
  bool committed = false;
  n1.txm->commit_async(tx, [&](bool ok) { committed = ok; });
  w.sim.run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(n2.storage.queue().size(), 1u);
  EXPECT_TRUE(n1.txm->idle());
  EXPECT_TRUE(n2.txm->idle());
}

TEST(TxManagerTest, AbortDiscardsRemoteStaging) {
  TxWorld w(2);
  auto& n1 = w.n(1);
  auto& n2 = w.n(2);
  const TxId tx = n1.txm->begin();
  n2.qm->stage_enqueue(tx, record(5));
  n2.txm->note_remote_staged(tx);
  n1.txm->enlist_remote(tx, NodeId(2));
  n1.txm->abort_tx(tx);
  w.sim.run();
  EXPECT_TRUE(n2.storage.queue_empty());
  EXPECT_TRUE(n2.txm->idle());
}

TEST(TxManagerTest, ParticipantVotesNoWhenStagingLost) {
  // Participant crashed after staging but before prepare: its volatile
  // staging is gone, so it must vote NO and the commit must fail.
  TxWorld w(2);
  auto& n1 = w.n(1);
  auto& n2 = w.n(2);
  const TxId tx = n1.txm->begin();
  n2.qm->stage_enqueue(tx, record(5));
  n2.txm->note_remote_staged(tx);
  n1.txm->enlist_remote(tx, NodeId(2));
  // Crash + instant recovery wipes volatile staging.
  w.net.crash_node(NodeId(2));
  w.net.recover_node(NodeId(2));
  bool done = false;
  bool committed = true;
  n1.txm->commit_async(tx, [&](bool ok) {
    done = true;
    committed = ok;
  });
  w.sim.run_while_pending([&] { return done; });
  EXPECT_TRUE(done);
  EXPECT_FALSE(committed);
  EXPECT_TRUE(n2.storage.queue_empty());
}

TEST(TxManagerTest, CommitSurvivesParticipantCrashAfterPrepare) {
  // Once prepared, the participant must apply the decision after recovery
  // (coordinator re-drives COMMIT).
  TxWorld w(2);
  auto& n1 = w.n(1);
  auto& n2 = w.n(2);
  const TxId tx = n1.txm->begin();
  n2.qm->stage_enqueue(tx, record(5));
  n2.txm->note_remote_staged(tx);
  n1.txm->enlist_remote(tx, NodeId(2));

  bool committed = false;
  n1.txm->commit_async(tx, [&](bool ok) { committed = ok; });
  // Let PREPARE/VOTE happen, then crash N2 just as COMMIT is in flight.
  w.sim.schedule_at(1'500, [&] { w.net.crash_node(NodeId(2)); });
  w.sim.schedule_at(400'000, [&] { w.net.recover_node(NodeId(2)); });
  w.sim.run();
  EXPECT_TRUE(committed);
  EXPECT_EQ(n2.storage.queue().size(), 1u);
  EXPECT_TRUE(n1.txm->idle());
  EXPECT_TRUE(n2.txm->idle());
}

TEST(TxManagerTest, PresumedAbortAfterCoordinatorCrash) {
  // Coordinator crashes before deciding: the prepared participant must
  // learn ABORT through its inquiry (presumed abort).
  TxWorld w(2);
  auto& n1 = w.n(1);
  auto& n2 = w.n(2);
  const TxId tx = n1.txm->begin();
  n2.qm->stage_enqueue(tx, record(5));
  n2.txm->note_remote_staged(tx);
  n1.txm->enlist_remote(tx, NodeId(2));
  n1.txm->commit_async(tx, [](bool) {});
  // Crash the coordinator while votes are in flight; recover later.
  w.sim.schedule_at(700, [&] { w.net.crash_node(NodeId(1)); });
  w.sim.schedule_at(600'000, [&] { w.net.recover_node(NodeId(1)); });
  w.sim.run();
  EXPECT_TRUE(n2.storage.queue_empty());  // aborted, nothing applied
  EXPECT_TRUE(n1.txm->idle());
  EXPECT_TRUE(n2.txm->idle());
}

TEST(TxManagerTest, CoordinatorCrashBetweenDecideAndFlush) {
  // Pipelined coordinator: all votes are in and the decision sits in the
  // decision queue awaiting its batched durability flush. A crash before
  // the flush persisted nothing — no txdec: record exists — so the
  // prepared participant's inquiry must resolve to presumed abort and
  // both sides converge with nothing applied.
  TxWorld w(2);
  auto& n1 = w.n(1);
  auto& n2 = w.n(2);
  n1.txm->set_group_commit(8, 50'000);  // long dwell: decision stays queued
  n2.txm->set_group_commit(1, 0);       // participant votes immediately
  const TxId tx = n1.txm->begin();
  n2.qm->stage_enqueue(tx, record(5));
  n2.txm->note_remote_staged(tx);
  n1.txm->enlist_remote(tx, NodeId(2));
  n1.txm->commit_async(tx, [](bool) {});
  // The vote is back ~2 round trips in; the decision then dwells in the
  // queue until the 50 ms flush timer. Crash the coordinator inside that
  // window, long before the flush.
  w.sim.schedule_at(10'000, [&] { w.net.crash_node(NodeId(1)); });
  w.sim.schedule_at(600'000, [&] { w.net.recover_node(NodeId(1)); });
  w.sim.run();
  EXPECT_TRUE(n1.storage.keys_with_prefix("txdec:").empty());
  EXPECT_TRUE(n2.storage.queue_empty());  // presumed abort discarded staging
  EXPECT_TRUE(n1.txm->idle());
  EXPECT_TRUE(n2.txm->idle());
}

TEST(TxManagerTest, DecisionQueueSharesOneCoordinatorSync) {
  // Four distributed commits decided in one same-instant burst flush
  // under ONE coordinator sync, with the inflight gauge peaking at 4.
  TxWorld w(2);
  auto& n1 = w.n(1);
  auto& n2 = w.n(2);
  n1.txm->set_group_commit(4, 1'000);
  n2.txm->set_group_commit(4, 100);
  int committed = 0;
  for (int i = 0; i < 4; ++i) {
    const TxId tx = n1.txm->begin();
    n2.qm->stage_enqueue(tx, record(1 + i));
    n2.txm->note_remote_staged(tx);
    n1.txm->enlist_remote(tx, NodeId(2));
    n1.txm->commit_async(tx, [&](bool ok) { committed += ok ? 1 : 0; });
  }
  w.sim.run();
  EXPECT_EQ(committed, 4);
  EXPECT_EQ(n2.storage.queue().size(), 4u);
  EXPECT_EQ(n1.txm->stats().coordinator_syncs.load(), 1u);
  EXPECT_EQ(n1.txm->stats().pipeline_depth_max.load(), 4u);
  EXPECT_TRUE(n1.txm->idle());
  EXPECT_TRUE(n2.txm->idle());
}

TEST(TxManagerTest, GroupFlushCallbackMayStartTheNextCommit) {
  // A completion callback delivered from the batched local flush
  // immediately begins and commits the next transaction — re-entering
  // the manager from inside its own flush loop must be safe.
  TxWorld w(1);
  auto& n1 = w.n(1);
  n1.txm->set_group_commit(2, 100);
  int committed = 0;
  const TxId t1 = n1.txm->begin();
  n1.qm->stage_enqueue(t1, record(1));
  n1.txm->commit_async(t1, [&](bool ok) {
    committed += ok ? 1 : 0;
    const TxId t3 = n1.txm->begin();
    n1.qm->stage_enqueue(t3, record(3));
    n1.txm->commit_async(t3, [&](bool ok2) { committed += ok2 ? 1 : 0; });
  });
  const TxId t2 = n1.txm->begin();
  n1.qm->stage_enqueue(t2, record(2));
  n1.txm->commit_async(t2, [&](bool ok) { committed += ok ? 1 : 0; });
  w.sim.run();
  EXPECT_EQ(committed, 3);
  EXPECT_EQ(n1.storage.queue().size(), 3u);
  EXPECT_TRUE(n1.txm->idle());
}

TEST(TxManagerTest, DecisionRecordRedrivenAfterCoordinatorCrash) {
  // Coordinator crashes right after persisting the commit decision: on
  // recovery it must re-drive COMMIT from the decision record.
  TxWorld w(2);
  auto& n1 = w.n(1);
  auto& n2 = w.n(2);
  const TxId tx = n1.txm->begin();
  n2.qm->stage_enqueue(tx, record(5));
  n2.txm->note_remote_staged(tx);
  n1.txm->enlist_remote(tx, NodeId(2));
  n1.txm->commit_async(tx, [](bool) {});
  // Prepare round trip takes ~2 * (latency + ack); crash shortly after the
  // decision should have been persisted but before acks return.
  w.sim.schedule_at(2'100, [&] { w.net.crash_node(NodeId(1)); });
  w.sim.schedule_at(500'000, [&] { w.net.recover_node(NodeId(1)); });
  w.sim.run();
  // Whatever the exact crash interleaving, the protocol must converge with
  // both sides idle and consistent: either both applied or neither.
  EXPECT_TRUE(n1.txm->idle());
  EXPECT_TRUE(n2.txm->idle());
  if (n1.storage.keys_with_prefix("txdec:").empty() &&
      !n2.storage.queue_empty()) {
    SUCCEED();  // committed everywhere
  } else {
    EXPECT_TRUE(n2.storage.queue_empty());  // aborted everywhere
  }
}

}  // namespace
}  // namespace mar
